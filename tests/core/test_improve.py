"""Tests for the local-search schedule polish."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.baselines.exact import branch_and_bound_optimal
from repro.core.improve import improve_schedule
from repro.core.instance import Instance, uniform_instance
from repro.core.ptas import ptas_schedule
from repro.core.schedule import Schedule
from repro.errors import InvalidInstanceError


class TestImproveSchedule:
    def test_fixes_obviously_bad_schedule(self):
        inst = Instance(times=(5, 5, 5, 5), machines=2)
        bad = Schedule(inst, assignment=(0, 0, 0, 0))  # everything on one machine
        result = improve_schedule(bad)
        assert result.schedule.makespan == 10  # the optimum
        assert result.improvement == 10

    def test_never_worse(self):
        for seed in range(10):
            inst = uniform_instance(15, 4, low=1, high=50, seed=seed)
            start = ptas_schedule(inst, eps=0.5).schedule
            result = improve_schedule(start)
            assert result.schedule.makespan <= start.makespan

    def test_local_optimum_is_stable(self):
        inst = uniform_instance(12, 3, low=1, high=30, seed=4)
        once = improve_schedule(ptas_schedule(inst, eps=0.5).schedule)
        twice = improve_schedule(once.schedule)
        assert twice.improvement == 0

    def test_schedule_stays_feasible(self):
        inst = uniform_instance(20, 5, low=1, high=40, seed=5)
        result = improve_schedule(ptas_schedule(inst, eps=0.5).schedule)
        assert result.schedule.loads().sum() == inst.total_time

    def test_counts_reported(self):
        inst = Instance(times=(9, 9, 1, 1), machines=2)
        bad = Schedule(inst, assignment=(0, 0, 1, 1))
        result = improve_schedule(bad)
        assert result.moves + result.swaps >= 1
        assert result.rounds >= 1

    def test_swap_needed_case(self):
        # Moves alone cannot fix (9+2 | 8+3 is optimal; start 9+3 | 8+2);
        # only a swap of the 3 and the 2 improves.
        inst = Instance(times=(9, 3, 8, 2), machines=2)
        start = Schedule(inst, assignment=(0, 0, 1, 1))
        result = improve_schedule(start)
        assert result.schedule.makespan == 11

    def test_often_closes_gap_to_optimum(self):
        closed = 0
        for seed in range(8):
            inst = uniform_instance(12, 3, low=1, high=30, seed=100 + seed)
            opt = branch_and_bound_optimal(inst).makespan
            raw = ptas_schedule(inst, eps=0.5).schedule
            polished = improve_schedule(raw).schedule
            if polished.makespan - opt < raw.makespan - opt:
                closed += 1
            assert polished.makespan >= opt
        assert closed >= 3  # polish usually helps coarse-eps schedules

    def test_rejects_bad_rounds(self):
        inst = Instance(times=(1, 2), machines=1)
        with pytest.raises(InvalidInstanceError):
            improve_schedule(Schedule(inst, (0, 0)), max_rounds=0)


@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow], max_examples=30)
@given(
    times=st.lists(st.integers(1, 30), min_size=2, max_size=12).map(tuple),
    machines=st.integers(1, 4),
    data=st.data(),
)
def test_improvement_invariants_property(times, machines, data):
    inst = Instance(times=times, machines=machines)
    assignment = tuple(
        data.draw(st.integers(0, machines - 1)) for _ in range(len(times))
    )
    start = Schedule(inst, assignment)
    result = improve_schedule(start)
    # Never worse, always feasible, improvement consistent.
    assert result.schedule.makespan <= start.makespan
    assert result.schedule.loads().sum() == inst.total_time
    assert result.improvement == start.makespan - result.schedule.makespan
