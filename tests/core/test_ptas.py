"""Tests for the PTAS driver: probes, schedules, and the (1+eps) guarantee."""

import pytest

from repro.core.baselines.exact import branch_and_bound_optimal
from repro.core.instance import Instance, uniform_instance
from repro.core.ptas import probe_target, ptas_schedule
from repro.errors import InvalidInstanceError


class TestProbeTarget:
    def test_accepting_probe_has_schedule(self, small_instance):
        # The Graham upper bound is always feasible.
        from repro.core.bounds import makespan_bounds

        ub = makespan_bounds(small_instance).upper
        probe = probe_target(small_instance, ub, 0.3)
        assert probe.accepted
        assert probe.schedule is not None

    def test_accepted_schedule_within_dual_bound(self, small_instance):
        from repro.core.bounds import makespan_bounds

        ub = makespan_bounds(small_instance).upper
        probe = probe_target(small_instance, ub, 0.3)
        assert probe.schedule.makespan <= (1 + 0.3) * ub

    def test_rejecting_probe_has_no_schedule(self, small_instance):
        probe = probe_target(small_instance, 1, 0.3)
        assert not probe.accepted
        assert probe.schedule is None
        assert probe.machines_needed > small_instance.machines

    def test_rejection_certifies_infeasibility(self):
        # needed(T) > m must imply OPT > T: check against brute force.
        for seed in range(6):
            inst = uniform_instance(9, 3, low=1, high=25, seed=seed)
            opt = branch_and_bound_optimal(inst).makespan
            for target in range(max(1, opt - 4), opt):
                probe = probe_target(inst, target, 0.3)
                # T < OPT: the probe may accept only while keeping the
                # dual promise makespan <= (1+eps)T; but if it rejects,
                # that is consistent by construction.  The sound
                # direction: accepting at T >= OPT must always happen.
                assert probe.machines_needed >= 1
            probe = probe_target(inst, opt, 0.3)
            assert probe.accepted, f"probe rejected the true optimum (seed {seed})"

    def test_all_jobs_assigned_once(self, small_instance):
        from repro.core.bounds import makespan_bounds

        ub = makespan_bounds(small_instance).upper
        schedule = probe_target(small_instance, ub, 0.3).schedule
        assert len(schedule.assignment) == small_instance.n_jobs

    def test_all_short_jobs_instance(self):
        # Every job short at the target: DP degenerates, greedy packs.
        inst = Instance(times=(2, 2, 3, 3, 2), machines=2)
        probe = probe_target(inst, 100, 0.3)
        assert probe.accepted
        assert probe.rounded.dims == 0


class TestPtasSchedule:
    @pytest.mark.parametrize("search", ["bisection", "quarter"])
    def test_guarantee_against_optimum(self, search):
        for seed in range(10):
            inst = uniform_instance(11, 3, low=1, high=40, seed=100 + seed)
            opt = branch_and_bound_optimal(inst).makespan
            result = ptas_schedule(inst, eps=0.3, search=search)
            assert result.makespan <= (1 + 0.3) * opt + 1e-9, (
                seed, opt, result.makespan,
            )

    def test_tighter_eps_never_worse_on_average(self):
        # eps = 0.2 (k=5) should not lose to eps = 0.5 (k=2) in aggregate.
        worse = 0
        for seed in range(6):
            inst = uniform_instance(10, 3, low=1, high=30, seed=seed)
            coarse = ptas_schedule(inst, eps=0.5).makespan
            fine = ptas_schedule(inst, eps=0.2).makespan
            if fine > coarse:
                worse += 1
        assert worse <= 2

    def test_searches_agree_on_guarantee(self):
        for seed in range(8):
            inst = uniform_instance(14, 4, low=1, high=60, seed=seed)
            b = ptas_schedule(inst, eps=0.3, search="bisection")
            q = ptas_schedule(inst, eps=0.3, search="quarter")
            # Same converged target; schedules may differ slightly
            # because each search keeps its own best accepted probe.
            assert b.final_target == q.final_target, seed
            bound = 1.3 * b.final_target + 1e-9
            assert b.makespan <= bound and q.makespan <= bound, seed

    def test_quarter_uses_fewer_iterations(self):
        slower = 0
        for seed in range(6):
            inst = uniform_instance(16, 4, low=5, high=80, seed=seed)
            b = ptas_schedule(inst, eps=0.3, search="bisection")
            q = ptas_schedule(inst, eps=0.3, search="quarter")
            assert q.iterations <= b.iterations
            if q.iterations == b.iterations:
                slower += 1
        assert slower <= 2  # typically strictly fewer (Table VII)

    def test_final_target_bounds_makespan(self, small_instance):
        result = ptas_schedule(small_instance, eps=0.3)
        assert result.makespan <= result.guarantee_bound() + 1e-9

    def test_probes_recorded(self, small_instance):
        result = ptas_schedule(small_instance, eps=0.3)
        assert len(result.probes) >= result.iterations
        assert len(result.dp_table_sizes) == len(result.probes)

    def test_single_machine(self):
        inst = Instance(times=(4, 7, 2), machines=1)
        result = ptas_schedule(inst, eps=0.3)
        assert result.makespan == 13

    def test_more_machines_than_jobs(self):
        inst = Instance(times=(9, 5, 7), machines=6)
        result = ptas_schedule(inst, eps=0.3)
        assert result.makespan == 9  # each job on its own machine

    def test_identical_jobs(self):
        inst = Instance(times=(10,) * 12, machines=4)
        result = ptas_schedule(inst, eps=0.3)
        assert result.makespan == 30

    def test_unknown_search_rejected(self, small_instance):
        with pytest.raises(InvalidInstanceError):
            ptas_schedule(small_instance, search="golden")
