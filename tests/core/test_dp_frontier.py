"""Tests for the memory-light frontier DP solver."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.configs import enumerate_configurations
from repro.core.dp_common import UNREACHABLE
from repro.core.dp_frontier import dp_frontier, frontier_depth
from repro.core.dp_vectorized import dp_vectorized
from repro.errors import DPError


class TestFrontierDepth:
    def test_depth_is_max_config_sum(self):
        configs = np.array([[1, 0], [2, 1], [0, 3]], dtype=np.int64)
        assert frontier_depth(configs) == 3

    def test_empty_configs(self):
        assert frontier_depth(np.zeros((0, 2), dtype=np.int64)) == 0

    def test_depth_bounded_by_k_for_ptas_probes(self, medium_probe):
        # Long jobs exceed T/k, so configurations hold <= k jobs.
        configs = enumerate_configurations(
            medium_probe.class_sizes, medium_probe.counts, medium_probe.target
        )
        assert frontier_depth(configs) <= medium_probe.k


class TestDPFrontier:
    def test_matches_dense_randomized(self):
        rng = np.random.default_rng(9)
        for _ in range(15):
            d = int(rng.integers(1, 5))
            counts = rng.integers(1, 4, size=d).tolist()
            sizes = rng.integers(2, 10, size=d).tolist()
            target = int(rng.integers(4, 30))
            dense = dp_vectorized(counts, sizes, target).opt
            assert dp_frontier(counts, sizes, target) == dense

    def test_matches_dense_on_probe(self, medium_probe):
        args = (medium_probe.counts, medium_probe.class_sizes, medium_probe.target)
        assert dp_frontier(*args) == dp_vectorized(*args).opt

    def test_single_class(self):
        assert dp_frontier([5], [4], 10) == 3  # 2 jobs per machine

    def test_unreachable(self):
        assert dp_frontier([2], [50], 10) >= UNREACHABLE

    def test_partially_unreachable_final(self):
        # One class fits, the other never does -> N unreachable.
        assert dp_frontier([1, 1], [5, 50], 10) >= UNREACHABLE

    def test_empty_counts(self):
        assert dp_frontier([], [], 7) == 0

    def test_no_configs(self):
        configs = np.zeros((0, 1), dtype=np.int64)
        assert dp_frontier([3], [99], 10, configs) >= UNREACHABLE

    def test_rejects_arity_mismatch(self):
        with pytest.raises(DPError):
            dp_frontier([1, 2], [3], 10)


@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow], max_examples=40)
@given(
    data=st.integers(1, 4).flatmap(
        lambda d: st.tuples(
            st.lists(st.integers(1, 3), min_size=d, max_size=d),
            st.lists(st.integers(2, 10), min_size=d, max_size=d),
            st.integers(4, 25),
        )
    )
)
def test_frontier_equals_dense_property(data):
    counts, sizes, target = data
    assert dp_frontier(counts, sizes, target) == dp_vectorized(counts, sizes, target).opt
