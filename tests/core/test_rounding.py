"""Unit tests for repro.core.rounding (Algorithm 1, lines 7-8)."""

import pytest

from repro.core.instance import Instance
from repro.core.rounding import accuracy_k, round_instance, rounding_unit
from repro.errors import InvalidInstanceError


class TestAccuracyK:
    def test_paper_epsilon(self):
        assert accuracy_k(0.3) == 4  # the paper's setting -> k^2 = 16 dims

    def test_exact_reciprocal(self):
        assert accuracy_k(0.5) == 2
        assert accuracy_k(0.25) == 4

    def test_eps_one(self):
        assert accuracy_k(1.0) == 1

    def test_rejects_zero(self):
        with pytest.raises(InvalidInstanceError):
            accuracy_k(0.0)

    def test_rejects_above_one(self):
        with pytest.raises(InvalidInstanceError):
            accuracy_k(1.5)


class TestRoundingUnit:
    def test_basic(self):
        assert rounding_unit(160, 4) == 10  # floor(160/16)

    def test_clamps_to_one(self):
        assert rounding_unit(5, 4) == 1  # T < k^2

    def test_rejects_bad_target(self):
        with pytest.raises(InvalidInstanceError):
            rounding_unit(0, 4)


class TestRoundInstance:
    def test_split_threshold(self):
        # T=40, k=4 -> long iff t > 10; unit = floor(40/16) = 2.
        inst = Instance(times=(40, 25, 11, 10, 3), machines=2)
        r = round_instance(inst, 40, 0.3)
        assert sorted(j for grp in r.long_indices for j in grp) == [0, 1, 2]
        assert r.short_indices == (3, 4)
        assert r.unit == 2

    def test_rounded_sizes_are_multiples_of_unit(self):
        inst = Instance(times=(40, 25, 11), machines=2)
        r = round_instance(inst, 40, 0.3)
        assert all(s % r.unit == 0 for s in r.class_sizes)
        # 40 -> 40, 25 -> 24, 11 -> 10
        assert r.class_sizes == (10, 24, 40)

    def test_rounding_never_rounds_up(self):
        inst = Instance(times=(17, 23, 39, 40), machines=2)
        r = round_instance(inst, 40, 0.3)
        for cls, jobs in enumerate(r.long_indices):
            for j in jobs:
                assert r.class_sizes[cls] <= inst.times[j]
                assert inst.times[j] - r.class_sizes[cls] < r.unit

    def test_counts_align_with_long_indices(self, medium_probe):
        assert medium_probe.counts == tuple(
            len(g) for g in medium_probe.long_indices
        )
        assert all(c >= 1 for c in medium_probe.counts)

    def test_class_sizes_strictly_increasing(self, medium_probe):
        sizes = medium_probe.class_sizes
        assert all(a < b for a, b in zip(sizes, sizes[1:]))

    def test_every_job_classified_once(self, medium_probe):
        inst = medium_probe.instance
        longs = [j for grp in medium_probe.long_indices for j in grp]
        assert sorted(longs + list(medium_probe.short_indices)) == list(
            range(inst.n_jobs)
        )

    def test_table_shape_and_size(self):
        inst = Instance(times=(40, 40, 25, 11), machines=2)
        r = round_instance(inst, 40, 0.3)
        assert r.table_shape == tuple(c + 1 for c in r.counts)
        size = 1
        for s in r.table_shape:
            size *= s
        assert r.table_size == size

    def test_all_short_gives_zero_dims(self):
        inst = Instance(times=(2, 3, 2), machines=2)
        r = round_instance(inst, 100, 0.3)
        assert r.dims == 0
        assert r.table_size == 1
        assert r.n_long == 0

    def test_jobs_above_target_still_classified(self):
        # t > T is infeasible for the probe but rounding stays defined.
        inst = Instance(times=(100, 5), machines=2)
        r = round_instance(inst, 40, 0.3)
        assert r.dims == 1
        assert r.class_sizes[0] == 100  # 100 // 2 * 2

    def test_true_size_bound(self, medium_probe):
        bound = medium_probe.true_size_bound(rounded_load=50, jobs_on_machine=3)
        assert bound == 50 + 3 * medium_probe.unit

    def test_rejects_bad_target(self, small_instance):
        with pytest.raises(InvalidInstanceError):
            round_instance(small_instance, 0, 0.3)

    def test_rounding_loss_bounded_per_machine(self, medium_probe):
        # <= k jobs fit per machine, each loses < unit: total loss per
        # machine < k * unit <= eps * T — the PTAS guarantee's engine.
        k, unit, target = medium_probe.k, medium_probe.unit, medium_probe.target
        assert k * unit <= 0.3 * target + k  # slack for integer floors
