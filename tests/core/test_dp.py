"""Tests for the DP solvers: reference, vectorized, and their agreement.

The reference solver is the oracle (a literal transcription of
Equation 1); the vectorized solver must match it cell-for-cell, and
both must satisfy the recurrence's semantic characterisation: OPT(u) is
the minimum number of configurations from C summing componentwise to u.
"""


import numpy as np
import pytest

from repro.core.configs import enumerate_configurations
from repro.core.dp_common import DPResult, UNREACHABLE, empty_dp_result
from repro.core.dp_reference import dp_reference, dp_reference_for
from repro.core.dp_vectorized import dp_vectorized, dp_vectorized_for
from repro.errors import DPError


def min_cover_oracle(counts, configs, limit=6):
    """Exhaustive: least number of configs (with repetition) summing to N."""
    target = tuple(counts)
    frontier = {(0,) * len(counts)}
    for machines in range(1, limit + 1):
        nxt = set()
        for u in frontier:
            for c in configs:
                v = tuple(a + b for a, b in zip(u, c))
                if all(x <= t for x, t in zip(v, target)):
                    if v == target:
                        return machines
                    nxt.add(v)
        frontier = nxt
        if not frontier:
            break
    return None


class TestDPReference:
    def test_origin_is_zero(self):
        r = dp_reference([2, 2], [3, 5], 10)
        assert r.table[0, 0] == 0

    def test_single_class_exact(self):
        # sizes (4), budget 10 -> 2 jobs per machine; OPT(n) = ceil(n/2).
        r = dp_reference([5], [4], 10)
        assert r.table.tolist() == [0, 1, 1, 2, 2, 3]

    def test_matches_min_cover_oracle(self):
        rng = np.random.default_rng(1)
        for _ in range(10):
            d = int(rng.integers(1, 4))
            counts = rng.integers(1, 4, size=d).tolist()
            sizes = rng.integers(2, 9, size=d).tolist()
            target = int(rng.integers(6, 25))
            r = dp_reference(counts, sizes, target)
            configs = [tuple(c) for c in r.configs.tolist()]
            oracle = min_cover_oracle(counts, configs, limit=sum(counts))
            if oracle is None:
                assert not r.feasible
            else:
                assert r.opt == oracle, (counts, sizes, target)

    def test_unreachable_when_job_too_large(self):
        r = dp_reference([1], [50], 10)
        assert not r.feasible
        assert r.opt >= UNREACHABLE

    def test_partial_reachability(self):
        # One class fits, the other does not.
        r = dp_reference([1, 1], [5, 50], 10)
        assert r.table[1, 0] == 1
        assert r.table[0, 1] >= UNREACHABLE
        assert not r.feasible

    def test_monotone_in_levels(self):
        # OPT never decreases when adding jobs componentwise.
        r = dp_reference([3, 2], [3, 7], 12)
        t = r.table
        for idx in np.ndindex(t.shape):
            for axis in range(t.ndim):
                if idx[axis] + 1 < t.shape[axis]:
                    nxt = list(idx)
                    nxt[axis] += 1
                    assert t[tuple(nxt)] >= t[idx]

    def test_empty_counts(self):
        r = dp_reference([], [], 10)
        assert r.opt == 0 and r.shape == ()

    def test_rejects_mismatched_arity(self):
        with pytest.raises(DPError):
            dp_reference([1, 2], [3], 10)


class TestDPVectorized:
    def test_equals_reference_randomized(self):
        rng = np.random.default_rng(2)
        for _ in range(12):
            d = int(rng.integers(1, 5))
            counts = rng.integers(1, 4, size=d).tolist()
            sizes = rng.integers(2, 10, size=d).tolist()
            target = int(rng.integers(5, 30))
            a = dp_reference(counts, sizes, target)
            b = dp_vectorized(counts, sizes, target)
            assert np.array_equal(a.table, b.table), (counts, sizes, target)

    def test_equals_reference_on_probe(self, medium_probe):
        a = dp_reference_for(medium_probe)
        b = dp_vectorized_for(medium_probe)
        assert np.array_equal(a.table, b.table)

    def test_no_configs_leaves_table_unreachable(self):
        r = dp_vectorized([2], [50], 10)
        assert r.table[0] == 0
        assert (r.table[1:] >= UNREACHABLE).all()

    def test_max_rounds_guard(self):
        with pytest.raises(DPError, match="converge"):
            dp_vectorized([5], [4], 10, max_rounds=0)

    def test_converges_within_default_rounds(self):
        # Defensive: the default cap (n' + 1) always suffices.
        r = dp_vectorized([6, 6], [3, 5], 11)
        assert r.feasible

    def test_empty_counts(self):
        assert dp_vectorized([], [], 5).opt == 0

    def test_shared_configs_reused(self, medium_probe):
        configs = enumerate_configurations(
            medium_probe.class_sizes, medium_probe.counts, medium_probe.target
        )
        r = dp_vectorized_for(medium_probe, configs)
        assert r.configs is configs

    def test_scratch_reuse_is_bit_identical(self):
        # The per-pass candidate buffer is now one preallocated scratch
        # array reused across every config pass of every round; the
        # aliasing-safe formulation must stay bit-identical to the
        # reference on a probe with many configs (many reuses per round).
        counts, sizes, target = [3, 3, 2, 2], [2, 3, 5, 7], 17
        reference = dp_reference(counts, sizes, target)
        first = dp_vectorized(counts, sizes, target)
        second = dp_vectorized(counts, sizes, target)
        assert first.table.dtype == np.int64
        assert np.array_equal(first.table, reference.table)
        assert np.array_equal(first.table, second.table)


class TestDPResult:
    def test_fits_predicate(self):
        r = dp_reference([5], [4], 10)
        assert r.fits(3) and not r.fits(2)  # OPT = 3

    def test_empty_result(self):
        r = empty_dp_result()
        assert r.opt == 0 and r.feasible and r.fits(0)

    def test_rejects_wrong_dtype(self):
        with pytest.raises(DPError):
            DPResult(
                table=np.zeros((2, 2), dtype=np.int32),
                configs=np.zeros((0, 2), dtype=np.int64),
            )

    def test_rejects_dim_mismatch(self):
        with pytest.raises(DPError):
            DPResult(
                table=np.zeros((2, 2), dtype=np.int64),
                configs=np.zeros((1, 3), dtype=np.int64),
            )
