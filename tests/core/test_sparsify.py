"""Configuration sparsification and warm starts (PR 9 tentpole).

The soundness story these tests pin down:

* **Clipped cover fixpoint = exact fixpoint.** Dominance pruning keeps
  only the maximal configurations, and every sparse consumer reads the
  recurrence as a cover (``clip(u - c)`` instead of ``u - c``).  On a
  downward-closed set min-cover equals min-partition at *every* cell,
  so the sparse fill's table is bit-identical to the dense one — not
  merely feasibility-equivalent.
* **The exact-subtraction counterexample.** With ``counts=(3,)``,
  ``sizes=(1,)``, ``T=2`` the maximal set is ``{(2,)}`` and exact
  subtraction would strand cell ``(3,)``; the clipped recurrence
  reaches it (``OPT = 2``).  This instance runs through every sparse
  code path below.
* **Warm starts seed from above.** A cached table at a strictly
  smaller budget is a pointwise upper bound on the new fixpoint
  (``C(b') ⊆ C(b)``), and the min-relaxation from an upper-bound seed
  with the origin pinned at 0 converges to the exact fixpoint.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.configs import count_subconfigurations, enumerate_configurations
from repro.core.dp_vectorized import dp_vectorized, seed_warm_table
from repro.core.kernels.decision import DecisionKernel, dp_decision
from repro.core.kernels.sweep import SweepKernel, dp_levelsweep
from repro.core.probe_cache import CacheStats, PlanCache, ProbeCache
from repro.core.sparsify import maximal_mask, sparsify_configurations
from repro.dptable.plan import build_probe_plan
from repro.engines.base import fill_by_groups
from repro.errors import DPError


def probes():
    # Post-rounding DP probes: small enough to cross-check exhaustively,
    # varied enough to cover 1-3 dims, empty sets, and saturated caps.
    return st.integers(min_value=1, max_value=3).flatmap(
        lambda d: st.tuples(
            st.lists(
                st.integers(min_value=1, max_value=3), min_size=d, max_size=d
            ).map(tuple),
            st.lists(
                st.integers(min_value=1, max_value=9),
                min_size=d, max_size=d, unique=True,
            ).map(tuple),
            st.integers(min_value=1, max_value=14),
        )
    )


#: The instance that breaks exact-subtraction maximal pruning.
COUNTEREXAMPLE = ((3,), (1,), 2)


# -- sparsify_configurations / maximal_mask ------------------------------------


@given(probe=probes())
@settings(max_examples=40, deadline=None)
def test_maximal_mask_routes_agree(probe):
    # The arithmetic route (constraints in hand) and the membership
    # route (set lookup only) must produce the same mask on any
    # downward-closed set.
    counts, sizes, target = probe
    configs = enumerate_configurations(sizes, counts, target)
    if configs.shape[0] == 0:
        return
    arithmetic = maximal_mask(
        configs, counts=counts, class_sizes=sizes, target=target
    )
    membership = maximal_mask(configs)
    assert np.array_equal(arithmetic, membership)


@given(probe=probes(), max_jobs=st.integers(min_value=1, max_value=4))
@settings(max_examples=25, deadline=None)
def test_maximal_mask_routes_agree_with_cardinality_cap(probe, max_jobs):
    counts, sizes, target = probe
    configs = enumerate_configurations(sizes, counts, target, max_jobs=max_jobs)
    if configs.shape[0] == 0:
        return
    arithmetic = maximal_mask(
        configs, counts=counts, class_sizes=sizes, target=target,
        max_jobs=max_jobs,
    )
    assert np.array_equal(arithmetic, maximal_mask(configs))


@given(probe=probes())
@settings(max_examples=30, deadline=None)
def test_sparsify_keeps_a_dominating_cover(probe):
    # Every dropped configuration is componentwise <= some kept one,
    # kept rows preserve the original order, and the array is frozen.
    counts, sizes, target = probe
    configs = enumerate_configurations(sizes, counts, target)
    sparse, stats = sparsify_configurations(
        configs, counts=counts, class_sizes=sizes, target=target
    )
    assert stats.kept == sparse.shape[0]
    assert stats.kept + stats.dropped == configs.shape[0]
    if configs.shape[0] == 0:
        return
    assert not sparse.flags.writeable
    for row in configs:
        assert (sparse >= row).all(axis=1).any()
    # Original-order subsequence of the input.
    kept_idx = [
        int(np.flatnonzero((configs == r).all(axis=1))[0]) for r in sparse
    ]
    assert kept_idx == sorted(kept_idx)


def test_sparsify_counterexample_instance():
    counts, sizes, target = COUNTEREXAMPLE
    configs = enumerate_configurations(sizes, counts, target)
    sparse, stats = sparsify_configurations(
        configs, counts=counts, class_sizes=sizes, target=target
    )
    assert sparse.tolist() == [[2]]
    assert stats.dropped == 1  # (1,) dominated; (0,) is never enumerated


def test_support_cap_is_opt_in_and_filters():
    counts, sizes, target = (2, 2), (3, 5), 8
    configs = enumerate_configurations(sizes, counts, target)
    full, _ = sparsify_configurations(
        configs, counts=counts, class_sizes=sizes, target=target
    )
    capped, _ = sparsify_configurations(
        configs, counts=counts, class_sizes=sizes, target=target,
        support_cap=1,
    )
    assert ((capped != 0).sum(axis=1) <= 1).all()
    assert capped.shape[0] <= full.shape[0]


def test_maximal_mask_rejects_bad_shapes():
    with pytest.raises(DPError):
        maximal_mask(np.zeros(3, dtype=np.int64))
    with pytest.raises(DPError):
        maximal_mask(
            np.zeros((2, 3), dtype=np.int64),
            counts=(1, 1), class_sizes=(1,), target=5,
        )


# -- bit-identity of the sparse fills ------------------------------------------


@given(probe=probes())
@settings(max_examples=25, deadline=None)
def test_dp_vectorized_sparse_is_bit_identical(probe):
    counts, sizes, target = probe
    dense = dp_vectorized(counts, sizes, target)
    sparse = dp_vectorized(counts, sizes, target, sparsify=True)
    assert np.array_equal(dense.table, sparse.table)
    # DPResult.configs stays the FULL set: backtrack subtracts exactly.
    assert np.array_equal(dense.configs, sparse.configs)


@given(probe=probes())
@settings(max_examples=20, deadline=None)
def test_dp_levelsweep_sparse_is_bit_identical(probe):
    counts, sizes, target = probe
    dense = dp_levelsweep(counts, sizes, target)
    sparse = dp_levelsweep(counts, sizes, target, sparsify=True)
    assert np.array_equal(dense.table, sparse.table)
    assert np.array_equal(dense.configs, sparse.configs)


@given(probe=probes())
@settings(max_examples=20, deadline=None)
def test_fill_by_groups_clipped_is_bit_identical(probe):
    counts, sizes, target = probe
    plan = build_probe_plan(counts, sizes, target)
    dense = fill_by_groups(plan.geometry, plan.configs, plan.level_groups())
    clipped = fill_by_groups(
        plan.geometry, plan.sparse_configs, plan.level_groups(), clipped=True
    )
    assert np.array_equal(dense, clipped)


@pytest.mark.parametrize("probe", [COUNTEREXAMPLE, ((3, 2), (1, 4), 6)])
def test_counterexample_runs_exact_through_every_sparse_path(probe):
    counts, sizes, target = probe
    reference = dp_vectorized(counts, sizes, target)
    assert np.array_equal(
        dp_vectorized(counts, sizes, target, sparsify=True).table,
        reference.table,
    )
    assert np.array_equal(
        dp_levelsweep(counts, sizes, target, sparsify=True).table,
        reference.table,
    )
    plan = build_probe_plan(counts, sizes, target)
    assert np.array_equal(
        fill_by_groups(
            plan.geometry, plan.sparse_configs, plan.level_groups(),
            clipped=True,
        ).reshape(plan.geometry.shape),
        reference.table,
    )


def test_counterexample_reaches_the_stranded_cell():
    counts, sizes, target = COUNTEREXAMPLE
    result = dp_vectorized(counts, sizes, target, sparsify=True)
    assert int(result.table[3]) == 2  # exact subtraction would strand it


@given(probe=probes(), machines=st.integers(min_value=1, max_value=4))
@settings(max_examples=25, deadline=None)
def test_dp_decision_sparse_matches_dense_feasibility(probe, machines):
    # Decision fills may early-accept, so interior cells are not
    # bitwise-comparable — but the feasibility verdict and every cell
    # at or below the clamp (the cells backtrack can visit) must agree.
    counts, sizes, target = probe
    dense = dp_decision(counts, sizes, target, machines, sparsify=False)
    sparse = dp_decision(counts, sizes, target, machines, sparsify=True)
    assert dense.opt == sparse.opt
    assert dense.decided_infeasible == sparse.decided_infeasible
    if dense.decided_infeasible:
        # Rejected probes are never backtracked; a load-reject returns
        # the clamp-initialised table whose interior is deliberately
        # inexact (see dp_decision's module docstring), so only the
        # verdict is comparable.
        return
    # Accepted probes: every cell backtrack can visit (true OPT at or
    # below the clamp) must be exact in both fills.
    exact = dp_vectorized(counts, sizes, target).table
    final = exact <= machines
    for table in (dense.table, sparse.table):
        assert np.array_equal(table[final], exact[final])


# -- warm starts ---------------------------------------------------------------


@given(probe=probes(), delta=st.integers(min_value=1, max_value=5))
@settings(max_examples=25, deadline=None)
def test_warm_fill_equals_cold_fixpoint(probe, delta):
    # Seed the fill at target T+delta from the cached table at T: the
    # warm fixpoint must be bit-identical to the exact cold table.
    counts, sizes, target = probe
    cold_small = dp_vectorized(counts, sizes, target)
    big = target + delta
    cold_big = dp_vectorized(counts, sizes, big)
    warm = dp_vectorized(
        counts, sizes, big, warm_table=cold_small.table
    )
    assert np.array_equal(warm.table, cold_big.table)


@given(probe=probes(), delta=st.integers(min_value=1, max_value=5))
@settings(max_examples=20, deadline=None)
def test_warm_decision_fill_is_exact(probe, delta):
    counts, sizes, target = probe
    # Every size fitting the smaller budget rules out unreachable cells
    # and the O(1) load-reject shortcut (whose clamp-initialised tables
    # are deliberately inexact in the interior), so with a non-binding
    # clamp the warm decision fixpoint must equal the exact table.
    assume(max(sizes) <= target)
    machines = int(sum(counts)) + 1  # clamp never binds
    small = dp_decision(counts, sizes, target, machines)
    warm = dp_decision(
        counts, sizes, target + delta, machines, warm_table=small.table
    )
    exact = dp_vectorized(counts, sizes, target + delta)
    assert np.array_equal(warm.table, exact.table)


def test_seed_warm_table_caps_and_preserves_origin():
    counts, sizes, target = (2, 2), (2, 3), 7
    result = dp_vectorized(counts, sizes, target)
    table = np.full_like(result.table, 99)
    seeded = seed_warm_table(table, result.table, cap=3)
    assert int(seeded.reshape(-1)[0]) == 0
    assert seeded.max() <= 4  # cap + 1 sentinel ceiling
    assert seeded.shape == table.shape


# -- satellite 1: count_subconfigurations --------------------------------------


@given(probe=probes())
@settings(max_examples=40, deadline=None)
def test_count_subconfigurations_matches_python_reference(probe):
    counts, sizes, target = probe
    configs = enumerate_configurations(sizes, counts, target)
    rng = np.random.default_rng(7)
    cells = [np.asarray(counts)] + [
        rng.integers(0, np.asarray(counts) + 1) for _ in range(4)
    ]
    for cell in cells:
        expected = sum(
            1
            for row in configs.tolist()
            if all(int(r) <= int(c) for r, c in zip(row, cell))
        )
        assert count_subconfigurations(configs, cell) == expected


# -- satellite 2: stats robustness ---------------------------------------------


def test_hit_rate_is_zero_for_unseen_kinds():
    stats = CacheStats()
    # Kinds this PR introduced must never KeyError, recorded or not.
    assert stats.hit_rate("sparsify") == 0.0
    assert stats.hit_rate("warmstart") == 0.0
    stats.record("sparsify", True)
    stats.record("sparsify", False)
    assert stats.hit_rate("sparsify") == 0.5
    assert stats.hit_rate("never-recorded") == 0.0


# -- cache integration ---------------------------------------------------------


def test_probe_cache_registers_and_reuses_warm_tables():
    kernel = DecisionKernel(machines=3)
    cache = ProbeCache()
    # Drive the cache through its public dp() via the kernel protocol:
    # two probes in the same family at increasing budgets.
    from repro.core.instance import Instance
    from repro.core.ptas import probe_target

    inst = Instance(times=(9, 8, 7, 7, 3, 2), machines=3)
    probe_target(inst, 14, 0.3, dp_solver=kernel, cache=cache)
    first = dict(cache.stats.misses)
    probe_target(inst, 15, 0.3, dp_solver=kernel, cache=cache)
    attempts = cache.stats.hits.get("warmstart", 0) + cache.stats.misses.get(
        "warmstart", 0
    )
    assert attempts >= first.get("warmstart", 0)  # warm machinery engaged


def test_warm_and_cold_results_agree_end_to_end():
    from repro.core.instance import uniform_instance
    from repro.core.ptas import ptas_schedule

    inst = uniform_instance(18, 3, low=1, high=40, seed=11)
    warm = ptas_schedule(
        inst, eps=0.2, dp_solver=DecisionKernel(), cache=ProbeCache()
    )
    cold = ptas_schedule(
        inst, eps=0.2, dp_solver=DecisionKernel(sparsify=False),
        cache=ProbeCache(warm_start=False),
    )
    bare = ptas_schedule(inst, eps=0.2)
    assert warm.makespan == cold.makespan == bare.makespan
    assert warm.final_target == cold.final_target == bare.final_target


def test_plan_cache_seeds_level_schedule_across_same_shape():
    cache = PlanCache()
    counts, sizes = (2, 3), (4, 5)
    a = cache.plan(counts, sizes, 20)
    a.level_schedule  # materialise on the resident mate
    b = cache.plan(counts, sizes, 23)  # same shape, different budget
    assert b is not a
    assert "level_schedule" in b.__dict__  # inherited, not rebuilt
    assert b.__dict__["level_schedule"] is a.__dict__["level_schedule"]
    assert cache.stats.hits.get("warmstart", 0) >= 1


def test_plan_cache_sparsify_kind_and_layers():
    cache = PlanCache()
    plan = cache.plan((2, 2), (3, 5), 12, sparsify=True)
    assert "sparse_configs" in plan.__dict__  # eagerly built
    # Second lookup with sparsify: layers already resident -> a hit.
    cache.plan((2, 2), (3, 5), 12, sparsify=True)
    assert cache.stats.hits.get("sparsify", 0) >= 1


def test_sweep_kernel_override_beats_constructor_default():
    counts, sizes, target = (2, 2), (3, 5), 11
    base = SweepKernel()  # sparsify=False default
    forced = base(counts, sizes, target, sparsify=True)
    plain = base(counts, sizes, target)
    assert np.array_equal(forced.table, plain.table)
