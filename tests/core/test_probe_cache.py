"""Tests for the cross-probe solver cache (:mod:`repro.core.probe_cache`).

The load-bearing property: a cached run is **bit-identical** to an
uncached run — same final target, same makespan, same job-to-machine
assignment — for both search strategies, over random instances.
Everything else (hit counting, key normalization, sharing) supports
that headline.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bisection import bisection_search
from repro.core.dp_reference import dp_reference
from repro.core.dp_vectorized import dp_vectorized
from repro.core.instance import Instance, uniform_instance
from repro.core.probe_cache import CacheStats, ProbeCache, normalized_probe_key
from repro.core.ptas import probe_target, ptas_schedule
from repro.core.quarter_split import quarter_split_search
from repro.core.rounding import round_instance

instances = st.builds(
    Instance,
    times=st.lists(st.integers(1, 60), min_size=4, max_size=18).map(tuple),
    machines=st.integers(2, 5),
)


class TestNormalizedKey:
    def test_same_probe_same_key(self, small_instance):
        r1 = round_instance(small_instance, 40, 0.3)
        r2 = round_instance(small_instance, 40, 0.3)
        assert normalized_probe_key(r1) == normalized_probe_key(r2)

    def test_scale_invariance_across_targets(self):
        # Two targets whose rounding yields the same class indices,
        # counts, and scaled budget must collide: T=160 and T=164 with
        # k=4 share unit-relative geometry for these times.
        inst = Instance(times=(100, 100, 90, 50), machines=2)
        keys = set()
        for target in (160, 164):
            rounded = round_instance(inst, target, 0.3)
            keys.add(normalized_probe_key(rounded))
        assert len(keys) == 1

    def test_key_feasibility_equivalence(self):
        # The scaled constraint must admit exactly the configurations
        # the absolute constraint admits: identical keys -> identical
        # enumerated sets (checked elementwise).
        inst = Instance(times=(100, 100, 90, 50), machines=2)
        cache = ProbeCache()
        r1 = round_instance(inst, 160, 0.3)
        r2 = round_instance(inst, 164, 0.3)
        assert normalized_probe_key(r1) == normalized_probe_key(r2)
        from repro.core.configs import configurations_for

        np.testing.assert_array_equal(configurations_for(r1), configurations_for(r2))


class TestProbeCacheUnits:
    def test_rounding_memoized(self, small_instance):
        cache = ProbeCache()
        a = cache.rounding(small_instance, 40, 0.3)
        b = cache.rounding(small_instance, 40, 0.3)
        assert a is b
        assert cache.stats.hits["rounding"] == 1
        assert cache.stats.misses["rounding"] == 1

    def test_configs_memoized_and_read_only(self, small_instance):
        cache = ProbeCache()
        rounded = cache.rounding(small_instance, 40, 0.3)
        a = cache.configurations(rounded)
        b = cache.configurations(rounded)
        assert a is b
        assert not a.flags.writeable
        assert cache.stats.hit_rate("configs") == 0.5

    def test_dp_memoized_across_solvers(self, small_instance):
        # A table cached under one solver serves another — all solvers
        # produce identical tables (the library's core invariant).
        cache = ProbeCache()
        rounded = cache.rounding(small_instance, 40, 0.3)
        a = cache.dp(rounded, dp_vectorized)
        b = cache.dp(rounded, dp_reference)
        assert a is b

    def test_share_dp_false_still_caches_configs(self, small_instance):
        calls = []

        def counting_solver(counts, class_sizes, target, configs=None):
            calls.append(target)
            assert configs is not None  # enumeration still cached
            return dp_vectorized(counts, class_sizes, target, configs)

        cache = ProbeCache(share_dp=False)
        rounded = cache.rounding(small_instance, 40, 0.3)
        cache.dp(rounded, counting_solver)
        cache.dp(rounded, counting_solver)
        assert len(calls) == 2  # solver ran both times
        assert cache.stats.hits["configs"] == 1
        assert "dp" not in cache.stats.hits  # nothing DP-cached

    def test_clear_drops_artifacts_keeps_stats(self, small_instance):
        cache = ProbeCache()
        cache.rounding(small_instance, 40, 0.3)
        assert len(cache) > 0
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.misses["rounding"] == 1

    def test_geometry_memoized(self):
        cache = ProbeCache()
        a = cache.geometry((2, 3))
        b = cache.geometry((2, 3))
        assert a is b
        assert cache.stats.hit_rate("geometry") == 0.5


class TestCacheStats:
    def test_hit_rate_empty_is_zero(self):
        assert CacheStats().hit_rate("dp") == 0.0

    def test_as_dict_shape(self):
        stats = CacheStats()
        stats.record("dp", True)
        stats.record("dp", False)
        assert stats.as_dict() == {
            "dp": {"hits": 1, "misses": 1, "hit_rate": 0.5}
        }
        assert stats.total_hits == 1
        assert stats.total_misses == 1


class TestCachedProbeEquivalence:
    def test_probe_identical_with_and_without_cache(self, medium_instance):
        from repro.core.bounds import makespan_bounds

        bounds = makespan_bounds(medium_instance)
        cache = ProbeCache()
        for target in range(bounds.lower, bounds.upper, max(1, bounds.width // 7)):
            plain = probe_target(medium_instance, target, 0.3)
            cached = probe_target(medium_instance, target, 0.3, cache=cache)
            assert cached.accepted == plain.accepted
            assert cached.machines_needed == plain.machines_needed
            np.testing.assert_array_equal(
                cached.dp_result.table, plain.dp_result.table
            )
            if plain.schedule is not None:
                assert cached.schedule.assignment == plain.schedule.assignment


class TestCachedSearchEquivalence:
    """The acceptance property: cached == uncached, bit for bit."""

    @settings(max_examples=25, deadline=None)
    @given(inst=instances, eps=st.sampled_from([0.5, 0.3, 0.25]))
    def test_bisection_cached_equals_uncached(self, inst, eps):
        plain = bisection_search(inst, eps)
        cached = bisection_search(inst, eps, cache=ProbeCache())
        assert cached.final_target == plain.final_target
        assert cached.makespan == plain.makespan
        assert cached.schedule.assignment == plain.schedule.assignment
        assert cached.iterations == plain.iterations

    @settings(max_examples=25, deadline=None)
    @given(inst=instances, eps=st.sampled_from([0.5, 0.3, 0.25]))
    def test_quarter_cached_equals_uncached(self, inst, eps):
        plain = quarter_split_search(inst, eps)
        cached = quarter_split_search(inst, eps, cache=ProbeCache())
        assert cached.final_target == plain.final_target
        assert cached.makespan == plain.makespan
        assert cached.schedule.assignment == plain.schedule.assignment
        assert cached.iterations == plain.iterations

    @settings(max_examples=10, deadline=None)
    @given(inst=instances)
    def test_one_cache_shared_across_both_searches(self, inst):
        cache = ProbeCache()
        b = ptas_schedule(inst, eps=0.3, search="bisection", cache=cache)
        q = ptas_schedule(inst, eps=0.3, search="quarter", cache=cache)
        assert b.final_target == q.final_target
        assert b.final_target == ptas_schedule(inst, eps=0.3).final_target

    def test_cache_produces_hits_within_one_search(self):
        # The clean-up probe at the final UB re-visits a probed target,
        # so even a single bisection run hits the cache.
        inst = uniform_instance(30, 5, low=3, high=90, seed=5)
        cache = ProbeCache()
        bisection_search(inst, 0.3, cache=cache)
        assert cache.stats.total_hits > 0

    def test_probe_events_reflect_cache_outcomes(self):
        from repro.observability import TraceRecorder

        inst = uniform_instance(24, 4, low=5, high=70, seed=9)
        cache = ProbeCache()
        rec = TraceRecorder()
        result = ptas_schedule(
            inst, eps=0.3, search="quarter", cache=cache, trace=rec
        )
        assert len(rec.events) == len(result.probes)
        outcomes = [e.cache_events.get("dp") for e in rec.events]
        assert all(o in ("hit", "miss") for o in outcomes)
        assert outcomes.count("hit") == cache.stats.hits.get("dp", 0)


class TestLRUBounding:
    def _fill_geometry(self, cache, n):
        for i in range(n):
            cache.geometry((i + 1, 1))

    def test_capacity_evicts_least_recently_used(self):
        cache = ProbeCache(capacity=3)
        self._fill_geometry(cache, 3)
        cache.geometry((1, 1))        # refresh the oldest entry
        cache.geometry((99, 1))       # evicts (2, 1), not (1, 1)
        assert cache.stats.evictions.get("geometry") == 1
        cache.geometry((1, 1))        # still cached -> hit
        assert cache.stats.hits["geometry"] == 2
        cache.geometry((2, 1))        # evicted -> miss
        assert cache.stats.misses["geometry"] == 5

    def test_unbounded_cache_never_evicts(self):
        cache = ProbeCache(capacity=None)
        self._fill_geometry(cache, 50)
        assert len(cache) == 50
        assert cache.stats.total_evictions == 0

    def test_capacity_bounds_every_kind(self):
        inst = uniform_instance(24, 4, low=5, high=70, seed=9)
        cache = ProbeCache(capacity=2)
        ptas_schedule(inst, eps=0.3, cache=cache)
        # Each artifact store is individually bounded.
        assert len(cache._rounding) <= 2
        assert len(cache._configs) <= 2
        assert len(cache._dp) <= 2
        assert len(cache._geometry) <= 2

    def test_bounded_cache_results_identical(self):
        inst = uniform_instance(24, 4, low=5, high=70, seed=9)
        unbounded = ptas_schedule(inst, eps=0.3, cache=ProbeCache())
        bounded = ptas_schedule(inst, eps=0.3, cache=ProbeCache(capacity=1))
        assert bounded.makespan == unbounded.makespan
        assert bounded.schedule.assignment == unbounded.schedule.assignment

    def test_eviction_appears_in_as_dict_only_when_nonzero(self):
        cache = ProbeCache(capacity=1)
        self._fill_geometry(cache, 3)
        spec = cache.stats.as_dict()["geometry"]
        assert spec["evictions"] == 2
        fresh = ProbeCache()
        fresh.geometry((1, 1))
        assert "evictions" not in fresh.stats.as_dict()["geometry"]

    def test_invalid_capacity_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            ProbeCache(capacity=0)
