"""Unit tests for repro.core.schedule."""

import pytest

from repro.core.instance import Instance
from repro.core.schedule import Schedule
from repro.errors import InvalidScheduleError


@pytest.fixture
def inst():
    return Instance(times=(10, 7, 5, 3), machines=2)


class TestSchedule:
    def test_loads_and_makespan(self, inst):
        s = Schedule(inst, assignment=(0, 1, 1, 0))
        assert list(s.loads()) == [13, 12]
        assert s.makespan == 13

    def test_machines_used_counts_nonempty(self, inst):
        s = Schedule(inst, assignment=(0, 0, 0, 0))
        assert s.machines_used == 1

    def test_empty_machines_are_legal(self, inst):
        s = Schedule(inst, assignment=(1, 1, 1, 1))
        assert list(s.loads()) == [0, 25]

    def test_jobs_on(self, inst):
        s = Schedule(inst, assignment=(0, 1, 0, 1))
        assert s.jobs_on(0) == (0, 2)
        assert s.jobs_on(1) == (1, 3)

    def test_jobs_on_rejects_bad_machine(self, inst):
        s = Schedule(inst, assignment=(0, 0, 0, 0))
        with pytest.raises(InvalidScheduleError):
            s.jobs_on(5)

    def test_rejects_wrong_length(self, inst):
        with pytest.raises(InvalidScheduleError, match="covers"):
            Schedule(inst, assignment=(0, 1))

    def test_rejects_machine_out_of_range(self, inst):
        with pytest.raises(InvalidScheduleError, match="job 2"):
            Schedule(inst, assignment=(0, 1, 2, 0))

    def test_rejects_negative_machine(self, inst):
        with pytest.raises(InvalidScheduleError):
            Schedule(inst, assignment=(0, -1, 0, 0))

    def test_imbalance_perfect(self):
        inst = Instance(times=(5, 5), machines=2)
        s = Schedule(inst, assignment=(0, 1))
        assert s.imbalance() == pytest.approx(1.0)

    def test_imbalance_skewed(self, inst):
        s = Schedule(inst, assignment=(0, 0, 0, 0))
        assert s.imbalance() == pytest.approx(2.0)  # 25 / 12.5


class TestFromMachineLists:
    def test_round_trip(self, inst):
        s = Schedule.from_machine_lists(inst, [[0, 3], [1, 2]])
        assert s.assignment == (0, 1, 1, 0)

    def test_fewer_lists_than_machines_ok(self, inst):
        s = Schedule.from_machine_lists(inst, [[0, 1, 2, 3]])
        assert s.machines_used == 1

    def test_rejects_too_many_lists(self, inst):
        with pytest.raises(InvalidScheduleError):
            Schedule.from_machine_lists(inst, [[0], [1], [2, 3]])

    def test_rejects_double_assignment(self, inst):
        with pytest.raises(InvalidScheduleError, match="two machines"):
            Schedule.from_machine_lists(inst, [[0, 1], [1, 2, 3]])

    def test_rejects_missing_job(self, inst):
        with pytest.raises(InvalidScheduleError, match="not assigned"):
            Schedule.from_machine_lists(inst, [[0, 1], [2]])

    def test_rejects_unknown_job(self, inst):
        with pytest.raises(InvalidScheduleError, match="out of range"):
            Schedule.from_machine_lists(inst, [[0, 9], [1, 2, 3]])
