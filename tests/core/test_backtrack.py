"""Unit tests for repro.core.backtrack (schedule extraction)."""

import numpy as np
import pytest

from repro.core.backtrack import extract_machine_configurations
from repro.core.dp_common import empty_dp_result
from repro.core.dp_reference import dp_reference
from repro.core.dp_vectorized import dp_vectorized_for
from repro.errors import InfeasibleError


class TestExtract:
    def test_configurations_sum_to_n(self):
        r = dp_reference([3, 2], [3, 7], 12)
        chosen = extract_machine_configurations(r)
        total = np.sum(chosen, axis=0)
        assert total.tolist() == [3, 2]

    def test_count_equals_opt(self):
        r = dp_reference([5], [4], 10)
        assert len(extract_machine_configurations(r)) == r.opt

    def test_every_chosen_config_is_valid(self):
        r = dp_reference([3, 3], [4, 5], 13)
        valid = set(map(tuple, r.configs.tolist()))
        for cfg in extract_machine_configurations(r):
            assert cfg in valid

    def test_each_machine_fits_budget(self, medium_probe):
        r = dp_vectorized_for(medium_probe)
        sizes = np.asarray(medium_probe.class_sizes)
        for cfg in extract_machine_configurations(r):
            assert int(np.asarray(cfg) @ sizes) <= medium_probe.target

    def test_infeasible_raises(self):
        r = dp_reference([1], [50], 10)
        with pytest.raises(InfeasibleError):
            extract_machine_configurations(r)

    def test_empty_result_yields_no_machines(self):
        assert extract_machine_configurations(empty_dp_result()) == []

    def test_randomized_consistency(self):
        rng = np.random.default_rng(5)
        for _ in range(10):
            d = int(rng.integers(1, 4))
            counts = rng.integers(1, 4, size=d).tolist()
            sizes = rng.integers(2, 9, size=d).tolist()
            target = int(rng.integers(8, 25))
            r = dp_reference(counts, sizes, target)
            if not r.feasible:
                continue
            chosen = extract_machine_configurations(r)
            assert len(chosen) == r.opt
            assert np.sum(chosen, axis=0).tolist() == counts
