"""Unit tests for repro.core.bounds (Algorithm 1, lines 2-3)."""

import pytest

from repro.core.bounds import MakespanBounds, makespan_bounds
from repro.core.instance import Instance, uniform_instance
from repro.core.baselines.exact import branch_and_bound_optimal


class TestMakespanBounds:
    def test_tiny_example(self, tiny_instance):
        b = makespan_bounds(tiny_instance)
        # total=113, m=3 -> area bound ceil(113/3)=38; max job 27.
        assert b.lower == 38
        assert b.upper == 38 + 27

    def test_max_job_dominates_lower(self):
        inst = Instance(times=(100, 1, 1), machines=3)
        assert makespan_bounds(inst).lower == 100

    def test_bounds_bracket_optimum(self):
        for seed in range(8):
            inst = uniform_instance(10, 3, low=1, high=30, seed=seed)
            b = makespan_bounds(inst)
            opt = branch_and_bound_optimal(inst).makespan
            assert b.lower <= opt <= b.upper

    def test_single_machine(self):
        inst = Instance(times=(3, 4, 5), machines=1)
        b = makespan_bounds(inst)
        assert b.lower == 12  # the exact optimum on one machine

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            MakespanBounds(lower=10, upper=5)
        with pytest.raises(ValueError):
            MakespanBounds(lower=0, upper=5)

    def test_width(self):
        assert MakespanBounds(10, 25).width == 15


class TestQuarterPoints:
    def test_tiles_interval(self):
        b = MakespanBounds(100, 200)
        segments = b.quarter_points(4)
        assert segments[0][0] == 100
        assert segments[-1][1] == 200
        for (lo1, hi1), (lo2, _) in zip(segments, segments[1:]):
            assert hi1 == lo2  # UB_p == LB_{p+1} (Alg. 3 line 3)

    def test_four_equal_segments(self):
        segments = MakespanBounds(0 + 1, 1 + 400).quarter_points(4)
        widths = [hi - lo for lo, hi in segments]
        assert max(widths) - min(widths) <= 1

    def test_narrow_interval_degenerates(self):
        segments = MakespanBounds(10, 12).quarter_points(4)
        assert segments[0][0] == 10 and segments[-1][1] == 12
        assert all(lo <= hi for lo, hi in segments)

    def test_single_segment(self):
        assert MakespanBounds(5, 9).quarter_points(1) == [(5, 9)]

    def test_rejects_zero_segments(self):
        with pytest.raises(ValueError):
            MakespanBounds(5, 9).quarter_points(0)
