"""Tests for instance/schedule file I/O."""

import pytest

from repro.core.instance import uniform_instance
from repro.core.io import (
    dumps_instance,
    dumps_schedule,
    load_instance,
    load_schedule,
    loads_instance,
    loads_schedule,
    save_instance,
    save_schedule,
)
from repro.core.schedule import Schedule
from repro.errors import InvalidInstanceError


class TestInstanceRoundTrip:
    def test_string_round_trip(self, tiny_instance):
        text = dumps_instance(tiny_instance)
        back = loads_instance(text)
        assert back.times == tiny_instance.times
        assert back.machines == tiny_instance.machines

    def test_file_round_trip(self, tmp_path, small_instance):
        path = tmp_path / "inst.txt"
        save_instance(small_instance, path)
        back = load_instance(path)
        assert back.times == small_instance.times
        assert back.name == "inst"

    def test_comment_with_name(self):
        inst = uniform_instance(5, 2, seed=1, name="demo")
        assert dumps_instance(inst).startswith("# demo")

    def test_comments_and_blank_lines_ignored(self):
        text = "\n# a comment\nmachines 2\n\ntimes 3 4 5\n# trailing\n"
        inst = loads_instance(text)
        assert inst.machines == 2 and inst.times == (3, 4, 5)


class TestScheduleRoundTrip:
    def test_string_round_trip(self, tiny_instance):
        sched = Schedule(tiny_instance, (0, 1, 2, 0, 1, 2, 2, 0))
        back = loads_schedule(dumps_schedule(sched))
        assert back.assignment == sched.assignment
        assert back.makespan == sched.makespan

    def test_file_round_trip(self, tmp_path, small_instance):
        sched = Schedule(small_instance, tuple(j % 3 for j in range(12)))
        path = tmp_path / "sched.txt"
        save_schedule(sched, path)
        assert load_schedule(path).assignment == sched.assignment

    def test_invalid_assignment_rejected_on_load(self):
        text = "machines 2\ntimes 3 4\nassignment 0 5\n"
        with pytest.raises(Exception):
            loads_schedule(text)


class TestParseErrors:
    def test_missing_machines(self):
        with pytest.raises(InvalidInstanceError, match="machines"):
            loads_instance("times 1 2 3\n")

    def test_missing_times(self):
        with pytest.raises(InvalidInstanceError, match="times"):
            loads_instance("machines 2\n")

    def test_missing_assignment(self):
        with pytest.raises(InvalidInstanceError, match="assignment"):
            loads_schedule("machines 2\ntimes 1 2\n")

    def test_duplicate_field(self):
        with pytest.raises(InvalidInstanceError, match="duplicate"):
            loads_instance("machines 2\nmachines 3\ntimes 1\n")

    def test_unknown_field_with_line_number(self):
        with pytest.raises(InvalidInstanceError, match="line 2"):
            loads_instance("machines 2\nwat 5\ntimes 1\n")

    def test_non_integer_times(self):
        with pytest.raises(InvalidInstanceError, match="integers"):
            loads_instance("machines 2\ntimes 1 x 3\n")

    def test_non_integer_machines(self):
        with pytest.raises(InvalidInstanceError, match="integer"):
            loads_instance("machines two\ntimes 1\n")
