"""Unit tests for the probe-executor layer (``repro.core.executor``).

The executors own the *time accounting* of a search round: the
sequential model sums probe times; the concurrent model applies the
work/span bound ``max(span, busy_warp_seconds / warp_slots)`` that the
GPU runner used to hard-code.  Probes themselves still run in-process —
only the charged seconds differ — so results never depend on the
executor (property-tested in ``tests/backends/test_agreement.py``).
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.dp_common import empty_dp_result
from repro.core.executor import (
    ConcurrentDeviceExecutor,
    ParallelHostExecutor,
    SequentialExecutor,
    default_executor,
)
from repro.core.dp_vectorized import dp_vectorized
from repro.core.instance import uniform_instance
from repro.engines.base import EngineRun
from repro.engines.gpu_partitioned import GpuPartitionedEngine
from repro.engines.openmp_engine import OpenMPEngine
from repro.errors import InvalidInstanceError


def make_run(simulated_s, warp_seconds=None):
    metrics = {} if warp_seconds is None else {"warp_seconds_paid": warp_seconds}
    return EngineRun(
        engine="synthetic",
        dp_result=empty_dp_result(),
        simulated_s=simulated_s,
        metrics=metrics,
    )


class TestSequentialExecutor:
    def test_charge_sums_probe_times(self):
        ex = SequentialExecutor()
        assert ex.charge([make_run(1.5), make_run(2.25)]) == pytest.approx(3.75)

    def test_empty_round_costs_nothing(self):
        assert SequentialExecutor().charge([]) == 0.0

    def test_accumulates_across_rounds(self):
        inst = uniform_instance(20, 4, low=5, high=60, seed=3)
        engine = OpenMPEngine(threads=16)
        ex = SequentialExecutor()
        from repro.core.bounds import makespan_bounds

        bounds = makespan_bounds(inst)
        ex.run_round(inst, [bounds.lower, bounds.upper], 0.3, engine)
        ex.run_round(inst, [(bounds.lower + bounds.upper) // 2], 0.3, engine)
        assert ex.rounds == 2
        assert ex.elapsed_s == pytest.approx(engine.total_simulated_s)


class TestConcurrentDeviceExecutor:
    def test_empty_round_costs_nothing(self):
        ex = ConcurrentDeviceExecutor(warp_slots=90)
        assert ex.charge([]) == 0.0
        assert ex.elapsed_s == 0.0

    def test_span_dominated_regime(self):
        # Tiny total work, one long probe: the round costs the longest
        # probe (the device sits mostly idle, but cannot finish sooner).
        runs = [make_run(5.0, warp_seconds=1.0), make_run(0.5, warp_seconds=1.0)]
        ex = ConcurrentDeviceExecutor(warp_slots=90)
        assert ex.charge(runs) == pytest.approx(5.0)

    def test_work_dominated_regime(self):
        # Busy work saturates the device: the round costs work/slots,
        # which exceeds every individual probe's span.
        runs = [make_run(1.0, warp_seconds=300.0), make_run(1.0, warp_seconds=300.0)]
        ex = ConcurrentDeviceExecutor(warp_slots=90)
        assert ex.charge(runs) == pytest.approx(600.0 / 90)
        assert ex.charge(runs) > 1.0

    def test_monotone_in_warp_slots(self):
        # More warp slots never make a round slower, and the charge
        # floors out at the span once the device stops being the
        # bottleneck.
        runs = [make_run(2.0, warp_seconds=500.0), make_run(3.0, warp_seconds=100.0)]
        charges = [
            ConcurrentDeviceExecutor(warp_slots=s).charge(runs)
            for s in (1, 2, 10, 90, 10_000)
        ]
        assert charges == sorted(charges, reverse=True)
        assert charges[-1] == pytest.approx(3.0)  # span floor

    def test_missing_metrics_treated_as_zero_work(self):
        runs = [make_run(2.0), make_run(1.0)]
        ex = ConcurrentDeviceExecutor(warp_slots=90)
        assert ex.charge(runs) == pytest.approx(2.0)

    def test_rejects_nonpositive_warp_slots(self):
        with pytest.raises(InvalidInstanceError):
            ConcurrentDeviceExecutor(warp_slots=0)

    def test_for_engine_reads_device_spec(self):
        engine = GpuPartitionedEngine(dim=6)
        ex = ConcurrentDeviceExecutor.for_engine(engine)
        assert ex.warp_slots == engine.spec.warp_slots

    def test_for_engine_rejects_hostlike_solver(self):
        with pytest.raises(InvalidInstanceError):
            ConcurrentDeviceExecutor.for_engine(dp_vectorized)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1e3),
                st.floats(min_value=0.0, max_value=1e5),
            ),
            min_size=1,
            max_size=8,
        ),
        st.integers(min_value=1, max_value=512),
    )
    def test_charge_between_span_and_sum(self, probes, warp_slots):
        # The concurrent charge is bracketed: at least the longest
        # probe, at most what a sequential device would pay — provided
        # no probe claims more busy-work than its own span allows
        # (warp_seconds <= simulated_s * warp_slots, which real
        # simulator runs satisfy by construction).
        runs = [
            make_run(s, warp_seconds=min(w, s * warp_slots)) for s, w in probes
        ]
        charge = ConcurrentDeviceExecutor(warp_slots=warp_slots).charge(runs)
        span = max(r.simulated_s for r in runs)
        total = sum(r.simulated_s for r in runs)
        assert span - 1e-9 <= charge <= total + 1e-9


class TestRunRoundAccounting:
    def test_bills_only_new_runs(self):
        # A pre-warmed engine must not be billed for its history.
        inst = uniform_instance(20, 4, low=5, high=60, seed=3)
        engine = GpuPartitionedEngine(dim=6)
        from repro.core.bounds import makespan_bounds

        bounds = makespan_bounds(inst)
        # warm-up probe outside any executor
        from repro.core.ptas import probe_target

        probe_target(inst, bounds.upper, 0.3, engine)
        warm = engine.total_simulated_s
        ex = ConcurrentDeviceExecutor.for_engine(engine)
        ex.run_round(inst, [bounds.lower, bounds.upper], 0.3, engine)
        assert ex.elapsed_s <= engine.total_simulated_s - warm + 1e-12

    def test_pure_solver_round_is_free(self):
        inst = uniform_instance(20, 4, low=5, high=60, seed=3)
        from repro.core.bounds import makespan_bounds

        bounds = makespan_bounds(inst)
        ex = SequentialExecutor()
        probes = ex.run_round(inst, [bounds.upper], 0.3, dp_vectorized)
        assert len(probes) == 1 and probes[0].accepted
        assert ex.elapsed_s == 0.0 and ex.rounds == 1


class TestParallelHostExecutor:
    def _round_targets(self, inst):
        # A quarter-split-shaped round: four distinct targets spread
        # across the instance's feasible interval.
        from repro.core.bounds import makespan_bounds

        bounds = makespan_bounds(inst)
        step = max(1, bounds.width // 5)
        return [bounds.lower + (i + 1) * step for i in range(4)]

    def test_results_bit_identical_to_sequential(self):
        inst = uniform_instance(30, 5, low=5, high=80, seed=11)
        targets = self._round_targets(inst)
        seq = SequentialExecutor().run_round(inst, targets, 0.3, dp_vectorized)
        par = ParallelHostExecutor(workers=4).run_round(
            inst, targets, 0.3, dp_vectorized
        )
        assert [p.target for p in par] == [p.target for p in seq]
        assert [p.accepted for p in par] == [p.accepted for p in seq]
        for p_par, p_seq in zip(par, seq):
            if p_seq.accepted:
                assert p_par.schedule.assignment == p_seq.schedule.assignment

    def test_fill_workers_cap_prevents_oversubscription(self):
        import os as _os

        cores = _os.cpu_count() or 1
        ex = ParallelHostExecutor(workers=8, fill_workers=cores + 1)
        # threads * fill_workers must not exceed the host's cores; a
        # fabric wider than the machine leaves one probe thread.
        assert ex.workers == 1
        assert ParallelHostExecutor(workers=8, fill_workers=1).workers == 8
        assert ParallelHostExecutor(workers=8).workers == 8

    def test_round_genuinely_overlaps(self):
        # The acceptance criterion of the real-concurrency work: a
        # four-probe round's wall time must be under the sum of its
        # probes' individual wall times — impossible without overlap.
        # A small eps makes each probe heavy enough (big tables, long
        # numpy kernels with the GIL released) that thread overhead is
        # noise against the overlap (~3x measured at this scale).
        inst = uniform_instance(30, 5, low=5, high=100, seed=23)
        ex = ParallelHostExecutor(workers=4)
        ex.run_round(inst, self._round_targets(inst), 0.16, dp_vectorized)
        assert len(ex.last_probe_wall_s) == 4
        assert ex.last_round_wall_s < sum(ex.last_probe_wall_s)

    def test_parallel_search_matches_sequential_search(self):
        from repro.core.ptas import ptas_schedule

        inst = uniform_instance(30, 5, low=5, high=80, seed=11)
        reference = ptas_schedule(inst, eps=0.3, search="quarter")
        result = ptas_schedule(
            inst, eps=0.3, search="quarter",
            executor=ParallelHostExecutor(workers=4),
        )
        assert result.final_target == reference.final_target
        assert result.makespan == reference.makespan
        assert result.schedule.assignment == reference.schedule.assignment

    def test_simulated_engines_fall_back_to_sequential_accounting(self):
        # Engines with a `runs` log are stateful accumulators: the
        # executor must take the in-order path and charge the
        # sequential sum, exactly like SequentialExecutor would.
        inst = uniform_instance(20, 4, low=5, high=60, seed=3)
        targets = self._round_targets(inst)
        par_engine = OpenMPEngine(threads=16)
        seq_engine = OpenMPEngine(threads=16)
        par = ParallelHostExecutor(workers=4)
        seq = SequentialExecutor()
        par.run_round(inst, targets, 0.3, par_engine)
        seq.run_round(inst, targets, 0.3, seq_engine)
        assert par.elapsed_s == pytest.approx(seq.elapsed_s)
        assert par.last_probe_wall_s == []  # threaded path never ran

    def test_single_target_round_stays_sequential(self):
        inst = uniform_instance(20, 4, low=5, high=60, seed=3)
        ex = ParallelHostExecutor(workers=4)
        from repro.core.bounds import makespan_bounds

        probes = ex.run_round(
            inst, [makespan_bounds(inst).upper], 0.3, dp_vectorized
        )
        assert len(probes) == 1 and probes[0].accepted
        assert ex.last_probe_wall_s == []

    def test_active_tracer_reaches_worker_threads(self):
        from repro.observability import Tracer

        inst = uniform_instance(20, 4, low=5, high=60, seed=3)
        tracer = Tracer()
        targets = self._round_targets(inst)
        with tracer.activate():
            ParallelHostExecutor(workers=4).run_round(
                inst, targets, 0.3, dp_vectorized
            )
        assert tracer.counters.get("executor.parallel_rounds") == 1
        assert len(tracer.probes) == len(targets)

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(InvalidInstanceError):
            ParallelHostExecutor(workers=0)


class TestDefaultExecutor:
    def test_device_engine_gets_concurrent(self):
        ex = default_executor(GpuPartitionedEngine(dim=6))
        assert isinstance(ex, ConcurrentDeviceExecutor)

    def test_host_engine_gets_sequential(self):
        ex = default_executor(OpenMPEngine(threads=16))
        assert isinstance(ex, SequentialExecutor)
        assert not isinstance(ex, ConcurrentDeviceExecutor)

    def test_pure_solver_gets_sequential(self):
        assert isinstance(default_executor(dp_vectorized), SequentialExecutor)


class TestParallelWorkerFailure:
    """Regression: a poisoned probe must not leak threads or mask errors."""

    class _Poisoned:
        """Solver that fails on exactly one target, succeeds elsewhere."""

        def __init__(self, poison_target):
            self.poison_target = poison_target

        def __call__(self, counts, class_sizes, target, configs=None):
            if target == self.poison_target:
                raise MemoryError(f"poisoned fill at T={target}")
            from repro.core.dp_vectorized import dp_vectorized

            return dp_vectorized(counts, class_sizes, target, configs=configs)

    def _poisoned_round(self, workers=4):
        import threading

        inst = uniform_instance(20, 4, low=5, high=60, seed=3)
        from repro.core.bounds import makespan_bounds

        bounds = makespan_bounds(inst)
        step = max(1, bounds.width // 5)
        targets = [bounds.lower + (i + 1) * step for i in range(4)]
        solver = self._Poisoned(targets[1])
        before = threading.active_count()
        ex = ParallelHostExecutor(workers=workers)
        with pytest.raises(MemoryError, match="poisoned fill"):
            ex.run_round(inst, targets, 0.3, solver)
        return before

    def test_original_exception_propagates(self):
        self._poisoned_round()

    def test_no_leaked_threads(self):
        import threading
        import time

        before = self._poisoned_round()
        # The pool context manager shut down with cancel_futures; give
        # any straggler a beat to exit, then require no thread growth.
        deadline = time.time() + 5.0
        while threading.active_count() > before and time.time() < deadline:
            time.sleep(0.01)
        assert threading.active_count() <= before

    def test_sequential_fallback_path_also_propagates(self):
        inst = uniform_instance(20, 4, low=5, high=60, seed=3)
        from repro.core.bounds import makespan_bounds

        target = makespan_bounds(inst).upper
        with pytest.raises(MemoryError):
            SequentialExecutor().run_round(
                inst, [target], 0.3, self._Poisoned(target)
            )


class TestResilienceDispatch:
    def test_executors_accept_resilience_and_stay_identical(self):
        from repro.core.ptas import ptas_schedule
        from repro.resilience import ResiliencePolicy

        inst = uniform_instance(24, 4, low=5, high=70, seed=7)
        reference = ptas_schedule(inst, eps=0.3)
        for ex in (
            SequentialExecutor(resilience=ResiliencePolicy()),
            ParallelHostExecutor(workers=4, resilience=ResiliencePolicy()),
        ):
            result = ptas_schedule(inst, eps=0.3, executor=ex)
            assert result.makespan == reference.makespan
            assert result.final_target == reference.final_target

    def test_default_executor_threads_resilience_through(self):
        from repro.resilience import ResiliencePolicy

        policy = ResiliencePolicy()
        assert default_executor(dp_vectorized, resilience=policy).resilience is policy
        assert (
            default_executor(GpuPartitionedEngine(dim=6), resilience=policy).resilience
            is policy
        )
