"""Unit tests for repro.core.configs (the set C of Equation 1)."""

import itertools

import numpy as np
import pytest

from repro.core.configs import (
    configurations_for,
    count_subconfigurations,
    enumerate_configurations,
    max_jobs_per_machine,
)
from repro.errors import DPError


def brute_force(sizes, counts, target, include_zero=False):
    """Oracle: filter the full product lattice."""
    out = []
    for s in itertools.product(*(range(c + 1) for c in counts)):
        if sum(si * wi for si, wi in zip(s, sizes)) <= target:
            if include_zero or any(s):
                out.append(s)
    return sorted(out)


class TestEnumerateConfigurations:
    def test_matches_brute_force(self):
        sizes, counts, target = [3, 5, 7], [4, 3, 2], 15
        got = enumerate_configurations(sizes, counts, target)
        assert sorted(map(tuple, got.tolist())) == brute_force(sizes, counts, target)

    def test_matches_brute_force_many_shapes(self):
        rng = np.random.default_rng(0)
        for _ in range(15):
            d = int(rng.integers(1, 5))
            sizes = rng.integers(2, 12, size=d).tolist()
            counts = rng.integers(0, 5, size=d).tolist()
            target = int(rng.integers(5, 40))
            got = enumerate_configurations(sizes, counts, target)
            assert sorted(map(tuple, got.tolist())) == brute_force(
                sizes, counts, target
            ), (sizes, counts, target)

    def test_lexicographic_order(self):
        got = enumerate_configurations([2, 3], [2, 2], 10)
        assert got.tolist() == sorted(got.tolist())

    def test_excludes_zero_by_default(self):
        got = enumerate_configurations([5], [3], 20)
        assert [0] not in got.tolist()

    def test_include_zero(self):
        got = enumerate_configurations([5], [3], 20, include_zero=True)
        assert [0] in got.tolist()

    def test_budget_prunes(self):
        got = enumerate_configurations([10], [5], 25)
        assert got.tolist() == [[1], [2]]

    def test_counts_cap(self):
        got = enumerate_configurations([1], [2], 100)
        assert got.tolist() == [[1], [2]]

    def test_zero_dimensional(self):
        got = enumerate_configurations([], [], 10)
        assert got.shape == (0, 0)

    def test_empty_when_nothing_fits(self):
        got = enumerate_configurations([50], [3], 10)
        assert got.shape == (0, 1)

    def test_contiguous_int64(self):
        got = enumerate_configurations([3, 4], [2, 2], 10)
        assert got.dtype == np.int64 and got.flags["C_CONTIGUOUS"]

    def test_rejects_mismatched_arity(self):
        with pytest.raises(DPError):
            enumerate_configurations([3, 4], [2], 10)

    def test_rejects_nonpositive_size(self):
        with pytest.raises(DPError):
            enumerate_configurations([0], [2], 10)

    def test_rejects_negative_count(self):
        with pytest.raises(DPError):
            enumerate_configurations([3], [-1], 10)

    def test_rejects_negative_target(self):
        with pytest.raises(DPError):
            enumerate_configurations([3], [1], -5)


class TestConfigurationsFor:
    def test_respects_probe_budget(self, medium_probe):
        configs = configurations_for(medium_probe)
        sizes = np.asarray(medium_probe.class_sizes)
        assert (configs @ sizes <= medium_probe.target).all()
        assert (configs <= np.asarray(medium_probe.counts)).all()

    def test_single_job_configs_present(self, medium_probe):
        # Every class size <= T admits the unit configuration.
        configs = set(map(tuple, configurations_for(medium_probe).tolist()))
        d = medium_probe.dims
        for i, size in enumerate(medium_probe.class_sizes):
            if size <= medium_probe.target:
                unit = tuple(1 if j == i else 0 for j in range(d))
                assert unit in configs


class TestHelpers:
    def test_count_subconfigurations(self):
        configs = enumerate_configurations([2, 3], [3, 3], 12)
        cell = np.array([1, 1])
        expected = sum(1 for c in configs if (c <= cell).all())
        assert count_subconfigurations(configs, cell) == expected

    def test_count_subconfigurations_empty(self):
        empty = np.zeros((0, 2), dtype=np.int64)
        assert count_subconfigurations(empty, np.array([5, 5])) == 0

    def test_max_jobs_per_machine_bounded_by_k(self, medium_probe):
        # Long jobs exceed T/k, so at most k fit in budget T.
        configs = configurations_for(medium_probe)
        assert max_jobs_per_machine(configs) <= medium_probe.k

    def test_max_jobs_empty(self):
        assert max_jobs_per_machine(np.zeros((0, 3), dtype=np.int64)) == 0
