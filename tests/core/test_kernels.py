"""Tests for the adaptive DP kernel suite (``repro.core.kernels``).

The suite's correctness contract has three layers, and each gets its
own class below:

* the **clamped decision fill** must agree with the Algorithm 2
  reference on accept/reject at every machine budget — especially the
  budgets straddling ``OPT(N)`` where the clamp is load-bearing — and
  every value it stores below the clamp must be exact;
* whatever kernel runs a probe, the **extracted schedules** must be
  bit-identical across kernels for both searches (the acceptance
  criterion of the suite: the kernels are performance choices, never
  result choices);
* the **cost model** (``choose_kernel``) and the narrow-dtype plumbing
  must make the choices and conversions they document.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import get_spec, resolve
from repro.core.dp_common import (
    UNREACHABLE,
    pick_table_dtype,
    unreachable_for,
    widen_table,
)
from repro.core.dp_reference import dp_reference
from repro.core.instance import Instance
from repro.core.kernels import (
    AutoKernel,
    DecisionKernel,
    FrontierDecisionKernel,
    SweepKernel,
    choose_kernel,
    dp_decision,
    dp_levelsweep,
    estimate_rounds,
)
from repro.core.ptas import probe_target, ptas_schedule
from repro.errors import BackendError, DPError


def probes():
    # Raw DP probes (post-rounding): small enough for the pure-Python
    # reference, varied enough to hit 1-3 dims and empty config sets.
    return st.integers(min_value=1, max_value=3).flatmap(
        lambda d: st.tuples(
            st.lists(
                st.integers(min_value=1, max_value=3),
                min_size=d, max_size=d,
            ).map(tuple),
            st.lists(
                st.integers(min_value=1, max_value=9),
                min_size=d, max_size=d, unique=True,
            ).map(tuple),
            st.integers(min_value=1, max_value=14),
        )
    )


def instances():
    return st.builds(
        Instance,
        times=st.lists(
            st.integers(min_value=1, max_value=60), min_size=4, max_size=14
        ).map(tuple),
        machines=st.integers(min_value=2, max_value=4),
    )


class TestDecisionFill:
    @given(probe=probes())
    @settings(max_examples=25, deadline=None)
    def test_accept_reject_matches_reference_at_every_budget(self, probe):
        # The decision kernel's whole contract: fits(m) agrees with the
        # exact OPT(N) for the budget it was clamped at — including the
        # threshold-straddling budgets m = OPT-1, OPT, OPT+1 where the
        # clamp boundary sits exactly on the answer.
        counts, sizes, target = probe
        ref = dp_reference(counts, sizes, target)
        opt = ref.opt
        budgets = {1, sum(counts) + 1}
        if opt < UNREACHABLE:
            budgets |= {max(0, opt - 1), opt, opt + 1}
        for m in sorted(budgets):
            result = dp_decision(counts, sizes, target, machines=m)
            assert result.clamp == m + 1
            expect_reject = opt > m  # also True when opt == UNREACHABLE
            assert result.decided_infeasible == expect_reject, (probe, m)
            if not expect_reject:
                assert result.opt == opt
                assert result.fits(m)

    @given(probe=probes())
    @settings(max_examples=25, deadline=None)
    def test_values_below_clamp_are_exact(self, probe):
        # Invariant (1)/(2) of the decision module: a clamped cell
        # holds either its exact OPT(u) (when that is under the
        # budget) or exactly the clamp (when OPT(u) exceeds it or no
        # packing reaches the cell).  Load-rejected probes skip the
        # fill entirely — their interior is all clamp by design — so
        # the cell-level claim applies to the filled tables only.
        counts, sizes, target = probe
        m = 2
        load = sum(c * s for c, s in zip(counts, sizes))
        if load > m * target:
            result = dp_decision(counts, sizes, target, machines=m)
            assert result.decided_infeasible
            return
        ref = dp_reference(counts, sizes, target)
        result = dp_decision(counts, sizes, target, machines=m)
        clamp = m + 1
        below = result.table < clamp
        assert np.array_equal(result.table[below], ref.table[below])
        assert (ref.table[~below] >= clamp).all()

    def test_fits_is_undecidable_beyond_the_clamp(self):
        result = dp_decision((3,), (4,), 9, machines=1)
        with pytest.raises(DPError, match="clamped"):
            result.fits(2)

    def test_degenerate_probes(self):
        # No long jobs: the 0-d empty result, no clamp.
        empty = dp_decision((), (), 9, machines=3)
        assert empty.table.shape == () and empty.opt == 0
        # No configuration fits even one job: immediate rejection.
        blocked = dp_decision((2, 2), (5, 7), 4, machines=3)
        assert blocked.configs.shape[0] == 0
        assert blocked.decided_infeasible

    @given(probe=probes())
    @settings(max_examples=15, deadline=None)
    def test_unbound_kernel_falls_back_to_the_exact_fill(self, probe):
        # Without a machine budget there is nothing to clamp at: the
        # kernel must produce reference-identical tables (this is what
        # lets the registry agreement tests call it directly).
        counts, sizes, target = probe
        ref = dp_reference(counts, sizes, target)
        for kernel in (DecisionKernel(), AutoKernel()):
            result = kernel(counts, sizes, target)
            assert result.clamp is None, kernel
            assert np.array_equal(result.table, ref.table), kernel


class TestProbeAndScheduleIdentity:
    KERNELS = ("decision", "sweep", "auto")

    @given(inst=instances())
    @settings(max_examples=8, deadline=None)
    def test_schedules_bit_identical_across_kernels_and_searches(self, inst):
        # The suite's acceptance criterion: for both searches, every
        # kernel — including the per-probe auto selection — must yield
        # the *identical assignment*, not merely the same makespan.
        for search in ("bisection", "quarter"):
            reference = ptas_schedule(
                inst, eps=0.3, search=search, dp_solver=resolve("vectorized")
            )
            for name in self.KERNELS:
                result = ptas_schedule(
                    inst, eps=0.3, search=search, dp_solver=resolve(name)
                )
                assert result.final_target == reference.final_target, name
                assert result.makespan == reference.makespan, name
                assert (
                    result.schedule.assignment == reference.schedule.assignment
                ), (name, search)

    @given(inst=instances())
    @settings(max_examples=8, deadline=None)
    def test_probe_outcomes_agree_at_threshold_straddling_targets(self, inst):
        # Around the converged target is where accept flips to reject —
        # exactly where a clamping bug would show. Accepted probes must
        # also extract the identical schedule.
        final = ptas_schedule(inst, eps=0.3).final_target
        for target in (max(1, final - 1), final, final + 1):
            ref = probe_target(inst, target, 0.3, resolve("vectorized"))
            for name in self.KERNELS:
                probe = probe_target(inst, target, 0.3, resolve(name))
                assert probe.accepted == ref.accepted, (name, target)
                if ref.accepted:
                    assert (
                        probe.schedule.assignment == ref.schedule.assignment
                    ), (name, target)


class TestCostModel:
    # A probe big and deep enough that the table dwarfs the small-table
    # cutoff and the load bound predicts many relaxation rounds.
    BIG = dict(counts=(20, 20, 20), class_sizes=(10, 12, 14), num_configs=30)

    def test_small_tables_always_vectorize(self):
        choice = choose_kernel((2, 2), (5, 7), 9, num_configs=4, machines=3)
        assert choice.kernel == "vectorized"
        assert "small table" in choice.reason

    def test_deep_fills_still_vectorize(self):
        # load = 720 at target 30 → ~24 *nominal* rounds, but the
        # in-place relaxation converges in a handful regardless of
        # depth (updates propagate within a round), so depth alone
        # never justifies the sweep's indexed gathers.
        choice = choose_kernel(target=30, **self.BIG)
        assert choice.kernel == "vectorized"
        assert choice.est_rounds > 6  # the naive estimate, kept as evidence

    def test_known_budget_picks_the_decision_clamp(self):
        choice = choose_kernel(target=1000, machines=5, **self.BIG)
        assert choice.kernel == "decision"
        assert choice.dtype == pick_table_dtype(6)

    def test_no_budget_shallow_fill_vectorizes(self):
        choice = choose_kernel(target=1000, **self.BIG)
        assert choice.kernel == "vectorized"

    def test_memory_budget_forces_the_sweep(self):
        choice = choose_kernel(
            target=1000, machines=5, memory_budget_bytes=100, **self.BIG
        )
        assert choice.kernel == "sweep"
        assert "memory budget" in choice.reason

    def test_fill_workers_route_large_exact_fills_to_hostpar(self):
        big = dict(counts=(40, 40, 40), class_sizes=(10, 12, 14), num_configs=30)
        choice = choose_kernel(target=2000, fill_workers=4, **big)
        assert choice.kernel == "hostpar"
        assert "fill workers" in choice.reason
        # Budget-bound probes never parallelise — the decision clamp's
        # O(1) load-bound rejects beat any pool.
        bound = choose_kernel(target=2000, machines=5, fill_workers=4, **big)
        assert bound.kernel == "decision"
        # No fabric advertised → the serial exact fill.
        assert choose_kernel(target=2000, **big).kernel == "vectorized"
        # Below the work floor the single-core relaxation wins.
        small = choose_kernel(target=30, fill_workers=4, **self.BIG)
        assert small.kernel == "vectorized"

    def test_auto_fabric_route_is_reference_identical(self, monkeypatch, medium_probe):
        import repro.core.kernels.auto as auto_mod
        from repro.parallel.fabric import BlockExecutor

        # Shrink the routing floors so the medium probe takes the
        # hostpar path; the result must still be bit-identical.
        monkeypatch.setattr(auto_mod, "HOSTPAR_MIN_WORK", 1)
        monkeypatch.setattr(auto_mod, "SMALL_TABLE_CELLS", 0)
        args = (medium_probe.counts, medium_probe.class_sizes, medium_probe.target)
        assert choose_kernel(
            *args, num_configs=1, fill_workers=2
        ).kernel == "hostpar"
        with BlockExecutor(workers=2) as fabric:
            solver = AutoKernel(fill_fabric=fabric)
            result = solver(*args)
        assert np.array_equal(result.table, dp_reference(*args).table)

    def test_estimate_rounds_is_capped_by_the_clamp(self):
        unbounded = estimate_rounds((20, 20), (10, 10), 10)
        assert unbounded == 40  # load 400 / target 10
        assert estimate_rounds((20, 20), (10, 10), 10, machines=3) == 5
        assert estimate_rounds((1,), (1,), 1000) == 1  # never below one round

    @given(probe=probes())
    @settings(max_examples=15, deadline=None)
    def test_sweep_kernel_is_reference_identical(self, probe):
        counts, sizes, target = probe
        ref = dp_reference(counts, sizes, target)
        result = SweepKernel()(counts, sizes, target)
        assert np.array_equal(result.table, ref.table)
        direct = dp_levelsweep(counts, sizes, target)
        assert np.array_equal(direct.table, ref.table)


class TestDecisionOnlyBackend:
    def test_registry_flags_the_capability(self):
        assert get_spec("frontier-decision").decision_only
        for name in ("vectorized", "decision", "sweep", "auto"):
            assert not get_spec(name).decision_only, name

    def test_feasibility_answer_matches_reference(self):
        counts, sizes, target = (3, 2), (4, 7), 11
        ref = dp_reference(counts, sizes, target)
        result = FrontierDecisionKernel()(counts, sizes, target)
        assert result.opt == ref.opt
        assert result.feasible == ref.feasible
        assert result.fits(ref.opt) and not result.fits(ref.opt - 1)
        assert not result.decided_infeasible

    def test_table_access_raises_a_named_backend_error(self):
        result = resolve("frontier-decision")((3,), (4,), 9)
        with pytest.raises(BackendError, match="decision-only"):
            result.table

    def test_cli_schedule_refuses_decision_only_backends(self, capsys):
        from repro.cli import main

        code = main(
            ["schedule", "--times", "3", "4", "5", "--machines", "2",
             "--backend", "frontier-decision"]
        )
        assert code == 2
        assert "decision-only" in capsys.readouterr().err


class TestNarrowDtypes:
    def test_pick_table_dtype_tiers(self):
        assert pick_table_dtype(10) == np.dtype(np.int16)
        assert pick_table_dtype(unreachable_for(np.dtype(np.int16))) == np.dtype(
            np.int32
        )
        assert pick_table_dtype(2**40) == np.dtype(np.int64)

    def test_bound_stays_clear_of_the_sentinel(self):
        for bound in (1, 100, 10_000, 2**20, 2**40):
            dtype = pick_table_dtype(bound)
            assert bound + 2 <= unreachable_for(dtype)

    def test_widen_table_maps_the_sentinel_and_keeps_values(self):
        dtype = np.dtype(np.int16)
        narrow = np.array([0, 3, unreachable_for(dtype)], dtype=dtype)
        wide = widen_table(narrow)
        assert wide.dtype == np.int64
        assert wide[0] == 0 and wide[1] == 3
        assert wide[2] == UNREACHABLE

    def test_widen_is_identity_on_int64(self):
        table = np.array([1, UNREACHABLE], dtype=np.int64)
        assert widen_table(table) is table

    @given(probe=probes())
    @settings(max_examples=10, deadline=None)
    def test_public_tables_stay_int64(self, probe):
        # The narrow dtypes are an internal fill detail: every public
        # DPResult is widened back to the canonical int64 table.
        counts, sizes, target = probe
        for name in ("vectorized", "sweep", "auto", "frontier"):
            assert resolve(name)(counts, sizes, target).table.dtype == np.int64
        assert dp_decision(
            counts, sizes, target, machines=2
        ).table.dtype == np.int64
