"""Tests for the two target-search strategies (Algorithm 1 vs Algorithm 3)."""

import math


from repro.core.bisection import bisection_search
from repro.core.bounds import makespan_bounds
from repro.core.instance import Instance, uniform_instance
from repro.core.quarter_split import quarter_split_search, segment_targets


class TestSegmentTargets:
    def test_four_targets_for_wide_interval(self):
        targets = segment_targets(100, 500)
        assert len(targets) == 4
        assert targets == sorted(targets)

    def test_targets_inside_interval(self):
        targets = segment_targets(10, 50)
        assert all(10 <= t < 50 for t in targets)

    def test_narrow_interval_dedupes(self):
        targets = segment_targets(10, 12)
        assert len(targets) == len(set(targets))
        assert len(targets) <= 3

    def test_unit_interval(self):
        assert segment_targets(10, 11) == [10]

    def test_segment_midpoints(self):
        # [0+100]: segments (100,125),(125,150),(150,175),(175,200).
        assert segment_targets(100, 200) == [112, 137, 162, 187]


class TestBisection:
    def test_iteration_count_is_logarithmic(self, medium_instance):
        result = bisection_search(medium_instance, 0.3)
        width = makespan_bounds(medium_instance).width
        assert result.iterations <= math.ceil(math.log2(width)) + 1

    def test_final_target_is_minimal_accepted(self, small_instance):
        result = bisection_search(small_instance, 0.3)
        # Probing one below the final target must reject (minimality).
        from repro.core.ptas import probe_target

        if result.final_target > makespan_bounds(small_instance).lower:
            below = probe_target(small_instance, result.final_target - 1, 0.3)
            assert not below.accepted

    def test_single_job_instance(self):
        # Bounds are [10, 20]; the search must still land exactly on 10.
        inst = Instance(times=(10,), machines=1)
        result = bisection_search(inst, 0.3)
        assert result.makespan == 10
        assert result.final_target == 10


class TestQuarterSplit:
    def test_matches_bisection_final_target(self):
        for seed in range(8):
            inst = uniform_instance(13, 4, low=2, high=50, seed=seed)
            b = bisection_search(inst, 0.3)
            q = quarter_split_search(inst, 0.3)
            assert q.final_target == b.final_target, seed

    def test_fewer_or_equal_iterations(self):
        for seed in range(8):
            inst = uniform_instance(13, 4, low=2, high=50, seed=seed)
            b = bisection_search(inst, 0.3)
            q = quarter_split_search(inst, 0.3)
            assert q.iterations <= b.iterations

    def test_iteration_count_is_log4ish(self, medium_instance):
        result = quarter_split_search(medium_instance, 0.3)
        width = makespan_bounds(medium_instance).width
        assert result.iterations <= math.ceil(math.log(width, 3)) + 1

    def test_more_probes_per_iteration(self, medium_instance):
        q = quarter_split_search(medium_instance, 0.3)
        # Up to 4 probes per iteration (plus at most one clean-up).
        assert len(q.probes) <= 4 * q.iterations + 1

    def test_segments_parameter(self, small_instance):
        wide = quarter_split_search(small_instance, 0.3, segments=8)
        narrow = quarter_split_search(small_instance, 0.3, segments=2)
        assert wide.final_target == narrow.final_target
        assert wide.iterations <= narrow.iterations

    def test_single_job_instance(self):
        inst = Instance(times=(10,), machines=1)
        result = quarter_split_search(inst, 0.3)
        assert result.makespan == 10
        assert result.final_target == 10


class TestIterationReduction:
    """Pin down the paper's Table VII claim quantitatively.

    The quarter split shrinks the interval to (about) a quarter per
    iteration versus bisection's half, so its iteration count should
    be roughly ``log4`` instead of ``log2`` of the interval width — an
    aggregate ~2x reduction.  The earlier tests only asserted
    ``q <= b`` per instance, which a broken 5-way interval-update rule
    degrading to bisection would still pass silently; the aggregate
    ratio below would not.
    """

    def _wide_instances(self):
        # Seeds chosen so the initial [LB, UB] interval is wide enough
        # (>= 32) for the asymptotic rate to show.
        for seed in range(12):
            inst = uniform_instance(40, 5, low=2, high=120, seed=seed)
            if makespan_bounds(inst).width >= 32:
                yield inst

    def test_aggregate_iteration_reduction_is_near_2x(self):
        total_b = total_q = 0
        for inst in self._wide_instances():
            total_b += bisection_search(inst, 0.3).iterations
            total_q += quarter_split_search(inst, 0.3).iterations
        assert total_b > 0, "no wide instances generated"
        ratio = total_b / total_q
        # log2/log4 = 2 exactly; integer rounding and clean-up probes
        # blur it, so accept anything decisively better than bisection.
        assert ratio >= 1.5, f"quarter split saved only {ratio:.2f}x iterations"

    def test_per_iteration_interval_shrink_is_quarter(self):
        # One quarter-split round over [lb, ub] must be able to leave
        # at most ~width/4 candidates: each of the 4 segments spans
        # ceil(width/4) points and the 5-way update rule confines the
        # new interval to one segment (plus its boundary point).
        lb, ub = 1000, 2000
        targets = segment_targets(lb, ub)
        assert len(targets) == 4
        width = ub - lb
        # Worst-case residual interval between adjacent probe targets
        # (or an end of the interval).
        edges = [lb] + targets + [ub]
        residual = max(b - a for a, b in zip(edges, edges[1:]))
        assert residual <= width // 4 + 1

    def test_iteration_counts_match_log_rates(self):
        for inst in self._wide_instances():
            width = makespan_bounds(inst).width
            b = bisection_search(inst, 0.3)
            q = quarter_split_search(inst, 0.3)
            assert b.iterations <= math.ceil(math.log2(width)) + 1
            # Early iterations can shrink by only ~3x when the accepted
            # boundary falls at a segment edge, hence log base 3.
            assert q.iterations <= math.ceil(math.log(width, 3)) + 1
