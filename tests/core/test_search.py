"""Tests for the two target-search strategies (Algorithm 1 vs Algorithm 3)."""

import math

import pytest

from repro.core.bisection import bisection_search
from repro.core.bounds import makespan_bounds
from repro.core.instance import Instance, uniform_instance
from repro.core.quarter_split import quarter_split_search, segment_targets


class TestSegmentTargets:
    def test_four_targets_for_wide_interval(self):
        targets = segment_targets(100, 500)
        assert len(targets) == 4
        assert targets == sorted(targets)

    def test_targets_inside_interval(self):
        targets = segment_targets(10, 50)
        assert all(10 <= t < 50 for t in targets)

    def test_narrow_interval_dedupes(self):
        targets = segment_targets(10, 12)
        assert len(targets) == len(set(targets))
        assert len(targets) <= 3

    def test_unit_interval(self):
        assert segment_targets(10, 11) == [10]

    def test_segment_midpoints(self):
        # [0+100]: segments (100,125),(125,150),(150,175),(175,200).
        assert segment_targets(100, 200) == [112, 137, 162, 187]


class TestBisection:
    def test_iteration_count_is_logarithmic(self, medium_instance):
        result = bisection_search(medium_instance, 0.3)
        width = makespan_bounds(medium_instance).width
        assert result.iterations <= math.ceil(math.log2(width)) + 1

    def test_final_target_is_minimal_accepted(self, small_instance):
        result = bisection_search(small_instance, 0.3)
        # Probing one below the final target must reject (minimality).
        from repro.core.ptas import probe_target

        if result.final_target > makespan_bounds(small_instance).lower:
            below = probe_target(small_instance, result.final_target - 1, 0.3)
            assert not below.accepted

    def test_single_job_instance(self):
        # Bounds are [10, 20]; the search must still land exactly on 10.
        inst = Instance(times=(10,), machines=1)
        result = bisection_search(inst, 0.3)
        assert result.makespan == 10
        assert result.final_target == 10


class TestQuarterSplit:
    def test_matches_bisection_final_target(self):
        for seed in range(8):
            inst = uniform_instance(13, 4, low=2, high=50, seed=seed)
            b = bisection_search(inst, 0.3)
            q = quarter_split_search(inst, 0.3)
            assert q.final_target == b.final_target, seed

    def test_fewer_or_equal_iterations(self):
        for seed in range(8):
            inst = uniform_instance(13, 4, low=2, high=50, seed=seed)
            b = bisection_search(inst, 0.3)
            q = quarter_split_search(inst, 0.3)
            assert q.iterations <= b.iterations

    def test_iteration_count_is_log4ish(self, medium_instance):
        result = quarter_split_search(medium_instance, 0.3)
        width = makespan_bounds(medium_instance).width
        assert result.iterations <= math.ceil(math.log(width, 3)) + 1

    def test_more_probes_per_iteration(self, medium_instance):
        q = quarter_split_search(medium_instance, 0.3)
        # Up to 4 probes per iteration (plus at most one clean-up).
        assert len(q.probes) <= 4 * q.iterations + 1

    def test_segments_parameter(self, small_instance):
        wide = quarter_split_search(small_instance, 0.3, segments=8)
        narrow = quarter_split_search(small_instance, 0.3, segments=2)
        assert wide.final_target == narrow.final_target
        assert wide.iterations <= narrow.iterations

    def test_single_job_instance(self):
        inst = Instance(times=(10,), machines=1)
        result = quarter_split_search(inst, 0.3)
        assert result.makespan == 10
        assert result.final_target == 10
