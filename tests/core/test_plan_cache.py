"""Tests for the cross-probe plan cache (``repro.core.probe_cache.PlanCache``)."""

import numpy as np
import pytest

from repro.core.configs import enumerate_configurations
from repro.core.probe_cache import (
    NullPlanCache,
    PlanCache,
    default_plan_cache,
)
from repro.observability import Tracer


PROBE = ((3, 2), (3, 5), 11)


class TestHitsAndMisses:
    def test_first_lookup_misses_then_hits(self):
        cache = PlanCache()
        a = cache.plan(*PROBE)
        b = cache.plan(*PROBE)
        assert a is b
        assert cache.stats.misses.get("plan") == 1
        assert cache.stats.hits.get("plan") == 1
        assert len(cache) == 1

    def test_scale_invariant_collision(self):
        # Same structure at doubled sizes and target: one plan object.
        cache = PlanCache()
        a = cache.plan((3, 2), (3, 5), 11)
        b = cache.plan((3, 2), (6, 10), 22)
        assert a is b
        assert cache.stats.hit_rate("plan") == 0.5

    def test_config_keyed_lookup_aliases_normalized(self):
        cache = PlanCache()
        configs = enumerate_configurations([3, 5], [3, 2], 11)
        by_cfg = cache.plan((3, 2), (3, 5), 11, configs=configs)
        by_norm = cache.plan((3, 2), (3, 5), 11)
        assert by_cfg is by_norm
        assert cache.stats.hits.get("plan") == 1

    def test_normalized_lookup_then_config_keyed(self):
        cache = PlanCache()
        by_norm = cache.plan(*PROBE)
        configs = enumerate_configurations([3, 5], [3, 2], 11)
        by_cfg = cache.plan((3, 2), (3, 5), 11, configs=configs)
        assert by_cfg is by_norm

    def test_different_probes_get_different_plans(self):
        cache = PlanCache()
        a = cache.plan((3, 2), (3, 5), 11)
        b = cache.plan((3, 2), (3, 5), 8)  # tighter budget, fewer configs
        assert a is not b
        assert not np.array_equal(a.configs, b.configs)

    def test_cached_plan_is_correct(self):
        cache = PlanCache()
        plan = cache.plan(*PROBE)
        expected = enumerate_configurations([3, 5], [3, 2], 11)
        assert np.array_equal(plan.configs, expected)


class TestEviction:
    def test_lru_eviction_bounds_size(self):
        cache = PlanCache(capacity=2)
        cache.plan((2,), (3,), 7)
        cache.plan((3,), (3,), 7)
        cache.plan((4,), (3,), 7)
        assert len(cache) == 2

    def test_eviction_is_least_recently_used(self):
        cache = PlanCache(capacity=2)
        a = cache.plan((2,), (3,), 7)
        cache.plan((3,), (3,), 7)
        cache.plan((2,), (3,), 7)  # refresh a
        cache.plan((4,), (3,), 7)  # evicts (3,), not a
        assert cache.plan((2,), (3,), 7) is a
        assert cache.stats.misses.get("plan") == 3

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)

    def test_clear_drops_plans_keeps_stats(self):
        cache = PlanCache()
        cache.plan(*PROBE)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.misses.get("plan") == 1
        fresh = cache.plan(*PROBE)
        assert fresh is not None
        assert cache.stats.misses.get("plan") == 2


class TestObservability:
    def test_counters_emitted(self):
        tracer = Tracer()
        cache = PlanCache()
        with tracer.activate():
            cache.plan(*PROBE)
            cache.plan(*PROBE)
        assert tracer.counters["plan.cache.miss"] == 1
        assert tracer.counters["plan.cache.hit"] == 1
        assert tracer.counters["plan.build_ms"] > 0

    def test_hit_emits_no_build_time(self):
        cache = PlanCache()
        cache.plan(*PROBE)
        tracer = Tracer()
        with tracer.activate():
            cache.plan(*PROBE)
        assert "plan.build_ms" not in tracer.counters


class TestNullPlanCache:
    def test_builds_fresh_every_time(self):
        null = NullPlanCache()
        a = null.plan(*PROBE)
        b = null.plan(*PROBE)
        assert a is not b
        assert len(null) == 0
        null.clear()  # no-op

    def test_plans_still_correct(self):
        plan = NullPlanCache().plan(*PROBE)
        expected = enumerate_configurations([3, 5], [3, 2], 11)
        assert np.array_equal(plan.configs, expected)


class TestDefaultPlanCache:
    def test_is_a_process_singleton(self):
        assert default_plan_cache() is default_plan_cache()
        assert isinstance(default_plan_cache(), PlanCache)
