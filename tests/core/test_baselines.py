"""Tests for the baseline schedulers and the exact solver."""

import pytest

from repro.core.baselines.exact import branch_and_bound_optimal
from repro.core.baselines.listsched import list_schedule
from repro.core.baselines.lpt import lpt_bound, lpt_schedule
from repro.core.baselines.multifit import ffd_pack, multifit_schedule
from repro.core.instance import Instance, adversarial_lpt_instance, uniform_instance
from repro.errors import InvalidInstanceError


class TestListSchedule:
    def test_feasible(self, small_instance):
        s = list_schedule(small_instance)
        assert len(s.assignment) == small_instance.n_jobs

    def test_greedy_on_known_example(self):
        inst = Instance(times=(3, 3, 2, 2, 2), machines=2)
        s = list_schedule(inst)
        # 3->m0, 3->m1, 2->m0 (tie by index), 2->m1, 2->m0 -> loads (7, 5).
        assert s.makespan == 7
        assert list(s.loads()) == [7, 5]

    def test_graham_bound(self):
        for seed in range(10):
            inst = uniform_instance(12, 3, low=1, high=30, seed=seed)
            opt = branch_and_bound_optimal(inst).makespan
            s = list_schedule(inst)
            assert s.makespan <= (2 - 1 / inst.machines) * opt + 1e-9

    def test_custom_order(self):
        inst = Instance(times=(1, 100), machines=2)
        s = list_schedule(inst, order=[1, 0])
        assert s.makespan == 100

    def test_rejects_non_permutation(self, small_instance):
        with pytest.raises(InvalidInstanceError):
            list_schedule(small_instance, order=[0, 0, 1])


class TestLPT:
    def test_beats_or_equals_arbitrary_order(self):
        for seed in range(8):
            inst = uniform_instance(15, 4, low=1, high=50, seed=seed)
            assert lpt_schedule(inst).makespan <= list_schedule(inst).makespan

    def test_lpt_bound_formula(self):
        assert lpt_bound(1) == pytest.approx(1.0)
        assert lpt_bound(3) == pytest.approx(4 / 3 - 1 / 9)

    def test_bound_holds_randomized(self):
        for seed in range(10):
            inst = uniform_instance(11, 3, low=1, high=40, seed=seed)
            opt = branch_and_bound_optimal(inst).makespan
            assert lpt_schedule(inst).makespan <= lpt_bound(3) * opt + 1e-9

    def test_adversarial_family_is_tight(self):
        # The classic construction: LPT achieves exactly (4m-1)/(3m) OPT.
        for m in (2, 3, 4):
            inst = adversarial_lpt_instance(m)
            opt = branch_and_bound_optimal(inst).makespan
            lpt = lpt_schedule(inst).makespan
            assert opt == 3 * m
            assert lpt == 4 * m - 1

    def test_rejects_bad_machine_count(self):
        with pytest.raises(ValueError):
            lpt_bound(0)


class TestMultifit:
    def test_feasible(self, small_instance):
        s = multifit_schedule(small_instance)
        assert len(s.assignment) == small_instance.n_jobs

    def test_beats_or_matches_lpt_usually(self):
        wins = 0
        for seed in range(12):
            inst = uniform_instance(20, 5, low=1, high=60, seed=seed)
            if multifit_schedule(inst).makespan <= lpt_schedule(inst).makespan:
                wins += 1
        assert wins >= 9

    def test_13_over_11_bound(self):
        for seed in range(8):
            inst = uniform_instance(10, 3, low=1, high=30, seed=seed)
            opt = branch_and_bound_optimal(inst).makespan
            assert multifit_schedule(inst).makespan <= 13 / 11 * opt + 1e-9

    def test_ffd_none_when_capacity_too_small(self, small_instance):
        assert ffd_pack(small_instance, 1) is None

    def test_ffd_succeeds_at_total(self, small_instance):
        assert ffd_pack(small_instance, small_instance.total_time) is not None

    def test_rejects_zero_rounds(self, small_instance):
        with pytest.raises(InvalidInstanceError):
            multifit_schedule(small_instance, rounds=0)


class TestExact:
    def test_known_optimum(self):
        inst = Instance(times=(5, 4, 3, 3, 3), machines=2)
        assert branch_and_bound_optimal(inst).makespan == 9

    def test_perfect_packing(self):
        inst = Instance(times=(4, 4, 4, 4, 4, 4), machines=3)
        assert branch_and_bound_optimal(inst).makespan == 8

    def test_never_below_bounds(self):
        from repro.core.bounds import makespan_bounds

        for seed in range(8):
            inst = uniform_instance(10, 3, low=1, high=25, seed=seed)
            opt = branch_and_bound_optimal(inst).makespan
            b = makespan_bounds(inst)
            assert b.lower <= opt <= b.upper

    def test_at_most_lpt(self):
        for seed in range(8):
            inst = uniform_instance(10, 3, low=1, high=25, seed=50 + seed)
            assert (
                branch_and_bound_optimal(inst).makespan
                <= lpt_schedule(inst).makespan
            )

    def test_node_limit_enforced(self):
        inst = uniform_instance(30, 5, low=1, high=1000, seed=0)
        with pytest.raises(InvalidInstanceError, match="node"):
            branch_and_bound_optimal(inst, node_limit=10)

    def test_reports_nodes(self, small_instance):
        result = branch_and_bound_optimal(small_instance)
        assert result.nodes_explored >= 1
