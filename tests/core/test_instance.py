"""Unit tests for repro.core.instance."""

import pytest

from repro.core.instance import (
    Instance,
    adversarial_lpt_instance,
    bimodal_instance,
    clustered_instance,
    uniform_instance,
)
from repro.errors import InvalidInstanceError


class TestInstance:
    def test_basic_properties(self, tiny_instance):
        assert tiny_instance.n_jobs == 8
        assert tiny_instance.total_time == 27 + 19 + 19 + 15 + 12 + 8 + 8 + 5
        assert tiny_instance.max_time == 27
        assert tiny_instance.machines == 3

    def test_area_bound_is_ceiling(self):
        inst = Instance(times=(5, 5, 5), machines=2)
        assert inst.area_bound == 8  # ceil(15/2)

    def test_rejects_zero_machines(self):
        with pytest.raises(InvalidInstanceError):
            Instance(times=(1, 2), machines=0)

    def test_rejects_nonpositive_times(self):
        with pytest.raises(InvalidInstanceError):
            Instance(times=(1, 0, 2), machines=1)

    def test_rejects_empty_times(self):
        with pytest.raises(InvalidInstanceError):
            Instance(times=(), machines=1)

    def test_immutable_times_tuple(self, tiny_instance):
        assert isinstance(tiny_instance.times, tuple)

    def test_times_array_is_fresh_copy(self, tiny_instance):
        arr = tiny_instance.times_array()
        arr[0] = 999
        assert tiny_instance.times[0] == 27

    def test_sorted_indices_desc_stable_ties(self):
        inst = Instance(times=(5, 9, 5, 9), machines=2)
        assert list(inst.sorted_indices_desc()) == [1, 3, 0, 2]

    def test_repr_is_compact(self):
        inst = uniform_instance(1000, 10, seed=0, name="big")
        text = repr(inst)
        assert "n=1000" in text and len(text) < 120


class TestUniformInstance:
    def test_deterministic_with_seed(self):
        a = uniform_instance(50, 5, seed=9)
        b = uniform_instance(50, 5, seed=9)
        assert a.times == b.times

    def test_range_respected(self):
        inst = uniform_instance(500, 5, low=10, high=20, seed=0)
        assert min(inst.times) >= 10 and max(inst.times) <= 20

    def test_inclusive_high(self):
        inst = uniform_instance(300, 2, low=1, high=2, seed=0)
        assert 2 in inst.times

    def test_rejects_bad_range(self):
        with pytest.raises(InvalidInstanceError):
            uniform_instance(5, 2, low=10, high=5)

    def test_rejects_zero_low(self):
        with pytest.raises(InvalidInstanceError):
            uniform_instance(5, 2, low=0, high=5)


class TestBimodalInstance:
    def test_job_count(self):
        inst = bimodal_instance(40, 4, seed=1)
        assert inst.n_jobs == 40

    def test_long_fraction(self):
        inst = bimodal_instance(
            100, 4, short_range=(1, 10), long_range=(90, 100),
            long_fraction=0.25, seed=2,
        )
        longs = sum(1 for t in inst.times if t >= 90)
        assert longs == 25

    def test_rejects_bad_fraction(self):
        with pytest.raises(InvalidInstanceError):
            bimodal_instance(10, 2, long_fraction=1.5)


class TestAdversarialLpt:
    def test_structure(self):
        inst = adversarial_lpt_instance(3)
        # 2(m-1) paired jobs + three of size m.
        assert inst.n_jobs == 2 * (2 * 3 - 1 - 3) + 3
        assert inst.times.count(3) == 3

    def test_total_work_is_multiple_of_m(self):
        # The construction packs perfectly: total = m * (3m - 1)... the
        # optimum is exactly 3m (verified against brute force in
        # test_baselines); here just sanity-check divisibility.
        for m in (2, 3, 4, 5):
            inst = adversarial_lpt_instance(m)
            assert inst.total_time % m == 0


class TestClusteredInstance:
    def test_values_near_clusters(self):
        inst = clustered_instance(60, 4, cluster_values=[20, 50], jitter=2, seed=0)
        assert all(18 <= t <= 22 or 48 <= t <= 52 for t in inst.times)

    def test_no_jitter_exact(self):
        inst = clustered_instance(30, 3, cluster_values=[10, 30], seed=1)
        assert set(inst.times) <= {10, 30}

    def test_rejects_jitter_below_one(self):
        with pytest.raises(InvalidInstanceError):
            clustered_instance(5, 2, cluster_values=[2], jitter=3)

    def test_rejects_empty_clusters(self):
        with pytest.raises(InvalidInstanceError):
            clustered_instance(5, 2, cluster_values=[])
