"""Property-based tests (hypothesis) for the core invariants.

These are the load-bearing guarantees of the reproduction:

1. the PTAS always returns a feasible schedule within ``(1+eps)`` of
   the brute-force optimum;
2. both DP solvers agree cell-for-cell on arbitrary inputs;
3. quarter split and bisection converge to the same target;
4. schedule extraction always partitions the job vector exactly.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.backtrack import extract_machine_configurations
from repro.core.baselines.exact import branch_and_bound_optimal
from repro.core.baselines.lpt import lpt_schedule
from repro.core.bisection import bisection_search
from repro.core.dp_reference import dp_reference
from repro.core.dp_vectorized import dp_vectorized
from repro.core.instance import Instance
from repro.core.ptas import ptas_schedule
from repro.core.quarter_split import quarter_split_search

# Small instances: brute force must stay cheap.
instances = st.builds(
    Instance,
    times=st.lists(st.integers(1, 40), min_size=2, max_size=10).map(tuple),
    machines=st.integers(1, 4),
)

eps_values = st.sampled_from([0.2, 0.3, 0.5, 1.0])

dp_inputs = st.integers(1, 4).flatmap(
    lambda d: st.tuples(
        st.lists(st.integers(1, 3), min_size=d, max_size=d),
        st.lists(st.integers(2, 10), min_size=d, max_size=d),
        st.integers(4, 30),
    )
)

COMMON = dict(
    deadline=None, suppress_health_check=[HealthCheck.too_slow], max_examples=40
)


@settings(**COMMON)
@given(inst=instances, eps=eps_values)
def test_ptas_within_guarantee(inst, eps):
    optimum = branch_and_bound_optimal(inst).makespan
    result = ptas_schedule(inst, eps=eps)
    assert result.makespan <= (1 + eps) * optimum + 1e-9
    # The schedule really is a schedule: all loads consistent.
    assert result.schedule.loads().sum() == inst.total_time


@settings(**COMMON)
@given(inst=instances)
def test_ptas_never_worse_than_twice_lpt_bound(inst):
    # Cross-check with an independent algorithm: LPT is a 4/3-approx,
    # PTAS(0.3) a 1.3-approx, so they can differ by at most ~1.3x.
    ptas = ptas_schedule(inst, eps=0.3).makespan
    lpt = lpt_schedule(inst).makespan
    assert ptas <= lpt * 1.3 + 1e-9
    assert lpt <= ptas * (4 / 3) + 1e-9


@settings(**COMMON)
@given(args=dp_inputs)
def test_dp_solvers_agree(args):
    counts, sizes, target = args
    a = dp_reference(counts, sizes, target)
    b = dp_vectorized(counts, sizes, target)
    assert np.array_equal(a.table, b.table)


@settings(**COMMON)
@given(args=dp_inputs)
def test_backtrack_partitions_exactly(args):
    counts, sizes, target = args
    result = dp_reference(counts, sizes, target)
    if not result.feasible:
        return
    chosen = extract_machine_configurations(result)
    assert len(chosen) == result.opt
    assert np.sum(chosen, axis=0).tolist() == counts if chosen else all(
        c == 0 for c in counts
    )


@settings(**COMMON)
@given(inst=instances, eps=eps_values)
def test_search_strategies_converge_identically(inst, eps):
    b = bisection_search(inst, eps)
    q = quarter_split_search(inst, eps)
    # Both converge to the same smallest accepted target (the quantity
    # the dual approximation argues about)...
    assert b.final_target == q.final_target
    # ...and both schedules honour that target's guarantee.  The
    # realised makespans may differ by a little: each search returns
    # its best schedule over *its own* accepted probes, and the quarter
    # split probes more targets.
    bound = (1 + eps) * b.final_target + 1e-9
    assert b.makespan <= bound
    assert q.makespan <= bound
    assert q.iterations <= b.iterations


@settings(**COMMON)
@given(inst=instances)
def test_dp_monotone_under_more_budget(inst):
    # A larger target never needs more machines for the rounded jobs.
    from repro.core.rounding import round_instance

    t1 = max(inst.max_time, inst.area_bound)
    t2 = t1 + max(1, t1 // 3)
    r1 = round_instance(inst, t1, 0.3)
    r2 = round_instance(inst, t2, 0.3)
    opt1 = dp_vectorized(r1.counts, r1.class_sizes, r1.target).opt
    opt2 = dp_vectorized(r2.counts, r2.class_sizes, r2.target).opt
    assert opt2 <= opt1
