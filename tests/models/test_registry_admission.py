"""Model capability flags and model-aware admission accounting.

Every backend spec must declare which machine models it can serve
(``BackendSpec.models``), and the admission controller must charge a
probe for *all* the fills its model runs — one table for identical and
time-restricted, one per type plus the composition lattices for
few-types.
"""

import pytest

from repro.backends import backend_names, get_spec
from repro.core.instance import KNOWN_MODELS, Instance, uniform_instance
from repro.core.rounding import round_instance
from repro.errors import MemoryBudgetExceeded
from repro.models import lift_to_few_types, model_for
from repro.resilience import AdmissionController


class TestCapabilityFlags:
    def test_every_spec_declares_known_models_only(self):
        for name in backend_names():
            spec = get_spec(name)
            assert spec.models, name
            assert set(spec.models) <= set(KNOWN_MODELS), name
            assert "identical" in spec.models, name
            for model in KNOWN_MODELS:
                assert spec.supports_model(model) == (model in spec.models)

    def test_frontier_decision_cannot_compose_few_types(self):
        # The windowed frontier sweep answers only the root cell; the
        # few-types boolean-lattice composition needs *every* cell, so
        # the spec must exclude the model.
        spec = get_spec("frontier-decision")
        assert not spec.supports_model("unrelated-few-types")
        assert spec.supports_model("identical")
        assert spec.supports_model("time-restricted")

    def test_schedule_capable_backends_serve_all_models(self):
        # Today every schedule-capable backend runs every model through
        # the shared fill machinery; narrowing is a conscious decision.
        for name in backend_names():
            spec = get_spec(name)
            if spec.decision_only:
                continue
            assert set(spec.models) == set(KNOWN_MODELS), name


class TestModelAwareAdmission:
    def rounded(self, inst, eps=0.3):
        target = inst.area_bound + inst.max_time
        return round_instance(inst, target, eps)

    def test_identical_probe_admits_through_the_historical_gate(self):
        inst = uniform_instance(14, 3, low=5, high=60, seed=21)
        rounded = self.rounded(inst)
        admission = AdmissionController(memory_budget_bytes=1 << 30)
        probe_bytes = admission.admit_probe(rounded, target=rounded.target)
        legacy = admission.admit(
            rounded.counts, value_bound=inst.machines + 1, target=rounded.target
        )
        assert probe_bytes == legacy

    def test_few_types_probe_is_charged_per_type_plus_composition(self):
        inst = Instance(
            times=uniform_instance(14, 4, low=5, high=60, seed=22).times,
            machines=4,
            model="unrelated-few-types",
            type_speeds=(1, 2, 3),
            machines_per_type=(2, 1, 1),
        )
        rounded = self.rounded(inst)
        model = model_for(inst)
        assert len(model.fills(rounded)) == 3
        admission = AdmissionController(memory_budget_bytes=1 << 30)
        total = admission.admit_probe(rounded, target=rounded.target)
        one_fill = admission.estimate(
            rounded.counts, value_bound=int(sum(rounded.counts))
        )
        assert total >= 3 * one_fill
        assert total >= 3 * one_fill + model.admission_extra_bytes(rounded)

    def test_multi_fill_refusal_names_the_fills(self):
        inst = lift_to_few_types(uniform_instance(14, 3, low=5, high=60, seed=23))
        inst = Instance(
            times=inst.times,
            machines=inst.machines,
            model=inst.model,
            type_speeds=(1, 2),
            machines_per_type=(2, 1),
        )
        rounded = self.rounded(inst)
        admission = AdmissionController(memory_budget_bytes=16)
        with pytest.raises(MemoryBudgetExceeded, match="fills"):
            admission.admit_probe(rounded, target=rounded.target)
