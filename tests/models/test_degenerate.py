"""Degenerate corners of the two new machine models.

The abstraction earns its keep at the edges: probes whose rounding
leaves *no* long jobs (a 0-dimensional DP), a single job class, the
time-restricted cap at its extremes (``B = 1`` forces one job per
machine; ``B >= n`` never binds), and genuinely heterogeneous
few-types fleets where completion times are ``ceil(load / speed)``.
"""

import numpy as np
import pytest

from repro.core.instance import Instance
from repro.core.ptas import ptas_schedule
from repro.core.schedule import Schedule
from repro.errors import InvalidInstanceError, InvalidScheduleError
from repro.models import (
    get_model,
    lift_to_few_types,
    lift_to_time_restricted,
    verify_schedule,
    with_model,
)

#: All-unit jobs: every probe rounds to zero long classes (0-d table).
ALL_SHORT = Instance(times=(1,) * 8, machines=4)

#: One long size repeated: the rounded probe has a single job class.
SINGLE_CLASS = Instance(times=(10, 10), machines=2)


class TestZeroDimensionalProbes:
    @pytest.mark.parametrize("lift", [lift_to_few_types, lift_to_time_restricted])
    def test_all_short_instance_solves_and_matches_identical(self, lift):
        base = ptas_schedule(ALL_SHORT, eps=0.5)
        lifted = ptas_schedule(lift(ALL_SHORT), eps=0.5)
        assert lifted.makespan == base.makespan == 2
        assert lifted.schedule.assignment == base.schedule.assignment
        verify_schedule(lifted.schedule)

    def test_all_short_multi_type_uses_the_fast_machines(self):
        inst = Instance(
            times=(1,) * 8,
            machines=3,
            model="unrelated-few-types",
            type_speeds=(1, 4),
            machines_per_type=(2, 1),
        )
        result = ptas_schedule(inst, eps=0.5)
        verify_schedule(result.schedule)
        # Volume 8 over capacity 6 means OPT >= 2, and greedy placement
        # achieves it; the speed-4 machine absorbs load 4+ in time <= 2.
        assert result.makespan == 2


class TestSingleClass:
    @pytest.mark.parametrize("lift", [lift_to_few_types, lift_to_time_restricted])
    def test_single_class_lift_is_exact(self, lift):
        base = ptas_schedule(SINGLE_CLASS, eps=0.4)
        lifted = ptas_schedule(lift(SINGLE_CLASS), eps=0.4)
        assert lifted.makespan == base.makespan == 10
        assert lifted.schedule.assignment == base.schedule.assignment


class TestTimeRestrictedCap:
    def test_b_equal_one_forces_one_job_per_machine(self):
        inst = Instance(
            times=(7, 4, 3),
            machines=3,
            model="time-restricted",
            max_jobs_per_machine=1,
        )
        result = ptas_schedule(inst, eps=0.3)
        verify_schedule(result.schedule, target=result.makespan)
        assert result.makespan == 7  # the single long job is the optimum
        counts = np.bincount(
            np.asarray(result.schedule.assignment), minlength=inst.machines
        )
        assert counts.max() <= 1

    def test_binding_cap_is_respected_end_to_end(self):
        inst = Instance(
            times=(9, 8, 7, 6, 5, 4),
            machines=2,
            model="time-restricted",
            max_jobs_per_machine=3,
        )
        result = ptas_schedule(inst, eps=0.3)
        verify_schedule(result.schedule)
        counts = np.bincount(
            np.asarray(result.schedule.assignment), minlength=inst.machines
        )
        assert counts.max() <= 3

    def test_check_schedule_rejects_cap_violation(self):
        inst = Instance(
            times=(2, 2, 2, 2),
            machines=2,
            model="time-restricted",
            max_jobs_per_machine=3,
        )
        bad = Schedule.from_machine_lists(inst, [[0, 1, 2, 3], []])
        with pytest.raises(InvalidScheduleError, match="caps at 3"):
            verify_schedule(bad)

    def test_infeasible_cap_rejected_at_construction(self):
        with pytest.raises(InvalidInstanceError):
            Instance(
                times=(1, 1, 1, 1, 1),
                machines=2,
                model="time-restricted",
                max_jobs_per_machine=2,  # 5 jobs > 2 * 2 slots
            )


class TestFewTypesCompletions:
    def test_completion_is_ceil_load_over_speed(self):
        inst = Instance(
            times=(12, 9, 7, 5, 4, 3),
            machines=3,
            model="unrelated-few-types",
            type_speeds=(1, 3),
            machines_per_type=(2, 1),
        )
        result = ptas_schedule(inst, eps=0.3)
        verify_schedule(result.schedule, target=result.makespan)
        loads = result.schedule.loads()
        speeds = np.array([1, 1, 3])
        expected = -(-loads.astype(np.int64) // speeds)
        assert np.array_equal(result.schedule.completion_times(), expected)
        assert result.makespan == int(expected.max())

    def test_fleet_shape_must_cover_every_machine(self):
        with pytest.raises(InvalidInstanceError):
            Instance(
                times=(3, 2),
                machines=3,
                model="unrelated-few-types",
                type_speeds=(1, 2),
                machines_per_type=(1, 1),  # sums to 2, not 3
            )


class TestWithModelFrontEnd:
    def test_identical_rejects_model_parameters(self):
        inst = Instance(times=(3, 2, 1), machines=2)
        with pytest.raises(InvalidInstanceError, match="no model parameters"):
            with_model(inst, "identical", type_speeds=(1, 2))

    def test_cross_model_parameters_rejected(self):
        inst = Instance(times=(3, 2, 1), machines=2)
        with pytest.raises(InvalidInstanceError, match="time-restricted"):
            with_model(inst, "unrelated-few-types", max_jobs_per_machine=2)
        with pytest.raises(InvalidInstanceError, match="unrelated-few-types"):
            with_model(inst, "time-restricted", type_speeds=(1, 2))

    def test_unknown_model_rejected(self):
        inst = Instance(times=(3, 2, 1), machines=2)
        with pytest.raises(InvalidInstanceError, match="unknown model"):
            with_model(inst, "related-machines")

    def test_defaults_give_the_non_binding_lifts(self):
        inst = Instance(times=(5, 4, 3), machines=2)
        few = with_model(inst, "unrelated-few-types")
        assert few.type_speeds == (1,)
        assert few.machines_per_type == (2,)
        capped = with_model(inst, "time-restricted")
        assert capped.max_jobs_per_machine == inst.n_jobs
        assert get_model("identical").name == "identical"
