"""The service layer under the three machine models.

Covers the satellites of the model refactor that live above the core:
the daemon's coalescing key separates models structurally, degraded
mode serves each model its *own* certified baseline (the LPT/MULTIFIT
ratios are identical-machines theorems and must never be quoted for
the other models), the pipeline refuses backends whose spec does not
list the request's model, and batch/serve runs carry mixed-model
workloads end to end with feasible schedules.
"""

import asyncio

import pytest

from repro.core.instance import Instance, uniform_instance
from repro.core.probe_cache import normalized_request_key
from repro.errors import BackendError
from repro.models import lift_to_few_types, lift_to_time_restricted, with_model
from repro.resilience import FaultInjector
from repro.service import SchedulingService
from repro.service.batch import BatchScheduler
from repro.service.loadgen import LoadProfile, generate_arrivals


def fleet():
    base = uniform_instance(16, 3, low=5, high=60, seed=71)
    return [
        base,
        with_model(
            uniform_instance(14, 3, low=5, high=60, seed=72),
            "unrelated-few-types",
            type_speeds=(1, 2),
            machines_per_type=(2, 1),
        ),
        with_model(
            uniform_instance(12, 3, low=5, high=60, seed=73),
            "time-restricted",
            max_jobs_per_machine=5,
        ),
    ]


class TestCoalescingKey:
    def test_model_leads_the_key_and_separates_equal_job_arrays(self):
        inst = uniform_instance(12, 3, low=5, high=40, seed=9)
        keys = {
            normalized_request_key(i, 0.3, "quarter", "auto")
            for i in (inst, lift_to_few_types(inst), lift_to_time_restricted(inst))
        }
        assert len(keys) == 3
        for key in keys:
            assert key[0] in {
                "identical",
                "unrelated-few-types",
                "time-restricted",
            }

    def test_daemon_never_coalesces_across_models(self):
        inst = uniform_instance(12, 3, low=5, high=40, seed=10)
        lifted = lift_to_few_types(inst)

        async def scenario():
            async with SchedulingService(workers=1) as svc:
                a = await svc.submit(inst, eps=0.3, name="identical")
                b = await svc.submit(lifted, eps=0.3, name="lifted")
                results = [await a.result(), await b.result()]
            return svc, [a, b], results

        svc, handles, results = asyncio.run(scenario())
        assert not svc.metrics.get("coalesced")
        assert [h.coalesced for h in handles] == [False, False]
        # The 1-type lift is search-identical, so the *answers* agree
        # even though the runs were (correctly) kept separate.
        assert results[0].makespan == results[1].makespan


class TestDegradedModeIsModelAware:
    #: poisons every member of the fallback chain, every request.
    POISON = dict(
        seed=1,
        rate=1.0,
        kinds=("oom",),
        sites=("dp.auto", "dp.sweep", "dp.vectorized"),
        max_failures=10**9,
    )

    def test_each_model_degrades_to_its_own_baseline(self):
        scheduler = BatchScheduler(
            backend="fallback", workers=2, faults=FaultInjector(**self.POISON)
        )
        report = scheduler.run(fleet())
        assert len(report.results) == 3
        by_model = {
            r.request.instance.model: r for r in report.results
        }
        assert all(r.degraded for r in report.results)
        assert by_model["identical"].degraded_by in ("lpt", "multifit")
        assert by_model["unrelated-few-types"].degraded_by == "speed-list"
        assert by_model["time-restricted"].degraded_by == "capped-lpt"
        for r in report.results:
            from repro.models import verify_schedule

            verify_schedule(r.degraded_schedule)
            assert r.degraded_bound >= 1.0


class TestPipelineModelGate:
    def test_unsupported_model_is_refused_loudly(self, monkeypatch):
        import dataclasses

        from repro.backends import get_spec
        from repro.service import pipeline as pipeline_mod
        from repro.service.batch import BatchRequest

        narrowed = dataclasses.replace(get_spec("auto"), models=("identical",))
        monkeypatch.setattr(
            pipeline_mod, "require_schedule_capable", lambda name: narrowed
        )
        pipe = pipeline_mod.ProbePipeline(backend="auto")
        request = BatchRequest(
            instance=lift_to_few_types(uniform_instance(8, 2, seed=3)),
            name="r0",
        )
        with pytest.raises(BackendError, match="does not support"):
            pipe.run(request)

    def test_decision_only_backend_cannot_serve_any_model(self):
        from repro.service.pipeline import require_schedule_capable

        with pytest.raises(BackendError, match="decision-only"):
            require_schedule_capable("frontier-decision")


class TestMixedModelBatch:
    def test_batch_carries_all_three_models_end_to_end(self):
        from repro.models import verify_schedule

        report = BatchScheduler(workers=2).run(fleet())
        assert len(report.results) == 3
        for r in report.results:
            assert not r.degraded, r.error
            verify_schedule(r.result.schedule)

    def test_batch_results_independent_of_worker_count(self):
        instances = fleet()
        one = BatchScheduler(workers=1).run(instances)
        many = BatchScheduler(workers=3).run(instances)
        for a, b in zip(one.results, many.results):
            assert a.result.makespan == b.result.makespan
            assert a.result.schedule.assignment == b.result.schedule.assignment


class TestModelledLoadProfiles:
    def test_generated_arrivals_declare_the_profile_model(self):
        profile = LoadProfile(
            requests=6,
            jobs=10,
            machines=3,
            seed=5,
            model="time-restricted",
            max_jobs_per_machine=6,
        )
        for arrival in generate_arrivals(profile):
            assert arrival.instance.model == "time-restricted"
            assert arrival.instance.max_jobs_per_machine == 6

    def test_daemon_serves_a_modelled_workload(self):
        inst = with_model(
            uniform_instance(12, 3, low=5, high=40, seed=11),
            "unrelated-few-types",
            type_speeds=(1, 2),
            machines_per_type=(2, 1),
        )

        async def scenario():
            async with SchedulingService(workers=2) as svc:
                handle = await svc.submit(inst, eps=0.3, name="typed")
                bound = await handle.bound
                refined = await handle.result()
            return bound, refined

        bound, refined = asyncio.run(scenario())
        from repro.models import verify_schedule

        # Bound-first contract under the model: the immediate answer is
        # the model's own baseline, never worse than the refinement.
        assert bound.makespan >= refined.makespan
        verify_schedule(refined.result.schedule)
