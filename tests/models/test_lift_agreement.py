"""Cross-model agreement: the lifts are bit-identical to identical machines.

The machine-model refactor's acceptance criterion (satellite of the
``repro.models`` abstraction): an identical-machines instance lifted to
a 1-type unit-speed ``unrelated-few-types`` fleet — or to
``time-restricted`` with a non-binding cap ``B >= n`` — must run the
*same search*: the same probed targets, bit-identical DP tables and
configuration sets probe for probe, the same final target, the same
makespan, and the same assignment.  Three alignments make this an
equality rather than an approximation, and these properties pin each
down:

* both lifted models' bisection intervals reduce to the identical
  formula (``max(area, max)`` .. ``area + max``) when the lift is
  non-binding, so the probed-target sequences coincide;
* the few-types 1-type composition and short placement are step-for-step
  the identical model's backtrack and heap placement;
* the time-restricted capped-LPT fallback accepts only at
  ``makespan <= T`` (no slack), so it can never flip a probe the
  identical model rejects while the cap is non-binding.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import backend_names, get_spec, resolve
from repro.core.instance import Instance
from repro.core.ptas import ptas_schedule
from repro.models import lift_to_few_types, lift_to_time_restricted


def instances():
    return st.builds(
        Instance,
        times=st.lists(
            st.integers(min_value=1, max_value=60), min_size=4, max_size=14
        ).map(tuple),
        machines=st.integers(min_value=2, max_value=4),
    )


EPS = st.sampled_from([0.2, 0.3, 0.5])
SEARCHES = st.sampled_from(["bisection", "quarter"])
LIFTS = (lift_to_few_types, lift_to_time_restricted)


def _resolve(name):
    # Tiny property instances trip the GPU engines' device-memory
    # check long before the tables are interesting; disable it.
    if name.startswith("gpu"):
        return resolve(name, check_memory=False)
    return resolve(name)


@given(inst=instances(), eps=EPS, search=SEARCHES)
@settings(max_examples=20, deadline=None)
def test_lifts_are_search_identical_on_exact_solvers(inst, eps, search):
    # Probe-for-probe bit-identity: same target sequence, same dense
    # tables, same configuration sets — not merely the same answer.
    # Exact solvers only: decision-capable backends legitimately clamp
    # the identical fill (machine_clamp=m) where the lifted few-types
    # fill demands an exact table, so their *tables* differ by design
    # (the results still agree; the property below covers them).
    for name in ("vectorized", "reference"):
        base = ptas_schedule(inst, eps=eps, search=search, dp_solver=resolve(name))
        for lift in LIFTS:
            lifted = ptas_schedule(
                lift(inst), eps=eps, search=search, dp_solver=resolve(name)
            )
            assert lifted.final_target == base.final_target, (name, lift.__name__)
            assert lifted.makespan == base.makespan, (name, lift.__name__)
            assert (
                lifted.schedule.assignment == base.schedule.assignment
            ), (name, lift.__name__)
            assert len(lifted.probes) == len(base.probes)
            for pl, pb in zip(lifted.probes, base.probes):
                assert pl.target == pb.target
                assert pl.machines_needed == pb.machines_needed
                assert pl.dp_result.table.dtype == pb.dp_result.table.dtype
                assert np.array_equal(pl.dp_result.table, pb.dp_result.table)
                assert np.array_equal(pl.dp_result.configs, pb.dp_result.configs)


@given(inst=instances(), eps=EPS)
@settings(max_examples=5, deadline=None)
def test_lifts_agree_on_every_registry_backend(inst, eps):
    # The whole registry: every schedule-capable backend that supports
    # the lifted model must give the lifted instance the identical
    # instance's makespan, final target, and assignment.
    for name in backend_names():
        spec = get_spec(name)
        if spec.decision_only:
            continue  # cannot produce schedules at all (tested elsewhere)
        base = ptas_schedule(inst, eps=eps, dp_solver=_resolve(name))
        for lift in LIFTS:
            lifted_inst = lift(inst)
            if not spec.supports_model(lifted_inst.model):
                continue
            lifted = ptas_schedule(lifted_inst, eps=eps, dp_solver=_resolve(name))
            assert lifted.makespan == base.makespan, (name, lift.__name__)
            assert lifted.final_target == base.final_target, (name, lift.__name__)
            assert (
                lifted.schedule.assignment == base.schedule.assignment
            ), (name, lift.__name__)


@given(inst=instances(), eps=EPS, search=SEARCHES)
@settings(max_examples=15, deadline=None)
def test_lifted_schedules_verify_under_their_own_model(inst, eps, search):
    from repro.models import verify_schedule

    for lift in LIFTS:
        result = ptas_schedule(lift(inst), eps=eps, search=search)
        verify_schedule(result.schedule)
        # The identical-machines (1 + eps) guarantee survives the lift.
        assert result.makespan <= (1 + eps) * result.final_target + 1e-9
