"""Unit tests for repro.engines.base (the shared group-fill kernel)."""

import numpy as np
import pytest

from repro.core.configs import enumerate_configurations
from repro.core.dp_reference import dp_reference
from repro.dptable.antidiagonal import wavefront
from repro.dptable.table import TableGeometry
from repro.engines.base import EngineRun, degenerate_run, fill_by_groups
from repro.errors import DPError


@pytest.fixture
def setup():
    counts, sizes, target = [3, 2, 2], [3, 5, 7], 14
    geometry = TableGeometry.from_counts(counts)
    configs = enumerate_configurations(sizes, counts, target)
    oracle = dp_reference(counts, sizes, target, configs).table
    return geometry, configs, oracle


class TestFillByGroups:
    def test_wavefront_matches_oracle(self, setup):
        geometry, configs, oracle = setup
        table = fill_by_groups(geometry, configs, wavefront(geometry))
        assert np.array_equal(table.reshape(geometry.shape), oracle)

    def test_flat_order_matches_oracle(self, setup):
        # Row-major order is also topological; one group per cell.
        geometry, configs, oracle = setup
        groups = [np.array([i]) for i in range(geometry.size)]
        table = fill_by_groups(geometry, configs, groups)
        assert np.array_equal(table.reshape(geometry.shape), oracle)

    def test_single_group_whole_table_rejected(self, setup):
        # All cells at once violates dependencies (cells read peers).
        geometry, configs, _ = setup
        with pytest.raises(DPError, match="dependency"):
            fill_by_groups(geometry, configs, [np.arange(geometry.size)])

    def test_reversed_order_rejected(self, setup):
        geometry, configs, _ = setup
        groups = [np.array([i]) for i in range(geometry.size - 1, -1, -1)]
        with pytest.raises(DPError, match="dependency"):
            fill_by_groups(geometry, configs, groups)

    def test_incomplete_coverage_rejected(self, setup):
        geometry, configs, _ = setup
        with pytest.raises(DPError, match="tile"):
            fill_by_groups(geometry, configs, [np.array([0, 1])])

    def test_empty_groups_skipped(self, setup):
        geometry, configs, oracle = setup
        groups = []
        for g in wavefront(geometry):
            groups.append(np.array([], dtype=np.int64))
            groups.append(g)
        table = fill_by_groups(geometry, configs, groups)
        assert np.array_equal(table.reshape(geometry.shape), oracle)

    def test_no_configs(self):
        geometry = TableGeometry((3,))
        empty = np.zeros((0, 1), dtype=np.int64)
        table = fill_by_groups(geometry, empty, wavefront(geometry))
        assert table[0] == 0 and (table[1:] > 1 << 40).all()


class TestEngineRun:
    def test_table_size(self, setup):
        geometry, configs, oracle = setup
        from repro.core.dp_common import DPResult

        run = EngineRun(
            engine="x",
            dp_result=DPResult(table=oracle, configs=configs),
            simulated_s=1.0,
        )
        assert run.table_size == geometry.size

    def test_degenerate_run(self):
        run = degenerate_run("test")
        assert run.simulated_s == 0.0
        assert run.dp_result.opt == 0
        assert run.table_size == 1
