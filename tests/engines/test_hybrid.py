"""Tests for the hybrid CPU/GPU routing engine."""

import numpy as np
import pytest

from repro.analysis.synthetic import synthetic_probe
from repro.analysis.workloads import harvest_tables
from repro.core.dp_vectorized import dp_vectorized
from repro.engines.costmodel import WorkProfile
from repro.engines.gpu_partitioned import GpuPartitionedEngine
from repro.engines.hybrid import HybridEngine
from repro.engines.openmp_engine import OpenMPEngine


class TestRouting:
    def test_small_probe_goes_to_cpu(self):
        probe = synthetic_probe((3, 3, 2))
        engine = HybridEngine()
        engine.run(probe.counts, probe.class_sizes, probe.target)
        assert engine.choices == ["cpu"]

    def test_large_probe_goes_to_gpu(self):
        probe = synthetic_probe((6, 6, 6, 5, 5, 4))  # 108k cells
        engine = HybridEngine()
        engine.run(probe.counts, probe.class_sizes, probe.target)
        assert engine.choices == ["gpu"]

    def test_values_correct_either_way(self):
        for shape in [(3, 3, 2), (6, 6, 6, 5)]:
            probe = synthetic_probe(shape)
            engine = HybridEngine()
            run = engine.run(probe.counts, probe.class_sizes, probe.target)
            ref = dp_vectorized(probe.counts, probe.class_sizes, probe.target)
            assert np.array_equal(run.dp_result.table, ref.table)

    def test_degenerate(self):
        engine = HybridEngine()
        run = engine.run([], [], 10)
        assert run.dp_result.opt == 0
        assert engine.choices == []

    def test_simulated_time_accumulates_across_devices(self):
        engine = HybridEngine()
        small = synthetic_probe((3, 3, 2))
        large = synthetic_probe((6, 6, 6, 5))
        engine.run(small.counts, small.class_sizes, small.target)
        engine.run(large.counts, large.class_sizes, large.target)
        assert engine.total_simulated_s > 0
        assert len(engine.runs) == 2


@pytest.mark.slow
class TestPredictorQuality:
    def test_choices_mostly_match_simulation(self):
        tables = harvest_tables(
            [(300, 8_000), (8_001, 60_000)], per_group=3, seed=5, pool_size=2000
        )
        good = 0
        regrets = []
        for t in tables:
            cpu = OpenMPEngine(28).run(t.counts, t.class_sizes, t.target).simulated_s
            gpu = GpuPartitionedEngine(dim=6).run(
                t.counts, t.class_sizes, t.target
            ).simulated_s
            h = HybridEngine(dim=6)
            profile = WorkProfile(t.counts, t.class_sizes, t.target)
            choice = (
                "cpu" if h.predict_cpu_s(profile) <= h.predict_gpu_s(profile) else "gpu"
            )
            actual = "cpu" if cpu <= gpu else "gpu"
            good += choice == actual
            regrets.append((cpu if choice == "cpu" else gpu) / min(cpu, gpu))
        # Routing must be right most of the time and never catastrophic.
        assert good >= len(tables) - 2
        assert max(regrets) < 3.0

    def test_hybrid_never_much_worse_than_best_single(self):
        tables = harvest_tables(
            [(300, 8_000), (60_001, 160_000)], per_group=2, seed=6, pool_size=2500
        )
        hybrid_total = 0.0
        best_total = 0.0
        for t in tables:
            args = (t.counts, t.class_sizes, t.target)
            cpu = OpenMPEngine(28).run(*args).simulated_s
            gpu = GpuPartitionedEngine(dim=6).run(*args).simulated_s
            engine = HybridEngine(dim=6)
            hybrid_total += engine.run(*args).simulated_s
            best_total += min(cpu, gpu)
        assert hybrid_total <= 1.5 * best_total

    def test_hybrid_beats_each_single_engine_on_mixed_workload(self):
        # A workload spanning both regimes: the router must beat
        # committing to either device for everything.
        tables = harvest_tables(
            [(300, 6_000), (60_001, 160_000)], per_group=2, seed=8, pool_size=2500
        )
        cpu_total = gpu_total = hybrid_total = 0.0
        for t in tables:
            args = (t.counts, t.class_sizes, t.target)
            cpu_total += OpenMPEngine(28).run(*args).simulated_s
            gpu_total += GpuPartitionedEngine(dim=6).run(*args).simulated_s
            hybrid_total += HybridEngine(dim=6).run(*args).simulated_s
        assert hybrid_total < cpu_total
        assert hybrid_total < gpu_total


class TestAsDPSolver:
    def test_drives_the_ptas(self, small_instance):
        from repro.core.ptas import ptas_schedule

        engine = HybridEngine()
        result = ptas_schedule(small_instance, eps=0.3, dp_solver=engine)
        assert result.makespan > 0
        assert len(engine.choices) == len(result.probes)
