"""Unit tests for repro.engines.costmodel."""

import numpy as np
import pytest

from repro.core.configs import enumerate_configurations
from repro.engines.costmodel import CostConstants, DEFAULT_COSTS, WorkProfile
from repro.errors import CalibrationError, DPError


class TestCostConstants:
    def test_defaults_positive(self):
        c = DEFAULT_COSTS
        assert c.candidate_ops > 0 and c.scan_ops_per_element > 0

    def test_rejects_nonpositive(self):
        with pytest.raises(CalibrationError):
            CostConstants(candidate_ops=0)

    def test_with_overrides(self):
        c = DEFAULT_COSTS.with_overrides(candidate_ops=2.5)
        assert c.candidate_ops == 2.5
        assert c.setopt_ops == DEFAULT_COSTS.setopt_ops
        assert DEFAULT_COSTS.candidate_ops != 2.5  # original untouched


class TestWorkProfile:
    @pytest.fixture
    def profile(self):
        return WorkProfile([3, 2], [3, 7], 12)

    def test_candidates_formula(self, profile):
        # candidates(v) = prod(v_i + 1) for every cell.
        cells = profile.geometry.all_cells()
        expected = [(a + 1) * (b + 1) for a, b in cells.tolist()]
        assert profile.candidates.tolist() == expected

    def test_candidates_at_origin_is_one(self, profile):
        assert profile.candidates[0] == 1

    def test_total_candidates_closed_form(self, profile):
        # sum over the lattice = prod_i (e_i (e_i + 1) / 2).
        assert profile.total_candidates == (4 * 5 // 2) * (3 * 4 // 2)

    def test_valid_counts_match_bruteforce(self, profile):
        cells = profile.geometry.all_cells()
        for flat, cell in enumerate(cells):
            expected = int(
                np.count_nonzero((profile.configs <= cell).all(axis=1))
            )
            assert profile.valid[flat] == expected

    def test_valid_zero_at_origin(self, profile):
        assert profile.valid[0] == 0  # configs are non-zero

    def test_levels(self, profile):
        assert profile.levels.tolist() == profile.geometry.all_cells().sum(axis=1).tolist()

    def test_thread_ops_positive_off_origin(self, profile):
        ops = profile.thread_ops(DEFAULT_COSTS)
        assert (ops[1:] > 0).all()

    def test_scan_elements_scalar_scope(self, profile):
        scan = profile.scan_elements(100)
        assert scan.tolist() == (profile.valid * 50.0).tolist()

    def test_scan_elements_vector_scope(self, profile):
        scope = np.full(profile.geometry.size, 10.0)
        scan = profile.scan_elements(scope)
        assert scan.tolist() == (profile.valid * 5.0).tolist()

    def test_shared_configs(self):
        configs = enumerate_configurations([3, 7], [3, 2], 12)
        p = WorkProfile([3, 2], [3, 7], 12, configs)
        assert p.configs is configs

    def test_rejects_arity_mismatch(self):
        with pytest.raises(DPError):
            WorkProfile([1, 2], [3], 10)
