"""Engine tests: value agreement, cost-shape properties, metrics.

The central integration guarantee: every engine — serial, OpenMP, naive
GPU, partitioned GPU at any ``dim`` — produces the *identical* DP-table
(they all implement Equation 1, only the schedule and the hardware
model differ).
"""

import numpy as np
import pytest

from repro.core.dp_reference import dp_reference
from repro.engines.gpu_naive import GpuNaiveEngine
from repro.engines.gpu_partitioned import GpuPartitionedEngine
from repro.engines.openmp_engine import OpenMPEngine
from repro.engines.sequential import SequentialEngine
from repro.errors import SimulationError

PROBE = ([3, 2, 2, 1], [3, 5, 7, 9], 16)


def all_engines():
    return [
        SequentialEngine(),
        OpenMPEngine(threads=16),
        OpenMPEngine(threads=28),
        GpuNaiveEngine(check_memory=False),
        GpuPartitionedEngine(dim=3),
        GpuPartitionedEngine(dim=5),
        GpuPartitionedEngine(dim=6),
        GpuPartitionedEngine(dim=9),
    ]


class TestValueAgreement:
    def test_all_engines_match_reference(self):
        counts, sizes, target = PROBE
        oracle = dp_reference(counts, sizes, target).table
        for engine in all_engines():
            run = engine.run(counts, sizes, target)
            assert np.array_equal(run.dp_result.table, oracle), engine.name

    def test_agreement_on_probe_fixture(self, medium_probe):
        oracle = None
        for engine in all_engines():
            run = engine.run(
                medium_probe.counts, medium_probe.class_sizes, medium_probe.target
            )
            if oracle is None:
                oracle = run.dp_result.table
            else:
                assert np.array_equal(run.dp_result.table, oracle), engine.name

    def test_degenerate_no_long_jobs(self):
        for engine in all_engines():
            run = engine.run([], [], 10)
            assert run.dp_result.opt == 0
            assert run.simulated_s == 0.0

    def test_fabric_backed_fills_change_nothing_observable(self, medium_probe):
        # An injected fill fabric swaps *how* the real table is
        # computed; the table AND the simulated accounting must be
        # untouched (the cost model interprets the plan, not the fill).
        from repro.engines.hybrid import HybridEngine
        from repro.parallel.fabric import BlockExecutor

        args = (medium_probe.counts, medium_probe.class_sizes, medium_probe.target)
        with BlockExecutor(workers=2, min_parallel_cells=1) as fabric:
            for plain, fabricated in [
                (OpenMPEngine(threads=16), OpenMPEngine(threads=16, fill_fabric=fabric)),
                (GpuPartitionedEngine(dim=3), GpuPartitionedEngine(dim=3, fill_fabric=fabric)),
                (HybridEngine(), HybridEngine(fill_fabric=fabric)),
            ]:
                base = plain.run(*args)
                run = fabricated.run(*args)
                assert np.array_equal(
                    run.dp_result.table, base.dp_result.table
                ), plain.name
                assert run.simulated_s == base.simulated_s, plain.name


class TestDPSolverProtocol:
    def test_engine_as_dp_solver(self, small_instance):
        from repro.core.ptas import ptas_schedule
        from repro.core.dp_vectorized import dp_vectorized

        engine = GpuPartitionedEngine(dim=4)
        via_engine = ptas_schedule(small_instance, eps=0.3, dp_solver=engine)
        via_default = ptas_schedule(small_instance, eps=0.3, dp_solver=dp_vectorized)
        assert via_engine.makespan == via_default.makespan
        assert engine.total_simulated_s > 0.0

    def test_runs_accumulate(self):
        counts, sizes, target = PROBE
        engine = OpenMPEngine(threads=16)
        engine.run(counts, sizes, target)
        engine.run(counts, sizes, target)
        assert len(engine.runs) == 2
        assert engine.total_simulated_s == pytest.approx(
            sum(r.simulated_s for r in engine.runs)
        )


class TestCostShapes:
    """The calibrated relationships the reproduction relies on."""

    def test_serial_slower_than_openmp(self, medium_probe):
        # On a table big enough to amortize the per-level fork-join
        # overhead, 28 threads must beat one core.
        args = (medium_probe.counts, medium_probe.class_sizes, medium_probe.target)
        serial = SequentialEngine().run(*args)
        omp = OpenMPEngine(threads=28).run(*args)
        assert serial.simulated_s > omp.simulated_s

    def test_omp16_slower_than_omp28(self, medium_probe):
        args = (medium_probe.counts, medium_probe.class_sizes, medium_probe.target)
        t16 = OpenMPEngine(threads=16).run(*args).simulated_s
        t28 = OpenMPEngine(threads=28).run(*args).simulated_s
        assert t16 > t28

    def test_naive_gpu_much_slower_than_openmp(self, medium_probe):
        args = (medium_probe.counts, medium_probe.class_sizes, medium_probe.target)
        naive = GpuNaiveEngine(check_memory=False).run(*args).simulated_s
        omp = OpenMPEngine(threads=28).run(*args).simulated_s
        assert naive > 5 * omp  # §III: "about a hundred times" at scale

    def test_partitioned_beats_naive(self, medium_probe):
        args = (medium_probe.counts, medium_probe.class_sizes, medium_probe.target)
        naive = GpuNaiveEngine(check_memory=False).run(*args).simulated_s
        part = GpuPartitionedEngine(dim=6).run(*args).simulated_s
        assert part < naive / 3

    def test_deterministic_simulated_time(self, medium_probe):
        args = (medium_probe.counts, medium_probe.class_sizes, medium_probe.target)
        a = GpuPartitionedEngine(dim=5).run(*args).simulated_s
        b = GpuPartitionedEngine(dim=5).run(*args).simulated_s
        assert a == b


@pytest.mark.slow
class TestPartitionedMetrics:
    def test_metrics_report_partition_geometry(self, medium_probe):
        run = GpuPartitionedEngine(dim=4).run(
            medium_probe.counts, medium_probe.class_sizes, medium_probe.target
        )
        m = run.metrics
        assert m["dim"] == 4
        assert m["num_blocks"] >= 1
        assert m["cells_per_block"] * m["num_blocks"] == run.table_size
        assert m["scan_scope"] == m["cells_per_block"]

    def test_naive_scan_scope_is_table(self, medium_probe):
        run = GpuNaiveEngine(check_memory=False).run(
            medium_probe.counts, medium_probe.class_sizes, medium_probe.target
        )
        assert run.metrics["scan_scope"] == run.table_size

    def test_naive_bus_utilization_is_strided(self, medium_probe):
        run = GpuNaiveEngine(check_memory=False).run(
            medium_probe.counts, medium_probe.class_sizes, medium_probe.target
        )
        assert run.metrics["avg_bus_utilization"] <= 8 / 128 + 1e-9

    def test_partitioned_bus_utilization_coalesced(self, medium_probe):
        run = GpuPartitionedEngine(dim=5).run(
            medium_probe.counts, medium_probe.class_sizes, medium_probe.target
        )
        assert run.metrics["avg_bus_utilization"] > 0.5

    def test_naive_oom_on_large_table(self):
        # Table-scope candidate buffers blow the 12 GB device memory on
        # a moderate table — the §III-C failure the scheme fixes.
        counts = [9] * 6
        sizes = [40, 45, 50, 55, 60, 65]
        engine = GpuNaiveEngine(check_memory=True)
        with pytest.raises(SimulationError, match="memory"):
            engine.run(counts, sizes, 130)

    def test_partitioned_survives_same_table(self):
        counts = [9] * 6
        sizes = [40, 45, 50, 55, 60, 65]
        run = GpuPartitionedEngine(dim=6).run(counts, sizes, 130)
        assert run.dp_result.feasible

    def test_stream_count_parameter(self, medium_probe):
        args = (medium_probe.counts, medium_probe.class_sizes, medium_probe.target)
        one = GpuPartitionedEngine(dim=5, num_streams=1).run(*args).simulated_s
        four = GpuPartitionedEngine(dim=5, num_streams=4).run(*args).simulated_s
        assert four <= one  # concurrency never hurts in the model


class TestBlockResidencyFlag:
    def test_same_values_lower_footprint(self):
        from repro.analysis.synthetic import synthetic_probe

        probe = synthetic_probe((12, 12, 12, 4))
        base = GpuPartitionedEngine(dim=4).run(
            probe.counts, probe.class_sizes, probe.target
        )
        managed = GpuPartitionedEngine(dim=4, block_residency=True).run(
            probe.counts, probe.class_sizes, probe.target
        )
        assert np.array_equal(base.dp_result.table, managed.dp_result.table)
        assert (
            managed.metrics["table_resident_bytes"]
            < base.metrics["table_resident_bytes"]
        )
        assert managed.metrics["residency_savings"] > 0.0
        assert base.metrics["residency_savings"] == 0.0

    def test_flag_reported_in_metrics(self, medium_probe):
        args = (medium_probe.counts, medium_probe.class_sizes, medium_probe.target)
        run = GpuPartitionedEngine(dim=4, block_residency=True).run(*args)
        assert run.metrics["block_residency"] is True
