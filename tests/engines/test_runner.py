"""Tests for the PTAS runners on simulated hardware (Table VII plumbing).

Since the executor refactor the runners are thin wrappers (registry
lookup + executor choice) over the shared search implementations; the
work/span accounting itself is unit-tested in
``tests/core/test_executor.py``.
"""

import pytest

from repro.backends import resolve
from repro.core.executor import ConcurrentDeviceExecutor, SequentialExecutor
from repro.core.instance import uniform_instance
from repro.core.quarter_split import quarter_split_search
from repro.engines.gpu_partitioned import GpuPartitionedEngine
from repro.engines.runner import (
    PtasRun,
    run_ptas,
    run_ptas_gpu,
    run_ptas_openmp,
    run_ptas_serial,
)


@pytest.fixture(scope="module")
def inst():
    return uniform_instance(30, 5, low=10, high=100, seed=11)


@pytest.fixture(scope="module")
def omp_run(inst):
    return run_ptas_openmp(inst)


@pytest.fixture(scope="module")
def gpu_run(inst):
    return run_ptas_gpu(inst, dim=6)


class TestRunners:
    def test_same_final_target(self, omp_run, gpu_run):
        assert omp_run.result.final_target == gpu_run.result.final_target
        bound = 1.3 * omp_run.result.final_target + 1e-9
        assert omp_run.makespan <= bound and gpu_run.makespan <= bound

    def test_quarter_split_fewer_iterations(self, omp_run, gpu_run):
        assert gpu_run.iterations < omp_run.iterations

    def test_simulated_time_positive(self, omp_run, gpu_run):
        assert omp_run.simulated_s > 0
        assert gpu_run.simulated_s > 0

    def test_dp_table_sizes_recorded(self, omp_run):
        assert len(omp_run.dp_table_sizes) >= omp_run.iterations

    def test_gpu_concurrent_charge_below_sum(self, inst):
        # The quarter split's concurrent charge must not exceed the sum
        # of its probes (that would mean concurrency made things worse).
        engine = GpuPartitionedEngine(dim=6)
        run = run_ptas_gpu(inst, dim=6, engine=engine)
        assert run.simulated_s <= engine.total_simulated_s + 1e-12

    def test_serial_runner(self, inst, omp_run):
        # This instance's probes produce tiny tables, where fork-join
        # overhead makes OpenMP *slower* than serial — the engine-level
        # serial-vs-parallel comparison on real tables lives in
        # test_engines.  Here only agreement and accounting matter.
        serial = run_ptas_serial(inst)
        assert serial.makespan == omp_run.makespan
        assert serial.simulated_s > 0

    def test_schedule_feasible(self, gpu_run, inst):
        schedule = gpu_run.result.schedule
        assert schedule.loads().sum() == inst.total_time


class TestRunnersAreThinWrappers:
    """The runners must delegate to the shared search, not re-implement it."""

    def test_gpu_runner_matches_plain_quarter_split(self, inst, gpu_run):
        # Same search implementation underneath: identical makespan,
        # final target, iteration count, and probe targets.
        engine = GpuPartitionedEngine(dim=6)
        plain = quarter_split_search(inst, 0.3, dp_solver=engine)
        assert plain.makespan == gpu_run.makespan
        assert plain.final_target == gpu_run.result.final_target
        assert plain.iterations == gpu_run.iterations
        assert [p.target for p in plain.probes] == [
            p.target for p in gpu_run.result.probes
        ]

    def test_gpu_runner_charge_equals_executor_recompute(self, inst):
        # The runner's simulated_s is exactly what a concurrent executor
        # charges for the same search on the same engine.
        engine = GpuPartitionedEngine(dim=6)
        executor = ConcurrentDeviceExecutor.for_engine(engine)
        quarter_split_search(inst, 0.3, dp_solver=engine, executor=executor)
        run = run_ptas_gpu(inst, dim=6)
        assert run.simulated_s == pytest.approx(executor.elapsed_s)

    def test_openmp_runner_sums_engine_time(self, inst, omp_run):
        # Sequential accounting: the bisection charge equals the
        # engine's own accumulated total.
        engine = resolve("omp-28")
        run = run_ptas_openmp(inst, engine=engine)
        assert run.simulated_s == pytest.approx(engine.total_simulated_s)
        assert run.simulated_s == pytest.approx(omp_run.simulated_s)

    def test_no_search_loop_in_engines_package(self):
        # The acceptance grep of the refactor, kept as a regression test.
        from pathlib import Path

        import repro.engines as engines_pkg

        pkg_dir = Path(engines_pkg.__file__).parent
        offenders = [
            p.name
            for p in pkg_dir.glob("*.py")
            if "while lb < ub" in p.read_text()
        ]
        assert offenders == []


class TestGenericRunner:
    def test_run_ptas_by_name(self, inst, omp_run):
        run = run_ptas(inst, backend="omp-28", search="bisection")
        assert isinstance(run, PtasRun)
        assert run.engine == "omp-28"
        assert run.makespan == omp_run.makespan
        assert run.simulated_s == pytest.approx(omp_run.simulated_s)

    def test_run_ptas_device_backend_gets_concurrent_executor(self, inst, gpu_run):
        run = run_ptas(inst, backend="gpu-dim6", search="quarter")
        assert run.makespan == gpu_run.makespan
        assert run.simulated_s == pytest.approx(gpu_run.simulated_s)

    def test_run_ptas_pure_solver_charges_nothing(self, inst):
        run = run_ptas(inst, backend="vectorized", search="quarter")
        assert run.simulated_s == 0.0
        assert run.engine == "vectorized"
        assert len(run.dp_table_sizes) == len(run.result.probes)

    def test_explicit_executor_overrides_default(self, inst):
        engine = GpuPartitionedEngine(dim=6)
        run = run_ptas(
            inst, backend=engine, search="quarter", executor=SequentialExecutor()
        )
        # Sequential accounting on a device engine: the full sum.
        assert run.simulated_s == pytest.approx(engine.total_simulated_s)
