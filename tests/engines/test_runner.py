"""Tests for the PTAS runners on simulated hardware (Table VII plumbing)."""

import pytest

from repro.core.instance import uniform_instance
from repro.engines.gpu_partitioned import GpuPartitionedEngine
from repro.engines.runner import (
    _concurrent_time,
    run_ptas_gpu,
    run_ptas_openmp,
    run_ptas_serial,
)


@pytest.fixture(scope="module")
def inst():
    return uniform_instance(30, 5, low=10, high=100, seed=11)


@pytest.fixture(scope="module")
def omp_run(inst):
    return run_ptas_openmp(inst)


@pytest.fixture(scope="module")
def gpu_run(inst):
    return run_ptas_gpu(inst, dim=6)


class TestRunners:
    def test_same_final_target(self, omp_run, gpu_run):
        assert omp_run.result.final_target == gpu_run.result.final_target
        bound = 1.3 * omp_run.result.final_target + 1e-9
        assert omp_run.makespan <= bound and gpu_run.makespan <= bound

    def test_quarter_split_fewer_iterations(self, omp_run, gpu_run):
        assert gpu_run.iterations < omp_run.iterations

    def test_simulated_time_positive(self, omp_run, gpu_run):
        assert omp_run.simulated_s > 0
        assert gpu_run.simulated_s > 0

    def test_dp_table_sizes_recorded(self, omp_run):
        assert len(omp_run.dp_table_sizes) >= omp_run.iterations

    def test_gpu_concurrent_charge_below_sum(self, inst):
        # The quarter split's concurrent charge must not exceed the sum
        # of its probes (that would mean concurrency made things worse).
        engine = GpuPartitionedEngine(dim=6)
        run = run_ptas_gpu(inst, dim=6, engine=engine)
        assert run.simulated_s <= engine.total_simulated_s + 1e-12

    def test_serial_runner(self, inst, omp_run):
        # This instance's probes produce tiny tables, where fork-join
        # overhead makes OpenMP *slower* than serial — the engine-level
        # serial-vs-parallel comparison on real tables lives in
        # test_engines.  Here only agreement and accounting matter.
        serial = run_ptas_serial(inst)
        assert serial.makespan == omp_run.makespan
        assert serial.simulated_s > 0

    def test_schedule_feasible(self, gpu_run, inst):
        schedule = gpu_run.result.schedule
        assert schedule.loads().sum() == inst.total_time


class TestConcurrentTime:
    def test_empty(self):
        assert _concurrent_time([], warp_slots=90) == 0.0

    def test_span_bound(self):
        from repro.engines.base import EngineRun
        from repro.core.dp_common import empty_dp_result

        runs = [
            EngineRun("a", empty_dp_result(), 2.0, {"warp_seconds_paid": 1.0}),
            EngineRun("b", empty_dp_result(), 5.0, {"warp_seconds_paid": 1.0}),
        ]
        assert _concurrent_time(runs, warp_slots=90) == 5.0

    def test_work_bound(self):
        from repro.engines.base import EngineRun
        from repro.core.dp_common import empty_dp_result

        runs = [
            EngineRun("a", empty_dp_result(), 1.0, {"warp_seconds_paid": 500.0}),
            EngineRun("b", empty_dp_result(), 1.0, {"warp_seconds_paid": 400.0}),
        ]
        assert _concurrent_time(runs, warp_slots=90) == pytest.approx(10.0)
