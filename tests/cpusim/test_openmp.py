"""Tests for the OpenMP fork-join cost model."""

import numpy as np
import pytest

from repro.cpusim.openmp import OpenMPModel
from repro.cpusim.spec import CpuSpec, XEON_E5_2697V3_DUAL
from repro.errors import SimulationError

FAST = CpuSpec(
    name="test", total_cores=8, clock_hz=1e9,
    mem_bandwidth_bytes_per_s=1e12, fork_join_overhead_s=1e-6,
)


class TestSpec:
    def test_paper_host(self):
        assert XEON_E5_2697V3_DUAL.total_cores == 28
        assert XEON_E5_2697V3_DUAL.clock_hz == pytest.approx(2.6e9)

    def test_rejects_zero_cores(self):
        with pytest.raises(SimulationError):
            CpuSpec(name="x", total_cores=0, clock_hz=1e9)


class TestParallelFor:
    def test_balanced_static_speedup(self):
        costs = np.full(800, 1e-4)
        serial = OpenMPModel(FAST, threads=1).parallel_for(costs).compute_s
        par = OpenMPModel(FAST, threads=8).parallel_for(costs).compute_s
        assert par == pytest.approx(serial / 8)

    def test_static_imbalance_visible(self):
        # One huge item at the front: static chunking puts it on thread 0.
        costs = np.full(80, 1e-5)
        costs[0] = 1e-2
        result = OpenMPModel(FAST, threads=8).parallel_for(costs, schedule="static")
        assert result.imbalance > 4.0

    def test_dynamic_beats_static_on_skew(self):
        costs = np.concatenate([np.full(8, 1e-2), np.full(792, 1e-5)])
        static = OpenMPModel(FAST, threads=8).parallel_for(costs, schedule="static")
        dynamic = OpenMPModel(FAST, threads=8).parallel_for(costs, schedule="dynamic")
        assert dynamic.compute_s <= static.compute_s

    def test_memory_floor(self):
        slow_mem = CpuSpec(
            name="x", total_cores=8, clock_hz=1e9,
            mem_bandwidth_bytes_per_s=1e6, fork_join_overhead_s=0.0,
        )
        model = OpenMPModel(slow_mem, threads=8)
        result = model.parallel_for(np.full(8, 1e-9), mem_bytes=1_000_000)
        assert result.elapsed_s == pytest.approx(1.0)  # 1 MB at 1 MB/s

    def test_overhead_always_charged(self):
        model = OpenMPModel(FAST, threads=4)
        result = model.parallel_for(np.array([]))
        assert result.elapsed_s == pytest.approx(FAST.fork_join_overhead_s)

    def test_elapsed_accumulates(self):
        model = OpenMPModel(FAST, threads=2)
        model.parallel_for(np.full(10, 1e-4))
        first = model.elapsed_s
        model.parallel_for(np.full(10, 1e-4))
        assert model.elapsed_s == pytest.approx(2 * first)
        assert model.regions == 2

    def test_serial_section(self):
        model = OpenMPModel(FAST, threads=4)
        model.serial(0.5)
        assert model.elapsed_s == pytest.approx(0.5)

    def test_more_threads_never_slower_compute(self):
        costs = np.abs(np.random.default_rng(0).normal(1e-4, 5e-5, size=500))
        t8 = OpenMPModel(FAST, threads=8).parallel_for(costs).compute_s
        t4 = OpenMPModel(FAST, threads=4).parallel_for(costs).compute_s
        assert t8 <= t4 + 1e-12

    def test_rejects_negative_costs(self):
        with pytest.raises(SimulationError):
            OpenMPModel(FAST, threads=2).parallel_for(np.array([-1.0]))

    def test_rejects_unknown_schedule(self):
        with pytest.raises(SimulationError):
            OpenMPModel(FAST, threads=2).parallel_for(np.ones(3), schedule="guided2")

    def test_rejects_heavy_oversubscription(self):
        with pytest.raises(SimulationError):
            OpenMPModel(FAST, threads=1000)

    def test_rejects_zero_threads(self):
        with pytest.raises(SimulationError):
            OpenMPModel(FAST, threads=0)

    def test_rejects_bad_chunk(self):
        with pytest.raises(SimulationError):
            OpenMPModel(FAST, threads=2).parallel_for(
                np.ones(3), schedule="dynamic", chunk=0
            )


class TestStaticChunks:
    def test_contiguous_assignment(self):
        model = OpenMPModel(FAST, threads=3)
        loads = model._static_loads(np.array([1.0, 1.0, 1.0, 1.0, 1.0]))
        # chunks of ceil(5/3)=2: [2, 2, 1].
        assert loads.tolist() == [2.0, 2.0, 1.0]

    def test_sum_preserved(self):
        costs = np.random.default_rng(1).random(97)
        model = OpenMPModel(FAST, threads=8)
        assert model._static_loads(costs).sum() == pytest.approx(costs.sum())


class TestDynamicChunks:
    def test_sum_preserved(self):
        costs = np.random.default_rng(2).random(61)
        model = OpenMPModel(FAST, threads=4)
        assert model._dynamic_loads(costs, chunk=3).sum() == pytest.approx(costs.sum())

    def test_greedy_is_balanced_on_uniform(self):
        model = OpenMPModel(FAST, threads=4)
        loads = model._dynamic_loads(np.full(64, 1.0), chunk=1)
        assert loads.max() == pytest.approx(loads.min())
