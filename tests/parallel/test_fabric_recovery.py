"""Tests for the fill fabric's self-healing: real worker-crash
recovery, table integrity, the orphan reaper, and the close-race
contract (repro.parallel.fabric)."""

import os
import subprocess

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from multiprocessing.shared_memory import SharedMemory

from repro.dptable.plan import build_probe_plan
from repro.engines.base import fill_by_groups
from repro.errors import TableIntegrityError, WorkerCrashError
from repro.observability import Tracer
from repro.parallel import fabric as fabric_mod
from repro.parallel.fabric import (
    BlockExecutor,
    SharedTableArena,
    fabric_start_method,
    reap_orphans,
)
from repro.resilience import FaultInjector

#: One small probe whose every wave dispatches at min_parallel_cells=1:
#: 5x4x3 = 60 cells over 10 anti-diagonal waves.
PLAN_ARGS = ((4, 3, 2), (4, 6, 9), 18)


def _segments() -> set:
    try:
        return {
            n for n in os.listdir("/dev/shm") if n.startswith("repro_fab_")
        }
    except FileNotFoundError:  # platform without /dev/shm
        return set()


def _serial_reference(plan) -> np.ndarray:
    """The single-process fill the fabric must be bit-identical to."""
    return fill_by_groups(plan.geometry, plan.configs, plan.level_groups())


def _killer(
    seed: int = 3, max_failures: int = 1, match=None
) -> FaultInjector:
    """A fabric.worker chaos injector that always fires (rate 1)."""
    return FaultInjector(
        seed=seed,
        rate=1.0,
        kinds=("crash",),
        sites=("fabric.worker",),
        max_failures=max_failures,
        match=match,
    )


class TestStartMethod:
    def test_pinned_method_is_never_fork(self):
        # Recovery cannot reason about a forked child's inherited locks
        # and thread state, so the fabric must pin forkserver or spawn.
        assert fabric_start_method() in ("forkserver", "spawn")

    def test_context_is_cached(self):
        assert fabric_mod._fabric_context() is fabric_mod._fabric_context()


class TestWorkerCrashRecovery:
    def test_single_kill_recovers_bit_identical(self):
        plan = build_probe_plan(*PLAN_ARGS)
        ref = _serial_reference(plan)
        # Pin the kill to one wave so recovery stays inside the restart
        # budget: one SIGKILL, one respawn, one re-executed wave.
        inj = _killer(match=lambda site, inst, target: target == 2)
        tracer = Tracer()
        with BlockExecutor(workers=2, faults=inj) as fab:
            with tracer.activate():
                got = fab.fill(plan, min_parallel_cells=1)
            health = fab.health()
        assert np.array_equal(ref, got)
        assert health.workers_killed == 1
        assert health.pool_restarts == 1
        assert health.waves_reexecuted == 1
        assert health.inline_fallbacks == 0
        assert tracer.counters.get("fabric.recovery.worker_kills") == 1
        assert tracer.counters.get("fabric.recovery.restarts") == 1
        assert tracer.counters.get("fabric.recovery.waves_reexecuted") == 1

    def test_exhausted_budget_degrades_to_inline_fill(self):
        plan = build_probe_plan(*PLAN_ARGS)
        ref = _serial_reference(plan)
        tracer = Tracer()
        # Every dispatched wave is killed and the budget is zero: the
        # first loss must pin the rest of the fill to the parent.
        with BlockExecutor(
            workers=2, faults=_killer(max_failures=5), max_pool_restarts=0
        ) as fab:
            with tracer.activate():
                got = fab.fill(plan, min_parallel_cells=1)
            health = fab.health()
        assert np.array_equal(ref, got)
        assert health.inline_fallbacks == 1
        assert health.pool_restarts == 1  # the post-budget teardown
        assert tracer.counters.get("fabric.recovery.inline_fills") == 1

    def test_no_inline_fallback_surfaces_worker_crash_error(self):
        plan = build_probe_plan(*PLAN_ARGS)
        before = _segments()
        fab = BlockExecutor(
            workers=2,
            faults=_killer(max_failures=5),
            max_pool_restarts=0,
            inline_fallback=False,
        )
        try:
            with pytest.raises(WorkerCrashError, match="recovery budget"):
                fab.fill(plan, min_parallel_cells=1)
        finally:
            fab.close()
        # The arena died with the fill, the shipment with close():
        # a failed recovery leaks nothing.
        assert _segments() == before

    def test_recovered_executor_stays_usable(self):
        plan = build_probe_plan(*PLAN_ARGS)
        ref = _serial_reference(plan)
        inj = _killer(match=lambda site, inst, target: target == 1)
        with BlockExecutor(workers=2, faults=inj) as fab:
            first = fab.fill(plan, min_parallel_cells=1)
            # The injector's per-wave cap is spent: this fill is clean.
            second = fab.fill(plan, min_parallel_cells=1)
        assert np.array_equal(ref, first)
        assert np.array_equal(ref, second)

    def test_wave_deadline_is_treated_as_a_lost_wave(self):
        plan = build_probe_plan(*PLAN_ARGS)
        ref = _serial_reference(plan)
        # A deadline no wave can meet: the first dispatch expires while
        # the pool is still spawning its workers, which must look
        # exactly like a crash (respawn, then inline past the budget).
        with BlockExecutor(
            workers=2, wave_deadline_s=1e-6, max_pool_restarts=0
        ) as fab:
            got = fab.fill(plan, min_parallel_cells=1)
            health = fab.health()
        assert np.array_equal(ref, got)
        assert health.inline_fallbacks == 1
        assert health.pool_restarts == 1

    def test_close_mid_fill_raises_clean_retryable_error(self, monkeypatch):
        plan = build_probe_plan(*PLAN_ARGS)
        fab = BlockExecutor(workers=2)

        def closing_dispatch(self, pool, tasks, wave):
            # A concurrent owner calls close(force=True) while this
            # fill's wave is in flight; the dispatch then fails.
            fab.close(force=True)
            return None, "worker-death"

        monkeypatch.setattr(BlockExecutor, "_ensure_pool", lambda self: object())
        monkeypatch.setattr(BlockExecutor, "_dispatch_once", closing_dispatch)
        with pytest.raises(WorkerCrashError, match="closed during an in-flight"):
            fab.fill(plan, min_parallel_cells=1)
        # The error is retryable and the executor reusable: the next
        # fill (inline here) succeeds on a fresh generation.
        monkeypatch.undo()
        ref = _serial_reference(plan)
        try:
            assert np.array_equal(ref, fab.fill(plan, min_parallel_cells=10_000))
        finally:
            fab.close()

    def test_close_mid_fill_does_not_count_as_a_crash(self, monkeypatch):
        plan = build_probe_plan(*PLAN_ARGS)
        fab = BlockExecutor(workers=2)
        monkeypatch.setattr(BlockExecutor, "_ensure_pool", lambda self: object())
        monkeypatch.setattr(
            BlockExecutor,
            "_dispatch_once",
            lambda self, pool, tasks, wave: (
                fab.close(force=True),
                (None, "pool-closed"),
            )[1],
        )
        with pytest.raises(WorkerCrashError):
            fab.fill(plan, min_parallel_cells=1)
        health = fab.health()
        # No respawn, no re-execution: a deliberate close is not a
        # crash and must not pollute the recovery tallies.
        assert health.pool_restarts == 0
        assert health.waves_reexecuted == 0
        fab.close()


class TestTableIntegrity:
    def _filled_arena(self):
        # A hand-built "filled" 8-cell table: origin 0, levels, sentinel.
        arena = SharedTableArena(8, np.dtype(np.int16))
        arena.table[1:4] = [1, 2, 3]
        return arena

    def test_valid_table_passes_and_reports_cells(self):
        with self._filled_arena() as arena:
            assert arena.verify(max_level=3) == 8

    def test_clobbered_origin_raises(self):
        with self._filled_arena() as arena:
            arena.table[0] = 1
            with pytest.raises(TableIntegrityError, match="origin"):
                arena.verify(max_level=3)

    def test_spurious_zero_raises(self):
        with self._filled_arena() as arena:
            arena.table[5] = 0
            with pytest.raises(TableIntegrityError, match="zero cells"):
                arena.verify(max_level=3)

    def test_torn_value_raises(self):
        with self._filled_arena() as arena:
            arena.table[2] = 29  # > max_level, not the sentinel
            with pytest.raises(TableIntegrityError, match="not the"):
                arena.verify(max_level=3)

    def test_fill_detects_corrupted_table(self, monkeypatch):
        plan = build_probe_plan(*PLAN_ARGS)
        real_fill = fabric_mod._fill_range
        before = _segments()

        def corrupting_fill(table, cells, configs, shape, strides, unreach,
                            clipped=False):
            n = real_fill(table, cells, configs, shape, strides, unreach,
                          clipped=clipped)
            table[-1] = unreach - 1  # a torn, impossible value
            return n

        monkeypatch.setattr(fabric_mod, "_fill_range", corrupting_fill)
        tracer = Tracer()
        fab = BlockExecutor(workers=1)
        try:
            with tracer.activate():
                with pytest.raises(TableIntegrityError):
                    fab.fill(plan)
            assert fab.health().integrity_failures == 1
            assert tracer.counters.get("integrity.failures") == 1
        finally:
            fab.close()
        assert _segments() == before  # the bad arena did not leak

    def test_integrity_counters_on_clean_fill(self):
        plan = build_probe_plan(*PLAN_ARGS)
        tracer = Tracer()
        with BlockExecutor(workers=1) as fab:
            with tracer.activate():
                fab.fill(plan)
            health = fab.health()
        assert health.integrity_cells_checked == plan.geometry.size
        assert health.integrity_failures == 0
        assert tracer.counters.get("integrity.checked") == plan.geometry.size

    def test_verification_can_be_disabled(self, monkeypatch):
        plan = build_probe_plan(*PLAN_ARGS)
        real_fill = fabric_mod._fill_range

        def corrupting_fill(table, cells, configs, shape, strides, unreach,
                            clipped=False):
            n = real_fill(table, cells, configs, shape, strides, unreach,
                          clipped=clipped)
            table[-1] = unreach - 1
            return n

        monkeypatch.setattr(fabric_mod, "_fill_range", corrupting_fill)
        with BlockExecutor(workers=1, verify_integrity=False) as fab:
            fab.fill(plan)  # does not raise
            assert fab.health().integrity_cells_checked == 0


class TestOrphanReaper:
    def _dead_pid(self) -> int:
        proc = subprocess.Popen(["true"])
        proc.wait()
        return proc.pid

    def _make_segment(self, name: str) -> str:
        shm = SharedMemory(create=True, size=8, name=name)
        shm.close()
        return name

    def _forget(self, name: str) -> None:
        # The segment was (or will be) unlinked behind the tracker's
        # back; unregister so interpreter exit stays silent.
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(f"/{name}", "shared_memory")
        except Exception:
            pass

    def test_reaps_segments_of_dead_processes(self):
        name = self._make_segment(f"repro_fab_{self._dead_pid()}_{'ab' * 8}")
        try:
            assert name in reap_orphans()
            assert name not in _segments()
        finally:
            self._forget(name)

    def test_skips_live_pids_and_own_segments(self):
        own = self._make_segment(f"repro_fab_{os.getpid()}_{'cd' * 8}")
        live = self._make_segment(f"repro_fab_1_{'ef' * 8}")  # pid 1 lives
        try:
            reaped = reap_orphans()
            assert own not in reaped and live not in reaped
            assert own in _segments() and live in _segments()
        finally:
            for name in (own, live):
                try:
                    shm = SharedMemory(name=name)
                    shm.close()
                    shm.unlink()
                except FileNotFoundError:
                    pass
                self._forget(name)

    def test_ignores_foreign_segment_names(self):
        # No pid component: the fabric pattern must not match, however
        # tempting the prefix looks.
        name = self._make_segment("repro_fab_orphanless")
        try:
            assert name not in reap_orphans()
            assert name in _segments()
        finally:
            shm = SharedMemory(name=name)
            shm.close()
            shm.unlink()
            self._forget(name)

    def test_missing_shm_dir_is_a_no_op(self):
        assert reap_orphans("/nonexistent/shm/dir") == []

    def test_pool_start_sweeps_and_tallies(self):
        name = self._make_segment(f"repro_fab_{self._dead_pid()}_{'0f' * 8}")
        fab = BlockExecutor(workers=2)
        try:
            fab._ensure_pool()  # cheap: workers spawn lazily on submit
            assert fab.health().segments_reaped >= 1
            assert name not in _segments()
        finally:
            fab.close()
            self._forget(name)


class TestRecoveryProperties:
    @settings(max_examples=4, deadline=None)
    @given(
        spec=st.sampled_from(
            [((3, 2, 2), (3, 5, 7), 14), ((4, 3, 2), (4, 6, 9), 18),
             ((3, 3), (4, 5), 12)]
        ),
        kill_wave=st.integers(0, 6),
        seed=st.integers(0, 10_000),
    )
    def test_kills_and_respawns_never_change_the_table(
        self, spec, kill_wave, seed
    ):
        counts, sizes, target = spec
        plan = build_probe_plan(counts, sizes, target)
        ref = _serial_reference(plan)
        before = _segments()
        inj = _killer(
            seed=seed, match=lambda site, inst, target: target == kill_wave
        )
        with BlockExecutor(workers=2, faults=inj) as fab:
            got = fab.fill(plan, min_parallel_cells=1)
        # Bit-identity: re-executed waves overwrite any partial writes
        # with identical values (the wavefront idempotency argument).
        assert np.array_equal(ref, got)
        # Hygiene: every segment the fill created is gone again.
        assert _segments() == before
