"""Unit tests for repro.parallel.chunking."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.parallel.chunking import split_by_cost, split_evenly


class TestSplitEvenly:
    def test_exact_division(self):
        assert split_evenly(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_remainder_spread(self):
        ranges = split_evenly(10, 3)
        sizes = [hi - lo for lo, hi in ranges]
        assert sizes == [4, 3, 3]

    def test_covers_everything(self):
        for n, k in [(1, 1), (7, 3), (100, 7), (5, 10)]:
            ranges = split_evenly(n, k)
            covered = [i for lo, hi in ranges for i in range(lo, hi)]
            assert covered == list(range(n))

    def test_more_chunks_than_items(self):
        ranges = split_evenly(3, 10)
        assert len(ranges) == 3
        assert all(hi - lo == 1 for lo, hi in ranges)

    def test_empty(self):
        assert split_evenly(0, 4) == []

    def test_rejects_bad_args(self):
        with pytest.raises(ReproError):
            split_evenly(-1, 2)
        with pytest.raises(ReproError):
            split_evenly(5, 0)


class TestSplitByCost:
    def test_balances_skewed_costs(self):
        costs = np.array([100.0] + [1.0] * 99)
        ranges = split_by_cost(costs, 2)
        # First chunk should be essentially just the heavy item.
        lo, hi = ranges[0]
        assert hi - lo < 55

    def test_covers_everything(self):
        rng = np.random.default_rng(0)
        costs = rng.random(57)
        ranges = split_by_cost(costs, 5)
        covered = [i for lo, hi in ranges for i in range(lo, hi)]
        assert covered == list(range(57))

    def test_no_empty_ranges(self):
        costs = np.array([1000.0, 0.0, 0.0, 0.0])
        ranges = split_by_cost(costs, 4)
        assert all(hi > lo for lo, hi in ranges)

    def test_uniform_costs_even_split(self):
        ranges = split_by_cost(np.ones(12), 4)
        assert [hi - lo for lo, hi in ranges] == [3, 3, 3, 3]

    def test_zero_total_falls_back(self):
        ranges = split_by_cost(np.zeros(8), 4)
        assert [hi - lo for lo, hi in ranges] == [2, 2, 2, 2]

    def test_single_chunk(self):
        assert split_by_cost(np.ones(5), 1) == [(0, 5)]

    def test_empty(self):
        assert split_by_cost(np.array([]), 3) == []

    def test_rejects_negative_costs(self):
        with pytest.raises(ReproError):
            split_by_cost(np.array([-1.0]), 2)

    def test_rejects_zero_chunks(self):
        with pytest.raises(ReproError):
            split_by_cost(np.ones(3), 0)

    def test_balance_quality(self):
        rng = np.random.default_rng(7)
        costs = rng.exponential(1.0, size=400)
        ranges = split_by_cost(costs, 8)
        sums = [costs[lo:hi].sum() for lo, hi in ranges]
        assert max(sums) <= 2.2 * (costs.sum() / 8)


class TestSplitProperties:
    """Property tests: every split is a contiguous, exact tiling."""

    @given(n=st.integers(0, 500), k=st.integers(1, 64))
    def test_split_evenly_tiles_the_range(self, n, k):
        ranges = split_evenly(n, k)
        assert len(ranges) == min(n, k)
        prev = 0
        for lo, hi in ranges:
            assert lo == prev and hi > lo  # contiguous, never empty
            prev = hi
        assert prev == n
        if ranges:
            sizes = [hi - lo for lo, hi in ranges]
            assert max(sizes) - min(sizes) <= 1

    @given(
        costs=st.lists(st.floats(0.0, 1e6), max_size=200),
        k=st.integers(1, 32),
    )
    def test_split_by_cost_tiles_the_range(self, costs, k):
        costs = np.asarray(costs, dtype=np.float64)
        ranges = split_by_cost(costs, k)
        assert len(ranges) == min(costs.size, k)
        prev = 0
        for lo, hi in ranges:
            assert lo == prev and hi > lo
            prev = hi
        assert prev == costs.size

    @given(
        costs=st.lists(st.floats(0.01, 1e3), min_size=2, max_size=200),
        k=st.integers(1, 32),
    )
    def test_split_by_cost_cuts_near_the_even_cost_marks(self, costs, k):
        # Each cut lands where the cumulative cost crosses a multiple
        # of total/k, so no chunk exceeds its fair share by more than
        # one item's cost on each side (degenerates to fair + 2*max).
        costs = np.asarray(costs, dtype=np.float64)
        fair = costs.sum() / min(costs.size, k)
        for lo, hi in split_by_cost(costs, k):
            assert costs[lo:hi].sum() <= fair + 2 * costs.max()

    @given(k=st.integers(1, 16))
    def test_degenerate_zero_items(self, k):
        # The 0-d probe plan: one wave of one pre-final cell, so the
        # fabric has zero fillable cells to split.
        assert split_evenly(0, k) == []
        assert split_by_cost(np.zeros(0), k) == []

    @given(cost=st.floats(0.0, 1e6))
    def test_degenerate_single_item(self, cost):
        # A single-block blocked plan collapses every wave to one
        # range; the split must hand the whole wave to one worker.
        assert split_evenly(1, 8) == [(0, 1)]
        assert split_by_cost(np.array([cost]), 8) == [(0, 1)]


class TestPlanScheduleSplits:
    """The splits the fabric actually takes: plan wave boundaries."""

    def test_zero_dim_plan_has_nothing_to_split(self):
        from repro.dptable.plan import build_probe_plan

        plan = build_probe_plan((), (), 5)
        schedule = plan.level_schedule
        # One wave holding only the pre-final origin cell, which the
        # fill kernel skips — the parallel path never engages.
        assert plan.geometry.size == 1
        assert list(schedule.order) == [0]

    def test_single_block_plan_waves_tile_the_table(self):
        from repro.dptable.plan import build_probe_plan

        plan = build_probe_plan((3, 2), (3, 5), 11)
        groups = plan.blocked(1).fill_groups
        order = np.concatenate(groups)
        assert order.size == plan.geometry.size
        assert sorted(order.tolist()) == list(range(plan.geometry.size))
        for group in groups:
            for lo, hi in split_by_cost(
                plan.candidates[group].astype(np.float64), 4
            ):
                assert hi > lo
