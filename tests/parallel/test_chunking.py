"""Unit tests for repro.parallel.chunking."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.parallel.chunking import split_by_cost, split_evenly


class TestSplitEvenly:
    def test_exact_division(self):
        assert split_evenly(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_remainder_spread(self):
        ranges = split_evenly(10, 3)
        sizes = [hi - lo for lo, hi in ranges]
        assert sizes == [4, 3, 3]

    def test_covers_everything(self):
        for n, k in [(1, 1), (7, 3), (100, 7), (5, 10)]:
            ranges = split_evenly(n, k)
            covered = [i for lo, hi in ranges for i in range(lo, hi)]
            assert covered == list(range(n))

    def test_more_chunks_than_items(self):
        ranges = split_evenly(3, 10)
        assert len(ranges) == 3
        assert all(hi - lo == 1 for lo, hi in ranges)

    def test_empty(self):
        assert split_evenly(0, 4) == []

    def test_rejects_bad_args(self):
        with pytest.raises(ReproError):
            split_evenly(-1, 2)
        with pytest.raises(ReproError):
            split_evenly(5, 0)


class TestSplitByCost:
    def test_balances_skewed_costs(self):
        costs = np.array([100.0] + [1.0] * 99)
        ranges = split_by_cost(costs, 2)
        # First chunk should be essentially just the heavy item.
        lo, hi = ranges[0]
        assert hi - lo < 55

    def test_covers_everything(self):
        rng = np.random.default_rng(0)
        costs = rng.random(57)
        ranges = split_by_cost(costs, 5)
        covered = [i for lo, hi in ranges for i in range(lo, hi)]
        assert covered == list(range(57))

    def test_no_empty_ranges(self):
        costs = np.array([1000.0, 0.0, 0.0, 0.0])
        ranges = split_by_cost(costs, 4)
        assert all(hi > lo for lo, hi in ranges)

    def test_uniform_costs_even_split(self):
        ranges = split_by_cost(np.ones(12), 4)
        assert [hi - lo for lo, hi in ranges] == [3, 3, 3, 3]

    def test_zero_total_falls_back(self):
        ranges = split_by_cost(np.zeros(8), 4)
        assert [hi - lo for lo, hi in ranges] == [2, 2, 2, 2]

    def test_single_chunk(self):
        assert split_by_cost(np.ones(5), 1) == [(0, 5)]

    def test_empty(self):
        assert split_by_cost(np.array([]), 3) == []

    def test_rejects_negative_costs(self):
        with pytest.raises(ReproError):
            split_by_cost(np.array([-1.0]), 2)

    def test_rejects_zero_chunks(self):
        with pytest.raises(ReproError):
            split_by_cost(np.ones(3), 0)

    def test_balance_quality(self):
        rng = np.random.default_rng(7)
        costs = rng.exponential(1.0, size=400)
        ranges = split_by_cost(costs, 8)
        sums = [costs[lo:hi].sum() for lo, hi in ranges]
        assert max(sums) <= 2.2 * (costs.sum() / 8)
