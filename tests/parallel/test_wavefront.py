"""Tests for the real host-parallel wavefront DP (shared memory)."""

from multiprocessing.shared_memory import SharedMemory

import numpy as np
import pytest

from repro.core.dp_vectorized import dp_vectorized
from repro.dptable.plan import build_probe_plan
from repro.errors import DPError
from repro.parallel.wavefront import WavefrontSolver, parallel_wavefront_dp


class TestParallelWavefront:
    def test_matches_vectorized_serial_path(self):
        counts, sizes, target = [3, 2, 2], [3, 5, 7], 14
        ref = dp_vectorized(counts, sizes, target)
        par = parallel_wavefront_dp(counts, sizes, target, workers=1)
        assert np.array_equal(par.table, ref.table)

    def test_matches_vectorized_parallel(self, medium_probe):
        args = (medium_probe.counts, medium_probe.class_sizes, medium_probe.target)
        ref = dp_vectorized(*args)
        par = parallel_wavefront_dp(*args, workers=3, min_parallel_level=32)
        assert np.array_equal(par.table, ref.table)

    def test_worker_count_does_not_change_result(self):
        counts, sizes, target = [4, 3, 2], [4, 6, 9], 18
        results = [
            parallel_wavefront_dp(
                counts, sizes, target, workers=w, min_parallel_level=4
            ).table
            for w in (1, 2, 4)
        ]
        assert np.array_equal(results[0], results[1])
        assert np.array_equal(results[1], results[2])

    def test_degenerate_no_long_jobs(self):
        result = parallel_wavefront_dp([], [], 10, workers=2)
        assert result.opt == 0

    def test_infeasible_table(self):
        result = parallel_wavefront_dp([2], [50], 10, workers=2, min_parallel_level=1)
        assert not result.feasible

    def test_small_levels_run_inline(self):
        # min_parallel_level larger than any level: pure inline path.
        counts, sizes, target = [2, 2], [3, 5], 9
        ref = dp_vectorized(counts, sizes, target)
        par = parallel_wavefront_dp(
            counts, sizes, target, workers=4, min_parallel_level=10_000
        )
        assert np.array_equal(par.table, ref.table)

    def test_rejects_zero_workers(self):
        with pytest.raises(DPError):
            parallel_wavefront_dp([2], [3], 9, workers=0)

    def test_rejects_arity_mismatch(self):
        with pytest.raises(DPError):
            parallel_wavefront_dp([2, 2], [3], 9)

    def test_shared_memory_cleaned_up(self):
        # Run twice: leaked segments would collide or exhaust /dev/shm.
        for _ in range(2):
            parallel_wavefront_dp([3, 3], [4, 5], 12, workers=2, min_parallel_level=1)

    def test_no_segment_leak_after_dp_error(self, monkeypatch):
        # The context-managed segments must be unlinked even when the
        # fill itself blows up mid-probe (the atexit-based cleanup this
        # replaced could not guarantee that before interpreter exit).
        from repro.parallel import fabric as fabric_mod
        from repro.parallel.fabric import BlockExecutor

        created = []
        real_shm = fabric_mod.SharedMemory

        def tracking_shm(*args, **kwargs):
            segment = real_shm(*args, **kwargs)
            if kwargs.get("create"):
                created.append(segment.name)
            return segment

        def exploding_fill(*args, **kwargs):
            raise DPError("injected mid-probe failure")

        monkeypatch.setattr(fabric_mod, "SharedMemory", tracking_shm)
        monkeypatch.setattr(fabric_mod, "_fill_range", exploding_fill)
        fab = BlockExecutor(workers=1)
        with pytest.raises(DPError, match="injected"):
            parallel_wavefront_dp(
                [3, 3], [4, 5], 12, workers=1, fill_fabric=fab
            )
        assert len(created) == 2  # plan shipment + table arena
        fab.close()
        for name in created:
            with pytest.raises(FileNotFoundError):
                SharedMemory(name=name)

    def test_accepts_prebuilt_plan(self):
        counts, sizes, target = (3, 2, 2), (3, 5, 7), 14
        plan = build_probe_plan(counts, sizes, target)
        with_plan = parallel_wavefront_dp(counts, sizes, target, plan=plan)
        assert np.array_equal(
            with_plan.table, dp_vectorized(counts, sizes, target).table
        )
        assert with_plan.configs is plan.configs


class TestWavefrontSolver:
    def test_satisfies_dp_solver_protocol(self):
        solver = WavefrontSolver(workers=1)
        result = solver([3, 2], [3, 5], 11)
        assert np.array_equal(result.table, dp_vectorized([3, 2], [3, 5], 11).table)

    def test_name_reflects_workers(self):
        assert WavefrontSolver(workers=3).name == "wavefront-3"

    def test_rejects_zero_workers(self):
        with pytest.raises(DPError):
            WavefrontSolver(workers=0)

    def test_uses_bound_plan_cache(self):
        from repro.core.probe_cache import PlanCache

        cache = PlanCache()
        solver = WavefrontSolver(workers=1, plan_cache=cache)
        solver([3, 2], [3, 5], 11)
        solver([3, 2], [3, 5], 11)
        assert cache.stats.hits.get("plan") == 1
        assert cache.stats.misses.get("plan") == 1
