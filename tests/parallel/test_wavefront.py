"""Tests for the real host-parallel wavefront DP (shared memory)."""

import numpy as np
import pytest

from repro.core.dp_vectorized import dp_vectorized
from repro.errors import DPError
from repro.parallel.wavefront import parallel_wavefront_dp


class TestParallelWavefront:
    def test_matches_vectorized_serial_path(self):
        counts, sizes, target = [3, 2, 2], [3, 5, 7], 14
        ref = dp_vectorized(counts, sizes, target)
        par = parallel_wavefront_dp(counts, sizes, target, workers=1)
        assert np.array_equal(par.table, ref.table)

    def test_matches_vectorized_parallel(self, medium_probe):
        args = (medium_probe.counts, medium_probe.class_sizes, medium_probe.target)
        ref = dp_vectorized(*args)
        par = parallel_wavefront_dp(*args, workers=3, min_parallel_level=32)
        assert np.array_equal(par.table, ref.table)

    def test_worker_count_does_not_change_result(self):
        counts, sizes, target = [4, 3, 2], [4, 6, 9], 18
        results = [
            parallel_wavefront_dp(
                counts, sizes, target, workers=w, min_parallel_level=4
            ).table
            for w in (1, 2, 4)
        ]
        assert np.array_equal(results[0], results[1])
        assert np.array_equal(results[1], results[2])

    def test_degenerate_no_long_jobs(self):
        result = parallel_wavefront_dp([], [], 10, workers=2)
        assert result.opt == 0

    def test_infeasible_table(self):
        result = parallel_wavefront_dp([2], [50], 10, workers=2, min_parallel_level=1)
        assert not result.feasible

    def test_small_levels_run_inline(self):
        # min_parallel_level larger than any level: pure inline path.
        counts, sizes, target = [2, 2], [3, 5], 9
        ref = dp_vectorized(counts, sizes, target)
        par = parallel_wavefront_dp(
            counts, sizes, target, workers=4, min_parallel_level=10_000
        )
        assert np.array_equal(par.table, ref.table)

    def test_rejects_zero_workers(self):
        with pytest.raises(DPError):
            parallel_wavefront_dp([2], [3], 9, workers=0)

    def test_rejects_arity_mismatch(self):
        with pytest.raises(DPError):
            parallel_wavefront_dp([2, 2], [3], 9)

    def test_shared_memory_cleaned_up(self):
        # Run twice: leaked segments would collide or exhaust /dev/shm.
        for _ in range(2):
            parallel_wavefront_dp([3, 3], [4, 5], 12, workers=2, min_parallel_level=1)
