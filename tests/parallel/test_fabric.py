"""Tests for the shared-memory fill fabric (repro.parallel.fabric)."""

from multiprocessing.shared_memory import SharedMemory

import numpy as np
import pytest

from repro.core.dp_common import pick_table_dtype, unreachable_for
from repro.core.dp_reference import dp_reference
from repro.dptable.plan import build_probe_plan
from repro.errors import DPError
from repro.observability import Tracer
from repro.parallel import fabric as fabric_mod
from repro.parallel.fabric import (
    BlockExecutor,
    HostParallelSolver,
    SharedTableArena,
    shared_fabric,
    shutdown_fabrics,
)


def _assert_unlinked(name: str) -> None:
    with pytest.raises(FileNotFoundError):
        SharedMemory(name=name)


class TestSharedTableArena:
    def test_initialised_to_sentinel_with_origin_zero(self):
        dtype = pick_table_dtype(9)
        with SharedTableArena(12, dtype) as arena:
            assert arena.table.dtype == dtype
            assert arena.table[0] == 0
            assert (arena.table[1:] == unreachable_for(dtype)).all()

    def test_widened_is_owned_int64(self):
        with SharedTableArena(4, pick_table_dtype(3)) as arena:
            wide = arena.widened()
        # Usable after close: the copy does not alias the segment.
        assert wide.dtype == np.int64
        assert wide[0] == 0

    def test_widened_copies_even_when_already_int64(self):
        with SharedTableArena(4, np.dtype(np.int64)) as arena:
            wide = arena.widened()
            assert wide is not arena.table
        assert wide[0] == 0

    def test_close_unlinks_and_is_idempotent(self):
        arena = SharedTableArena(8, np.dtype(np.int16))
        name = arena.name
        arena.close()
        arena.close()
        _assert_unlinked(name)

    def test_error_inside_block_still_unlinks(self):
        with pytest.raises(DPError, match="boom"):
            with SharedTableArena(8, np.dtype(np.int16)) as arena:
                name = arena.name
                raise DPError("boom")
        _assert_unlinked(name)

    def test_rejects_empty_size(self):
        with pytest.raises(DPError):
            SharedTableArena(0, np.dtype(np.int16))


class TestBlockExecutorFill:
    def test_levels_fill_matches_reference_inline(self):
        counts, sizes, target = (3, 2, 2), (3, 5, 7), 14
        plan = build_probe_plan(counts, sizes, target)
        with BlockExecutor(workers=1) as fab:
            flat = fab.fill(plan)
        ref = dp_reference(counts, sizes, target)
        assert np.array_equal(flat.reshape(plan.geometry.shape), ref.table)

    def test_levels_fill_matches_reference_parallel(self):
        counts, sizes, target = (4, 3, 2), (4, 6, 9), 18
        plan = build_probe_plan(counts, sizes, target)
        with BlockExecutor(workers=2) as fab:
            flat = fab.fill(plan, min_parallel_cells=1)
        ref = dp_reference(counts, sizes, target)
        assert np.array_equal(flat.reshape(plan.geometry.shape), ref.table)

    @pytest.mark.parametrize("blocks", [1, 2, 3])
    def test_blocked_fill_matches_reference(self, blocks):
        # Including blocks=1: the degenerate single-block schedule must
        # tile the table exactly like the plain level schedule.
        counts, sizes, target = (3, 3), (4, 5), 12
        plan = build_probe_plan(counts, sizes, target)
        with BlockExecutor(workers=2) as fab:
            flat = fab.fill(plan, blocked_dim=blocks, min_parallel_cells=1)
        ref = dp_reference(counts, sizes, target)
        assert np.array_equal(flat.reshape(plan.geometry.shape), ref.table)

    def test_zero_dim_plan_is_single_final_cell(self):
        plan = build_probe_plan((), (), 5)
        with BlockExecutor(workers=2) as fab:
            flat = fab.fill(plan)
        assert flat.shape == (1,)
        assert flat[0] == 0

    def test_table_is_widened_to_int64(self):
        plan = build_probe_plan((3, 2), (3, 5), 11)
        assert pick_table_dtype(plan.geometry.max_level).itemsize < 8
        with BlockExecutor(workers=1) as fab:
            assert fab.fill(plan).dtype == np.int64

    def test_rejects_zero_workers(self):
        with pytest.raises(DPError):
            BlockExecutor(workers=0)


class TestPlanShipments:
    def test_plan_shipped_once_then_reused(self):
        plan = build_probe_plan((3, 2), (3, 5), 11)
        tracer = Tracer()
        with BlockExecutor(workers=1) as fab:
            with tracer.activate():
                fab.fill(plan)
                fab.fill(plan)
        assert tracer.counters.get("fabric.plan.shipped") == 1
        assert tracer.counters.get("fabric.plan.reused") == 1

    def test_levels_and_blocked_are_distinct_shipments(self):
        plan = build_probe_plan((3, 3), (4, 5), 12)
        tracer = Tracer()
        with BlockExecutor(workers=1) as fab:
            with tracer.activate():
                fab.fill(plan)
                fab.fill(plan, blocked_dim=2)
        assert tracer.counters.get("fabric.plan.shipped") == 2
        assert "fabric.plan.reused" not in tracer.counters

    def test_lru_evicts_and_unlinks_oldest_shipment(self):
        plan_a = build_probe_plan((3, 2), (3, 5), 11)
        plan_b = build_probe_plan((2, 2), (4, 7), 13)
        with BlockExecutor(workers=1, max_plans=1) as fab:
            fab.fill(plan_a)
            name_a = next(iter(fab._shipments.values())).name
            fab.fill(plan_b)
            assert len(fab._shipments) == 1
            _assert_unlinked(name_a)

    def test_close_unlinks_every_shipment(self):
        plan = build_probe_plan((3, 2), (3, 5), 11)
        fab = BlockExecutor(workers=1)
        fab.fill(plan)
        name = next(iter(fab._shipments.values())).name
        fab.close()
        _assert_unlinked(name)
        assert fab._shipments == {}


class TestExecutorLifecycle:
    def test_pool_starts_lazily_and_only_when_needed(self):
        plan = build_probe_plan((3, 2), (3, 5), 11)
        with BlockExecutor(workers=2) as fab:
            assert not fab.alive
            fab.fill(plan, min_parallel_cells=10_000)  # all waves inline
            assert not fab.alive
            fab.fill(plan, min_parallel_cells=1)
            assert fab.alive

    def test_close_is_idempotent_and_executor_stays_reusable(self):
        counts, sizes, target = (3, 3), (4, 5), 12
        plan = build_probe_plan(counts, sizes, target)
        ref = dp_reference(counts, sizes, target)
        fab = BlockExecutor(workers=2)
        try:
            fab.fill(plan, min_parallel_cells=1)
            fab.close()
            fab.close()
            assert not fab.alive
            flat = fab.fill(plan, min_parallel_cells=1)  # pool restarts
            assert fab.alive
            assert np.array_equal(flat.reshape(plan.geometry.shape), ref.table)
        finally:
            fab.close()

    def test_force_close_terminates_pool(self):
        plan = build_probe_plan((3, 3), (4, 5), 12)
        fab = BlockExecutor(workers=2)
        fab.fill(plan, min_parallel_cells=1)
        fab.close(force=True)
        assert not fab.alive

    def test_fill_error_does_not_leak_table_segment(self, monkeypatch):
        plan = build_probe_plan((3, 3), (4, 5), 12)
        created = []
        real_shm = fabric_mod.SharedMemory

        def tracking_shm(*args, **kwargs):
            segment = real_shm(*args, **kwargs)
            if kwargs.get("create"):
                created.append(segment.name)
            return segment

        def exploding_fill(*args, **kwargs):
            raise DPError("injected mid-fill failure")

        monkeypatch.setattr(fabric_mod, "SharedMemory", tracking_shm)
        monkeypatch.setattr(fabric_mod, "_fill_range", exploding_fill)
        fab = BlockExecutor(workers=1)
        with pytest.raises(DPError, match="injected"):
            fab.fill(plan)
        assert len(created) == 2  # shipment, then table arena
        _assert_unlinked(created[1])  # arena gone the moment fill unwinds
        fab.close()
        _assert_unlinked(created[0])  # shipment gone at the latest on close


class TestSharedFabrics:
    def test_same_worker_count_shares_one_executor(self):
        try:
            assert shared_fabric(2) is shared_fabric(2)
            assert shared_fabric(2) is not shared_fabric(3)
        finally:
            shutdown_fabrics()

    def test_shutdown_reports_live_pools_and_leaves_reusable(self):
        plan = build_probe_plan((3, 3), (4, 5), 12)
        try:
            fab = shared_fabric(2)
            fab.fill(plan, min_parallel_cells=1)
            assert shutdown_fabrics() >= 1
            assert not fab.alive
            assert shutdown_fabrics() == 0
            flat = fab.fill(plan, min_parallel_cells=1)
            assert flat.size == plan.geometry.size
        finally:
            shutdown_fabrics()

    def test_rejects_zero_workers(self):
        with pytest.raises(DPError):
            shared_fabric(0)


class TestHostParallelSolver:
    def test_satisfies_dp_solver_protocol(self):
        with BlockExecutor(workers=1) as fab:
            solver = HostParallelSolver(workers=1, fill_fabric=fab)
            result = solver([3, 2], [3, 5], 11)
        ref = dp_reference([3, 2], [3, 5], 11)
        assert np.array_equal(result.table, ref.table)

    def test_name_reflects_workers(self):
        with BlockExecutor(workers=3) as fab:
            assert HostParallelSolver(workers=3, fill_fabric=fab).name == "hostpar-3"

    def test_degenerate_no_long_jobs(self):
        with BlockExecutor(workers=1) as fab:
            result = HostParallelSolver(workers=1, fill_fabric=fab)([], [], 10)
        assert result.opt == 0

    def test_rejects_arity_mismatch(self):
        with BlockExecutor(workers=1) as fab:
            solver = HostParallelSolver(workers=1, fill_fabric=fab)
            with pytest.raises(DPError):
                solver([2, 2], [3], 9)

    def test_rejects_zero_workers(self):
        with pytest.raises(DPError):
            HostParallelSolver(workers=0)

    def test_uses_bound_plan_cache(self):
        from repro.core.probe_cache import PlanCache

        cache = PlanCache()
        with BlockExecutor(workers=1) as fab:
            solver = HostParallelSolver(workers=1, plan_cache=cache, fill_fabric=fab)
            solver([3, 2], [3, 5], 11)
            solver([3, 2], [3, 5], 11)
        assert cache.stats.hits.get("plan") == 1
        assert cache.stats.misses.get("plan") == 1

    def test_registry_resolves_hostpar_family(self):
        from repro.backends import get_spec, resolve

        spec = get_spec("hostpar-2")
        assert spec.fabric_aware and spec.plan_aware and not spec.simulated
        try:
            solver = resolve("hostpar-2")
            assert solver.name == "hostpar-2"
            result = solver([3, 2], [3, 5], 11)
            assert np.array_equal(result.table, dp_reference([3, 2], [3, 5], 11).table)
        finally:
            shutdown_fabrics()
