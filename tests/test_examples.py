"""Smoke tests: the example scripts must run and uphold their claims.

Each example's ``main()`` is executed in-process (fast ones only; the
longer studies are exercised by the benchmarks).  Failures here mean
the README's promised walkthroughs are broken.
"""

import importlib.util
from pathlib import Path


EXAMPLES = Path(__file__).parent.parent / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "PTAS" in out and "exact optimum" in out

    def test_cluster_batch_scheduling(self, capsys):
        load_example("cluster_batch_scheduling").main()
        out = capsys.readouterr().out
        assert "MULTIFIT" in out and "PTAS eps=0.2" in out

    def test_accuracy_tradeoff(self, capsys):
        load_example("accuracy_tradeoff").main()
        out = capsys.readouterr().out
        assert "accuracy vs DP cost" in out

    def test_knapsack_partitioning(self, capsys):
        load_example("knapsack_partitioning").main()
        out = capsys.readouterr().out
        assert "optimal value" in out and "device-memory saving" in out

    def test_examples_exist_and_have_docstrings(self):
        scripts = sorted(EXAMPLES.glob("*.py"))
        assert len(scripts) >= 5
        for script in scripts:
            text = script.read_text()
            assert text.startswith('"""'), f"{script.name} missing docstring"
            assert '__name__ == "__main__"' in text, f"{script.name} not runnable"
