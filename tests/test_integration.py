"""End-to-end integration scenarios across the whole library.

Each test is a realistic user journey touching several packages at
once, complementing the per-module suites.
"""

import numpy as np
import pytest

from repro import ptas_schedule, uniform_instance
from repro.core.baselines import branch_and_bound_optimal, lpt_schedule
from repro.core.dp_frontier import dp_frontier
from repro.core.improve import improve_schedule
from repro.core.io import dumps_schedule, loads_schedule
from repro.core.rounding import round_instance
from repro.engines import (
    GpuPartitionedEngine,
    HybridEngine,
    OpenMPEngine,
)
from repro.engines.runner import run_ptas_gpu, run_ptas_openmp
from repro.parallel import parallel_wavefront_dp


class TestScheduleAndPolishAndPersist:
    def test_full_pipeline(self, tmp_path):
        inst = uniform_instance(24, 5, low=5, high=60, seed=13)

        # 1. PTAS with the quarter split.
        result = ptas_schedule(inst, eps=0.3, search="quarter")
        # 2. Local-search polish.
        polished = improve_schedule(result.schedule)
        assert polished.schedule.makespan <= result.makespan
        # 3. Serialise, reload, verify.
        text = dumps_schedule(polished.schedule)
        back = loads_schedule(text)
        assert back.makespan == polished.schedule.makespan
        # 4. Optimality sanity: still within the guarantee.
        optimum = branch_and_bound_optimal(inst).makespan
        assert back.makespan <= 1.3 * optimum + 1e-9


class TestEngineConsistencyAcrossThePtas:
    def test_every_engine_drives_the_same_search(self):
        inst = uniform_instance(22, 4, low=10, high=80, seed=17)
        from repro.core.dp_vectorized import dp_vectorized

        targets = []
        for solver in (
            dp_vectorized,
            OpenMPEngine(threads=16),
            GpuPartitionedEngine(dim=5),
            HybridEngine(dim=5),
        ):
            result = ptas_schedule(inst, eps=0.3, dp_solver=solver)
            targets.append(result.final_target)
        assert len(set(targets)) == 1, targets

    def test_runners_agree_with_core_search(self):
        inst = uniform_instance(26, 5, low=10, high=90, seed=19)
        core = ptas_schedule(inst, eps=0.3, search="quarter")
        gpu = run_ptas_gpu(inst, eps=0.3, dim=5)
        omp = run_ptas_openmp(inst, eps=0.3)
        assert gpu.result.final_target == core.final_target
        assert omp.result.final_target == core.final_target


class TestAlternativeSolversAgree:
    def test_frontier_matches_engines_on_real_probe(self):
        inst = uniform_instance(28, 5, low=5, high=70, seed=23)
        rounded = round_instance(inst, 200, 0.3)
        if rounded.dims == 0:
            pytest.skip("probe degenerate for this seed/target")
        engine = GpuPartitionedEngine(dim=4)
        run = engine.run(rounded.counts, rounded.class_sizes, rounded.target)
        assert dp_frontier(
            rounded.counts, rounded.class_sizes, rounded.target
        ) == run.dp_result.opt

    def test_host_parallel_matches_simulated_engines(self):
        inst = uniform_instance(25, 4, low=5, high=60, seed=3)
        rounded = round_instance(inst, 80, 0.3)
        par = parallel_wavefront_dp(
            rounded.counts, rounded.class_sizes, rounded.target, workers=2,
            min_parallel_level=64,
        )
        eng = OpenMPEngine(threads=16).run(
            rounded.counts, rounded.class_sizes, rounded.target
        )
        assert np.array_equal(par.table, eng.dp_result.table)


class TestGuaranteeUnderPolishAndBaselines:
    def test_polish_narrows_the_gap_to_lpt(self):
        # LPT is a strong heuristic on uniform instances; the polished
        # PTAS will not usually beat it (that is honest — the PTAS's
        # value is the *guarantee*).  But the polish must help the raw
        # PTAS schedule, and the polished result must stay close to LPT.
        improved = 0
        for seed in range(6):
            inst = uniform_instance(18, 4, low=1, high=50, seed=40 + seed)
            raw = ptas_schedule(inst, eps=0.3).schedule
            polished = improve_schedule(raw).schedule.makespan
            lpt = lpt_schedule(inst).makespan
            assert polished <= raw.makespan
            assert polished <= 1.15 * lpt, (seed, polished, lpt)
            if polished < raw.makespan:
                improved += 1
        assert improved >= 3  # the polish routinely finds gains
