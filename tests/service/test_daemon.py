"""Tests for the always-on scheduling daemon (``repro.service.daemon``).

Coalescing has its own module (``test_coalescing.py``); this one covers
the rest of the service contract: bound-first streaming, priority
dispatch, tenant quotas, lifecycle (clean and dirty shutdown), result
determinism against the one-shot front-ends, and the introspection
snapshot.  No pytest-asyncio here — each test owns its loop via
``asyncio.run``.
"""

import asyncio
import threading

import pytest

from repro.core.baselines import lpt_schedule, multifit_schedule
from repro.core.instance import uniform_instance
from repro.core.ptas import ptas_schedule
from repro.errors import (
    InvalidInstanceError,
    QuotaExceededError,
    ServiceClosedError,
)
from repro.resilience import TenantQuota
from repro.service import (
    BoundResult,
    Priority,
    SchedulingService,
)


@pytest.fixture(scope="module")
def fleet():
    return [
        uniform_instance(18 + 2 * i, 4, low=5, high=60, seed=300 + i)
        for i in range(4)
    ]


class GatedPipeline:
    """Wrap a service's pipeline so runs block until the gate opens.

    Lets a test hold the single worker busy (to queue work behind it,
    to exercise quotas, or to force a shutdown timeout) while recording
    the order requests actually executed in.
    """

    def __init__(self, service: SchedulingService) -> None:
        self.gate = threading.Event()
        self.order = []
        self._run = service.pipeline.run
        service.pipeline.run = self

    def __call__(self, request):
        assert self.gate.wait(timeout=10), "test gate never opened"
        self.order.append(request.name)
        return self._run(request)


class TestStreaming:
    def test_bound_resolves_before_submit_returns(self, fleet):
        async def scenario():
            async with SchedulingService(workers=2) as svc:
                handle = await svc.submit(fleet[0])
                assert handle.bound.done()  # before any pipeline work
                assert not handle.refined.done()
                bound = handle.bound.result()
                await handle.result()
            return bound

        bound = asyncio.run(scenario())
        assert isinstance(bound, BoundResult)
        assert bound.served_by in ("lpt", "multifit")

    def test_stream_yields_bound_then_refined(self, fleet):
        async def scenario():
            async with SchedulingService(workers=2) as svc:
                handle = await svc.submit(fleet[0])
                return [stage async for stage, _ in handle.stream()]

        assert asyncio.run(scenario()) == ["bound", "refined"]

    def test_bound_is_best_baseline_with_honest_ratio(self, fleet):
        inst = fleet[1]

        async def scenario():
            async with SchedulingService(workers=1) as svc:
                handle = await svc.submit(inst)
                bound = handle.bound.result()
                refined = await handle.result()
            return bound, refined

        bound, refined = asyncio.run(scenario())
        best = min(lpt_schedule(inst).makespan, multifit_schedule(inst).makespan)
        assert bound.makespan == best
        assert bound.bound > 1.0  # a proven ratio, not a guess
        # The refined stage is the full PTAS answer with its own
        # (1+eps) guarantee.  Note it may occasionally be *worse* than
        # the bound stage at coarse eps (1.3 > 13/11); each stage's
        # guarantee is its own.
        assert not refined.degraded and refined.result is not None
        assert refined.makespan <= refined.result.guarantee_bound()


class TestDeterminism:
    def test_matches_sequential_ptas(self, fleet):
        async def scenario():
            async with SchedulingService(workers=3) as svc:
                handles = [await svc.submit(inst) for inst in fleet]
                return [await h.result() for h in handles]

        results = asyncio.run(scenario())
        for inst, res in zip(fleet, results):
            solo = ptas_schedule(inst, eps=0.3, search="quarter")
            assert res.makespan == solo.makespan
            assert res.result.final_target == solo.final_target
            assert res.result.iterations == solo.iterations

    def test_request_overrides_respected(self, fleet):
        async def scenario():
            async with SchedulingService(workers=1) as svc:
                handle = await svc.submit(
                    fleet[0], eps=0.5, search="bisection", name="custom"
                )
                return await handle.result()

        res = asyncio.run(scenario())
        assert res.name == "custom"
        assert res.request.search == "bisection"
        solo = ptas_schedule(fleet[0], eps=0.5, search="bisection")
        assert res.makespan == solo.makespan


class TestPriorities:
    def test_high_runs_before_earlier_low(self, fleet):
        async def scenario():
            svc = SchedulingService(workers=1)
            gated = GatedPipeline(svc)
            async with svc:
                blocker = await svc.submit(fleet[0], name="blocker")
                # Let the worker dequeue the blocker and park on the
                # gate before anything else is queued behind it.
                await asyncio.sleep(0.02)
                # While the worker is held, LOW arrives before HIGH...
                low = await svc.submit(fleet[1], priority=Priority.LOW, name="low")
                high = await svc.submit(
                    fleet[2], priority=Priority.HIGH, name="high"
                )
                gated.gate.set()
                await asyncio.gather(
                    blocker.result(), low.result(), high.result()
                )
            return gated.order

        order = asyncio.run(scenario())
        # ...but the priority queue dispatches HIGH first.
        assert order == ["blocker", "high", "low"]

    def test_fifo_within_priority_class(self, fleet):
        async def scenario():
            svc = SchedulingService(workers=1)
            gated = GatedPipeline(svc)
            async with svc:
                handles = [
                    await svc.submit(inst, name=f"r{i}")
                    for i, inst in enumerate(fleet)
                ]
                gated.gate.set()
                await asyncio.gather(*(h.result() for h in handles))
            return gated.order

        assert asyncio.run(scenario()) == [f"r{i}" for i in range(len(fleet))]


class TestQuota:
    def test_over_quota_rejected_then_admitted_after_release(self, fleet):
        async def scenario():
            svc = SchedulingService(workers=1, quota=TenantQuota(1))
            gated = GatedPipeline(svc)
            async with svc:
                first = await svc.submit(fleet[0], tenant="acme")
                with pytest.raises(QuotaExceededError):
                    await svc.submit(fleet[1], tenant="acme")
                # Another tenant is unaffected by acme's quota.
                other = await svc.submit(fleet[1], tenant="globex")
                gated.gate.set()
                await asyncio.gather(first.result(), other.result())
                # Slots released on completion: acme may submit again.
                retry = await svc.submit(fleet[2], tenant="acme")
                await retry.result()
                return svc.stats()

        stats = asyncio.run(scenario())
        assert stats["counters"]["rejected.quota"] == 1
        assert stats["tenants"] == {}  # all slots released

    def test_rejected_submission_holds_no_state(self, fleet):
        async def scenario():
            svc = SchedulingService(workers=1, quota=TenantQuota(1))
            gated = GatedPipeline(svc)
            async with svc:
                admitted = await svc.submit(fleet[0], tenant="acme")
                with pytest.raises(QuotaExceededError):
                    await svc.submit(fleet[1], tenant="acme")
                rejected_stats = svc.stats()
                gated.gate.set()
                await admitted.result()
            return rejected_stats

        stats = asyncio.run(scenario())
        # Only the admitted request left any footprint: the rejection
        # consumed no quota slot, no queue entry, no "submitted" count.
        assert stats["counters"]["submitted"] == 1
        assert stats["counters"]["rejected.quota"] == 1
        assert stats["tenants"] == {"acme": 1}
        assert stats["active_requests"] == 1


class TestLifecycle:
    def test_submit_before_start_raises(self, fleet):
        async def scenario():
            svc = SchedulingService()
            with pytest.raises(ServiceClosedError, match="not started"):
                await svc.submit(fleet[0])

        asyncio.run(scenario())

    def test_submit_after_shutdown_raises(self, fleet):
        async def scenario():
            svc = SchedulingService(workers=1)
            await svc.start()
            clean = await svc.shutdown()
            with pytest.raises(ServiceClosedError, match="shutting down"):
                await svc.submit(fleet[0])
            return clean

        assert asyncio.run(scenario()) is True

    def test_drain_completes_queued_work(self, fleet):
        async def scenario():
            svc = SchedulingService(workers=1)
            await svc.start()
            handles = [await svc.submit(inst) for inst in fleet]
            clean = await svc.shutdown(drain=True)
            return clean, [h.refined.result() for h in handles], svc.stats()

        clean, results, stats = asyncio.run(scenario())
        assert clean is True
        assert len(results) == len(fleet)
        assert stats["counters"]["shutdown.clean"] == 1

    def test_dirty_shutdown_times_out_and_cancels(self, fleet):
        async def scenario():
            svc = SchedulingService(workers=1)
            gated = GatedPipeline(svc)
            async with svc:
                stuck = await svc.submit(fleet[0])
                clean = await svc.shutdown(timeout_s=0.05)
                gated.gate.set()  # release the executor thread
                return clean, stuck.refined.cancelled(), svc.stats()

        clean, cancelled, stats = asyncio.run(scenario())
        assert clean is False
        assert cancelled
        assert stats["counters"]["shutdown.timeout"] == 1
        assert stats["active_requests"] == 0

    def test_clean_shutdown_releases_fill_fabric(self, fleet):
        async def scenario():
            svc = SchedulingService(workers=1, fill_workers=2)
            fabric = svc.pipeline.fill_fabric
            assert fabric is not None
            await svc.start()
            pool = fabric._ensure_pool()
            assert pool.submit(abs, -3).result() == 3  # force a worker up
            pool_procs = list(fabric._worker_processes(pool))
            assert pool_procs
            handle = await svc.submit(fleet[0])
            clean = await svc.shutdown(drain=True)
            handle.refined.result()  # drained work still completed
            return clean, fabric.alive, pool_procs, svc.stats()

        clean, alive, pool_procs, stats = asyncio.run(scenario())
        assert clean is True
        assert alive is False
        for proc in pool_procs:
            assert not proc.is_alive()  # no orphaned workers
        assert stats["counters"]["shutdown.clean"] == 1

    def test_dirty_shutdown_force_closes_fill_fabric(self, fleet):
        async def scenario():
            svc = SchedulingService(workers=1, fill_workers=2)
            fabric = svc.pipeline.fill_fabric
            gated = GatedPipeline(svc)
            async with svc:
                fabric._ensure_pool()
                await svc.submit(fleet[0])
                clean = await svc.shutdown(timeout_s=0.05)
                gated.gate.set()
                return clean, fabric.alive, svc.stats()

        clean, alive, stats = asyncio.run(scenario())
        assert clean is False
        assert alive is False  # terminated, not left to drain
        assert stats["counters"]["shutdown.timeout"] == 1

    def test_shutdown_before_start_releases_fill_fabric(self):
        async def scenario():
            svc = SchedulingService(workers=1, fill_workers=2)
            fabric = svc.pipeline.fill_fabric
            fabric._ensure_pool()
            clean = await svc.shutdown()
            return clean, fabric.alive

        clean, alive = asyncio.run(scenario())
        assert clean is True
        assert alive is False

    def test_no_drain_abandons_queued_entries(self, fleet):
        async def scenario():
            svc = SchedulingService(workers=1)
            gated = GatedPipeline(svc)
            async with svc:
                running = await svc.submit(fleet[0])
                queued = await svc.submit(fleet[1])
                shutdown = asyncio.ensure_future(svc.shutdown(drain=False))
                await asyncio.sleep(0.02)  # let the flush run
                gated.gate.set()
                clean = await shutdown
                return (
                    clean,
                    running.refined.cancelled(),
                    queued.refined.cancelled(),
                )

        clean, running_cancelled, queued_cancelled = asyncio.run(scenario())
        assert clean is True
        assert not running_cancelled  # already-running work completes
        assert queued_cancelled  # queued-only work is abandoned

    def test_validation(self):
        with pytest.raises(InvalidInstanceError):
            SchedulingService(workers=0)


class TestStats:
    def test_snapshot_shape_and_counters(self, fleet):
        async def scenario():
            async with SchedulingService(workers=2) as svc:
                handles = [await svc.submit(inst) for inst in fleet]
                await asyncio.gather(*(h.result() for h in handles))
                return svc.stats()

        stats = asyncio.run(scenario())
        for key in (
            "backend", "workers", "accepting", "queue_depth",
            "inflight_keys", "active_requests", "tenants",
            "coalescing_hit_rate", "counters", "latency", "cache",
            "plan_cache", "tracer_counters",
        ):
            assert key in stats, key
        assert stats["counters"]["submitted"] == len(fleet)
        assert stats["counters"]["pipeline.runs"] == len(fleet)
        assert stats["counters"]["bound.served"] == len(fleet)
        assert stats["latency"]["bound"]["count"] == len(fleet)
        assert stats["latency"]["refined"]["count"] == len(fleet)
        for summary in stats["latency"].values():
            assert summary["p50_ms"] <= summary["p95_ms"] <= summary["p99_ms"]
        # Per-request tracers merged into the service-wide aggregate.
        assert stats["tracer_counters"].get("probe.count", 0) > 0

    def test_fabric_stats_empty_without_fill_workers(self, fleet):
        async def scenario():
            async with SchedulingService(workers=1) as svc:
                await (await svc.submit(fleet[0])).result()
                return svc.stats()

        assert asyncio.run(scenario())["fabric"] == {}

    def test_fabric_stats_surface_health_snapshot(self, fleet):
        async def scenario():
            async with SchedulingService(workers=1, fill_workers=2) as svc:
                await (await svc.submit(fleet[0])).result()
                return svc.stats()

        fabric = asyncio.run(scenario())["fabric"]
        assert fabric["workers"] == 2
        assert fabric["start_method"] in ("forkserver", "spawn")
        # Zero-noise: a run with no crashes reports no recovery tallies.
        assert "pool_restarts" not in fabric

    def test_accepting_flag_tracks_lifecycle(self, fleet):
        async def scenario():
            svc = SchedulingService(workers=1)
            before = svc.stats()["accepting"]
            await svc.start()
            during = svc.stats()["accepting"]
            await svc.shutdown()
            after = svc.stats()["accepting"]
            return before, during, after

        assert asyncio.run(scenario()) == (False, True, False)
