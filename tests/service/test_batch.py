"""Tests for the batch scheduling service (``repro.service.batch``)."""

import pytest

from repro.core.instance import uniform_instance
from repro.core.probe_cache import ProbeCache
from repro.core.ptas import ptas_schedule
from repro.errors import BackendError, InvalidInstanceError
from repro.service import BatchReport, BatchRequest, BatchScheduler


@pytest.fixture(scope="module")
def fleet():
    """Six instances with overlapping probe geometry (cache-friendly)."""
    return [
        uniform_instance(20 + 2 * i, 4, low=5, high=60, seed=100 + i)
        for i in range(6)
    ]


class TestDeterminism:
    def test_results_independent_of_worker_count(self, fleet):
        reports = [
            BatchScheduler(workers=w, cache=None).run(fleet)
            for w in (1, 2, 5)
        ]
        base = reports[0]
        for other in reports[1:]:
            assert other.makespans() == base.makespans()
            assert [r.result.final_target for r in other.results] == [
                r.result.final_target for r in base.results
            ]
            assert other.total_probes == base.total_probes
            # Everything but wall-clock tallies (``*_ms``) must match:
            # plan/DP *work* is deterministic, its duration is not.
            def counts(report):
                return {
                    k: v
                    for k, v in report.tracer.counters.items()
                    if not k.endswith("_ms")
                }

            assert counts(other) == counts(base)

    def test_matches_sequential_ptas_schedule(self, fleet):
        report = BatchScheduler(workers=3).run(fleet)
        for inst, req_result in zip(fleet, report.results):
            solo = ptas_schedule(inst, eps=0.3, search="quarter")
            assert req_result.makespan == solo.makespan
            assert req_result.result.final_target == solo.final_target
            assert req_result.result.iterations == solo.iterations

    def test_shared_cache_does_not_change_results(self, fleet):
        cached = BatchScheduler(workers=4).run(fleet)
        uncached = BatchScheduler(workers=4, cache=None).run(fleet)
        assert cached.makespans() == uncached.makespans()

    def test_results_in_request_order(self, fleet):
        report = BatchScheduler(workers=6).run(fleet)
        assert [r.name for r in report.results] == [
            f"request-{i}" for i in range(len(fleet))
        ]


class TestSharedCache:
    def test_cache_stats_aggregate_across_requests(self, fleet):
        scheduler = BatchScheduler(workers=2)
        report = scheduler.run(fleet)
        stats = report.cache_stats
        assert stats is not None
        # Every DP fill of the batch goes through the shared cache, so
        # lookups must cover the batch's probes.
        dp_lookups = stats.hits.get("dp", 0) + stats.misses.get("dp", 0)
        assert dp_lookups >= report.total_probes
        # Overlapping geometry across requests must produce actual
        # sharing — the reason the service exists.
        assert stats.total_hits > 0

    def test_cache_disabled_reports_no_stats(self, fleet):
        report = BatchScheduler(workers=2, cache=None).run(fleet[:2])
        assert report.cache_stats is None

    def test_explicit_cache_is_reused_across_batches(self, fleet):
        cache = ProbeCache()
        scheduler = BatchScheduler(workers=2, cache=cache)
        scheduler.run(fleet[:3])
        first = cache.stats.hits.get("dp", 0)
        scheduler.run(fleet[:3])  # identical batch: all DP fills hit
        assert cache.stats.hits.get("dp", 0) > first


class TestSharedPlanCache:
    def test_plan_aware_backend_reports_plan_stats(self, fleet):
        # Probe caching off so every probe reaches the engine: with it
        # on, DP-table hits short-circuit the solver and the plan cache
        # only sees the residual misses.
        scheduler = BatchScheduler(backend="serial", workers=2, cache=None)
        report = scheduler.run(fleet)
        stats = report.plan_cache_stats
        assert stats is not None
        assert stats.hits.get("plan", 0) > 0  # probes overlap across requests
        assert report.as_dict()["plan_cache"] == stats.as_dict()

    def test_pure_backend_reports_no_plan_stats(self, fleet):
        # "vectorized" is not plan-aware: the shared plan cache stays
        # untouched and the report says so.
        report = BatchScheduler(backend="vectorized", workers=2).run(fleet[:2])
        assert report.plan_cache_stats is None
        assert report.as_dict()["plan_cache"] == {}

    def test_plan_cache_persists_across_batches(self, fleet):
        scheduler = BatchScheduler(backend="serial", workers=2, cache=None)
        scheduler.run(fleet[:3])
        misses_after_first = scheduler.plan_cache.stats.misses.get("plan", 0)
        scheduler.run(fleet[:3])
        # The second identical batch resolves every plan from cache.
        assert (
            scheduler.plan_cache.stats.misses.get("plan", 0)
            == misses_after_first
        )

    def test_plan_sharing_does_not_change_results(self, fleet):
        shared = BatchScheduler(backend="serial", workers=3).run(fleet)
        for inst, req_result in zip(fleet, shared.results):
            solo = ptas_schedule(inst, eps=0.3, search="quarter")
            assert req_result.makespan == solo.makespan
            assert req_result.result.final_target == solo.final_target


class TestReport:
    def test_report_structure(self, fleet):
        report = BatchScheduler(workers=2, eps=0.2).run(fleet[:3])
        assert isinstance(report, BatchReport)
        assert report.workers == 2 and report.backend == "auto"
        assert report.total_iterations >= len(report.results)
        assert report.wall_s > 0
        for r in report.results:
            assert r.wall_s > 0 and r.simulated_s == 0.0
            assert r.request.eps == 0.2
        payload = report.as_dict()
        assert payload["total_probes"] == report.total_probes
        assert len(payload["requests"]) == 3
        assert payload["requests"][0]["makespan"] == report.results[0].makespan

    def test_merged_tracer_covers_every_probe(self, fleet):
        report = BatchScheduler(workers=3).run(fleet)
        assert len(report.tracer.probes) == report.total_probes

    def test_simulated_backend_accounting(self, fleet):
        report = BatchScheduler(backend="omp-16", workers=2, cache=None).run(
            fleet[:2]
        )
        assert report.total_simulated_s > 0
        for r in report.results:
            assert r.simulated_s > 0


class TestRequests:
    def test_explicit_requests_keep_overrides(self, fleet):
        requests = [
            BatchRequest(instance=fleet[0], eps=0.5, search="bisection", name="a"),
            BatchRequest(instance=fleet[1], backend="serial"),
        ]
        report = BatchScheduler(workers=2).run(requests)
        assert report.results[0].name == "a"
        assert report.results[0].request.search == "bisection"
        assert report.results[1].name == "request-1"
        assert report.results[1].simulated_s > 0  # serial engine charged

    def test_empty_batch_returns_empty_report(self):
        report = BatchScheduler().run([])
        assert isinstance(report, BatchReport)
        assert report.results == [] and report.total_probes == 0
        assert report.degraded_count == 0
        assert report.total_iterations == 0
        assert report.makespans() == {}
        # The empty report is still fully formed: serializable, with
        # the batch-level fields present and no special-casing needed
        # downstream.
        payload = report.as_dict()
        assert payload["requests"] == []
        assert payload["backend"] == "auto"
        assert report.wall_s >= 0


class TestFillFabricLifecycle:
    def test_fabric_pool_released_on_context_exit(self, fleet):
        scheduler = BatchScheduler(workers=2, fill_workers=2)
        fabric = scheduler.pipeline.fill_fabric
        assert fabric is not None and fabric.workers == 2
        with scheduler:
            # Start the pool explicitly — the fleet's waves are small
            # enough to run inline, and the lifecycle contract must
            # hold regardless of whether any wave dispatched.  Workers
            # spawn lazily on submit, so run one trivial task to force
            # at least one real process up.
            pool = fabric._ensure_pool()
            assert pool.submit(abs, -3).result() == 3
            pool_procs = list(fabric._worker_processes(pool))
            assert pool_procs
            report = scheduler.run(fleet[:2])
        assert not fabric.alive
        for proc in pool_procs:
            assert not proc.is_alive()  # no orphaned workers
        assert report.degraded_count == 0

    def test_results_identical_with_and_without_fabric(self, fleet):
        plain = BatchScheduler(workers=1).run(fleet[:3])
        with BatchScheduler(workers=1, fill_workers=2) as scheduler:
            fabricated = scheduler.run(fleet[:3])
        assert fabricated.makespans() == plain.makespans()

    def test_close_without_fill_workers_is_a_no_op(self, fleet):
        scheduler = BatchScheduler(workers=1)
        assert scheduler.pipeline.fill_fabric is None
        scheduler.close()
        scheduler.close(force=True)
        assert scheduler.run(fleet[:1]).degraded_count == 0

    def test_rejects_bad_fill_worker_count(self):
        with pytest.raises(BackendError):
            BatchScheduler(fill_workers=0)


class TestFabricHealthReporting:
    def test_report_omits_fabric_without_fill_workers(self, fleet):
        report = BatchScheduler(workers=1).run(fleet[:1])
        assert report.fabric is None
        assert "fabric" not in report.as_dict()

    def test_report_carries_fabric_snapshot(self, fleet):
        with BatchScheduler(workers=1, fill_workers=2) as scheduler:
            report = scheduler.run(fleet[:2])
        fabric = report.as_dict()["fabric"]
        assert fabric["workers"] == 2
        assert fabric["start_method"] in ("forkserver", "spawn")
        # Zero-noise convention: a quiet run reports no recovery tallies.
        assert "pool_restarts" not in fabric
        assert "workers_killed" not in fabric

    def test_chaos_kills_leave_results_identical(self, fleet):
        from repro.resilience import FaultInjector

        # fill_min_cells=1 forces every wave across the process
        # boundary so the fabric.worker site can deliver real SIGKILLs.
        requests = fleet[:2]
        with BatchScheduler(
            backend="hostpar-2",
            workers=1,
            fill_workers=2,
            fill_min_cells=1,
        ) as scheduler:
            clean = scheduler.run(requests)
        injector = FaultInjector(
            seed=11,
            rate=0.5,
            kinds=("crash",),
            sites=("fabric.worker",),
            max_failures=1,
        )
        with BatchScheduler(
            backend="hostpar-2",
            workers=1,
            fill_workers=2,
            fill_min_cells=1,
            faults=injector,
        ) as scheduler:
            chaotic = scheduler.run(requests)
        # Recovery is invisible in the results: same makespans, nothing
        # degraded, and the health snapshot shows the kills happened.
        assert chaotic.makespans() == clean.makespans()
        assert chaotic.degraded_count == 0
        fabric = chaotic.as_dict()["fabric"]
        assert fabric["workers_killed"] >= 1
        assert fabric["pool_restarts"] >= 1


class TestValidation:
    def test_rejects_bad_worker_count(self):
        with pytest.raises(InvalidInstanceError):
            BatchScheduler(workers=0)

    def test_rejects_unknown_backend_up_front(self):
        with pytest.raises(BackendError):
            BatchScheduler(backend="tpu-v5")

    def test_rejects_decision_only_backend_up_front(self):
        with pytest.raises(BackendError, match="decision-only"):
            BatchScheduler(backend="frontier-decision")

    def test_rejects_decision_only_request_override(self, fleet):
        scheduler = BatchScheduler(workers=1)
        requests = [BatchRequest(instance=fleet[0], backend="frontier-decision")]
        with pytest.raises(BackendError, match="decision-only"):
            scheduler.run(requests)
