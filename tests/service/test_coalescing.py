"""Request coalescing: N identical in-flight requests, one pipeline run.

The coalescing key (:func:`repro.core.probe_cache.
normalized_request_key`) admits a request to an in-flight twin's run
when instance, accuracy ``k = ceil(1/eps)``, search strategy, and
backend all match.  These tests pin down the contract from the issue:
exactly one pipeline execution (verified by the ``pipeline.runs``
counter), N identical deliveries, survival under injected faults (all
waiters get the same degraded answer), and waiter cancellation that
never disturbs the shared run.
"""

import asyncio
import threading

from repro.core.instance import uniform_instance
from repro.resilience import FaultInjector
from repro.service import Priority, SchedulingService


def make_instance(seed=42):
    return uniform_instance(20, 4, low=5, high=60, seed=seed)


class Gate:
    """Hold pipeline runs on a threading gate until the test releases it.

    Guarantees the coalescing window: every duplicate submitted while
    the gate is shut provably lands while its twin is in flight.
    """

    def __init__(self, service: SchedulingService) -> None:
        self.event = threading.Event()
        self.runs = 0
        self._run = service.pipeline.run
        service.pipeline.run = self

    def __call__(self, request):
        assert self.event.wait(timeout=10), "test gate never opened"
        self.runs += 1
        return self._run(request)


async def submit_identical(svc, n, **kwargs):
    inst = make_instance()
    return [
        await svc.submit(inst, name=f"caller-{i}", **kwargs) for i in range(n)
    ]


class TestOnePipelineRun:
    def test_n_identical_requests_one_run_n_results(self):
        N = 5

        async def scenario():
            svc = SchedulingService(workers=3)
            gate = Gate(svc)
            async with svc:
                handles = await submit_identical(svc, N)
                gate.event.set()
                results = await asyncio.gather(*(h.result() for h in handles))
            return svc, gate, handles, results

        svc, gate, handles, results = asyncio.run(scenario())
        # Exactly one pipeline execution — the tracer counter is the
        # acceptance criterion, the gate's own tally corroborates it.
        assert svc.metrics.get("pipeline.runs") == 1
        assert gate.runs == 1
        assert svc.metrics.get("coalesced") == N - 1
        assert [h.coalesced for h in handles] == [False] + [True] * (N - 1)
        # N identical results: same makespan, same assignment, each
        # delivered under the caller's own name.
        assert len({r.makespan for r in results}) == 1
        base = results[0].result
        for i, r in enumerate(results):
            assert r.name == f"caller-{i}"
            assert r.result.final_target == base.final_target
            assert r.result.schedule.assignment == base.schedule.assignment

    def test_bound_stage_shared_across_waiters(self):
        async def scenario():
            svc = SchedulingService(workers=2)
            gate = Gate(svc)
            async with svc:
                handles = await submit_identical(svc, 3)
                bounds = [h.bound.result() for h in handles]  # already done
                gate.event.set()
                await asyncio.gather(*(h.result() for h in handles))
            return svc, bounds

        svc, bounds = asyncio.run(scenario())
        # One baseline computation served every waiter's bound future.
        assert svc.metrics.get("bound.served") == 1
        assert all(b is bounds[0] for b in bounds)

    def test_same_accuracy_k_coalesces_across_eps(self):
        async def scenario():
            svc = SchedulingService(workers=2)
            gate = Gate(svc)
            inst = make_instance()
            async with svc:
                # ceil(1/0.3) == ceil(1/0.26) == 4: same accuracy class.
                a = await svc.submit(inst, eps=0.3, name="a")
                b = await svc.submit(inst, eps=0.26, name="b")
                # ceil(1/0.5) == 2: different class, no coalescing.
                c = await svc.submit(inst, eps=0.5, name="c")
                gate.event.set()
                ra, rb, rc = await asyncio.gather(
                    a.result(), b.result(), c.result()
                )
            return svc, b, c, ra, rb, rc

        svc, b, c, ra, rb, rc = asyncio.run(scenario())
        assert b.coalesced and not c.coalesced
        assert svc.metrics.get("pipeline.runs") == 2
        # The shared schedule is re-stamped with each waiter's own eps,
        # so the proven guarantee reflects what each caller asked for.
        assert ra.makespan == rb.makespan
        assert ra.request.eps == 0.3 and rb.request.eps == 0.26
        assert rb.result.eps == 0.26
        assert rb.result.guarantee_bound() < ra.result.guarantee_bound()

    def test_different_backend_does_not_coalesce(self):
        async def scenario():
            svc = SchedulingService(workers=2)
            gate = Gate(svc)
            inst = make_instance()
            async with svc:
                a = await svc.submit(inst, backend="vectorized")
                b = await svc.submit(inst, backend="serial")
                gate.event.set()
                await asyncio.gather(a.result(), b.result())
            return svc, b

        svc, b = asyncio.run(scenario())
        assert not b.coalesced
        assert svc.metrics.get("pipeline.runs") == 2

    def test_completed_request_does_not_coalesce_resubmission(self):
        async def scenario():
            async with SchedulingService(workers=1) as svc:
                first = await svc.submit(make_instance())
                await first.result()  # in-flight table now empty
                second = await svc.submit(make_instance())
                await second.result()
            return svc, second

        svc, second = asyncio.run(scenario())
        # Coalescing is an in-flight mechanism; after completion the
        # resubmission runs its own pipeline (the probe *cache* is what
        # makes that second run cheap).
        assert not second.coalesced
        assert svc.metrics.get("pipeline.runs") == 2


class TestUnderFaults:
    def test_waiters_share_one_degraded_result(self):
        N = 4

        async def scenario():
            # Poison every backend the "fallback" chain tries: the one
            # shared pipeline run degrades, and every waiter must get
            # the same bounded LPT/MULTIFIT answer.
            faults = FaultInjector(
                seed=1, rate=1.0, kinds=("oom",),
                sites=("dp.auto", "dp.sweep", "dp.vectorized"),
                max_failures=10**9,
            )
            svc = SchedulingService(workers=2, backend="fallback", faults=faults)
            gate = Gate(svc)
            async with svc:
                handles = await submit_identical(svc, N)
                gate.event.set()
                results = await asyncio.gather(*(h.result() for h in handles))
            return svc, results

        svc, results = asyncio.run(scenario())
        assert svc.metrics.get("pipeline.runs") == 1
        assert svc.metrics.get("completed.degraded") == 1  # one shared run
        assert len(results) == N
        for r in results:
            assert r.degraded
            assert r.degraded_by in ("lpt", "multifit")
            assert r.makespan == results[0].makespan
            assert r.fault_chain  # the failure story travels to every waiter

    def test_transient_fault_retried_once_for_all_waiters(self):
        async def scenario():
            # One transient dperror: the retry policy (auto-armed with
            # the injector) absorbs it inside the single shared run.
            faults = FaultInjector(
                seed=3, rate=1.0, kinds=("dperror",), max_failures=1
            )
            svc = SchedulingService(workers=2, faults=faults)
            gate = Gate(svc)
            async with svc:
                handles = await submit_identical(svc, 3)
                gate.event.set()
                results = await asyncio.gather(*(h.result() for h in handles))
            return svc, results

        svc, results = asyncio.run(scenario())
        assert svc.metrics.get("pipeline.runs") == 1
        assert all(not r.degraded for r in results)
        assert len({r.makespan for r in results}) == 1


class TestCancellation:
    def test_cancelling_one_waiter_leaves_others_served(self):
        N = 4

        async def scenario():
            svc = SchedulingService(workers=2)
            gate = Gate(svc)
            async with svc:
                handles = await submit_identical(svc, N)
                handles[2].cancel()  # one caller walks away
                gate.event.set()
                survivors = [h for i, h in enumerate(handles) if i != 2]
                results = await asyncio.gather(
                    *(h.result() for h in survivors)
                )
            return svc, gate, handles, results

        svc, gate, handles, results = asyncio.run(scenario())
        # The shared run still executed exactly once and served the
        # other three callers identical results.
        assert gate.runs == 1
        assert handles[2].refined.cancelled()
        assert len(results) == N - 1
        assert len({r.makespan for r in results}) == 1
        assert svc.metrics.get("delivery.skipped.cancelled") == 1

    def test_cancelling_primary_does_not_kill_coalesced_waiters(self):
        async def scenario():
            svc = SchedulingService(workers=2)
            gate = Gate(svc)
            async with svc:
                handles = await submit_identical(svc, 3)
                handles[0].cancel()  # the *primary* — run must survive
                gate.event.set()
                results = await asyncio.gather(
                    *(h.result() for h in handles[1:])
                )
            return handles, results

        handles, results = asyncio.run(scenario())
        assert handles[0].refined.cancelled()
        assert not handles[0].coalesced and all(h.coalesced for h in handles[1:])
        assert len({r.makespan for r in results}) == 1

    def test_priorities_do_not_split_coalescing(self):
        async def scenario():
            svc = SchedulingService(workers=2)
            gate = Gate(svc)
            inst = make_instance()
            async with svc:
                a = await svc.submit(inst, priority=Priority.LOW)
                b = await svc.submit(inst, priority=Priority.HIGH)
                gate.event.set()
                await asyncio.gather(a.result(), b.result())
            return svc, b

        svc, b = asyncio.run(scenario())
        # Priority orders dispatch; identity is the coalescing key.  A
        # HIGH twin attaches to the LOW run rather than queue-jumping
        # into a duplicate execution.
        assert b.coalesced
        assert svc.metrics.get("pipeline.runs") == 1
