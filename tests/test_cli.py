"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestSchedule:
    def test_inline_times(self, capsys):
        code = main(["schedule", "--machines", "3", "--times", "27", "19", "19",
                     "15", "12", "8", "8", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "makespan" in out and "loads" in out

    def test_random_instance(self, capsys):
        code = main(["schedule", "--machines", "4", "--random", "20", "--seed", "1"])
        assert code == 0
        assert "PTAS" in capsys.readouterr().out

    def test_baselines_flag(self, capsys):
        code = main(["schedule", "--machines", "2", "--times", "5", "6", "7",
                     "--baselines"])
        assert code == 0
        out = capsys.readouterr().out
        assert "LPT" in out and "MULTIFIT" in out

    def test_search_choice(self, capsys):
        code = main(["schedule", "--machines", "2", "--times", "5", "6", "7",
                     "--search", "bisection"])
        assert code == 0
        assert "bisection" in capsys.readouterr().out

    def test_missing_input_errors(self, capsys):
        code = main(["schedule", "--machines", "2"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_deterministic_with_seed(self, capsys):
        main(["schedule", "--machines", "3", "--random", "15", "--seed", "9"])
        first = capsys.readouterr().out
        main(["schedule", "--machines", "3", "--random", "15", "--seed", "9"])
        assert capsys.readouterr().out == first

    def test_fill_workers_does_not_change_output(self, capsys):
        base = ["schedule", "--machines", "3", "--random", "15", "--seed", "9",
                "--backend", "wavefront-2"]
        assert main(base) == 0
        plain = capsys.readouterr().out
        assert main(base + ["--fill-workers", "2"]) == 0
        assert capsys.readouterr().out == plain

    def test_fill_workers_rejects_zero(self, capsys):
        code = main(["schedule", "--machines", "2", "--times", "5", "6", "7",
                     "--fill-workers", "0"])
        assert code == 2
        assert "--fill-workers" in capsys.readouterr().err


class TestProfiling:
    ARGS = ["schedule", "--machines", "4", "--random", "25", "--seed", "6"]

    def test_profile_prints_phases_and_counters(self, capsys):
        code = main(self.ARGS + ["--profile"])
        assert code == 0
        out = capsys.readouterr().out
        assert "== profile" in out
        assert "probe.dp" in out
        assert "probe.count" in out

    def test_cache_flag_with_profile_prints_stats(self, capsys):
        code = main(self.ARGS + ["--cache", "--profile"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cache: CacheStats(" in out
        assert "cache.dp" in out  # cache counters flow into the tracer

    def test_trace_json_writes_one_record_per_probe(self, tmp_path, capsys):
        import json

        path = tmp_path / "trace.json"
        code = main(self.ARGS + ["--trace-json", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        payload = json.loads(path.read_text())
        assert set(payload) == {"phases", "counters", "probes"}
        # "N DP probes" printed by the schedule summary must match.
        probes_printed = int(out.split(" DP probes")[0].rsplit(" ", 1)[-1])
        assert len(payload["probes"]) == probes_printed

    def test_cache_does_not_change_output(self, capsys):
        main(self.ARGS)
        plain = capsys.readouterr().out
        main(self.ARGS + ["--cache"])
        cached = capsys.readouterr().out
        assert cached == plain


class TestBackendFlag:
    ARGS = ["schedule", "--machines", "4", "--random", "25", "--seed", "6"]

    def test_simulated_backend_reports_accounting(self, capsys):
        code = main(self.ARGS + ["--backend", "gpu-dim6"])
        assert code == 0
        out = capsys.readouterr().out
        assert "backend gpu-dim6: simulated" in out
        assert "rounds" in out and "device-streams" in out

    def test_backend_does_not_change_makespan(self, capsys):
        main(self.ARGS)
        default_out = capsys.readouterr().out
        makespan_line = next(
            line for line in default_out.splitlines() if "makespan" in line
        )
        for backend in ("frontier", "serial", "omp-28", "hybrid"):
            code = main(self.ARGS + ["--backend", backend])
            assert code == 0
            assert makespan_line in capsys.readouterr().out, backend

    def test_family_backend_resolves(self, capsys):
        code = main(self.ARGS + ["--backend", "omp-40"])
        assert code == 0
        assert "backend omp-40" in capsys.readouterr().out

    def test_pure_backend_prints_no_accounting(self, capsys):
        code = main(self.ARGS + ["--backend", "vectorized"])
        assert code == 0
        assert "simulated" not in capsys.readouterr().out

    def test_unknown_backend_exits_2_listing_names(self, capsys):
        code = main(self.ARGS + ["--backend", "tpu-v5"])
        assert code == 2
        err = capsys.readouterr().err
        assert "tpu-v5" in err
        # The error must teach the valid vocabulary.
        assert "vectorized" in err and "gpu-dim6" in err

    def test_backend_with_profile_and_cache(self, capsys):
        code = main(self.ARGS + ["--backend", "gpu-dim6", "--profile", "--cache"])
        assert code == 0
        out = capsys.readouterr().out
        assert "backend gpu-dim6: simulated" in out
        assert "== profile" in out


class TestEngines:
    def test_runs_and_agrees(self, capsys):
        code = main(["engines", "--jobs", "25", "--machines", "4", "--seed", "3",
                     "--dims", "3", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "identical across engines" in out
        assert "gpu-dim5" in out

    def test_explicit_target(self, capsys):
        code = main(["engines", "--jobs", "20", "--machines", "4", "--seed", "2",
                     "--target", "150"])
        assert code == 0
        assert "T=150" in capsys.readouterr().out

    def test_iterates_the_registry(self, capsys):
        # Every registered simulated backend appears in the comparison
        # (the gpu-dim family expanded from --dims).
        code = main(["engines", "--jobs", "25", "--machines", "4", "--seed", "3",
                     "--dims", "6"])
        assert code == 0
        out = capsys.readouterr().out
        for name in ("serial", "omp-16", "omp-28", "gpu-naive", "gpu-dim6",
                     "hybrid"):
            assert name in out, name


class TestExperiment:
    def test_fig2(self, capsys):
        assert main(["experiment", "fig2"]) == 0
        assert "block_level" in capsys.readouterr().out

    def test_tables(self, capsys):
        assert main(["experiment", "tables"]) == 0
        assert "match_dim3" in capsys.readouterr().out

    def test_fig4(self, capsys):
        assert main(["experiment", "fig4"]) == 0
        assert "partition_dim" in capsys.readouterr().out

    def test_unknown_exhibit_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])


class TestFileIO:
    def test_from_file_and_save(self, tmp_path, capsys):
        inst_path = tmp_path / "inst.txt"
        sched_path = tmp_path / "out.txt"
        inst_path.write_text("machines 3\ntimes 27 19 19 15 12 8 8 5\n")
        code = main(["schedule", "--from-file", str(inst_path),
                     "--save-schedule", str(sched_path)])
        assert code == 0
        from repro.core.io import load_schedule

        schedule = load_schedule(sched_path)
        assert schedule.makespan > 0

    def test_machines_required_without_file(self, capsys):
        code = main(["schedule", "--times", "1", "2"])
        assert code == 2
        assert "machines" in capsys.readouterr().err

    def test_census_exhibit(self, capsys):
        assert main(["experiment", "census"]) == 0
        assert "census" in capsys.readouterr().out.lower() or True

    def test_fig1_exhibit(self, capsys):
        assert main(["experiment", "fig1"]) == 0
        assert "core" in capsys.readouterr().out


class TestExitCodes:
    """The documented exit-code taxonomy (docs/RELIABILITY.md)."""

    def test_invalid_instance_is_3(self, capsys):
        code = main(["schedule", "--machines", "0", "--times", "5", "6"])
        assert code == 3
        assert "invalid instance" in capsys.readouterr().err

    def test_memory_budget_exceeded_is_5(self, capsys):
        code = main(["schedule", "--machines", "3", "--times", "5", "7", "3",
                     "9", "4", "6", "2", "--memory-budget", "16"])
        assert code == 5
        assert "memory budget" in capsys.readouterr().err

    def test_backend_failure_is_4(self, capsys):
        # Deterministic oom on every dp fill, no retries to absorb it.
        code = main(["schedule", "--machines", "3", "--times", "5", "7", "3",
                     "9", "4", "6", "2", "--inject-faults",
                     "seed=0,rate=1.0,kinds=oom,sites=dp,max=1000000"])
        assert code == 4
        assert "backend failure" in capsys.readouterr().err

    def test_unknown_backend_stays_usage_error(self, capsys):
        code = main(["schedule", "--machines", "2", "--times", "5", "6",
                     "--backend", "no-such-backend"])
        assert code == 2

    def test_byte_suffix_parsing(self):
        from repro.cli import parse_bytes

        assert parse_bytes("4096") == 4096
        assert parse_bytes("64KiB") == 64 * 1024
        assert parse_bytes("16MB") == 16 * 10**6
        assert parse_bytes("2gib") == 2 * 2**30
        with pytest.raises(Exception):
            parse_bytes("lots")


class TestResilienceFlags:
    def test_faults_with_retries_still_succeeds(self, capsys):
        code = main(["schedule", "--machines", "3", "--times", "5", "7", "3",
                     "9", "4", "6", "2", "--inject-faults",
                     "seed=3,rate=0.4,kinds=dperror|crash,sites=dp|probe,max=1",
                     "--retries", "5"])
        assert code == 0
        assert "makespan" in capsys.readouterr().out

    def test_fault_injection_is_deterministic(self, capsys):
        args = ["schedule", "--machines", "3", "--times", "5", "7", "3", "9",
                "4", "6", "2", "--inject-faults",
                "seed=11,rate=0.5,kinds=dperror,sites=dp,max=1",
                "--retries", "4"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first

    def test_bad_fault_spec_is_usage_error(self, capsys):
        code = main(["schedule", "--machines", "2", "--times", "5", "6",
                     "--inject-faults", "seed=1,bogus=2"])
        assert code == 2


class TestBatchCommand:
    def test_healthy_batch_exits_zero(self, capsys):
        code = main(["batch", "--requests", "2", "--jobs", "8",
                     "--machines", "3", "--seed", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("makespan") >= 2 and "0 degraded" in out

    def test_degraded_batch_exits_six(self, capsys):
        code = main(["batch", "--requests", "2", "--jobs", "8",
                     "--machines", "3", "--backend", "fallback",
                     "--inject-faults",
                     "seed=1,rate=1.0,kinds=oom,"
                     "sites=dp.auto|dp.sweep|dp.vectorized,max=1000000"])
        assert code == 6
        out = capsys.readouterr().out
        assert "DEGRADED" in out and "2 degraded" in out

    def test_no_degrade_turns_failure_into_exit_four(self, capsys):
        code = main(["batch", "--requests", "2", "--jobs", "8",
                     "--machines", "3", "--backend", "fallback",
                     "--no-degrade", "--inject-faults",
                     "seed=1,rate=1.0,kinds=oom,"
                     "sites=dp.auto|dp.sweep|dp.vectorized,max=1000000"])
        assert code == 4
        assert "backend failure" in capsys.readouterr().err

    def test_batch_memory_budget_degrades(self, capsys):
        code = main(["batch", "--requests", "2", "--jobs", "8",
                     "--machines", "3", "--memory-budget", "1"])
        assert code == 6
        assert "DEGRADED" in capsys.readouterr().out

    def test_bad_request_count_is_usage_error(self, capsys):
        assert main(["batch", "--requests", "0"]) == 2

    def test_fabric_chaos_recovers_with_identical_makespans(self, capsys):
        # The CI kill-smoke in miniature: the same batch twice, the
        # second with real worker SIGKILLs, must print the same
        # makespans and exit 0 both times.
        base = ["batch", "--requests", "2", "--jobs", "12", "--machines",
                "3", "--seed", "5", "--backend", "hostpar-2",
                "--fill-workers", "2", "--fill-min-cells", "1"]
        assert main(base) == 0
        clean = capsys.readouterr().out
        assert main(base + [
            "--inject-faults",
            "seed=7,rate=0.4,kinds=crash,sites=fabric.worker,max=2",
        ]) == 0
        chaotic = capsys.readouterr().out

        def makespans(out):
            return [line for line in out.splitlines() if "makespan" in line]

        assert makespans(chaotic) == makespans(clean)
        assert "0 degraded" in chaotic
        assert "fabric recovery:" in chaotic
        assert "fabric recovery:" not in clean  # zero-noise when quiet


class TestHealthCommand:
    def test_reports_start_method_and_reaper(self, capsys):
        assert main(["health"]) == 0
        out = capsys.readouterr().out
        assert "start method:" in out
        assert "orphan reaper:" in out

    def test_no_reap_skips_the_sweep(self, capsys):
        assert main(["health", "--no-reap"]) == 0
        assert "skipped (--no-reap)" in capsys.readouterr().out

    def test_self_test_proves_bit_identity(self, capsys):
        assert main(["health", "--self-test"]) == 0
        assert "bit-identical" in capsys.readouterr().out

    def test_json_payload(self, tmp_path, capsys):
        import json

        path = tmp_path / "health.json"
        assert main(["health", "--no-reap", "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["start_method"] in ("forkserver", "spawn")
        assert payload["reaped_segments"] == []


class TestServeCommand:
    #: a small, fast workload: 8 requests arriving (nominally) at 200/s,
    #: compressed 10x so the whole run is a few milliseconds of sleeping.
    ARGS = ["serve", "--requests", "8", "--jobs", "10", "--machines", "3",
            "--arrival-rate", "200", "--time-scale", "0.1", "--seed", "5"]

    def test_healthy_run_exits_zero(self, capsys):
        code = main(self.ARGS)
        assert code == 0
        out = capsys.readouterr().out
        assert "serve: 8 requests" in out
        assert "0 bound-first violations" in out
        # Latency percentiles for both stages.
        assert "bound: p50" in out and "refined: p50" in out

    def test_duplicates_coalesce(self, capsys):
        # Every arrival after the first duplicates an earlier instance
        # and the flood lands faster than the pipeline drains, so at
        # least one must coalesce.
        code = main(["serve", "--requests", "6", "--jobs", "12",
                     "--machines", "3", "--arrival-rate", "5000",
                     "--time-scale", "0.01", "--duplicate-fraction", "1.0",
                     "--workers", "1", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        coalesced = int(out.split(" coalesced")[0].rsplit(" ", 1)[-1])
        assert coalesced >= 1

    def test_stats_json_written(self, tmp_path, capsys):
        import json

        path = tmp_path / "serve.json"
        code = main(self.ARGS + ["--stats-json", str(path)])
        assert code == 0
        payload = json.loads(path.read_text())
        assert payload["submitted"] == 8
        assert payload["bound_first_violations"] == 0
        latency = payload["stats"]["latency"]
        assert latency["bound"]["count"] == 8
        assert latency["refined"]["count"] == 8

    def test_degraded_service_exits_six(self, capsys):
        code = main(self.ARGS + ["--backend", "fallback", "--inject-faults",
                    "seed=1,rate=1.0,kinds=oom,"
                    "sites=dp.auto|dp.sweep|dp.vectorized,max=1000000"])
        assert code == 6
        assert "degraded" in capsys.readouterr().out

    def test_bad_profile_is_usage_error(self, capsys):
        assert main(["serve", "--requests", "0"]) == 2
        assert main(["serve", "--duplicate-fraction", "1.5"]) == 2

    def test_unknown_backend_is_usage_error(self, capsys):
        assert main(self.ARGS + ["--backend", "tpu-v5"]) == 2

    def test_quota_flag_accepted(self, capsys):
        code = main(self.ARGS + ["--quota", "32"])
        assert code == 0

    def test_exit_code_constant_documented_value(self):
        # Exit 7 is wired in the parser/docs; pin the constant so the
        # docs/RELIABILITY.md table cannot silently drift.
        from repro.cli import EXIT_SHUTDOWN_TIMEOUT

        assert EXIT_SHUTDOWN_TIMEOUT == 7

    def test_dirty_shutdown_exits_seven(self, monkeypatch, capsys):
        # The CLI happy path always drains clean (run_load awaits every
        # handle before shutdown), so force the drain to report dirty
        # and assert the exit-code mapping end to end.
        from repro.service.daemon import SchedulingService

        real = SchedulingService.shutdown

        async def dirty(self, *args, **kwargs):
            await real(self, *args, **kwargs)
            return False

        monkeypatch.setattr(SchedulingService, "shutdown", dirty)
        assert main(self.ARGS) == 7
