"""Unit tests for repro.dptable.antidiagonal (the wavefront of Algorithm 2)."""

import numpy as np
import pytest

from repro.core.configs import enumerate_configurations
from repro.dptable.antidiagonal import (
    cell_levels,
    cells_at_level,
    is_topological_order,
    level_sizes,
    wavefront,
)
from repro.dptable.table import TableGeometry
from repro.errors import DPError


class TestCellLevels:
    def test_levels_are_coordinate_sums(self):
        g = TableGeometry((2, 3))
        assert cell_levels(g).tolist() == [0, 1, 2, 1, 2, 3]

    def test_fig1_example(self):
        # Fig. 1: OPT(2,3) -> a 3x4 table, levels 0..5.
        g = TableGeometry((3, 4))
        levels = cell_levels(g)
        assert levels.min() == 0 and levels.max() == 5


class TestLevelSizes:
    def test_sums_to_table_size(self):
        g = TableGeometry((4, 5, 3))
        assert level_sizes(g).sum() == g.size

    def test_known_profile(self):
        # 3x3: level sizes 1,2,3,2,1 (the diamond).
        assert level_sizes(TableGeometry((3, 3))).tolist() == [1, 2, 3, 2, 1]

    def test_symmetric_profile(self):
        sizes = level_sizes(TableGeometry((4, 6, 3)))
        assert sizes.tolist() == sizes.tolist()[::-1]

    def test_peak_bounds_parallelism(self):
        # The widest level is the max wavefront concurrency.
        sizes = level_sizes(TableGeometry((6, 6, 6)))
        assert sizes.max() == sizes[7]  # middle level of 0..15


class TestCellsAtLevel:
    def test_level_zero_is_origin(self):
        g = TableGeometry((3, 3))
        assert cells_at_level(g, 0).tolist() == [0]

    def test_levels_partition_table(self):
        g = TableGeometry((3, 2, 4))
        seen = np.concatenate([cells_at_level(g, lvl) for lvl in range(g.max_level + 1)])
        assert sorted(seen.tolist()) == list(range(g.size))

    def test_rejects_out_of_range(self):
        with pytest.raises(DPError):
            cells_at_level(TableGeometry((2, 2)), 5)


class TestWavefront:
    def test_matches_cells_at_level(self):
        g = TableGeometry((3, 4, 2))
        for lvl, cells in enumerate(wavefront(g)):
            assert cells.tolist() == cells_at_level(g, lvl).tolist()

    def test_covers_all_cells_once(self):
        g = TableGeometry((5, 3))
        flat = np.concatenate(list(wavefront(g)))
        assert sorted(flat.tolist()) == list(range(g.size))

    def test_is_topological_for_any_configs(self):
        g = TableGeometry((3, 3, 3))
        configs = enumerate_configurations([2, 3, 4], [2, 2, 2], 9)
        order = np.concatenate(list(wavefront(g)))
        assert is_topological_order(g, order, configs)


class TestIsTopologicalOrder:
    def test_detects_violation(self):
        g = TableGeometry((2, 2))
        configs = np.array([[1, 0]], dtype=np.int64)
        # Reverse order: cell (1,0) before (0,0) violates the dependency.
        bad = np.array([2, 3, 0, 1])
        assert not is_topological_order(g, bad, configs)

    def test_flat_order_is_topological_for_positive_configs(self):
        # Row-major order itself is topological (dependencies point to
        # smaller indices when configs are non-negative, non-zero).
        g = TableGeometry((3, 4))
        configs = enumerate_configurations([2, 3], [2, 3], 12)
        assert is_topological_order(g, np.arange(g.size), configs)
