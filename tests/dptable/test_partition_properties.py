"""Property-based tests (hypothesis) for the partitioning machinery.

Invariants under arbitrary shapes and divisors:

* the blocked layout is always a bijection with contiguous blocks;
* blocks tile the table exactly;
* the (block-level, in-block-level) order is a topological order of
  the DP dependency DAG for any configuration set;
* Algorithm 4's divisor always divides the shape it was computed for.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.configs import enumerate_configurations
from repro.dptable.antidiagonal import is_topological_order
from repro.dptable.layout import BlockedLayout
from repro.dptable.partition import BlockPartition, compute_divisor
from repro.dptable.table import TableGeometry

shapes = st.lists(st.integers(1, 8), min_size=1, max_size=4).map(tuple)
dims = st.integers(1, 9)

COMMON = dict(
    deadline=None, suppress_health_check=[HealthCheck.too_slow], max_examples=50
)


def partition_for(shape, dim):
    return BlockPartition(TableGeometry(shape), compute_divisor(shape, dim))


@settings(**COMMON)
@given(shape=shapes, dim=dims)
def test_divisor_divides_shape(shape, dim):
    divisor = compute_divisor(shape, dim)
    assert len(divisor) == len(shape)
    for extent, a in zip(shape, divisor):
        assert a >= 1 and extent % a == 0


@settings(**COMMON)
@given(shape=shapes, dim=dims)
def test_at_most_dim_dimensions_cut(shape, dim):
    divisor = compute_divisor(shape, dim)
    assert sum(1 for a in divisor if a > 1) <= dim


@settings(**COMMON)
@given(shape=shapes, dim=dims)
def test_layout_bijection(shape, dim):
    layout = BlockedLayout(partition_for(shape, dim))
    fwd = layout.to_blocked
    assert sorted(fwd.tolist()) == list(range(fwd.size))
    table = np.arange(fwd.size).reshape(shape)
    assert np.array_equal(layout.restore(layout.reorganize(table)), table)


@settings(**COMMON)
@given(shape=shapes, dim=dims)
def test_blocks_tile_table(shape, dim):
    part = partition_for(shape, dim)
    total = 0
    for level_blocks in part.iter_block_levels():
        for block in level_blocks:
            total += part.cells_of_block(block).shape[0]
    assert total == part.geometry.size
    assert part.num_blocks * part.cells_per_block == part.geometry.size


@settings(**COMMON)
@given(
    shape=st.lists(st.integers(2, 6), min_size=1, max_size=3).map(tuple),
    dim=dims,
    data=st.data(),
)
def test_blocked_order_is_topological(shape, dim, data):
    part = partition_for(shape, dim)
    d = len(shape)
    sizes = data.draw(st.lists(st.integers(1, 6), min_size=d, max_size=d))
    target = data.draw(st.integers(1, 20))
    configs = enumerate_configurations(sizes, [s - 1 for s in shape], target)
    if configs.shape[0] == 0:
        return
    # The partitioned engine's execution order: block-levels ascending,
    # in-block levels ascending inside each block-level.
    key = part.cell_block_levels * (part.num_inblock_levels + 1) + part.cell_inblock_levels
    order = np.argsort(key, kind="stable")
    assert is_topological_order(part.geometry, order, configs)


@settings(**COMMON)
@given(shape=shapes, dim=dims)
def test_inblock_levels_bound(shape, dim):
    part = partition_for(shape, dim)
    assert part.num_inblock_levels == sum(b - 1 for b in part.block_shape) + 1
    assert 1 <= part.num_inblock_levels <= part.cells_per_block
