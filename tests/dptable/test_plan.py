"""Tests for the probe-plan IR (``repro.dptable.plan``)."""

import numpy as np
import pytest

from repro.core.configs import enumerate_configurations
from repro.dptable.antidiagonal import is_topological_order, wavefront
from repro.dptable.partition import BlockPartition, compute_divisor
from repro.dptable.plan import (
    ProbePlan,
    build_probe_plan,
    configs_signature,
    plan_signature,
)
from repro.dptable.table import TableGeometry
from repro.errors import DPError


@pytest.fixture
def plan():
    return build_probe_plan((3, 2, 2), (3, 5, 7), 14)


class TestLevelSchedule:
    def test_groups_identical_to_wavefront(self, plan):
        # The plan's level groups must be bit-identical to the
        # generator every engine used to call — same cells, same
        # within-level order.
        expected = list(wavefront(plan.geometry))
        groups = plan.level_groups()
        assert len(groups) == len(expected)
        for got, want in zip(groups, expected):
            assert np.array_equal(got, want)

    def test_boundaries_partition_the_table(self, plan):
        schedule = plan.level_schedule
        assert schedule.boundaries[0] == 0
        assert schedule.boundaries[-1] == plan.geometry.size
        assert int(schedule.sizes.sum()) == plan.geometry.size

    def test_group_cells_have_their_level(self, plan):
        schedule = plan.level_schedule
        for lvl in range(schedule.num_levels):
            cells = schedule.group(lvl)
            assert (schedule.levels[cells] == lvl).all()

    def test_group_out_of_range_raises(self, plan):
        with pytest.raises(DPError):
            plan.level_schedule.group(plan.level_schedule.num_levels)

    def test_order_is_topological(self, plan):
        assert is_topological_order(
            plan.geometry, plan.level_schedule.order, plan.configs
        )


class TestWorkProfileArrays:
    def test_candidates_formula(self, plan):
        cells = plan.geometry.all_cells()
        expected = np.prod(cells + 1, axis=1)
        assert np.array_equal(plan.candidates, expected)

    def test_valid_matches_bruteforce(self, plan):
        cells = plan.geometry.all_cells()
        for flat in range(plan.geometry.size):
            expected = int(
                np.count_nonzero((plan.configs <= cells[flat]).all(axis=1))
            )
            assert plan.valid[flat] == expected

    def test_totals(self, plan):
        assert plan.total_candidates == int(plan.candidates.sum())
        assert plan.total_valid == int(plan.valid.sum())

    def test_scan_elements_scalar_scope(self, plan):
        assert np.array_equal(plan.scan_elements(10), plan.valid * 5.0)


class TestBlockedSchedule:
    @pytest.mark.parametrize("dim", [1, 2, 3])
    def test_fill_groups_are_topological(self, plan, dim):
        blocked = plan.blocked(dim)
        order = np.concatenate(blocked.fill_groups)
        assert order.size == plan.geometry.size
        assert is_topological_order(plan.geometry, order, plan.configs)

    def test_kernels_cover_every_cell_once(self, plan):
        blocked = plan.blocked(2)
        cells = np.concatenate(
            [k.cells for level in blocked.by_block_level for k in level]
        )
        assert np.array_equal(np.sort(cells), np.arange(plan.geometry.size))

    def test_kernel_cells_share_block_and_inlevel(self, plan):
        blocked = plan.blocked(2)
        partition = blocked.partition
        for level in blocked.by_block_level:
            for kernel in level:
                assert (
                    partition.cell_block_ids[kernel.cells] == kernel.block_id
                ).all()
                assert (
                    partition.cell_inblock_levels[kernel.cells]
                    == kernel.inblock_level
                ).all()

    def test_partition_matches_direct_construction(self, plan):
        direct = BlockPartition(
            plan.geometry, compute_divisor(plan.geometry.shape, 2)
        )
        assert plan.partition(2).divisor == direct.divisor

    def test_blocked_is_memoized_per_dim(self, plan):
        assert plan.blocked(2) is plan.blocked(2)
        assert plan.blocked(2) is not plan.blocked(3)
        assert plan.partition(2) is plan.blocked(2).partition


class TestImmutability:
    def test_exposed_arrays_are_read_only(self, plan):
        for array in (
            plan.configs,
            plan.candidates,
            plan.valid,
            plan.level_schedule.levels,
            plan.level_schedule.order,
            plan.level_schedule.boundaries,
        ):
            assert not array.flags.writeable

    def test_writable_configs_are_copied_not_frozen_in_place(self):
        configs = enumerate_configurations([3, 5], [3, 2], 11)
        assert configs.flags.writeable
        plan = ProbePlan(TableGeometry.from_counts((3, 2)), configs)
        assert configs.flags.writeable  # caller's array untouched
        assert not plan.configs.flags.writeable
        assert np.array_equal(plan.configs, configs)

    def test_read_only_configs_are_shared(self):
        configs = enumerate_configurations([3, 5], [3, 2], 11)
        configs.setflags(write=False)
        plan = ProbePlan(TableGeometry.from_counts((3, 2)), configs)
        assert plan.configs is configs


class TestSignatures:
    def test_scale_invariant(self):
        # Rescaling sizes and target by any factor leaves the signature
        # unchanged — the collision the plan cache exploits.
        base = plan_signature((3, 2), (3, 5), 11)
        assert plan_signature((3, 2), (6, 10), 22) == base
        assert plan_signature((3, 2), (9, 15), 33) == base

    def test_target_remainder_is_dropped_soundly(self):
        # floor(T/g) differences below g do not change feasibility:
        # sum s_i * (size_i/g) is an integer.
        g = 3
        a = plan_signature((3, 2), (3 * g, 5 * g), 34)
        b = plan_signature((3, 2), (3 * g, 5 * g), 35)
        assert a == b  # 34//3 == 35//3
        configs_a = enumerate_configurations([3 * g, 5 * g], [3, 2], 34)
        configs_b = enumerate_configurations([3 * g, 5 * g], [3, 2], 35)
        assert np.array_equal(configs_a, configs_b)

    def test_different_structure_differs(self):
        base = plan_signature((3, 2), (3, 5), 11)
        assert plan_signature((3, 2), (3, 5), 20) != base
        assert plan_signature((2, 3), (3, 5), 11) != base

    def test_arity_mismatch_raises(self):
        with pytest.raises(DPError):
            plan_signature((3, 2), (3,), 11)

    def test_configs_signature_exact(self, plan):
        sig = configs_signature(plan.geometry, plan.configs)
        assert sig == configs_signature(plan.geometry, plan.configs.copy())
        other = plan.configs.copy()
        other[0, 0] += 1
        assert sig != configs_signature(plan.geometry, other)


class TestBuilder:
    def test_enumerates_configs_when_absent(self):
        counts, sizes, target = (3, 2), (3, 5), 11
        expected = enumerate_configurations(sizes, counts, target)
        plan = build_probe_plan(counts, sizes, target)
        assert np.array_equal(plan.configs, expected)

    def test_rejects_arity_mismatch(self):
        with pytest.raises(DPError):
            build_probe_plan((1, 2), (3,), 10)

    def test_rejects_bad_configs_arity(self):
        with pytest.raises(DPError):
            ProbePlan(
                TableGeometry.from_counts((3, 2)),
                np.zeros((2, 3), dtype=np.int64),
            )

    def test_zero_dim_plan(self):
        plan = build_probe_plan((), (), 5)
        assert plan.geometry.size == 1
        assert plan.level_schedule.num_levels == 1
        assert plan.total_candidates == 1
        assert plan.total_valid == 0
