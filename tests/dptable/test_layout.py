"""Unit tests for repro.dptable.layout (Algorithm 4's memory reorganization)."""

import numpy as np
import pytest

from repro.dptable.layout import BlockedLayout
from repro.dptable.partition import BlockPartition
from repro.dptable.table import TableGeometry
from repro.errors import PartitionError


@pytest.fixture
def layout():
    return BlockedLayout(BlockPartition(TableGeometry((6, 6, 6)), (3, 3, 3)))


class TestPermutation:
    def test_is_bijection(self, layout):
        fwd = layout.to_blocked
        assert sorted(fwd.tolist()) == list(range(fwd.size))

    def test_inverse_composes_to_identity(self, layout):
        fwd, inv = layout.to_blocked, layout.to_rowmajor
        assert np.array_equal(fwd[inv], np.arange(fwd.size))
        assert np.array_equal(inv[fwd], np.arange(fwd.size))

    def test_block_cells_contiguous(self, layout):
        # Every block occupies one contiguous run in blocked storage —
        # the property that makes warp loads coalesced.
        part = layout.partition
        for block in [(0, 0, 0), (1, 2, 0), (2, 2, 2)]:
            cells = part.cells_of_block(block)
            flats = np.ravel_multi_index(tuple(cells.T), part.geometry.shape)
            offsets = np.sort(layout.to_blocked[flats])
            assert offsets.tolist() == list(
                range(int(offsets[0]), int(offsets[0]) + part.cells_per_block)
            )

    def test_block_slice_matches_offsets(self, layout):
        part = layout.partition
        block = (1, 0, 2)
        sl = layout.block_slice(block)
        cells = part.cells_of_block(block)
        flats = np.ravel_multi_index(tuple(cells.T), part.geometry.shape)
        assert sorted(layout.to_blocked[flats].tolist()) == list(
            range(sl.start, sl.stop)
        )

    def test_inblock_order_is_row_major(self, layout):
        # Within a block, cells are stored row-major by relative coords
        # ("stored consecutively in row-major order", §III-C).
        part = layout.partition
        cells = part.cells_of_block((0, 1, 2))
        flats = np.ravel_multi_index(tuple(cells.T), part.geometry.shape)
        offsets = layout.to_blocked[flats]
        assert offsets.tolist() == sorted(offsets.tolist())


class TestReorganize:
    def test_round_trip(self, layout):
        table = np.arange(216).reshape(6, 6, 6)
        assert np.array_equal(layout.restore(layout.reorganize(table)), table)

    def test_blocked_offset_scalar(self, layout):
        flat = layout.partition.geometry.ravel((2, 3, 1))
        assert layout.blocked_offset((2, 3, 1)) == layout.to_blocked[flat]

    def test_rejects_wrong_shape(self, layout):
        with pytest.raises(PartitionError):
            layout.reorganize(np.zeros((6, 6)))

    def test_rejects_wrong_size_restore(self, layout):
        with pytest.raises(PartitionError):
            layout.restore(np.zeros(10))

    def test_values_preserved(self, layout):
        rng = np.random.default_rng(0)
        table = rng.integers(0, 1000, size=(6, 6, 6))
        blocked = layout.reorganize(table)
        assert sorted(blocked.tolist()) == sorted(table.reshape(-1).tolist())


class TestStridedSpan:
    def test_origin_block_span(self, layout):
        # Block (0,0,0) holds cells (0..1)^3; row-major span is
        # 1*36 + 1*6 + 1 + 1 = 44 addresses for 8 cells.
        assert layout.strided_span((0, 0, 0)) == 44

    def test_span_shrinks_to_block_after_reorg(self, layout):
        # After reorganization the same cells span exactly the block.
        part = layout.partition
        assert part.cells_per_block == 8
        sl = layout.block_slice((0, 0, 0))
        assert sl.stop - sl.start == 8

    def test_rejects_bad_block(self, layout):
        with pytest.raises(PartitionError):
            layout.strided_span((3, 0, 0))
