"""Tests for the ASCII table/partition visualiser."""

import pytest

from repro.dptable.partition import BlockPartition
from repro.dptable.table import TableGeometry
from repro.dptable.visualize import render_levels, render_partition, render_stream_map
from repro.errors import PartitionError


class TestRenderLevels:
    def test_small_grid(self):
        text = render_levels(TableGeometry((3, 4)))
        lines = text.splitlines()
        assert len(lines) == 3
        assert lines[0].split() == ["0", "1", "2", "3"]
        assert lines[2].split() == ["2", "3", "4", "5"]

    def test_wide_labels_aligned(self):
        text = render_levels(TableGeometry((8, 8)))
        lines = text.splitlines()
        assert len({len(ln) for ln in lines}) == 1

    def test_rejects_non_2d(self):
        with pytest.raises(PartitionError):
            render_levels(TableGeometry((2, 2, 2)))


class TestRenderPartition:
    @pytest.fixture
    def partition(self):
        return BlockPartition(TableGeometry((6, 6)), (3, 3))

    def test_block_levels_shown(self, partition):
        text = render_partition(partition)
        # Top-left block is level 0, bottom-right is level 4.
        rows = [ln for ln in text.splitlines() if not set(ln) <= {"-"}]
        assert rows[0].split("|")[0].split() == ["0", "0"]
        assert rows[-1].split("|")[-1].split() == ["4", "4"]

    def test_separators_present(self, partition):
        text = render_partition(partition)
        assert "|" in text
        assert any(set(ln) <= {"-"} and ln for ln in text.splitlines())

    def test_cell_rows_match_table(self, partition):
        rows = [ln for ln in render_partition(partition).splitlines() if "|" in ln or ln.split()]
        cell_rows = [ln for ln in rows if not set(ln) <= {"-"}]
        assert len(cell_rows) == 6

    def test_trivial_partition_no_separators(self):
        part = BlockPartition(TableGeometry((4, 4)), (1, 1))
        text = render_partition(part)
        assert "|" not in text

    def test_rejects_non_2d(self):
        part = BlockPartition(TableGeometry((4, 4, 4)), (2, 2, 2))
        with pytest.raises(PartitionError):
            render_partition(part)


class TestRenderStreamMap:
    def test_streams_within_range(self):
        part = BlockPartition(TableGeometry((6, 6)), (3, 3))
        text = render_stream_map(part, num_streams=4)
        digits = {c for c in text if c.isdigit()}
        assert digits <= {"0", "1", "2", "3"}

    def test_cyclic_within_level(self):
        part = BlockPartition(TableGeometry((8, 8)), (4, 4))
        text = render_stream_map(part, num_streams=2)
        # Level-1 blocks (0,1) and (1,0) get streams 0 and 1.
        rows = [ln for ln in text.splitlines() if not set(ln) <= {"-"}]
        assert rows[0].split("|")[1].strip().split()[0] == "0"
        assert rows[-1].split("|")[0].strip().split()[0] == "1"
