"""Unit tests for repro.dptable.partition (Algorithm 4's scheme)."""

import numpy as np
import pytest

from repro.dptable.partition import (
    BlockPartition,
    compute_divisor,
    dimension_divisor,
)
from repro.dptable.table import TableGeometry
from repro.errors import PartitionError


class TestDimensionDivisor:
    @pytest.mark.parametrize(
        "extent,expected",
        [(1, 1), (2, 1), (3, 1), (4, 2), (6, 2), (8, 2), (9, 3), (12, 3), (16, 4), (18, 3)],
    )
    def test_known_values(self, extent, expected):
        assert dimension_divisor(extent) == expected

    def test_divides_exactly(self):
        for extent in range(1, 60):
            div = dimension_divisor(extent)
            assert extent % div == 0
            assert div * div <= extent

    def test_rejects_zero(self):
        with pytest.raises(PartitionError):
            dimension_divisor(0)


class TestComputeDivisor:
    def test_paper_table1_row5(self):
        # Table I, 5 dims: shape (6,4,6,6,4).
        assert compute_divisor((6, 4, 6, 6, 4), 3) == (2, 1, 2, 2, 1)
        assert compute_divisor((6, 4, 6, 6, 4), 5) == (2, 2, 2, 2, 2)

    def test_prime_extents_fully_split(self):
        # Inferred from Tables I-VI: a cut prime dimension splits fully.
        assert compute_divisor((5, 3, 7), 3) == (5, 3, 7)

    def test_largest_extents_chosen(self):
        assert compute_divisor((2, 9, 2, 8), 2) == (1, 3, 1, 2)

    def test_tie_break_earlier_index(self):
        assert compute_divisor((4, 4, 4), 2) == (2, 2, 1)

    def test_dim_exceeding_ndim_cuts_everything(self):
        assert compute_divisor((4, 6), 9) == (2, 2)

    def test_extent_one_never_split(self):
        assert compute_divisor((1, 4), 2) == (1, 2)

    def test_rejects_bad_dim(self):
        with pytest.raises(PartitionError):
            compute_divisor((4, 4), 0)

    def test_divisor_always_valid_for_partition(self):
        rng = np.random.default_rng(3)
        for _ in range(20):
            shape = tuple(int(x) for x in rng.integers(2, 12, size=rng.integers(2, 7)))
            for dim in (3, 5, 9):
                divisor = compute_divisor(shape, dim)
                BlockPartition(TableGeometry(shape), divisor)  # must not raise


class TestBlockPartition:
    @pytest.fixture
    def fig2(self):
        """The paper's Fig. 2: 6x6x6 under divisor (3,3,3)."""
        return BlockPartition(TableGeometry((6, 6, 6)), (3, 3, 3))

    def test_fig2_counts(self, fig2):
        assert fig2.num_blocks == 27
        assert fig2.block_shape == (2, 2, 2)
        assert fig2.cells_per_block == 8
        assert fig2.num_block_levels == 7
        assert fig2.num_inblock_levels == 4

    def test_block_of_cell(self, fig2):
        assert fig2.block_of_cell((0, 0, 0)) == (0, 0, 0)
        assert fig2.block_of_cell((5, 5, 5)) == (2, 2, 2)
        assert fig2.block_of_cell((2, 3, 1)) == (1, 1, 0)

    def test_inblock_coords(self, fig2):
        assert fig2.inblock_coords((2, 3, 1)) == (0, 1, 1)

    def test_block_index_formula(self, fig2):
        # The paper's i*b*c + j*c + k indexing == our row-major ravel.
        for block in [(0, 0, 0), (1, 2, 0), (2, 2, 2)]:
            i, j, k = block
            assert fig2.block_grid.ravel(block) == i * 9 + j * 3 + k

    def test_cells_of_block_tile_table(self, fig2):
        seen = set()
        for level_blocks in fig2.iter_block_levels():
            for block in level_blocks:
                for cell in map(tuple, fig2.cells_of_block(block).tolist()):
                    assert cell not in seen
                    seen.add(cell)
        assert len(seen) == 216

    def test_blocks_at_level_sizes(self, fig2):
        # Block-level sizes of a 3x3x3 grid: 1,3,6,7,6,3,1.
        sizes = [len(b) for b in fig2.iter_block_levels()]
        assert sizes == [1, 3, 6, 7, 6, 3, 1]

    def test_dependency_safety(self, fig2):
        # A cell's predecessor lives in the same block or a strictly
        # lower block-level — the invariant that makes the blocked
        # schedule race-free (§III-C).
        rng = np.random.default_rng(0)
        cells = fig2.geometry.all_cells()
        for _ in range(10):
            cfg = rng.integers(0, 3, size=3)
            if not cfg.any():
                continue
            prev = cells - cfg
            ok = (prev >= 0).all(axis=1)
            here = cells[ok]
            there = prev[ok]
            bs = np.asarray(fig2.block_shape)
            same_block = (here // bs == there // bs).all(axis=1)
            lower_level = (there // bs).sum(axis=1) < (here // bs).sum(axis=1)
            assert (same_block | lower_level).all()

    def test_vectorized_maps_match_scalar(self, fig2):
        g = fig2.geometry
        for flat in [0, 7, 100, 215]:
            cell = g.unravel(flat)
            assert fig2.cell_block_ids[flat] == fig2.block_grid.ravel(
                fig2.block_of_cell(cell)
            )
            assert fig2.cell_block_levels[flat] == fig2.block_level_of_cell(cell)
            assert fig2.cell_inblock_levels[flat] == sum(fig2.inblock_coords(cell))

    def test_stream_assignment_cyclic(self, fig2):
        streams = fig2.stream_assignment(4)
        level2 = fig2.blocks_at_level(2)
        assert [streams[b] for b in level2] == [0, 1, 2, 3, 0, 1]

    def test_stream_assignment_rejects_zero(self, fig2):
        with pytest.raises(PartitionError):
            fig2.stream_assignment(0)

    def test_trivial_divisor(self):
        p = BlockPartition(TableGeometry((4, 4)), (1, 1))
        assert p.num_blocks == 1
        assert p.cells_per_block == 16
        assert p.num_inblock_levels == 7

    def test_rejects_non_dividing_divisor(self):
        with pytest.raises(PartitionError):
            BlockPartition(TableGeometry((6, 6)), (4, 2))

    def test_rejects_wrong_arity(self):
        with pytest.raises(PartitionError):
            BlockPartition(TableGeometry((6, 6)), (2,))

    def test_rejects_cell_out_of_bounds(self, fig2):
        with pytest.raises(PartitionError):
            fig2.block_of_cell((6, 0, 0))

    def test_from_counts(self):
        p = BlockPartition.from_counts((5, 3, 5), dim=3)
        assert p.geometry.shape == (6, 4, 6)
