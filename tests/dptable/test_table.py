"""Unit tests for repro.dptable.table."""

import numpy as np
import pytest

from repro.dptable.table import TableGeometry
from repro.errors import DPError


class TestTableGeometry:
    def test_size_and_ndim(self):
        g = TableGeometry((3, 4, 2))
        assert g.size == 24 and g.ndim == 3

    def test_strides_row_major(self):
        g = TableGeometry((3, 4, 2))
        assert g.strides == (8, 2, 1)

    def test_strides_match_numpy(self):
        g = TableGeometry((5, 2, 7, 3))
        arr = np.zeros(g.shape, dtype=np.int64)
        assert g.strides == tuple(s // 8 for s in arr.strides)

    def test_ravel_unravel_round_trip(self):
        g = TableGeometry((3, 4, 2))
        for flat in range(g.size):
            assert g.ravel(g.unravel(flat)) == flat

    def test_ravel_matches_numpy(self):
        g = TableGeometry((4, 3, 5))
        for cell in [(0, 0, 0), (3, 2, 4), (1, 0, 3)]:
            assert g.ravel(cell) == np.ravel_multi_index(cell, g.shape)

    def test_ravel_bounds_checked(self):
        g = TableGeometry((3, 3))
        with pytest.raises(DPError):
            g.ravel((3, 0))
        with pytest.raises(DPError):
            g.ravel((0, -1))
        with pytest.raises(DPError):
            g.ravel((0, 0, 0))

    def test_unravel_bounds_checked(self):
        g = TableGeometry((3, 3))
        with pytest.raises(DPError):
            g.unravel(9)
        with pytest.raises(DPError):
            g.unravel(-1)

    def test_all_cells_order_and_shape(self):
        g = TableGeometry((2, 3))
        cells = g.all_cells()
        assert cells.shape == (6, 2)
        assert cells.tolist() == [[0, 0], [0, 1], [0, 2], [1, 0], [1, 1], [1, 2]]

    def test_iter_cells_matches_all_cells(self):
        g = TableGeometry((2, 2, 2))
        assert list(g.iter_cells()) == [tuple(c) for c in g.all_cells().tolist()]

    def test_max_level(self):
        assert TableGeometry((3, 4, 2)).max_level == 2 + 3 + 1

    def test_contains(self):
        g = TableGeometry((2, 2))
        assert g.contains((1, 1))
        assert not g.contains((2, 0))
        assert not g.contains((0,))

    def test_from_counts(self):
        g = TableGeometry.from_counts((2, 0, 5))
        assert g.shape == (3, 1, 6)

    def test_rejects_zero_extent(self):
        with pytest.raises(DPError):
            TableGeometry((3, 0))

    def test_scalar_table(self):
        g = TableGeometry((1,))
        assert g.size == 1 and g.max_level == 0
