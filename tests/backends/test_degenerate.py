"""Degenerate DP probes across *every* registered backend.

The probe-plan refactor routes all engines through one IR, so the edge
cases — a 0-d table (no long jobs), an empty configuration set (no
single machine can hold even one job), a single job class — must
behave identically on every backend the registry knows about, pure
solvers and simulated engines alike.
"""

import numpy as np
import pytest

from repro.backends import backend_names, get_spec, resolve
from repro.core.dp_common import UNREACHABLE
from repro.core.dp_reference import dp_reference

# Decision-only backends answer the feasibility predicate without a
# dense table, so the bit-identity assertions below cannot apply; their
# degenerate behaviour is covered in tests/core/test_kernels.py.
ALL_BACKENDS = [n for n in backend_names() if not get_spec(n).decision_only]


def _resolve(name):
    if name.startswith("gpu"):
        return resolve(name, check_memory=False)
    return resolve(name)


def _assert_bit_identical(result, reference, name):
    assert result.table.dtype == np.int64, name
    assert result.table.shape == reference.table.shape, name
    assert np.array_equal(result.table, reference.table), name


@pytest.mark.parametrize("name", ALL_BACKENDS)
class TestDegenerateProbes:
    def test_zero_dim_table(self, name):
        # All jobs short: the rounded instance has no classes at all.
        result = _resolve(name)((), (), 9)
        assert result.table.shape == ()
        assert result.opt == 0
        assert result.feasible
        _assert_bit_identical(result, dp_reference((), (), 9), name)

    def test_empty_configuration_set(self, name):
        # Every class size exceeds the target, so no non-empty machine
        # configuration exists: only the origin is reachable.
        counts, sizes, target = (2, 2), (5, 7), 4
        result = _resolve(name)(counts, sizes, target)
        reference = dp_reference(counts, sizes, target)
        assert result.configs.shape[0] == 0
        assert result.opt == UNREACHABLE
        assert not result.feasible
        _assert_bit_identical(result, reference, name)

    def test_explicit_empty_configs(self, name):
        counts, sizes, target = (2, 2), (3, 5), 11
        empty = np.zeros((0, 2), dtype=np.int64)
        result = _resolve(name)(counts, sizes, target, configs=empty)
        reference = dp_reference(counts, sizes, target, configs=empty)
        _assert_bit_identical(result, reference, name)
        assert not result.feasible

    def test_single_class(self, name):
        counts, sizes, target = (6,), (4,), 9
        result = _resolve(name)(counts, sizes, target)
        reference = dp_reference(counts, sizes, target)
        _assert_bit_identical(result, reference, name)
        # 2 jobs of size 4 fit a machine of budget 9: OPT = ceil(6/2).
        assert result.opt == 3

    def test_single_job(self, name):
        counts, sizes, target = (1,), (5,), 5
        result = _resolve(name)(counts, sizes, target)
        _assert_bit_identical(result, dp_reference(counts, sizes, target), name)
        assert result.opt == 1
