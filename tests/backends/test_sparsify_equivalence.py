"""Feasibility equivalence of sparsified probes (PR 9, satellite 3).

The acceptance property of configuration sparsification: a decision
probe is feasible with the dominance-pruned configuration set **iff**
it is feasible with the full set — for every sparsify-aware backend in
the registry and under all three machine models.  Because the clipped
cover fixpoint is bit-identical to the dense one, the stronger end-to-
end form is asserted here: the same final target and the same makespan,
probe sequence for probe sequence.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import iter_backends, resolve
from repro.core.instance import Instance
from repro.core.ptas import probe_target, ptas_schedule
from repro.models import lift_to_few_types, lift_to_time_restricted


def instances():
    return st.builds(
        Instance,
        times=st.lists(
            st.integers(min_value=1, max_value=60), min_size=4, max_size=12
        ).map(tuple),
        machines=st.integers(min_value=2, max_value=4),
    )


EPS = st.sampled_from([0.2, 0.3, 0.5])

#: every canonical backend whose factory accepts the sparsify knob;
#: the host-process pools are exercised separately (spawning a worker
#:  pool per hypothesis example would dominate the run).
SPARSIFY_AWARE = [
    s.name
    for s in iter_backends()
    if s.sparsify_aware and s.concurrency != "host-processes"
]


def _solver(name, sparsify):
    kwargs = {"sparsify": sparsify}
    if name.startswith("gpu"):
        kwargs["check_memory"] = False
    return resolve(name, **kwargs)


def _models(inst):
    return (
        inst,
        lift_to_few_types(inst),
        lift_to_time_restricted(inst),
    )


def test_registry_exposes_the_expected_sparsify_population():
    assert set(SPARSIFY_AWARE) >= {
        "decision",
        "sweep",
        "auto",
        "serial",
        "omp-16",
        "omp-28",
        "gpu-naive",
        "gpu-dim3",
        "gpu-dim6",
        "gpu-dim9",
        "hybrid",
    }
    assert any(
        s.name == "hostpar" and s.sparsify_aware for s in iter_backends()
    )


@given(inst=instances(), eps=EPS)
@settings(max_examples=8, deadline=None)
def test_pure_kernels_sparsified_probes_match_across_models(inst, eps):
    for name in ("decision", "sweep", "auto"):
        for modelled in _models(inst):
            on = ptas_schedule(modelled, eps=eps, dp_solver=_solver(name, True))
            off = ptas_schedule(
                modelled, eps=eps, dp_solver=_solver(name, False)
            )
            assert on.final_target == off.final_target, (name, modelled.model)
            assert on.makespan == off.makespan, (name, modelled.model)


@given(inst=instances(), eps=EPS)
@settings(max_examples=3, deadline=None)
def test_simulated_engines_sparsified_probes_match_across_models(inst, eps):
    names = [n for n in SPARSIFY_AWARE if n not in ("decision", "sweep", "auto")]
    # One engine family member each is enough per example — the family
    # shares one fill path; the full population runs in the agreement
    # suite.
    for name in ("serial", "omp-16", "gpu-naive", "gpu-dim3", "hybrid"):
        assert name in names
        for modelled in _models(inst):
            on = ptas_schedule(modelled, eps=eps, dp_solver=_solver(name, True))
            off = ptas_schedule(
                modelled, eps=eps, dp_solver=_solver(name, False)
            )
            assert on.final_target == off.final_target, (name, modelled.model)
            assert on.makespan == off.makespan, (name, modelled.model)


@given(inst=instances(), eps=EPS, offset=st.integers(min_value=0, max_value=5))
@settings(max_examples=12, deadline=None)
def test_probe_level_feasibility_iff_across_models(inst, eps, offset):
    # The literal satellite property: one probe, sparsified set vs full
    # set, identical accept/reject — at targets on both sides of the
    # threshold, under every model.
    from repro.core.bounds import makespan_bounds

    for modelled in _models(inst):
        bounds = makespan_bounds(modelled)
        target = min(bounds.upper, bounds.lower + offset)
        on = probe_target(
            modelled, target, eps, dp_solver=_solver("decision", True)
        )
        off = probe_target(
            modelled, target, eps, dp_solver=_solver("decision", False)
        )
        assert on.accepted == off.accepted, modelled.model
        if on.accepted:
            assert on.schedule.makespan == off.schedule.makespan


def test_hostpar_sparsified_probes_match_once():
    # The fabric-backed solver, exercised once outside hypothesis (it
    # owns a process pool); both knob positions, all three models.
    from repro.parallel.fabric import BlockExecutor, HostParallelSolver

    inst = Instance(times=(23, 19, 17, 13, 11, 7, 5, 3), machines=3)
    with BlockExecutor(workers=2) as fab:
        for modelled in _models(inst):
            on = ptas_schedule(
                modelled,
                eps=0.3,
                dp_solver=HostParallelSolver(
                    workers=2, fill_fabric=fab, sparsify=True
                ),
            )
            off = ptas_schedule(
                modelled,
                eps=0.3,
                dp_solver=HostParallelSolver(
                    workers=2, fill_fabric=fab, sparsify=False
                ),
            )
            assert on.final_target == off.final_target, modelled.model
            assert on.makespan == off.makespan, modelled.model


def test_sparse_tables_bit_identical_under_model_tokens():
    # The few-types/time-restricted fills thread model tokens through
    # the plan cache; the sparse fill must stay bit-identical to the
    # dense one on those filtered sets too.
    from repro.core.kernels.sweep import SweepKernel

    inst = Instance(times=(40, 33, 21, 18, 9, 6, 5), machines=3)
    for modelled in _models(inst):
        for eps in (0.2, 0.4):
            on = ptas_schedule(
                modelled, eps=eps, dp_solver=SweepKernel(sparsify=True)
            )
            off = ptas_schedule(
                modelled, eps=eps, dp_solver=SweepKernel(sparsify=False)
            )
            assert on.final_target == off.final_target
            for a, b in zip(on.probes, off.probes):
                assert a.target == b.target
                assert a.accepted == b.accepted
            assert np.array_equal(
                on.schedule.assignment, off.schedule.assignment
            )
