"""Tests for the backend registry (``repro.backends``)."""

import pytest

from repro.backends import (
    BackendSpec,
    backend_names,
    get_spec,
    is_registered,
    iter_backends,
    resolve,
)
from repro.core.dp_vectorized import dp_vectorized
from repro.errors import BackendError, ReproError


class TestListing:
    def test_default_names_present(self):
        names = backend_names()
        for expected in (
            "vectorized",
            "frontier",
            "reference",
            "serial",
            "omp-16",
            "omp-28",
            "gpu-naive",
            "gpu-dim3",
            "gpu-dim6",
            "gpu-dim9",
            "hybrid",
        ):
            assert expected in names

    def test_names_unique_and_stable(self):
        names = backend_names()
        assert len(names) == len(set(names))
        # Curated registration order: pure solvers first, then the
        # simulated engines — and stable across calls.
        assert names == backend_names()
        assert names.index("vectorized") < names.index("serial")

    def test_simulated_filter_partitions_registry(self):
        simulated = set(backend_names(simulated=True))
        pure = set(backend_names(simulated=False))
        assert simulated.isdisjoint(pure)
        assert simulated | pure == set(backend_names())
        assert "vectorized" in pure and "gpu-dim6" in simulated

    def test_iter_backends_yields_specs(self):
        specs = list(iter_backends())
        assert all(isinstance(s, BackendSpec) for s in specs)
        assert [s.name for s in specs] == backend_names()

    def test_family_resolution_does_not_grow_listing(self):
        before = backend_names()
        get_spec("omp-40")
        get_spec("gpu-dim5")
        assert backend_names() == before


class TestResolve:
    def test_pure_solver_resolves_to_the_function(self):
        assert resolve("vectorized") is dp_vectorized

    def test_engines_resolve_to_fresh_instances(self):
        a = resolve("omp-28")
        b = resolve("omp-28")
        assert a is not b
        assert a.runs == [] and b.runs == []

    def test_aliases(self):
        assert get_spec("openmp-28").name == "omp-28"
        assert get_spec("dp-vectorized").name == "vectorized"
        assert resolve("openmp-16").threads == 16

    def test_family_omp(self):
        engine = resolve("omp-40")
        assert engine.threads == 40
        assert get_spec("omp-40").simulated

    def test_family_gpu_dim(self):
        engine = resolve("gpu-dim5", check_memory=False)
        assert engine.dim == 5
        assert get_spec("gpu-dim5").concurrency == "device-streams"

    def test_family_hybrid(self):
        spec = get_spec("hybrid-omp16-dim3")
        assert spec.simulated and spec.concurrency == "host-threads"

    def test_resolve_forwards_kwargs(self):
        engine = resolve("gpu-dim6", num_streams=8)
        assert engine.num_streams == 8

    def test_is_registered(self):
        assert is_registered("gpu-dim6")
        assert is_registered("openmp-28")  # alias
        assert not is_registered("tpu-v5")


class TestErrors:
    def test_unknown_name_raises_backend_error(self):
        with pytest.raises(BackendError) as exc_info:
            get_spec("tpu-v5")
        message = str(exc_info.value)
        assert "tpu-v5" in message
        # The error must list the valid names so the CLI message is
        # self-explanatory.
        assert "vectorized" in message and "gpu-dim6" in message

    def test_backend_error_is_repro_and_lookup_error(self):
        with pytest.raises(ReproError):
            resolve("nope")
        with pytest.raises(LookupError):
            resolve("nope")

    def test_invalid_concurrency_rejected(self):
        with pytest.raises(ReproError):
            BackendSpec(
                name="bad",
                factory=lambda: None,
                simulated=True,
                concurrency="quantum",
                description="",
            )
