"""Property tests: every backend and both searches agree (satellite of
the executor refactor).

Historically ``run_ptas_gpu`` carried a private copy of the quarter
split whose interval update and final re-probe could drift from
``quarter_split_search`` — the refactor deleted that copy, so the GPU
runner *is* the shared search now, and these properties pin the
agreement down:

* for a fixed search, every registered backend — pure solvers and all
  simulated engines — returns the **identical makespan and final
  target** (the engines compute the same DP values by construction,
  and the executor layer only changes time accounting, never results);
* bisection and quarter split converge to the **identical final
  target**; each reports the best schedule among *its own* accepted
  probes, so cross-search makespans may differ by a hair (both are
  within the ``(1+eps)`` guarantee of the shared target) — that
  difference is seed behaviour protected by the bit-identity
  acceptance criterion, not drift.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import backend_names, get_spec, resolve
from repro.core.bisection import bisection_search
from repro.core.dp_reference import dp_reference
from repro.core.instance import Instance
from repro.core.quarter_split import quarter_split_search
from repro.engines.runner import run_ptas_gpu


def instances():
    return st.builds(
        Instance,
        times=st.lists(
            st.integers(min_value=1, max_value=60), min_size=4, max_size=16
        ).map(tuple),
        machines=st.integers(min_value=2, max_value=4),
    )


EPS = st.sampled_from([0.2, 0.3, 0.5])


def _resolve(name):
    # Tiny property instances trip the GPU engines' device-memory
    # check long before the tables are interesting; disable it.
    if name.startswith("gpu"):
        return resolve(name, check_memory=False)
    return resolve(name)


@given(inst=instances(), eps=EPS)
@settings(max_examples=25)
def test_pure_solvers_agree_on_both_searches(inst, eps):
    for search in (bisection_search, quarter_split_search):
        reference = search(inst, eps, dp_solver=resolve("vectorized"))
        for name in ("frontier", "reference"):
            result = search(inst, eps, dp_solver=resolve(name))
            assert result.makespan == reference.makespan, (name, search.__name__)
            assert result.final_target == reference.final_target


@given(inst=instances(), eps=EPS)
@settings(max_examples=6, deadline=None)
def test_every_simulated_backend_agrees_with_vectorized(inst, eps):
    # The whole registry, both searches: identical makespans and final
    # targets per search.  The engines verify their DP values against
    # the reference internally, so a disagreement here would mean the
    # *search plumbing* (executor rounds, cache path) altered results.
    names = backend_names(simulated=True)
    for search in (bisection_search, quarter_split_search):
        reference = search(inst, eps, dp_solver=resolve("vectorized"))
        for name in names:
            result = search(inst, eps, dp_solver=_resolve(name))
            assert result.makespan == reference.makespan, (name, search.__name__)
            assert result.final_target == reference.final_target, (
                name,
                search.__name__,
            )


@given(inst=instances(), eps=EPS)
@settings(max_examples=15, deadline=None)
def test_searches_converge_to_the_same_target(inst, eps):
    b = bisection_search(inst, eps)
    q = quarter_split_search(inst, eps)
    assert b.final_target == q.final_target
    # Makespans may differ (different accepted-probe sets), but both
    # honour the guarantee anchored at the shared converged target.
    bound = (1 + eps) * b.final_target + 1e-9
    assert b.makespan <= bound
    assert q.makespan <= bound


@given(inst=instances(), eps=EPS)
@settings(max_examples=8, deadline=None)
def test_gpu_runner_is_the_shared_quarter_split(inst, eps):
    # The divergence this refactor fixed: the runner used to carry its
    # own loop.  Now it must match the shared search *exactly* —
    # makespan, target, iterations, and the probed-target sequence.
    engine = _resolve("gpu-dim6")
    plain = quarter_split_search(inst, eps, dp_solver=engine)
    run = run_ptas_gpu(inst, eps, dim=6, engine=_resolve("gpu-dim6"))
    assert run.makespan == plain.makespan
    assert run.result.final_target == plain.final_target
    assert run.iterations == plain.iterations
    assert [p.target for p in run.result.probes] == [
        p.target for p in plain.probes
    ]


def probes():
    # Raw DP probes (post-rounding): small enough for the pure-Python
    # reference, varied enough to hit 1-3 dims and empty config sets.
    return st.integers(min_value=1, max_value=3).flatmap(
        lambda d: st.tuples(
            st.lists(
                st.integers(min_value=1, max_value=3),
                min_size=d, max_size=d,
            ).map(tuple),
            st.lists(
                st.integers(min_value=1, max_value=9),
                min_size=d, max_size=d, unique=True,
            ).map(tuple),
            st.integers(min_value=1, max_value=14),
        )
    )


@given(probe=probes())
@settings(max_examples=12, deadline=None)
def test_every_backend_table_is_bit_identical_to_reference(probe):
    # The probe-plan refactor's acceptance criterion: every backend —
    # pure solvers and all plan-interpreting engines — produces a
    # DPResult whose dense table is *bit-identical* to the explicit
    # Algorithm 2 reference, not merely the same OPT.
    counts, sizes, target = probe
    reference = dp_reference(counts, sizes, target)
    for name in backend_names():
        if get_spec(name).decision_only:
            continue  # no dense table to compare by design (tested elsewhere)
        result = _resolve(name)(counts, sizes, target)
        assert result.table.dtype == reference.table.dtype, name
        assert result.table.shape == reference.table.shape, name
        assert np.array_equal(result.table, reference.table), name
        assert np.array_equal(result.configs, reference.configs), name


def test_registry_has_the_expected_simulated_population():
    # Guard: if a new engine is registered, the properties above pick
    # it up automatically; if one vanishes, fail loudly here.
    assert set(backend_names(simulated=True)) >= {
        "serial",
        "omp-16",
        "omp-28",
        "gpu-naive",
        "gpu-dim3",
        "gpu-dim6",
        "gpu-dim9",
        "hybrid",
    }
