"""Tests for the statistics helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import (
    BootstrapCI,
    bootstrap_geomean_ci,
    geometric_mean,
    speedups,
    summarize_speedup,
)
from repro.errors import ReproError


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_identity_on_constant(self):
        assert geometric_mean([3.0, 3.0, 3.0]) == pytest.approx(3.0)

    def test_reciprocal_consistency(self):
        # gm(1/x) == 1/gm(x) — the property arithmetic means lack.
        values = [0.5, 2.0, 4.0, 1.25]
        assert geometric_mean([1 / v for v in values]) == pytest.approx(
            1 / geometric_mean(values)
        )

    def test_rejects_empty(self):
        with pytest.raises(ReproError):
            geometric_mean([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ReproError):
            geometric_mean([1.0, 0.0])


class TestSpeedups:
    def test_basic(self):
        out = speedups([10.0, 4.0], [5.0, 8.0])
        assert out.tolist() == [2.0, 0.5]

    def test_rejects_mismatch(self):
        with pytest.raises(ReproError):
            speedups([1.0], [1.0, 2.0])

    def test_rejects_zero_times(self):
        with pytest.raises(ReproError):
            speedups([0.0], [1.0])


class TestBootstrap:
    def test_estimate_is_geomean(self):
        ratios = [1.5, 2.0, 3.0, 2.5]
        ci = bootstrap_geomean_ci(ratios, seed=1)
        assert ci.estimate == pytest.approx(geometric_mean(ratios))

    def test_interval_brackets_estimate(self):
        ci = bootstrap_geomean_ci([1.2, 1.8, 2.2, 0.9, 3.0], seed=2)
        assert ci.lower <= ci.estimate <= ci.upper

    def test_deterministic_given_seed(self):
        a = bootstrap_geomean_ci([1.0, 2.0, 3.0], seed=7)
        b = bootstrap_geomean_ci([1.0, 2.0, 3.0], seed=7)
        assert (a.lower, a.upper) == (b.lower, b.upper)

    def test_tightens_with_sample_size(self):
        rng = np.random.default_rng(0)
        small = rng.lognormal(0.5, 0.3, size=8)
        large = rng.lognormal(0.5, 0.3, size=200)
        wide = bootstrap_geomean_ci(small, seed=3)
        narrow = bootstrap_geomean_ci(large, seed=3)
        assert (narrow.upper - narrow.lower) < (wide.upper - wide.lower)

    def test_contains(self):
        ci = BootstrapCI(estimate=2.0, lower=1.5, upper=2.5, confidence=0.95)
        assert ci.contains(2.0) and not ci.contains(3.0)

    def test_rejects_bad_confidence(self):
        with pytest.raises(ReproError):
            bootstrap_geomean_ci([1.0, 2.0], confidence=1.0)

    def test_rejects_few_resamples(self):
        with pytest.raises(ReproError):
            bootstrap_geomean_ci([1.0, 2.0], resamples=5)


class TestSummary:
    def test_fields(self):
        out = summarize_speedup([10.0, 8.0, 6.0], [5.0, 9.0, 2.0])
        assert out["n"] == 3
        assert out["win_rate"] == pytest.approx(2 / 3)
        assert out["min"] <= out["geomean_speedup"] <= out["max"]

    def test_ci_brackets_geomean(self):
        out = summarize_speedup([10.0, 8.0, 6.0, 12.0], [5.0, 9.0, 2.0, 3.0])
        assert out["ci_lower"] <= out["geomean_speedup"] <= out["ci_upper"]


@settings(deadline=None, max_examples=40)
@given(st.lists(st.floats(0.01, 100.0), min_size=1, max_size=30))
def test_geomean_between_min_and_max(values):
    gm = geometric_mean(values)
    assert min(values) - 1e-12 <= gm <= max(values) + 1e-12
