"""Integration tests for the exhibit-reproduction modules.

Each experiment runs on a reduced workload (the benches run the full
ones) and is asserted against the *paper's qualitative shapes* — the
actual reproduction criteria.
"""

import pytest

from repro.analysis.experiments import ablations, fig2, fig3, fig4, tables_i_vi
from repro.analysis.paper_data import TABLES_I_TO_VI
from repro.analysis.workloads import harvest_tables


class TestFig2:
    def test_matches_paper_caption(self):
        result = fig2.run()
        assert len(result.rows) == 27  # 27 blocks
        levels = [r["block_level"] for r in result.rows]
        assert max(levels) == 6  # 7 block-levels (0..6)
        assert all(r["inblock_levels"] == 4 for r in result.rows)

    def test_stream_assignment_within_range(self):
        result = fig2.run()
        assert set(r["stream"] for r in result.rows) <= {0, 1, 2, 3}


@pytest.mark.slow
class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        tables = harvest_tables(
            [(200, 4000), (8000, 40000)], per_group=2, seed=11, pool_size=800
        )
        return fig3.run(dims=(3, 6), tables=tables)

    def test_row_per_table_engine(self, result):
        engines = {r["engine"] for r in result.rows}
        assert engines == {"omp16", "omp28", "gpu-dim3", "gpu-dim6"}
        sizes = {r["table_size"] for r in result.rows}
        assert all(
            len(result.filter(table_size=s).rows) == 4 for s in sizes
        )

    def test_openmp_wins_small_tables(self, result):
        small = [r for r in result.rows if r["table_size"] < 4000]
        omp = min(r["simulated_s"] for r in small if r["engine"] == "omp28")
        gpu = min(r["simulated_s"] for r in small if r["engine"].startswith("gpu"))
        assert omp < gpu

    def test_omp16_never_faster_than_omp28(self, result):
        for size in {r["table_size"] for r in result.rows}:
            rows = {r["engine"]: r["simulated_s"] for r in result.filter(table_size=size).rows}
            assert rows["omp16"] >= rows["omp28"]

    def test_crossover_helper(self, result):
        # With tables only up to 40k the crossover may or may not appear;
        # the helper must return either None or a size in range.
        cross = fig3.crossover_size(result)
        if cross is not None:
            assert cross in {r["table_size"] for r in result.rows}


@pytest.mark.slow
class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return fig4.run(sizes=(3456,), dims_settings=(3, 4, 5, 6, 7))

    def test_rows_per_shape(self, result):
        n_shapes = len(TABLES_I_TO_VI[3456])
        assert len(result.rows) == n_shapes * 5

    def test_dim3_never_best(self, result):
        for row in TABLES_I_TO_VI[3456]:
            best = fig4.best_partition_dim(result, 3456, row.n_dims)
            assert best != 3  # paper: GPU-DIM3 is the weakest setting

    def test_interior_optimum(self, result):
        # The best setting lies strictly inside the sweep for at least
        # most shapes (the paper's block-complexity tradeoff).
        interior = 0
        for row in TABLES_I_TO_VI[3456]:
            if fig4.best_partition_dim(result, 3456, row.n_dims) in (4, 5, 6):
                interior += 1
        assert interior >= len(TABLES_I_TO_VI[3456]) - 1

    def test_unknown_size_raises(self):
        with pytest.raises(KeyError):
            fig4.run(sizes=(999,))


class TestTablesIVI:
    def test_majority_verbatim(self):
        result = tables_i_vi.run()
        matches = sum(1 for r in result.rows if r["match_dim3"] and r["match_best"])
        assert matches >= 12  # 13/18 at the time of calibration

    def test_dim3_column_overwhelmingly_verbatim(self):
        result = tables_i_vi.run()
        matches = sum(1 for r in result.rows if r["match_dim3"])
        assert matches >= 15  # 16/18

    def test_block_shapes_divide_dimension_sizes(self):
        result = tables_i_vi.run()
        for r in result.rows:
            for extent, block in zip(r["shape"], r["ours_dim3"]):
                assert extent % block == 0


class TestAblations:
    def test_stream_count_concurrency_helps(self):
        result = ablations.stream_count(streams=(1, 2, 4, 8))
        times = {r["streams"]: r["simulated_s"] for r in result.rows}
        # Monotone gain with diminishing returns: the 2->4 gain exceeds
        # the 4->8 gain.  (The paper picks 4 as the sweet spot; our
        # model shows mild further gains beyond 4 because it omits
        # per-stream scheduling overheads — noted in EXPERIMENTS.md.)
        assert times[4] < times[2] < times[1]
        assert (times[2] - times[4]) > (times[4] - times[8]) * 0.9

    def test_coalescing_report(self):
        result = ablations.coalescing()
        by_engine = {r["engine"]: r for r in result.rows}
        naive = by_engine["gpu-naive"]
        part = [v for k, v in by_engine.items() if k.startswith("gpu-dim")][0]
        assert part["bus_utilization"] > naive["bus_utilization"]
        assert part["scan_scope"] < naive["scan_scope"]
        assert part["simulated_s"] < naive["simulated_s"]


class TestCensus:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.analysis.experiments import census

        return census.run(population=8, seed=41)

    def test_row_per_instance(self, result):
        assert len(result.rows) == 8

    def test_sizes_bracketed(self, result):
        for r in result.rows:
            assert r["min_size"] <= r["max_size"]
            assert r["min_dims"] <= r["max_dims"]
            assert r["distinct_sizes"] <= r["probes"]

    def test_within_instance_spread_exists(self, result):
        # The paper's point: one instance yields tables of many sizes.
        assert any(r["distinct_sizes"] >= 3 for r in result.rows)

    def test_notes_summarise(self, result):
        assert any("grouping results by table size" in n for n in result.notes)

    def test_deterministic(self):
        from repro.analysis.experiments import census

        a = census.run(population=4, seed=9)
        b = census.run(population=4, seed=9)
        assert a.rows == b.rows


class TestFig1:
    def test_default_matches_paper(self):
        from repro.analysis.experiments import fig1

        result = fig1.run()
        assert len(result.rows) == 12  # OPT(2,3): 3x4 cells
        levels = [r["level"] for r in result.rows]
        assert max(levels) == 5
        # Level sizes 1,2,3,3,2,1 — the diamond of Fig. 1.
        from collections import Counter

        assert sorted(Counter(levels).values()) == [1, 1, 2, 2, 3, 3]

    def test_cores_cycle_within_level(self):
        from repro.analysis.experiments import fig1

        result = fig1.run(counts=(3, 3), cores=2)
        level3 = [r["core"] for r in result.rows if r["level"] == 3]
        assert level3 == [0, 1, 0, 1]  # 4 cells round-robin on 2 cores

    def test_core_never_exceeds_count(self):
        from repro.analysis.experiments import fig1

        result = fig1.run(counts=(4, 4), cores=3)
        assert all(0 <= r["core"] < 3 for r in result.rows)
