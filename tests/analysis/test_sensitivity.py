"""Tests for the device-sensitivity experiment (beyond the paper)."""

import pytest

from repro.analysis.experiments import sensitivity
from repro.analysis.workloads import harvest_tables
from repro.gpusim.spec import KEPLER_K20, KEPLER_K40, MODERN_DATACENTER


@pytest.fixture(scope="module")
def result():
    tables = harvest_tables(
        [(500, 5_000), (20_000, 80_000)], per_group=2, seed=77, pool_size=1500
    )
    return sensitivity.run(tables=tables)


@pytest.mark.slow
class TestSensitivity:
    def test_row_per_device_table(self, result):
        devices = {r["device"] for r in result.rows}
        assert len(devices) == 3
        sizes = {r["table_size"] for r in result.rows}
        for device in devices:
            assert len([r for r in result.rows if r["device"] == device]) == len(sizes)

    def test_omp_reference_identical_across_devices(self, result):
        # The CPU side does not depend on the GPU model.
        by_size: dict[int, set[float]] = {}
        for r in result.rows:
            by_size.setdefault(r["table_size"], set()).add(r["omp28_s"])
        assert all(len(v) == 1 for v in by_size.values())

    def test_modern_gpu_faster_than_k40(self, result):
        for size in {r["table_size"] for r in result.rows}:
            rows = {r["device"]: r["gpu_s"] for r in result.rows if r["table_size"] == size}
            assert rows[MODERN_DATACENTER.name] < rows[KEPLER_K40.name]

    def test_k20_never_faster_than_k40(self, result):
        for size in {r["table_size"] for r in result.rows}:
            rows = {r["device"]: r["gpu_s"] for r in result.rows if r["table_size"] == size}
            assert rows[KEPLER_K20.name] >= rows[KEPLER_K40.name] * 0.999

    def test_crossover_moves_down_on_modern_gpu(self, result):
        crossovers = sensitivity.crossover_per_device(result)
        modern = crossovers[MODERN_DATACENTER.name]
        k40 = crossovers[KEPLER_K40.name]
        assert modern is not None
        if k40 is not None:
            assert modern <= k40

    def test_small_tables_still_cpu_territory(self, result):
        # Even the modern device loses the tiniest tables: the
        # wavefront cannot feed it (the paper's core observation).
        smallest = min(r["table_size"] for r in result.rows)
        rows = [r for r in result.rows if r["table_size"] == smallest]
        assert all(not r["gpu_wins"] for r in rows)
