"""Unit tests for repro.analysis.workloads (the Fig. 3 harvesting)."""

import pytest

from repro.analysis.workloads import harvest_tables
from repro.core.dp_vectorized import dp_vectorized
from repro.errors import InvalidInstanceError


class TestHarvestTables:
    def test_sizes_in_groups(self):
        groups = [(100, 5000), (5001, 40000)]
        tables = harvest_tables(groups, per_group=3, seed=1, pool_size=800)
        for t in tables:
            assert any(lo <= t.table_size <= hi for lo, hi in groups)

    def test_sorted_by_size(self):
        tables = harvest_tables([(100, 20000)], per_group=5, seed=2, pool_size=800)
        sizes = [t.table_size for t in tables]
        assert sizes == sorted(sizes)

    def test_distinct_sizes(self):
        tables = harvest_tables([(100, 20000)], per_group=6, seed=3, pool_size=800)
        sizes = [t.table_size for t in tables]
        assert len(set(sizes)) == len(sizes)

    def test_deterministic(self):
        a = harvest_tables([(100, 10000)], per_group=3, seed=5, pool_size=500)
        b = harvest_tables([(100, 10000)], per_group=3, seed=5, pool_size=500)
        assert [t.table_size for t in a] == [t.table_size for t in b]

    def test_probes_are_solvable(self):
        tables = harvest_tables([(100, 3000)], per_group=2, seed=4, pool_size=500)
        for t in tables:
            result = dp_vectorized(t.counts, t.class_sizes, t.target)
            assert result.table.size == t.table_size

    def test_unfillable_group_raises(self):
        with pytest.raises(InvalidInstanceError, match="pool_size"):
            harvest_tables(
                [(10**9, 10**9 + 1)], per_group=1, seed=0, pool_size=50
            )

    def test_rejects_bad_per_group(self):
        with pytest.raises(InvalidInstanceError):
            harvest_tables([(1, 10)], per_group=0)
