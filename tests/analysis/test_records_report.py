"""Unit tests for repro.analysis.records and repro.analysis.report."""

import json

import pytest

from repro.analysis.records import ExperimentResult
from repro.analysis.report import ascii_plot, render_table


@pytest.fixture
def result():
    r = ExperimentResult(exhibit="x", description="demo")
    r.rows = [
        {"size": 100, "engine": "omp", "t": 1.5},
        {"size": 100, "engine": "gpu", "t": 0.5},
        {"size": 200, "engine": "omp", "t": 4.0},
    ]
    return r


class TestExperimentResult:
    def test_column(self, result):
        assert result.column("size") == [100, 100, 200]
        assert result.column("missing") == [None, None, None]

    def test_filter(self, result):
        sub = result.filter(engine="omp")
        assert len(sub.rows) == 2
        assert all(r["engine"] == "omp" for r in sub.rows)

    def test_filter_multiple_conditions(self, result):
        sub = result.filter(engine="omp", size=200)
        assert len(sub.rows) == 1

    def test_to_json_round_trips(self, result):
        data = json.loads(result.to_json())
        assert data["exhibit"] == "x"
        assert len(data["rows"]) == 3

    def test_to_json_handles_numpy(self):
        import numpy as np

        r = ExperimentResult(exhibit="x", description="d")
        r.rows = [{"v": np.int64(3), "a": np.array([1, 2])}]
        data = json.loads(r.to_json())
        assert data["rows"][0]["a"] == [1, 2]


class TestRenderTable:
    def test_contains_all_values(self, result):
        text = render_table(result.rows)
        assert "100" in text and "omp" in text and "1.5" in text

    def test_column_selection_and_order(self, result):
        text = render_table(result.rows, columns=["engine", "size"])
        header = text.splitlines()[0]
        assert header.index("engine") < header.index("size")
        assert "t" not in header.split()

    def test_alignment(self, result):
        lines = render_table(result.rows).splitlines()
        assert len({len(ln) for ln in lines[1:]}) == 1  # rectangular

    def test_title(self, result):
        assert render_table(result.rows, title="T7").startswith("T7")

    def test_empty(self):
        assert "empty" in render_table([])


class TestAsciiPlot:
    def test_markers_present(self):
        text = ascii_plot(
            {"omp": [(100, 1.0), (1000, 10.0)], "gpu": [(100, 2.0), (1000, 1.0)]},
            width=40,
            height=10,
        )
        assert "O" in text and "G" in text
        assert "legend" in text

    def test_axis_ranges_reported(self):
        text = ascii_plot({"s": [(10, 1.0), (1000, 100.0)]}, xlabel="size")
        assert "size" in text
        assert "10" in text

    def test_no_data(self):
        assert "no data" in ascii_plot({"s": []})

    def test_nonpositive_filtered_in_log(self):
        text = ascii_plot({"s": [(0, 1.0), (10, 1.0)]})
        assert "no data" not in text  # the (10, 1) point survives

    def test_duplicate_marker_disambiguation(self):
        text = ascii_plot(
            {"gpu-a": [(1, 1)], "gpu-b": [(2, 2)]}, width=20, height=5
        )
        legend = [ln for ln in text.splitlines() if ln.startswith("legend")][0]
        marks = [part.split("=")[0] for part in legend.replace("legend: ", "").split("  ")]
        assert len(set(marks)) == 2
