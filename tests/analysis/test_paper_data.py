"""Consistency checks on the transcribed paper data."""

import numpy as np

from repro.analysis.paper_data import (
    FIG3_GROUPS,
    FIG4_SIZES,
    GPU_DIMS,
    TABLE_VII,
    TABLES_I_TO_VI,
)


class TestTablesIToVI:
    def test_dimension_sizes_multiply_to_table_size(self):
        for size, rows in TABLES_I_TO_VI.items():
            for row in rows:
                assert int(np.prod(row.dimension_sizes)) == size

    def test_n_dims_matches_shape(self):
        for rows in TABLES_I_TO_VI.values():
            for row in rows:
                assert len(row.dimension_sizes) == row.n_dims
                assert len(row.gpu_dim3_blocks) == row.n_dims
                assert len(row.gpu_best_blocks) == row.n_dims

    def test_all_fig4_sizes_covered(self):
        assert set(FIG4_SIZES) == set(TABLES_I_TO_VI)

    def test_best_dim_in_sweep(self):
        for rows in TABLES_I_TO_VI.values():
            for row in rows:
                assert row.best_dim in GPU_DIMS


class TestTableVII:
    def test_gpu_needs_fewer_iterations(self):
        for row in TABLE_VII:
            assert row.gpu_iterations < row.openmp_iterations

    def test_speedup_grows_with_size(self):
        speedups = [row.gpu_speedup for row in TABLE_VII]
        assert speedups[-1] > 30  # 403200: ~32x
        assert speedups[0] < 1  # 12960: GPU slightly behind

    def test_sizes_ascending(self):
        sizes = [row.table_size for row in TABLE_VII]
        assert sizes == sorted(sizes)


class TestFig3Groups:
    def test_three_disjoint_ascending_groups(self):
        assert len(FIG3_GROUPS) == 3
        for (lo1, hi1), (lo2, _) in zip(FIG3_GROUPS, FIG3_GROUPS[1:]):
            assert lo1 <= hi1 < lo2
