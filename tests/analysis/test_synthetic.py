"""Unit tests for repro.analysis.synthetic."""

import pytest

from repro.analysis.synthetic import synthetic_probe
from repro.core.dp_vectorized import dp_vectorized
from repro.core.rounding import accuracy_k, rounding_unit
from repro.errors import InvalidInstanceError


class TestSyntheticProbe:
    def test_exact_shape(self):
        probe = synthetic_probe((6, 4, 6, 6, 4))
        assert probe.table_shape == (6, 4, 6, 6, 4)
        assert probe.table_size == 3456

    def test_paper_sizes_reachable(self):
        for shape, size in [
            ((5, 3, 6, 3, 4, 4, 2), 8640),
            ((3, 16, 15, 18), 12960),
            ((4, 4, 6, 6, 2, 3, 3, 2), 20736),
        ]:
            assert synthetic_probe(shape).table_size == size

    def test_consistent_with_ptas_rounding(self):
        # Class sizes must be multiples of the PTAS unit and lie in
        # (T/k, T] — i.e. genuinely long-job classes.
        probe = synthetic_probe((4, 5, 6), eps=0.3)
        k = accuracy_k(0.3)
        unit = rounding_unit(probe.target, k)
        for size in probe.class_sizes:
            assert size % unit == 0
            assert probe.target / k < size <= probe.target

    def test_distinct_class_sizes(self):
        probe = synthetic_probe((2,) * 11)
        assert len(set(probe.class_sizes)) == 11

    def test_dp_solvable(self):
        probe = synthetic_probe((4, 3, 5))
        result = dp_vectorized(probe.counts, probe.class_sizes, probe.target)
        assert result.feasible

    def test_configs_nonempty(self):
        probe = synthetic_probe((3, 3, 3))
        assert probe.configs().shape[0] >= probe.dims  # at least the units

    def test_rejects_extent_one(self):
        with pytest.raises(InvalidInstanceError):
            synthetic_probe((4, 1, 3))

    def test_rejects_too_many_dims(self):
        with pytest.raises(InvalidInstanceError):
            synthetic_probe((2,) * 13, eps=0.3)  # only 12 classes at k=4

    def test_dims_capacity_scales_with_eps(self):
        # eps=0.2 -> k=5 -> 20 classes.
        probe = synthetic_probe((2,) * 15, eps=0.2)
        assert probe.dims == 15
