"""Tests for the observability layer: timers, tracer, sinks, rendering."""

import json

import pytest

from repro.core.instance import uniform_instance
from repro.core.ptas import ptas_schedule
from repro.observability import (
    NullSink,
    PhaseTimer,
    ProbeTrace,
    TraceRecorder,
    Tracer,
    as_tracer,
    current_tracer,
    events_to_json,
    render_profile,
)
from repro.observability import context as obs


def _probe(target=10, accepted=True) -> ProbeTrace:
    return ProbeTrace(
        target=target,
        accepted=accepted,
        machines_needed=3,
        k=4,
        dims=2,
        n_long=5,
        table_size=12,
        num_configs=7,
        phase_seconds={"dp": 0.25, "rounding": 0.75},
        cache_events={"dp": "hit"},
    )


class TestPhaseTimer:
    def test_accumulates_reentries(self):
        timer = PhaseTimer()
        for _ in range(3):
            with timer.phase("work"):
                pass
        assert timer.entries["work"] == 3
        assert timer.seconds["work"] >= 0.0

    def test_total_sums_phases(self):
        timer = PhaseTimer()
        timer.add("a", 1.0)
        timer.add("b", 0.5)
        assert timer.total == pytest.approx(1.5)

    def test_merge(self):
        a, b = PhaseTimer(), PhaseTimer()
        a.add("x", 1.0)
        b.add("x", 2.0)
        b.add("y", 3.0)
        a.merge(b)
        assert a.seconds == {"x": 3.0, "y": 3.0}
        assert a.entries["x"] == 2

    def test_accumulates_on_exception(self):
        timer = PhaseTimer()
        with pytest.raises(ValueError):
            with timer.phase("boom"):
                raise ValueError()
        assert timer.entries["boom"] == 1


class TestProbeTrace:
    def test_seconds_sums_phases(self):
        assert _probe().seconds == pytest.approx(1.0)

    def test_to_dict_round_trips_through_json(self):
        payload = json.loads(events_to_json([_probe()]))
        assert payload[0]["target"] == 10
        assert payload[0]["phase_seconds"]["dp"] == 0.25
        assert payload[0]["cache_events"] == {"dp": "hit"}


class TestSinks:
    def test_recorder_keeps_order_and_filters(self):
        rec = TraceRecorder()
        rec.record(_probe(target=5, accepted=False))
        rec.record(_probe(target=7, accepted=True))
        assert len(rec) == 2
        assert [e.target for e in rec.events] == [5, 7]
        assert [e.target for e in rec.accepted] == [7]
        assert rec.cache_hits == 2

    def test_null_sink_discards(self):
        sink = NullSink()
        sink.record(_probe())  # must not raise, must not retain


class TestTracer:
    def test_counters_accumulate(self):
        tracer = Tracer()
        tracer.count("x")
        tracer.count("x", 4)
        assert tracer.counters["x"] == 5

    def test_ambient_activation_is_scoped(self):
        tracer = Tracer()
        assert current_tracer() is None
        with tracer.activate():
            assert current_tracer() is tracer
            obs.count("inside")
        assert current_tracer() is None
        obs.count("outside")  # no-op, no tracer active
        assert tracer.counters == {"inside": 1}

    def test_nested_activation_restores_outer(self):
        outer, inner = Tracer(), Tracer()
        with outer.activate():
            with inner.activate():
                obs.count("deep")
            assert current_tracer() is outer
        assert inner.counters == {"deep": 1}
        assert "deep" not in outer.counters

    def test_probe_events_forward_to_sink(self):
        rec = TraceRecorder()
        tracer = Tracer(sink=rec)
        tracer.record_probe(_probe())
        assert len(rec.events) == 1
        assert tracer.probes == rec.events

    def test_report_is_json_serializable(self):
        tracer = Tracer()
        tracer.count("n", 2)
        tracer.timer.add("p", 0.1)
        tracer.record_probe(_probe())
        report = json.loads(json.dumps(tracer.report()))
        assert report["counters"]["n"] == 2
        assert report["phases"]["p"] == 0.1
        assert len(report["probes"]) == 1


class TestAsTracer:
    def test_none_passthrough(self):
        assert as_tracer(None) is None

    def test_tracer_passthrough(self):
        tracer = Tracer()
        assert as_tracer(tracer) is tracer

    def test_sink_is_wrapped(self):
        rec = TraceRecorder()
        tracer = as_tracer(rec)
        assert isinstance(tracer, Tracer)
        assert tracer.sink is rec

    def test_garbage_rejected(self):
        with pytest.raises(TypeError):
            as_tracer(42)


class TestPtasIntegration:
    @pytest.mark.parametrize("search", ["bisection", "quarter"])
    def test_sink_records_one_event_per_probe(self, search):
        inst = uniform_instance(20, 4, low=5, high=60, seed=11)
        rec = TraceRecorder()
        result = ptas_schedule(inst, eps=0.3, search=search, trace=rec)
        assert len(rec.events) == len(result.probes)
        assert [e.target for e in rec.events] == [p.target for p in result.probes]
        assert [e.accepted for e in rec.events] == [p.accepted for p in result.probes]

    def test_tracer_phases_and_counters_populated(self):
        inst = uniform_instance(20, 4, low=5, high=60, seed=11)
        tracer = Tracer()
        result = ptas_schedule(inst, eps=0.3, search="bisection", trace=tracer)
        assert tracer.counters["probe.count"] == len(result.probes)
        assert tracer.counters["search.iterations"] == result.iterations
        assert "probe.dp" in tracer.timer.seconds
        assert "probe.rounding" in tracer.timer.seconds

    def test_tracing_does_not_change_results(self):
        inst = uniform_instance(25, 5, low=3, high=80, seed=23)
        plain = ptas_schedule(inst, eps=0.3, search="quarter")
        traced = ptas_schedule(inst, eps=0.3, search="quarter", trace=Tracer())
        assert traced.final_target == plain.final_target
        assert traced.makespan == plain.makespan
        assert traced.schedule.assignment == plain.schedule.assignment


class TestRenderProfile:
    def test_renders_phases_counters_probes(self):
        tracer = Tracer()
        tracer.count("configs.enumerations", 3)
        tracer.timer.add("probe.dp", 0.5)
        tracer.record_probe(_probe())
        text = render_profile(tracer, title="unit")
        assert "== unit ==" in text
        assert "probe.dp" in text
        assert "configs.enumerations" in text
        assert "dp:hit" in text

    def test_empty_tracer_renders_header_only(self):
        assert render_profile(Tracer()) == "== profile =="
