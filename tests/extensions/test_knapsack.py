"""Tests for the multidimensional knapsack extension (future work §V)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import DPError, InvalidInstanceError
from repro.extensions.knapsack import (
    KnapsackGpuEngine,
    KnapsackInstance,
    knapsack_dp,
    knapsack_exact_bruteforce,
    knapsack_greedy,
    random_knapsack,
)


class TestInstance:
    def test_basic_properties(self):
        inst = KnapsackInstance(
            weights=((1, 2), (3, 0)), values=(10, 5), capacity=(4, 4)
        )
        assert inst.n_items == 2 and inst.dims == 2
        assert inst.table_shape == (5, 5)
        assert inst.table_size == 25

    def test_rejects_arity_mismatch(self):
        with pytest.raises(InvalidInstanceError):
            KnapsackInstance(weights=((1,),), values=(1,), capacity=(3, 3))

    def test_rejects_value_count_mismatch(self):
        with pytest.raises(InvalidInstanceError):
            KnapsackInstance(weights=((1, 1),), values=(1, 2), capacity=(3, 3))

    def test_rejects_nonpositive_value(self):
        with pytest.raises(InvalidInstanceError):
            KnapsackInstance(weights=((1, 1),), values=(0,), capacity=(3, 3))

    def test_rejects_negative_weight(self):
        with pytest.raises(InvalidInstanceError):
            KnapsackInstance(weights=((-1, 1),), values=(1,), capacity=(3, 3))

    def test_random_generator_no_zero_rows(self):
        inst = random_knapsack(50, capacity=(5, 5, 5), seed=0)
        assert all(any(row) for row in inst.weights)


class TestKnapsackDP:
    def test_single_item(self):
        inst = KnapsackInstance(weights=((2, 1),), values=(7,), capacity=(3, 3))
        table = knapsack_dp(inst)
        assert table[3, 3] == 7
        assert table[1, 3] == 0  # too narrow in dim 0

    def test_zero_one_semantics(self):
        # One item must not be taken twice even if it fits twice.
        inst = KnapsackInstance(weights=((1,),), values=(5,), capacity=(10,))
        assert knapsack_dp(inst)[10] == 5

    def test_matches_bruteforce_randomized(self):
        for seed in range(10):
            inst = random_knapsack(9, capacity=(6, 5, 4), seed=seed)
            dp = int(knapsack_dp(inst)[tuple(inst.capacity)])
            assert dp == knapsack_exact_bruteforce(inst), seed

    def test_monotone_in_capacity(self):
        inst = random_knapsack(10, capacity=(6, 6), seed=3)
        table = knapsack_dp(inst)
        assert (np.diff(table, axis=0) >= 0).all()
        assert (np.diff(table, axis=1) >= 0).all()

    def test_zero_capacity_axis(self):
        inst = KnapsackInstance(
            weights=((1, 0), (0, 1)), values=(3, 4), capacity=(0, 2)
        )
        table = knapsack_dp(inst)
        assert table[0, 2] == 4  # only the dim-0-free item fits

    def test_greedy_never_beats_dp(self):
        for seed in range(10):
            inst = random_knapsack(14, capacity=(8, 8), seed=100 + seed)
            assert knapsack_greedy(inst) <= int(knapsack_dp(inst)[tuple(inst.capacity)])

    def test_greedy_strictly_loses_sometimes(self):
        losses = 0
        for seed in range(20):
            inst = random_knapsack(12, capacity=(7, 7), seed=seed)
            if knapsack_greedy(inst) < int(knapsack_dp(inst)[tuple(inst.capacity)]):
                losses += 1
        assert losses >= 3


@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow], max_examples=25)
@given(
    n=st.integers(1, 8),
    seed=st.integers(0, 10_000),
    cap=st.lists(st.integers(1, 6), min_size=1, max_size=3),
)
def test_dp_equals_bruteforce_property(n, seed, cap):
    inst = random_knapsack(n, capacity=tuple(cap), max_weight=4, seed=seed)
    dp = int(knapsack_dp(inst)[tuple(inst.capacity)])
    assert dp == knapsack_exact_bruteforce(inst)


class TestKnapsackGpuEngine:
    def test_values_match_plain_dp(self):
        inst = random_knapsack(10, capacity=(9, 9, 9), seed=5)
        run = KnapsackGpuEngine(dim=3).run(inst)
        assert np.array_equal(run.table, knapsack_dp(inst))

    def test_simulated_time_positive_and_deterministic(self):
        inst = random_knapsack(8, capacity=(9, 9), seed=6)
        a = KnapsackGpuEngine(dim=2).run(inst)
        b = KnapsackGpuEngine(dim=2).run(inst)
        assert a.simulated_s == b.simulated_s > 0

    def test_metrics_report_partition(self):
        inst = random_knapsack(6, capacity=(9, 9), seed=7)
        run = KnapsackGpuEngine(dim=2).run(inst)
        assert run.metrics["num_blocks"] >= 1
        assert run.metrics["kernels_launched"] >= inst.n_items

    def test_more_items_cost_more(self):
        small = KnapsackGpuEngine(dim=2).run(random_knapsack(5, (9, 9), seed=8))
        big = KnapsackGpuEngine(dim=2).run(random_knapsack(25, (9, 9), seed=8))
        assert big.simulated_s > small.simulated_s


class TestBruteforceGuard:
    def test_rejects_large_n(self):
        inst = random_knapsack(23, capacity=(3,), seed=0)
        with pytest.raises(DPError):
            knapsack_exact_bruteforce(inst)


class TestKnapsackItems:
    def test_items_achieve_optimal_value(self):
        from repro.extensions.knapsack import knapsack_items

        for seed in range(10):
            inst = random_knapsack(10, capacity=(7, 6, 5), seed=seed)
            items = knapsack_items(inst)
            value = sum(inst.values[i] for i in items)
            assert value == int(knapsack_dp(inst)[tuple(inst.capacity)]), seed

    def test_items_respect_capacity(self):
        from repro.extensions.knapsack import knapsack_items

        inst = random_knapsack(12, capacity=(8, 8), seed=3)
        items = knapsack_items(inst)
        total = np.sum([inst.weights[i] for i in items], axis=0)
        assert (total <= np.asarray(inst.capacity)).all()

    def test_items_unique_and_sorted(self):
        from repro.extensions.knapsack import knapsack_items

        inst = random_knapsack(12, capacity=(8, 8), seed=4)
        items = knapsack_items(inst)
        assert list(items) == sorted(set(items))

    def test_empty_when_nothing_fits(self):
        from repro.extensions.knapsack import knapsack_items

        inst = KnapsackInstance(weights=((9, 9),), values=(5,), capacity=(3, 3))
        assert knapsack_items(inst) == ()
