"""Tests for the block-residency analysis (future work §V)."""

import numpy as np
import pytest

from repro.core.configs import enumerate_configurations
from repro.dptable.partition import BlockPartition
from repro.dptable.table import TableGeometry
from repro.errors import PartitionError
from repro.extensions.residency import BlockResidency


def make(shape, divisor, sizes, target):
    geometry = TableGeometry(shape)
    partition = BlockPartition(geometry, divisor)
    configs = enumerate_configurations(sizes, [s - 1 for s in shape], target)
    return partition, BlockResidency(partition, configs)


class TestDependencySpan:
    def test_span_formula(self):
        # Max config offset 3 over block extent 2 -> ceil(3/2) = 2.
        partition, res = make((8, 8), (4, 4), sizes=[2, 5], target=6)
        max_offset = res.configs.max(axis=0)
        expected = tuple(-(-int(o) // b) for o, b in zip(max_offset, partition.block_shape))
        assert res.dependency_span == expected

    def test_no_configs_zero_span(self):
        partition, res = make((4, 4), (2, 2), sizes=[50, 60], target=10)
        assert res.configs.shape[0] == 0
        assert res.dependency_span == (0, 0)

    def test_span_covers_all_dependencies(self):
        partition, res = make((9, 9, 9), (3, 3, 3), sizes=[3, 4, 5], target=9)
        cells = partition.geometry.all_cells()
        bs = np.asarray(partition.block_shape)
        span = np.asarray(res.dependency_span)
        for cfg in res.configs:
            prev = cells - cfg
            ok = (prev >= 0).all(axis=1)
            jump = cells[ok] // bs - prev[ok] // bs
            assert (jump <= span).all()


class TestBlocksNeededBy:
    def test_includes_self(self):
        _, res = make((8, 8), (4, 4), sizes=[2, 3], target=5)
        assert (2, 2) in res.blocks_needed_by((2, 2))

    def test_origin_needs_only_itself(self):
        _, res = make((8, 8), (4, 4), sizes=[2, 3], target=5)
        assert res.blocks_needed_by((0, 0)) == {(0, 0)}

    def test_clipped_at_grid_edge(self):
        _, res = make((8, 8), (4, 4), sizes=[2, 3], target=5)
        needed = res.blocks_needed_by((1, 0))
        assert all(b[1] == 0 for b in needed)

    def test_rejects_bad_block(self):
        _, res = make((8, 8), (4, 4), sizes=[2, 3], target=5)
        with pytest.raises(PartitionError):
            res.blocks_needed_by((4, 0))


class TestPlan:
    @pytest.fixture
    def analysis(self):
        # A fine 4x4x4 grid with short-range configs: real savings.
        return make((12, 12, 12), (4, 4, 4), sizes=[4, 5, 6], target=12)

    def test_every_block_executed_once(self, analysis):
        partition, res = analysis
        executed = []
        for step in res.plan():
            executed.extend(step.execute)
        assert len(executed) == partition.num_blocks
        assert len(set(executed)) == partition.num_blocks

    def test_dependencies_resident_at_execution(self, analysis):
        _, res = analysis
        for step in res.plan():
            resident = set(step.resident)
            for block in step.execute:
                assert res.blocks_needed_by(block) <= resident

    def test_loads_and_evictions_consistent(self, analysis):
        _, res = analysis
        on_device: set = set()
        for step in res.plan():
            assert not (set(step.load) & on_device), "re-loading a resident block"
            on_device |= set(step.load)
            assert set(step.resident) == on_device
            on_device -= set(step.evict)

    def test_evicted_blocks_never_needed_again(self, analysis):
        _, res = analysis
        steps = list(res.plan())
        for i, step in enumerate(steps):
            gone = set(step.evict)
            for later in steps[i + 1 :]:
                for block in later.execute:
                    assert not (res.blocks_needed_by(block) & gone)


class TestHeadlineNumbers:
    def test_savings_on_fine_grid(self):
        _, res = make((12, 12, 12), (4, 4, 4), sizes=[4, 5, 6], target=12)
        assert 0.0 < res.savings_ratio() < 1.0
        assert res.peak_resident_bytes() < res.full_table_bytes()

    def test_no_savings_on_trivial_partition(self):
        _, res = make((6, 6), (1, 1), sizes=[2, 3], target=5)
        assert res.peak_resident_blocks == 1
        assert res.savings_ratio() == pytest.approx(0.0)

    def test_peak_at_least_span_neighbourhood(self):
        partition, res = make((12, 12), (4, 4), sizes=[3, 4], target=8)
        assert res.peak_resident_blocks >= max(len(b) for b in partition.iter_block_levels())

    def test_bytes_scale_with_element_size(self):
        _, res = make((8, 8), (4, 4), sizes=[2, 3], target=5)
        assert res.peak_resident_bytes(16) == 2 * res.peak_resident_bytes(8)

    def test_rejects_bad_configs_arity(self):
        partition = BlockPartition(TableGeometry((8, 8)), (4, 4))
        with pytest.raises(PartitionError):
            BlockResidency(partition, np.zeros((2, 3), dtype=np.int64))
