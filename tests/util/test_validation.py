"""Unit tests for repro.util.validation."""

import numpy as np
import pytest

from repro.errors import InvalidInstanceError
from repro.util.validation import (
    check_nonnegative_int,
    check_positive_int,
    check_positive_times,
    check_probability,
    check_same_length,
)


class TestCheckPositiveInt:
    def test_accepts_plain_int(self):
        assert check_positive_int(3, "x") == 3

    def test_accepts_numpy_integer(self):
        assert check_positive_int(np.int64(5), "x") == 5
        assert isinstance(check_positive_int(np.int64(5), "x"), int)

    def test_rejects_zero(self):
        with pytest.raises(InvalidInstanceError, match="x"):
            check_positive_int(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(InvalidInstanceError):
            check_positive_int(-2, "machines")

    def test_rejects_bool(self):
        with pytest.raises(InvalidInstanceError):
            check_positive_int(True, "x")

    def test_rejects_float(self):
        with pytest.raises(InvalidInstanceError):
            check_positive_int(2.0, "x")

    def test_error_names_argument(self):
        with pytest.raises(InvalidInstanceError, match="machines"):
            check_positive_int(0, "machines")


class TestCheckNonnegativeInt:
    def test_accepts_zero(self):
        assert check_nonnegative_int(0, "x") == 0

    def test_rejects_negative(self):
        with pytest.raises(InvalidInstanceError):
            check_nonnegative_int(-1, "x")

    def test_rejects_bool(self):
        with pytest.raises(InvalidInstanceError):
            check_nonnegative_int(False, "x")


class TestCheckPositiveTimes:
    def test_returns_tuple(self):
        out = check_positive_times([3, 1, 2])
        assert out == (3, 1, 2)
        assert isinstance(out, tuple)

    def test_accepts_numpy_values(self):
        out = check_positive_times(np.array([4, 5], dtype=np.int32))
        assert out == (4, 5)

    def test_rejects_zero_time(self):
        with pytest.raises(InvalidInstanceError, match=r"\[1\]"):
            check_positive_times([3, 0, 2])

    def test_rejects_float_time(self):
        with pytest.raises(InvalidInstanceError):
            check_positive_times([3, 1.5])

    def test_rejects_empty(self):
        with pytest.raises(InvalidInstanceError, match="at least one job"):
            check_positive_times([])


class TestCheckProbability:
    def test_accepts_one(self):
        assert check_probability(1.0, "eps") == 1.0

    def test_rejects_zero(self):
        with pytest.raises(InvalidInstanceError):
            check_probability(0.0, "eps")

    def test_rejects_above_one(self):
        with pytest.raises(InvalidInstanceError):
            check_probability(1.2, "eps")


class TestCheckSameLength:
    def test_accepts_equal(self):
        check_same_length([1, 2], (3, 4), "a", "b")  # no raise

    def test_rejects_unequal(self):
        with pytest.raises(InvalidInstanceError, match="a .*b"):
            check_same_length([1], [1, 2], "a", "b")
