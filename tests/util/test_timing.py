"""Unit tests for repro.util.timing."""

import time

from repro.util.timing import Timer


class TestTimer:
    def test_elapsed_zero_before_use(self):
        assert Timer().elapsed == 0.0

    def test_measures_sleep(self):
        with Timer() as t:
            time.sleep(0.02)
        assert t.elapsed >= 0.015

    def test_frozen_after_exit(self):
        with Timer() as t:
            pass
        first = t.elapsed
        time.sleep(0.01)
        assert t.elapsed == first

    def test_running_flag(self):
        t = Timer()
        assert not t.running
        with t:
            assert t.running
        assert not t.running

    def test_live_elapsed_while_running(self):
        with Timer() as t:
            time.sleep(0.01)
            assert t.elapsed > 0.0

    def test_reusable(self):
        t = Timer()
        with t:
            pass
        with t:
            time.sleep(0.01)
        assert t.elapsed >= 0.005
