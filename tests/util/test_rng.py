"""Unit tests for repro.util.rng."""

import numpy as np
import pytest

from repro.util.rng import make_rng, spawn_rngs


class TestMakeRng:
    def test_int_seed_is_deterministic(self):
        a = make_rng(123).integers(0, 1 << 30, size=10)
        b = make_rng(123).integers(0, 1 << 30, size=10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = make_rng(1).integers(0, 1 << 30, size=10)
        b = make_rng(2).integers(0, 1 << 30, size=10)
        assert not np.array_equal(a, b)

    def test_generator_passes_through(self):
        g = np.random.default_rng(0)
        assert make_rng(g) is g

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_children_independent(self):
        a, b = spawn_rngs(7, 2)
        assert not np.array_equal(
            a.integers(0, 1 << 30, size=20), b.integers(0, 1 << 30, size=20)
        )

    def test_deterministic_across_calls(self):
        a1, _ = spawn_rngs(7, 2)
        a2, _ = spawn_rngs(7, 2)
        assert np.array_equal(
            a1.integers(0, 1 << 30, size=20), a2.integers(0, 1 << 30, size=20)
        )

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)
