"""Shared fixtures for the test suite.

Fixtures provide small, deterministic instances/probes so individual
test modules stay focused on behaviour, not setup.  Anything larger
than a few thousand DP cells belongs in ``benchmarks/``, not here.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

# Hypothesis profiles: the default keeps the suite fast; set
# REPRO_SLOW_TESTS=1 for a deeper property-testing pass (more examples
# per property, same invariants).
settings.register_profile(
    "fast", deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
settings.register_profile(
    "thorough",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    max_examples=300,
)
settings.load_profile(
    "thorough" if os.environ.get("REPRO_SLOW_TESTS") else "fast"
)

from repro.core.instance import Instance, uniform_instance
from repro.core.rounding import round_instance


@pytest.fixture
def tiny_instance() -> Instance:
    """Eight jobs, three machines — hand-checkable."""
    return Instance(times=(27, 19, 19, 15, 12, 8, 8, 5), machines=3)


@pytest.fixture
def small_instance() -> Instance:
    """Seeded 12-job instance used across integration tests."""
    return uniform_instance(12, 3, low=1, high=50, seed=42)


@pytest.fixture
def medium_instance() -> Instance:
    """Seeded 25-job instance whose probes produce multi-dim tables."""
    return uniform_instance(25, 4, low=5, high=60, seed=3)


@pytest.fixture
def medium_probe(medium_instance):
    """A rounding of ``medium_instance``: a 7-dim, 2304-cell DP-table."""
    return round_instance(medium_instance, 80, 0.3)


@pytest.fixture
def small_probe(small_instance):
    """A rounding of ``small_instance`` — a few hundred DP cells."""
    return round_instance(small_instance, 60, 0.3)
