"""Unit tests for the deterministic fault injector and the retry policy."""

import pytest

from repro.core.instance import Instance
from repro.errors import (
    InvalidInstanceError,
    ProbeTimeoutError,
    TransientDPError,
    WorkerCrashError,
)
from repro.resilience import FaultInjector, RetryPolicy, is_transient

INST = Instance(machines=3, times=(5, 7, 3, 9, 4, 6, 2))


def drain(injector, site="dp", instance=INST, target=10, checks=20):
    """Run ``checks`` checks at one key, collecting raised fault types."""
    raised = []
    for _ in range(checks):
        try:
            injector.check(site, instance=instance, target=target)
        except (MemoryError, TransientDPError, WorkerCrashError) as exc:
            raised.append(type(exc).__name__)
    return raised


class TestDeterminism:
    def test_same_seed_same_events(self):
        runs = []
        for _ in range(2):
            inj = FaultInjector(seed=42, rate=0.7, kinds=("dperror", "oom"))
            drain(inj)
            for t in (11, 12, 13):
                drain(inj, target=t)
            runs.append(tuple(inj.events))
        assert runs[0] == runs[1]

    def test_replay_signature_matches_across_runs(self):
        sigs = []
        for _ in range(2):
            inj = FaultInjector(seed=9, rate=0.5, kinds=("crash", "dperror"))
            for t in range(5, 25):
                drain(inj, target=t, checks=4)
            sigs.append(inj.replay_signature())
        assert sigs[0] == sigs[1]

    def test_different_seeds_differ(self):
        outcomes = []
        for seed in (1, 2):
            inj = FaultInjector(seed=seed, rate=0.5, max_failures=100)
            for t in range(50):
                drain(inj, target=t, checks=1)
            outcomes.append({(e.site, e.target) for e in inj.events})
        assert outcomes[0] != outcomes[1]  # different probes fail

    def test_decisions_keyed_not_sequenced(self):
        # Checking keys in a different order must not change which fire.
        a = FaultInjector(seed=5, rate=0.5, max_failures=1)
        b = FaultInjector(seed=5, rate=0.5, max_failures=1)
        targets = list(range(30))
        for t in targets:
            drain(a, target=t, checks=1)
        for t in reversed(targets):
            drain(b, target=t, checks=1)
        assert a.replay_signature() == b.replay_signature()


class TestGating:
    def test_max_failures_caps_each_key(self):
        inj = FaultInjector(seed=0, rate=1.0, kinds=("dperror",), max_failures=2)
        assert len(drain(inj, checks=10)) == 2  # fires twice, then passes

    def test_unarmed_site_passes(self):
        inj = FaultInjector(seed=0, rate=1.0, sites=("dp",))
        assert drain(inj, site="probe", checks=5) == []

    def test_match_predicate_gates(self):
        other = Instance(machines=2, times=(4, 4, 5))
        inj = FaultInjector(
            seed=0, rate=1.0, max_failures=100,
            match=lambda site, inst, target: inst is not None
            and inst.machines == 2,
        )
        assert drain(inj, instance=INST, checks=3) == []
        assert len(drain(inj, instance=other, checks=3)) == 3

    def test_rate_zero_never_fires(self):
        inj = FaultInjector(seed=0, rate=0.0, max_failures=100)
        for t in range(20):
            assert drain(inj, target=t, checks=2) == []

    def test_reset_forgets_history(self):
        inj = FaultInjector(seed=0, rate=1.0, max_failures=1)
        first = drain(inj, checks=3)
        inj.reset()
        assert drain(inj, checks=3) == first
        assert len(inj.events) == 1


class TestKinds:
    def test_oom_raises_memoryerror(self):
        inj = FaultInjector(seed=0, rate=1.0, kinds=("oom",), max_failures=1)
        with pytest.raises(MemoryError):
            inj.check("dp", instance=INST, target=3)

    def test_dperror_is_transient(self):
        inj = FaultInjector(seed=0, rate=1.0, kinds=("dperror",), max_failures=1)
        with pytest.raises(TransientDPError) as err:
            inj.check("dp", instance=INST, target=3)
        assert is_transient(err.value)

    def test_crash_is_transient(self):
        inj = FaultInjector(seed=0, rate=1.0, kinds=("crash",), max_failures=1)
        with pytest.raises(WorkerCrashError) as err:
            inj.check("dp", instance=INST, target=3)
        assert is_transient(err.value)

    def test_oom_is_not_transient(self):
        assert not is_transient(MemoryError("boom"))

    def test_slow_sleeps_instead_of_raising(self):
        inj = FaultInjector(
            seed=0, rate=1.0, kinds=("slow",), max_failures=1, slow_s=0.0
        )
        inj.check("dp", instance=INST, target=3)  # no exception
        assert inj.events[0].kind == "slow"


class TestFromSpec:
    def test_full_spec_parses(self):
        inj = FaultInjector.from_spec(
            "seed=7,rate=0.5,kinds=dperror|crash,sites=dp|probe,max=1,slow=0.02"
        )
        assert inj.seed == 7
        assert inj.rate == 0.5
        assert inj.kinds == ("dperror", "crash")
        assert inj.sites == ("dp", "probe")
        assert inj.max_failures == 1
        assert inj.slow_s == 0.02

    def test_unknown_key_rejected(self):
        with pytest.raises(InvalidInstanceError, match="unknown"):
            FaultInjector.from_spec("seed=1,bogus=2")

    def test_missing_equals_rejected(self):
        with pytest.raises(InvalidInstanceError, match="key=value"):
            FaultInjector.from_spec("seed")

    def test_bad_kind_rejected(self):
        with pytest.raises(InvalidInstanceError):
            FaultInjector.from_spec("kinds=meteorstrike")


class TestWrapSolver:
    def test_wrapped_solver_delegates_and_forwards_attrs(self):
        calls = []

        def solver(counts, class_sizes, target, configs=None):
            calls.append(target)
            return "table"

        inj = FaultInjector(seed=0, rate=0.0)
        wrapped = inj.wrap_solver(solver)
        assert wrapped((1,), (2,), 9) == "table"
        assert calls == [9]

    def test_bind_machines_keeps_the_wrapper(self):
        # probe_target binds the solver to the machine budget; the bound
        # copy must still check for faults or injection silently stops.
        class Bindable:
            def __call__(self, counts, class_sizes, target, configs=None):
                return "table"

            def bind_machines(self, machines):
                return Bindable()

        inj = FaultInjector(seed=0, rate=1.0, kinds=("oom",), max_failures=1)
        bound = inj.wrap_solver(Bindable(), instance=INST).bind_machines(3)
        with pytest.raises(MemoryError):
            bound((1,), (2,), 9)


class TestRetryPolicy:
    def test_backoff_grows_exponentially(self):
        p = RetryPolicy(max_attempts=4, backoff_base_s=0.01, backoff_factor=2.0)
        assert p.backoff_s(1) == pytest.approx(0.01)
        assert p.backoff_s(2) == pytest.approx(0.02)
        assert p.backoff_s(3) == pytest.approx(0.04)

    def test_retries_only_transient(self):
        p = RetryPolicy(max_attempts=3)
        assert p.should_retry(TransientDPError("x"), 1)
        assert p.should_retry(ProbeTimeoutError("x"), 1)
        assert not p.should_retry(MemoryError("x"), 1)
        assert not p.should_retry(ValueError("x"), 1)

    def test_budget_exhausts(self):
        p = RetryPolicy(max_attempts=3)
        assert p.should_retry(TransientDPError("x"), 2)
        assert not p.should_retry(TransientDPError("x"), 3)

    def test_validation(self):
        with pytest.raises(InvalidInstanceError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(InvalidInstanceError):
            RetryPolicy(backoff_factor=0.5)
