"""Property-based guarantees of the resilience layer (hypothesis).

The central invariant: transient faults that clear within the retry
budget are **invisible** — same makespan, same final target, same
schedule as the fault-free run — for any instance and any injector
seed.  Plus deterministic replay: the same seed injects the same
faults, run after run.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.executor import SequentialExecutor
from repro.core.instance import Instance
from repro.core.ptas import ptas_schedule
from repro.resilience import FaultInjector, ResiliencePolicy, RetryPolicy

instances = st.builds(
    Instance,
    times=st.lists(st.integers(1, 40), min_size=3, max_size=10).map(tuple),
    machines=st.integers(2, 4),
)


def run_with_faults(inst, seed, eps=0.4):
    injector = FaultInjector(
        seed=seed, rate=0.5, kinds=("dperror", "crash"),
        sites=("dp", "probe"), max_failures=2,
    )
    # Two armed sites x max_failures=2: a probe can fail 4 times, so
    # 5 attempts guarantee it clears (see the faults module docstring).
    policy = ResiliencePolicy(faults=injector, retry=RetryPolicy(max_attempts=5))
    executor = SequentialExecutor(resilience=policy)
    result = ptas_schedule(inst, eps=eps, executor=executor)
    return result, injector


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(inst=instances, seed=st.integers(0, 2**32 - 1))
def test_transient_faults_never_change_makespans(inst, seed):
    # Every faulted probe clears within its retry budget (2 sites x
    # max_failures=2 < max_attempts=5), so recovery must be perfect.
    clean = ptas_schedule(inst, eps=0.4)
    faulted, _ = run_with_faults(inst, seed)
    assert faulted.makespan == clean.makespan
    assert faulted.final_target == clean.final_target
    assert faulted.schedule.assignment == clean.schedule.assignment


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(inst=instances, seed=st.integers(0, 2**32 - 1))
def test_fault_injection_replays_deterministically(inst, seed):
    _, first = run_with_faults(inst, seed)
    _, second = run_with_faults(inst, seed)
    assert first.replay_signature() == second.replay_signature()


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(inst=instances, seed=st.integers(0, 2**32 - 1))
def test_backoff_is_charged_when_faults_fire(inst, seed):
    from repro.observability import Tracer

    injector = FaultInjector(
        seed=seed, rate=0.5, kinds=("dperror",), sites=("dp",), max_failures=2
    )
    policy = ResiliencePolicy(faults=injector, retry=RetryPolicy(max_attempts=3))
    executor = SequentialExecutor(resilience=policy)
    tracer = Tracer()
    ptas_schedule(inst, eps=0.4, executor=executor, trace=tracer)
    retries = tracer.counters.get("resilience.retry", 0)
    backoff = tracer.counters.get("resilience.backoff_s", 0.0)
    assert (retries > 0) == (len(injector.events) > 0)
    assert (backoff > 0) == (retries > 0)
