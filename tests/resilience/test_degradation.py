"""Graceful degradation: N requests in, N results out — always.

This is the acceptance scenario for the resilience layer: a batch where
one request OOMs on *every* PTAS backend must still produce a result
for every request, with the poisoned one served a bounded LPT/MULTIFIT
answer tagged ``degraded=True`` and carrying the fault chain.
"""

import pytest

from repro.core.baselines import (
    lpt_bound,
    lpt_schedule,
    multifit_bound,
    multifit_schedule,
)
from repro.core.instance import Instance
from repro.errors import ReproError
from repro.resilience import FaultInjector
from repro.service.batch import BatchScheduler

INSTANCES = [
    Instance(machines=3, times=(5, 7, 3, 9, 4, 6, 2)),
    Instance(machines=2, times=(4, 4, 5, 6)),
    Instance(machines=4, times=(9, 8, 7, 6, 5, 4, 3, 2, 1)),
]

#: poisons every fallback member, but only for the machines==2 instance.
POISON = dict(
    seed=1, rate=1.0, kinds=("oom",),
    sites=("dp.auto", "dp.sweep", "dp.vectorized"),
    max_failures=10**9,
    match=lambda site, inst, target: inst is not None and inst.machines == 2,
)


class TestPoisonedBatch:
    def run_poisoned(self, workers=2):
        scheduler = BatchScheduler(
            backend="fallback", workers=workers, faults=FaultInjector(**POISON)
        )
        return scheduler.run(INSTANCES)

    def test_n_requests_n_results_one_degraded(self):
        report = self.run_poisoned()
        assert len(report.results) == len(INSTANCES)
        assert report.degraded_count == 1
        degraded = [r for r in report.results if r.degraded]
        assert len(degraded) == 1
        assert degraded[0].request.instance.machines == 2

    def test_degraded_result_serves_best_baseline(self):
        report = self.run_poisoned()
        victim = next(r for r in report.results if r.degraded)
        inst = victim.request.instance
        best = min(
            lpt_schedule(inst).makespan, multifit_schedule(inst).makespan
        )
        assert victim.makespan == best
        assert victim.degraded_by in ("lpt", "multifit")
        expected_bound = (
            multifit_bound()
            if victim.degraded_by == "multifit"
            else lpt_bound(inst.machines)
        )
        assert victim.degraded_bound == pytest.approx(expected_bound)
        # Schedule validates feasibility at construction; check coverage.
        assert len(victim.schedule.assignment) == inst.n_jobs

    def test_degraded_result_carries_fault_chain(self):
        report = self.run_poisoned()
        victim = next(r for r in report.results if r.degraded)
        assert victim.error and "MemoryError" in victim.error
        # Every chain member's failure is logged, most-preferred first.
        assert any("auto:" in e for e in victim.fault_chain)
        assert any("vectorized:" in e for e in victim.fault_chain)

    def test_healthy_requests_are_unaffected(self):
        clean = BatchScheduler(backend="fallback", workers=2).run(INSTANCES)
        poisoned = self.run_poisoned()
        for a, b in zip(clean.results, poisoned.results):
            if not b.degraded:
                assert a.makespan == b.makespan

    def test_report_counters_and_dict(self):
        report = self.run_poisoned()
        d = report.as_dict()
        assert d["degraded_requests"] == 1
        assert d["counters"].get("resilience.degraded") == 1
        assert d["counters"].get("resilience.fallback", 0) >= 3
        victim = next(r for r in d["requests"] if r.get("degraded"))
        assert victim["degraded_by"] in ("lpt", "multifit")
        assert victim["fault_chain"]
        import json

        json.dumps(d)  # must stay JSON-serializable

    def test_worker_count_does_not_change_outcome(self):
        serial = self.run_poisoned(workers=1)
        threaded = self.run_poisoned(workers=3)
        assert serial.makespans() == threaded.makespans()
        assert serial.degraded_count == threaded.degraded_count

    def test_degrade_false_raises_instead(self):
        scheduler = BatchScheduler(
            backend="fallback", workers=1,
            faults=FaultInjector(**POISON), degrade=False,
        )
        with pytest.raises((MemoryError, ReproError)):
            scheduler.run(INSTANCES)


class TestAdmissionDegradation:
    def test_over_budget_request_degrades(self):
        scheduler = BatchScheduler(
            backend="auto", workers=1, memory_budget_bytes=1
        )
        report = scheduler.run(INSTANCES[:1])
        assert report.degraded_count == 1
        victim = report.results[0]
        assert victim.degraded and "MemoryBudgetExceeded" in victim.error
        assert len(victim.schedule.assignment) == INSTANCES[0].n_jobs

    def test_generous_budget_is_invisible(self):
        base = BatchScheduler(backend="auto", workers=1).run(INSTANCES)
        budgeted = BatchScheduler(
            backend="auto", workers=1, memory_budget_bytes=10**12
        ).run(INSTANCES)
        assert base.makespans() == budgeted.makespans()
        assert budgeted.degraded_count == 0


class TestTransientFaultsAreInvisible:
    def test_retries_absorb_transient_faults(self):
        from repro.resilience import RetryPolicy

        base = BatchScheduler(backend="auto", workers=1).run(INSTANCES)
        flaky = BatchScheduler(
            backend="auto", workers=1,
            faults=FaultInjector(
                seed=5, rate=0.4, kinds=("dperror", "crash"),
                sites=("dp", "probe"), max_failures=2,
            ),
            retry=RetryPolicy(max_attempts=5),
        ).run(INSTANCES)
        # Two armed sites x max_failures=2 < max_attempts=5: every
        # fault clears within the retry budget — bit-identical results.
        assert flaky.makespans() == base.makespans()
        assert flaky.degraded_count == 0
        assert flaky.tracer.counters.get("resilience.retry", 0) >= 1
