"""Unit tests for pre-allocation admission control."""

import numpy as np
import pytest

from repro.core.dp_common import estimate_fill_bytes, pick_table_dtype
from repro.core.executor import SequentialExecutor
from repro.core.instance import Instance
from repro.core.probe_cache import ProbeCache
from repro.core.ptas import ptas_schedule
from repro.dptable.table import TableGeometry
from repro.errors import InvalidInstanceError, MemoryBudgetExceeded
from repro.resilience import AdmissionController, ResiliencePolicy

INST = Instance(machines=3, times=(5, 7, 3, 9, 4, 6, 2))


class TestEstimate:
    def test_matches_dp_common_formula(self):
        counts = (3, 2, 4)
        sigma = 4 * 3 * 5
        dtype = pick_table_dtype(3 + 2 + 4)
        expected = sigma * (dtype.itemsize + np.dtype(np.int64).itemsize)
        assert estimate_fill_bytes(counts) == expected
        assert AdmissionController(10**9).estimate(counts) == expected

    def test_value_bound_narrows_the_dtype(self):
        # A machine-budget bound keeps the fill dtype narrow (int16)
        # even when sum(counts) would force int32; the estimate must
        # honour the same rule the kernels use.
        counts = (40_000,)
        assert pick_table_dtype(40_000).itemsize > pick_table_dtype(4).itemsize
        assert estimate_fill_bytes(counts, value_bound=4) < estimate_fill_bytes(
            counts
        )

    def test_empty_counts_is_one_cell(self):
        assert estimate_fill_bytes(()) > 0

    def test_fill_workers_covers_fabric_segments_and_scratch(self):
        counts = (6, 5, 4)
        sigma = 7 * 6 * 5
        base = estimate_fill_bytes(counts)
        parallel = estimate_fill_bytes(counts, fill_workers=4)
        # Order shipment (sigma int64s) + per-worker chunk scratch
        # ((ndim + 2) int64-equivalents per cell across one wave).
        assert parallel == base + sigma * 8 + sigma * (3 + 2) * 8

    def test_fill_workers_one_is_the_serial_estimate(self):
        counts = (6, 5, 4)
        assert estimate_fill_bytes(counts, fill_workers=1) == estimate_fill_bytes(
            counts
        )
        assert estimate_fill_bytes(counts, fill_workers=None) == estimate_fill_bytes(
            counts
        )


class TestAdmit:
    def test_under_budget_admits_and_returns_estimate(self):
        ctrl = AdmissionController(10**9)
        assert ctrl.admit((2, 2)) == ctrl.estimate((2, 2))

    def test_over_budget_raises_with_shape_and_budget(self):
        ctrl = AdmissionController(memory_budget_bytes=8)
        with pytest.raises(MemoryBudgetExceeded) as err:
            ctrl.admit((9, 9), target=123)
        msg = str(err.value)
        assert "(10, 10)" in msg and "8 bytes" in msg and "T=123" in msg

    def test_admit_geometry_round_trips_counts(self):
        geom = TableGeometry.from_counts((3, 2))
        ctrl = AdmissionController(10**9)
        assert ctrl.admit_geometry(geom, value_bound=5) == ctrl.admit(
            (3, 2), value_bound=5
        )

    def test_budget_validation(self):
        with pytest.raises(InvalidInstanceError):
            AdmissionController(0)

    def test_fill_workers_validation(self):
        with pytest.raises(InvalidInstanceError):
            AdmissionController(10**9, fill_workers=0)

    def test_fill_workers_tightens_the_same_budget(self):
        # A budget that admits the serial fill can reject the
        # host-parallel one — the fabric's segments count too.
        counts = (9, 9)
        budget = estimate_fill_bytes(counts) + 1
        AdmissionController(budget).admit(counts)
        with pytest.raises(MemoryBudgetExceeded):
            AdmissionController(budget, fill_workers=4).admit(counts)


class TestRejectsBeforeAllocation:
    def test_solver_never_invoked_on_rejection(self):
        calls = []

        def spy_solver(counts, class_sizes, target, configs=None):
            calls.append(target)
            raise AssertionError("solver must not run on a rejected probe")

        policy = ResiliencePolicy(admission=AdmissionController(1))
        executor = SequentialExecutor(resilience=policy)
        with pytest.raises(MemoryBudgetExceeded):
            ptas_schedule(INST, eps=0.3, dp_solver=spy_solver, executor=executor)
        assert calls == []

    def test_generous_budget_is_invisible(self):
        baseline = ptas_schedule(INST, eps=0.3)
        policy = ResiliencePolicy(admission=AdmissionController(10**12))
        executor = SequentialExecutor(resilience=policy)
        guarded = ptas_schedule(INST, eps=0.3, executor=executor)
        assert guarded.makespan == baseline.makespan
        assert guarded.schedule.assignment == baseline.schedule.assignment

    def test_hostpar_rejection_precedes_any_segment(self, monkeypatch):
        # MemoryBudgetExceeded must fire from pure arithmetic — before
        # the fabric creates a single SharedMemory segment.
        from repro.parallel import fabric as fabric_mod
        from repro.parallel.fabric import BlockExecutor, HostParallelSolver

        def forbidden_shm(*args, **kwargs):
            raise AssertionError(
                "no shared segment may be created for a rejected probe"
            )

        monkeypatch.setattr(fabric_mod, "SharedMemory", forbidden_shm)
        solver = HostParallelSolver(
            workers=2, fill_fabric=BlockExecutor(workers=2)
        )
        policy = ResiliencePolicy(
            admission=AdmissionController(1, fill_workers=2)
        )
        executor = SequentialExecutor(resilience=policy)
        with pytest.raises(MemoryBudgetExceeded):
            ptas_schedule(INST, eps=0.3, dp_solver=solver, executor=executor)

    def test_counter_emitted_on_rejection(self):
        from repro.observability import Tracer

        policy = ResiliencePolicy(admission=AdmissionController(1))
        executor = SequentialExecutor(resilience=policy)
        tracer = Tracer()
        with pytest.raises(MemoryBudgetExceeded):
            ptas_schedule(
                INST, eps=0.3, executor=executor, trace=tracer,
                cache=ProbeCache(),
            )
        assert tracer.counters.get("admission.rejected", 0) >= 1
