"""Unit tests for pre-allocation admission control."""

import numpy as np
import pytest

from repro.core.dp_common import estimate_fill_bytes, pick_table_dtype
from repro.core.executor import SequentialExecutor
from repro.core.instance import Instance
from repro.core.probe_cache import ProbeCache
from repro.core.ptas import ptas_schedule
from repro.dptable.table import TableGeometry
from repro.errors import InvalidInstanceError, MemoryBudgetExceeded
from repro.resilience import AdmissionController, ResiliencePolicy

INST = Instance(machines=3, times=(5, 7, 3, 9, 4, 6, 2))


class TestEstimate:
    def test_matches_dp_common_formula(self):
        counts = (3, 2, 4)
        sigma = 4 * 3 * 5
        dtype = pick_table_dtype(3 + 2 + 4)
        expected = sigma * (dtype.itemsize + np.dtype(np.int64).itemsize)
        assert estimate_fill_bytes(counts) == expected
        assert AdmissionController(10**9).estimate(counts) == expected

    def test_value_bound_narrows_the_dtype(self):
        # A machine-budget bound keeps the fill dtype narrow (int16)
        # even when sum(counts) would force int32; the estimate must
        # honour the same rule the kernels use.
        counts = (40_000,)
        assert pick_table_dtype(40_000).itemsize > pick_table_dtype(4).itemsize
        assert estimate_fill_bytes(counts, value_bound=4) < estimate_fill_bytes(
            counts
        )

    def test_empty_counts_is_one_cell(self):
        assert estimate_fill_bytes(()) > 0


class TestAdmit:
    def test_under_budget_admits_and_returns_estimate(self):
        ctrl = AdmissionController(10**9)
        assert ctrl.admit((2, 2)) == ctrl.estimate((2, 2))

    def test_over_budget_raises_with_shape_and_budget(self):
        ctrl = AdmissionController(memory_budget_bytes=8)
        with pytest.raises(MemoryBudgetExceeded) as err:
            ctrl.admit((9, 9), target=123)
        msg = str(err.value)
        assert "(10, 10)" in msg and "8 bytes" in msg and "T=123" in msg

    def test_admit_geometry_round_trips_counts(self):
        geom = TableGeometry.from_counts((3, 2))
        ctrl = AdmissionController(10**9)
        assert ctrl.admit_geometry(geom, value_bound=5) == ctrl.admit(
            (3, 2), value_bound=5
        )

    def test_budget_validation(self):
        with pytest.raises(InvalidInstanceError):
            AdmissionController(0)


class TestRejectsBeforeAllocation:
    def test_solver_never_invoked_on_rejection(self):
        calls = []

        def spy_solver(counts, class_sizes, target, configs=None):
            calls.append(target)
            raise AssertionError("solver must not run on a rejected probe")

        policy = ResiliencePolicy(admission=AdmissionController(1))
        executor = SequentialExecutor(resilience=policy)
        with pytest.raises(MemoryBudgetExceeded):
            ptas_schedule(INST, eps=0.3, dp_solver=spy_solver, executor=executor)
        assert calls == []

    def test_generous_budget_is_invisible(self):
        baseline = ptas_schedule(INST, eps=0.3)
        policy = ResiliencePolicy(admission=AdmissionController(10**12))
        executor = SequentialExecutor(resilience=policy)
        guarded = ptas_schedule(INST, eps=0.3, executor=executor)
        assert guarded.makespan == baseline.makespan
        assert guarded.schedule.assignment == baseline.schedule.assignment

    def test_counter_emitted_on_rejection(self):
        from repro.observability import Tracer

        policy = ResiliencePolicy(admission=AdmissionController(1))
        executor = SequentialExecutor(resilience=policy)
        tracer = Tracer()
        with pytest.raises(MemoryBudgetExceeded):
            ptas_schedule(
                INST, eps=0.3, executor=executor, trace=tracer,
                cache=ProbeCache(),
            )
        assert tracer.counters.get("admission.rejected", 0) >= 1
