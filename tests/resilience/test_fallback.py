"""Unit tests for fallback chains (registry name family + step-down)."""

import pytest

from repro.backends import get_spec, is_registered, resolve
from repro.core.instance import Instance
from repro.core.ptas import ptas_schedule
from repro.errors import BackendError, TransientDPError
from repro.resilience import FallbackChain, FaultInjector

INST = Instance(machines=3, times=(5, 7, 3, 9, 4, 6, 2))


class TestRegistryFamily:
    def test_canonical_fallback_resolves(self):
        chain = resolve("fallback")
        assert isinstance(chain, FallbackChain)
        assert chain.members == ("auto", "sweep", "vectorized")

    def test_family_resolves_custom_chains(self):
        chain = resolve("fallback:sweep,vectorized")
        assert chain.members == ("sweep", "vectorized")
        assert is_registered("fallback:auto,reference")

    def test_spec_is_plan_aware_and_pure(self):
        spec = get_spec("fallback")
        assert spec.plan_aware
        assert not spec.simulated

    def test_unknown_member_rejected(self):
        with pytest.raises(BackendError, match="unknown backend"):
            resolve("fallback:auto,not-a-backend")

    def test_decision_only_member_rejected(self):
        with pytest.raises(BackendError, match="decision-only"):
            resolve("fallback:frontier-decision,vectorized")

    def test_empty_chain_rejected(self):
        with pytest.raises(BackendError, match="at least one member"):
            FallbackChain([])


class TestStepDown:
    def test_bit_identical_to_direct_backend(self):
        direct = ptas_schedule(INST, eps=0.3, dp_solver=resolve("vectorized"))
        chained = ptas_schedule(INST, eps=0.3, dp_solver=resolve("fallback"))
        assert chained.makespan == direct.makespan
        assert chained.final_target == direct.final_target

    def test_steps_down_on_hard_failure(self):
        poison = FaultInjector(
            seed=0, rate=1.0, kinds=("oom",), sites=("dp.auto",),
            max_failures=10**9,
        )
        chain = FallbackChain(("auto", "vectorized"), faults=poison)
        result = ptas_schedule(INST, eps=0.3, dp_solver=chain)
        baseline = ptas_schedule(INST, eps=0.3)
        assert result.makespan == baseline.makespan
        assert chain.last_served_by == "vectorized"
        assert any("auto: MemoryError" in entry for entry in chain.fault_chain)

    def test_all_members_failing_raises_with_chain(self):
        poison = FaultInjector(
            seed=0, rate=1.0, kinds=("oom",),
            sites=("dp.auto", "dp.vectorized"), max_failures=10**9,
        )
        chain = FallbackChain(("auto", "vectorized"), faults=poison)
        with pytest.raises(MemoryError) as err:
            ptas_schedule(INST, eps=0.3, dp_solver=chain)
        log = err.value.fault_chain
        assert len(log) == 2
        assert log[0].startswith("auto:") and log[1].startswith("vectorized:")

    def test_transient_failure_propagates_not_steps_down(self):
        # One transient fault on the preferred member: the chain must
        # NOT abandon it — the retry layer re-enters at the head.
        poison = FaultInjector(
            seed=0, rate=1.0, kinds=("dperror",), sites=("dp.auto",),
            max_failures=1,
        )
        chain = FallbackChain(("auto", "vectorized"), faults=poison)
        with pytest.raises(TransientDPError):
            chain((2, 1), (5, 10), 15)

    def test_counters_emitted(self):
        from repro.observability import Tracer

        poison = FaultInjector(
            seed=0, rate=1.0, kinds=("oom",), sites=("dp.auto",),
            max_failures=10**9,
        )
        chain = FallbackChain(("auto", "vectorized"), faults=poison)
        tracer = Tracer()
        ptas_schedule(INST, eps=0.3, dp_solver=chain, trace=tracer)
        assert tracer.counters.get("resilience.fallback", 0) >= 1
        assert tracer.counters.get("resilience.fallback.recovered", 0) >= 1


class TestBinding:
    def test_bound_view_reports_to_root(self):
        poison = FaultInjector(
            seed=0, rate=1.0, kinds=("oom",), sites=("dp.auto",),
            max_failures=10**9,
        )
        chain = resolve("fallback:auto,vectorized", faults=poison)
        ptas_schedule(INST, eps=0.3, dp_solver=chain)
        # The probe driver binds per probe; outcomes must still be
        # visible on the chain object the caller holds.
        assert chain.last_served_by == "vectorized"

    def test_bound_chain_has_decision_token(self):
        chain = resolve("fallback")
        assert chain.dp_cache_token is None
        assert chain.bind_machines(4).dp_cache_token == ("decision", 4)
