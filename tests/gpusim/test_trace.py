"""Tests for the execution tracer and ASCII timeline."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.gpusim.engine import GpuSimulator
from repro.gpusim.kernel import KernelSpec
from repro.gpusim.spec import DeviceSpec
from repro.gpusim.trace import TraceRecorder, render_timeline

DEVICE = DeviceSpec(
    name="trace-test", num_sms=2, cores_per_sm=64, clock_hz=1e9,
    kernel_launch_overhead_s=1e-6, dynamic_sync_overhead_s=0.0,
)


def kernel(n=32, t=1e-3):
    return KernelSpec("k", thread_times=np.full(n, t))


@pytest.fixture
def traced():
    sim = GpuSimulator(DEVICE)
    recorder = TraceRecorder()
    recorder.attach(sim)
    return sim, recorder


class TestTraceRecorder:
    def test_records_every_launch(self, traced):
        sim, rec = traced
        sim.launch(kernel(), stream=0)
        sim.launch(kernel(), stream=1)
        sim.synchronize()
        assert len(rec.events) == 2
        assert {e.stream for e in rec.events} == {0, 1}

    def test_events_match_simulated_time(self, traced):
        sim, rec = traced
        sim.launch(kernel(t=2e-3), stream=0)
        elapsed = sim.synchronize()
        assert rec.makespan == pytest.approx(elapsed)
        assert rec.events[0].duration == pytest.approx(1e-6 + 2e-3)

    def test_launch_return_value_preserved(self, traced):
        sim, rec = traced
        end = sim.launch(kernel(), stream=0)
        assert end == rec.events[0].end

    def test_stream_busy_totals(self, traced):
        sim, rec = traced
        sim.launch(kernel(t=1e-3), stream=0)
        sim.launch(kernel(t=1e-3), stream=0)
        sim.synchronize()
        assert rec.stream_busy()[0] == pytest.approx(2 * (1e-6 + 1e-3))

    def test_gaps_detected(self, traced):
        sim, rec = traced
        sim.launch(kernel(t=1e-3), stream=0)
        sim.synchronize()
        sim.launch(kernel(t=1e-3), stream=1)  # stream 1 idle until barrier
        sim.synchronize()
        gaps = rec.gaps(1)
        assert len(gaps) == 1
        assert gaps[0][0] == 0.0

    def test_empty_recorder(self):
        rec = TraceRecorder()
        assert rec.makespan == 0.0
        assert rec.stream_busy() == {}


class TestRenderTimeline:
    def test_rows_per_stream(self, traced):
        sim, rec = traced
        sim.launch(kernel(), stream=0)
        sim.launch(kernel(), stream=2)
        sim.synchronize()
        text = render_timeline(rec, width=40)
        assert "stream  0" in text and "stream  2" in text

    def test_busy_markers_present(self, traced):
        sim, rec = traced
        sim.launch(kernel(), stream=0)
        sim.synchronize()
        text = render_timeline(rec, width=20)
        assert "#" in text

    def test_idle_fraction_visible(self, traced):
        sim, rec = traced
        sim.launch(kernel(t=1e-3), stream=0)
        sim.synchronize()
        sim.launch(kernel(t=1e-3), stream=1)
        sim.synchronize()
        text = render_timeline(rec, width=40)
        stream1 = next(ln for ln in text.splitlines() if ln.startswith("stream  1"))
        assert "." in stream1  # idle first half

    def test_empty(self):
        assert "no kernels" in render_timeline(TraceRecorder())

    def test_rejects_tiny_width(self, traced):
        sim, rec = traced
        sim.launch(kernel(), stream=0)
        with pytest.raises(SimulationError):
            render_timeline(rec, width=4)
