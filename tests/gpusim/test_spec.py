"""Unit tests for repro.gpusim.spec."""

import pytest

from repro.errors import SimulationError
from repro.gpusim.spec import DeviceSpec, KEPLER_K40


class TestK40:
    def test_paper_figures(self):
        # §IV-A: 2880 cores, 745 MHz, 12 GB.
        assert KEPLER_K40.total_cores == 2880
        assert KEPLER_K40.clock_hz == pytest.approx(745e6)
        assert KEPLER_K40.global_mem_bytes == 12 * 1024**3

    def test_warp_slots(self):
        assert KEPLER_K40.warp_slots == 2880 // 32

    def test_hyper_q_width(self):
        assert KEPLER_K40.max_concurrent_kernels == 32


class TestDeviceSpec:
    def test_op_time(self):
        spec = DeviceSpec("x", num_sms=1, cores_per_sm=32, clock_hz=1e9, cycles_per_op=2.0)
        assert spec.op_time_s == pytest.approx(2e-9)

    def test_random_access_bandwidth_below_peak(self):
        assert KEPLER_K40.random_access_bandwidth() <= KEPLER_K40.mem_bandwidth_bytes_per_s

    def test_random_access_bandwidth_formula(self):
        spec = DeviceSpec(
            "x", num_sms=2, cores_per_sm=64, clock_hz=1e9,
            mem_latency_s=1e-6, mem_max_inflight=4, mem_line_bytes=128,
            mem_bandwidth_bytes_per_s=1e12,
        )
        assert spec.random_access_bandwidth() == pytest.approx(2 * 4 / 1e-6 * 128)

    def test_rejects_zero_sms(self):
        with pytest.raises(SimulationError):
            DeviceSpec("x", num_sms=0, cores_per_sm=32, clock_hz=1e9)

    def test_rejects_misaligned_cores(self):
        with pytest.raises(SimulationError):
            DeviceSpec("x", num_sms=1, cores_per_sm=33, clock_hz=1e9)

    def test_rejects_zero_clock(self):
        with pytest.raises(SimulationError):
            DeviceSpec("x", num_sms=1, cores_per_sm=32, clock_hz=0)

    def test_frozen(self):
        with pytest.raises(Exception):
            KEPLER_K40.num_sms = 1  # type: ignore[misc]
