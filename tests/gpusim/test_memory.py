"""Unit tests for repro.gpusim.memory (the coalescing model of §III-B)."""

import pytest

from repro.errors import SimulationError
from repro.gpusim.memory import (
    AccessPattern,
    MemoryModel,
    transactions_for_addresses,
)
from repro.gpusim.spec import KEPLER_K40


class TestTransactionsForAddresses:
    def test_fully_coalesced_warp(self):
        # 32 consecutive int64 = 256 bytes = 2 lines of 128.
        assert transactions_for_addresses(range(32), 8, 128) == 2

    def test_fully_strided_warp(self):
        # Stride of 16 elements x 8 B = one line each.
        addrs = [i * 16 for i in range(32)]
        assert transactions_for_addresses(addrs, 8, 128) == 32

    def test_same_address_broadcast(self):
        assert transactions_for_addresses([7] * 32, 8, 128) == 1

    def test_element_straddling_lines(self):
        # A 12-byte element at byte offset 120..131 touches two lines.
        assert transactions_for_addresses([15], 8, 128) == 1
        assert transactions_for_addresses([10], 12, 128) == 2

    def test_empty(self):
        assert transactions_for_addresses([], 8, 128) == 0

    def test_rejects_negative_address(self):
        with pytest.raises(SimulationError):
            transactions_for_addresses([-1], 8, 128)

    def test_rejects_bad_sizes(self):
        with pytest.raises(SimulationError):
            transactions_for_addresses([0], 0, 128)


class TestMemoryModel:
    @pytest.fixture
    def model(self):
        return MemoryModel(KEPLER_K40, element_bytes=8)

    def test_coalesced_transactions(self, model):
        assert model.transactions(32, AccessPattern.COALESCED) == 2
        assert model.transactions(16, AccessPattern.COALESCED) == 1

    def test_strided_transactions(self, model):
        assert model.transactions(32, AccessPattern.STRIDED) == 32

    def test_closed_form_matches_exact_coalesced(self, model):
        for n in (1, 5, 16, 17, 100):
            exact = transactions_for_addresses(range(n), 8, 128)
            assert model.transactions(n, AccessPattern.COALESCED) == exact

    def test_zero_elements(self, model):
        assert model.transactions(0, AccessPattern.STRIDED) == 0
        assert model.transfer_time(0, AccessPattern.STRIDED) == 0.0

    def test_strided_slower_than_coalesced(self, model):
        n = 10_000
        assert model.transfer_time(n, AccessPattern.STRIDED) > model.transfer_time(
            n, AccessPattern.COALESCED
        )

    def test_bus_utilization_bounds(self, model):
        assert model.effective_bus_utilization(1000, AccessPattern.COALESCED) == pytest.approx(
            1.0, abs=0.01
        )
        # Fully strided int64: 8 useful bytes per 128-byte line.
        assert model.effective_bus_utilization(1000, AccessPattern.STRIDED) == pytest.approx(
            8 / 128
        )

    def test_rejects_negative_elements(self, model):
        with pytest.raises(SimulationError):
            model.transactions(-1, AccessPattern.COALESCED)

    def test_bytes_moved(self, model):
        assert model.bytes_moved(16, AccessPattern.COALESCED) == 128
        assert model.bytes_moved(16, AccessPattern.STRIDED) == 16 * 128
