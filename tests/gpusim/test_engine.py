"""Tests for the discrete-event GPU engine: streams, Hyper-Q, slots, memory."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.gpusim.engine import GpuSimulator
from repro.gpusim.kernel import KernelSpec
from repro.gpusim.memory import AccessPattern
from repro.gpusim.spec import DeviceSpec

# A small deterministic device so arithmetic is hand-checkable.
SMALL = DeviceSpec(
    name="small",
    num_sms=2,
    cores_per_sm=64,  # 4 warp slots
    clock_hz=1e9,
    max_concurrent_kernels=3,
    kernel_launch_overhead_s=1e-6,
    dynamic_launch_overhead_s=1e-7,
    dynamic_sync_overhead_s=0.0,
    cycles_per_op=1.0,
)


def kernel(n_threads=32, per_thread=1e-3, **kw):
    return KernelSpec("k", thread_times=np.full(n_threads, per_thread), **kw)


class TestBasicExecution:
    def test_single_kernel_duration(self):
        sim = GpuSimulator(SMALL)
        sim.launch(kernel(n_threads=32, per_thread=2e-3))
        elapsed = sim.synchronize()
        # One warp: launch 1us + warp max 2ms.
        assert elapsed == pytest.approx(1e-6 + 2e-3)

    def test_work_spread_over_slots(self):
        sim = GpuSimulator(SMALL)
        # 8 warps of 1ms over 4 slots -> 2ms compute.
        sim.launch(kernel(n_threads=256, per_thread=1e-3))
        assert sim.synchronize() == pytest.approx(1e-6 + 2e-3)

    def test_longest_warp_floors_duration(self):
        sim = GpuSimulator(SMALL)
        times = np.full(128, 1e-4)
        times[0] = 5e-3  # one straggler warp
        sim.launch(KernelSpec("k", thread_times=times))
        assert sim.synchronize() >= 5e-3

    def test_empty_kernel_costs_launch_overhead(self):
        sim = GpuSimulator(SMALL)
        sim.launch(KernelSpec("k", thread_times=np.array([])))
        assert sim.synchronize() == pytest.approx(1e-6)

    def test_time_monotone(self):
        sim = GpuSimulator(SMALL)
        sim.launch(kernel())
        t1 = sim.synchronize()
        sim.launch(kernel())
        assert sim.synchronize() > t1


class TestStreams:
    def test_same_stream_serializes(self):
        sim = GpuSimulator(SMALL)
        sim.launch(kernel(n_threads=32, per_thread=1e-3), stream=0)
        sim.launch(kernel(n_threads=32, per_thread=1e-3), stream=0)
        assert sim.synchronize() == pytest.approx(2 * (1e-6 + 1e-3))

    def test_different_streams_overlap(self):
        sim = GpuSimulator(SMALL)
        sim.launch(kernel(n_threads=32, per_thread=1e-3), stream=0)
        sim.launch(kernel(n_threads=32, per_thread=1e-3), stream=1)
        # Two 1-warp kernels on a 4-slot device run fully concurrent.
        assert sim.synchronize() == pytest.approx(1e-6 + 1e-3)

    def test_synchronize_resets_streams(self):
        sim = GpuSimulator(SMALL)
        sim.launch(kernel(), stream=0)
        t = sim.synchronize()
        sim.launch(kernel(), stream=1)
        # Stream 1 starts at the barrier, not at zero.
        assert sim.synchronize() > t


class TestHyperQ:
    def test_concurrency_cap(self):
        sim = GpuSimulator(SMALL)  # max 3 concurrent kernels
        for s in range(4):
            sim.launch(kernel(n_threads=1, per_thread=1e-3), stream=s)
        # Kernel 4 must wait for a slot: ~2 kernel durations.
        assert sim.synchronize() >= 2e-3

    def test_under_cap_fully_concurrent(self):
        sim = GpuSimulator(SMALL)
        for s in range(3):
            sim.launch(kernel(n_threads=1, per_thread=1e-3), stream=s)
        assert sim.synchronize() == pytest.approx(1e-6 + 1e-3)


class TestSlotContention:
    def test_big_kernel_starves_slots(self):
        sim = GpuSimulator(SMALL)
        # Kernel A wants all 4 slots; B must still get >= 1 (shrunk grant).
        sim.launch(kernel(n_threads=4 * 32, per_thread=1e-3), stream=0)
        sim.launch(kernel(n_threads=4 * 32, per_thread=1e-3), stream=1)
        elapsed = sim.synchronize()
        # Worst case full serialization; best case 2x slowdown of one.
        assert 1e-3 < elapsed <= 2 * (1e-6 + 4e-3)


class TestDynamicParallelism:
    def test_children_add_time(self):
        sim_plain = GpuSimulator(SMALL)
        sim_plain.launch(kernel())
        plain = sim_plain.synchronize()

        sim_dyn = GpuSimulator(SMALL)
        sim_dyn.launch(kernel(dynamic_children=100))
        assert sim_dyn.synchronize() > plain

    def test_children_counted(self):
        sim = GpuSimulator(SMALL)
        sim.launch(kernel(dynamic_children=7))
        sim.synchronize()
        assert sim.metrics.dynamic_kernels_launched == 7


class TestMemorySystem:
    def test_strided_kernel_slower(self):
        a = GpuSimulator(SMALL)
        a.launch(kernel(mem_elements=1_000_000, mem_pattern=AccessPattern.COALESCED))
        b = GpuSimulator(SMALL)
        b.launch(kernel(mem_elements=1_000_000, mem_pattern=AccessPattern.STRIDED))
        assert b.synchronize() > a.synchronize()

    def test_oom_raises(self):
        sim = GpuSimulator(SMALL)
        with pytest.raises(SimulationError, match="memory"):
            sim.launch(kernel(mem_footprint_bytes=SMALL.global_mem_bytes + 1))

    def test_oom_check_disabled(self):
        sim = GpuSimulator(SMALL, check_memory=False)
        sim.launch(kernel(mem_footprint_bytes=SMALL.global_mem_bytes + 1))
        assert sim.synchronize() > 0

    def test_concurrent_footprints_accumulate(self):
        sim = GpuSimulator(SMALL)
        half = SMALL.global_mem_bytes // 2 + 1
        sim.launch(kernel(per_thread=1.0, mem_footprint_bytes=half), stream=0)
        with pytest.raises(SimulationError):
            sim.launch(kernel(per_thread=1.0, mem_footprint_bytes=half), stream=1)

    def test_sequential_footprints_fine(self):
        sim = GpuSimulator(SMALL)
        half = SMALL.global_mem_bytes // 2 + 1
        sim.launch(kernel(mem_footprint_bytes=half), stream=0)
        sim.synchronize()
        sim.launch(kernel(mem_footprint_bytes=half), stream=0)  # no raise
        sim.synchronize()


class TestMetrics:
    def test_counters(self):
        sim = GpuSimulator(SMALL)
        sim.launch(kernel(n_threads=64, per_thread=1e-3))
        sim.synchronize()
        m = sim.metrics
        assert m.kernels_launched == 1
        assert m.warp_seconds_paid == pytest.approx(2e-3)
        assert m.thread_seconds_useful == pytest.approx(64e-3)
        assert 0.0 < m.utilization <= 1.0

    def test_divergence_metric(self):
        sim = GpuSimulator(SMALL)
        times = np.zeros(32)
        times[0] = 1e-3
        sim.launch(KernelSpec("k", thread_times=times))
        sim.synchronize()
        assert sim.metrics.divergence_overhead == pytest.approx(32.0)

    def test_determinism(self):
        def run():
            sim = GpuSimulator(SMALL)
            for s in range(5):
                sim.launch(kernel(n_threads=50 + s, per_thread=1e-4), stream=s % 2)
            return sim.synchronize()

        assert run() == run()
