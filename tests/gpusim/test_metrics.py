"""Unit tests for GpuMetrics bookkeeping."""

import pytest

from repro.gpusim.metrics import GpuMetrics


class TestGpuMetrics:
    def test_fresh_metrics_are_neutral(self):
        m = GpuMetrics()
        assert m.utilization == 0.0
        assert m.divergence_overhead == 1.0
        assert m.avg_bus_utilization == 1.0

    def test_utilization_capped_at_one(self):
        m = GpuMetrics(warp_seconds_paid=100.0)
        m._slot_seconds_available = 50.0
        assert m.utilization == 1.0

    def test_utilization_fraction(self):
        m = GpuMetrics(warp_seconds_paid=25.0)
        m._slot_seconds_available = 100.0
        assert m.utilization == pytest.approx(0.25)

    def test_divergence_units(self):
        # One warp of 32 lanes paid 1 s; only 1 lane-second was useful.
        m = GpuMetrics(warp_seconds_paid=1.0, thread_seconds_useful=1.0)
        assert m.divergence_overhead == pytest.approx(32.0)

    def test_bus_utilization(self):
        m = GpuMetrics(mem_bytes_moved=1280, mem_bytes_useful=80)
        assert m.avg_bus_utilization == pytest.approx(80 / 1280)

    def test_as_dict_round_trip(self):
        m = GpuMetrics(kernels_launched=3, mem_transactions=7)
        d = m.as_dict()
        assert d["kernels_launched"] == 3
        assert d["mem_transactions"] == 7
        assert "utilization" in d and "warp_seconds_paid" in d
