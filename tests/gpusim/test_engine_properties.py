"""Property-based tests for the GPU discrete-event engine.

Invariants that must hold for *any* sequence of kernel launches
(DESIGN.md obligation 9): time monotonicity, work conservation
(busy warp-time never exceeds slots x elapsed), stream FIFO order,
Hyper-Q concurrency cap, and determinism.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.gpusim.engine import GpuSimulator
from repro.gpusim.kernel import KernelSpec
from repro.gpusim.spec import DeviceSpec

DEVICE = DeviceSpec(
    name="prop-test",
    num_sms=2,
    cores_per_sm=64,  # 4 warp slots
    clock_hz=1e9,
    max_concurrent_kernels=3,
    kernel_launch_overhead_s=1e-6,
    dynamic_sync_overhead_s=0.0,
)

# A launch plan: list of (threads, per-thread-time-us, stream, children).
launches = st.lists(
    st.tuples(
        st.integers(0, 200),
        st.floats(0.0, 50.0, allow_nan=False),
        st.integers(0, 4),
        st.integers(0, 20),
    ).map(
        # Children require threads (enforced by KernelSpec).
        lambda t: (t[0], t[1], t[2], t[3] if t[0] > 0 else 0)
    ),
    min_size=1,
    max_size=12,
)

COMMON = dict(
    deadline=None, suppress_health_check=[HealthCheck.too_slow], max_examples=60
)


def run_plan(plan):
    sim = GpuSimulator(DEVICE, check_memory=False)
    ends = []
    for threads, us, stream, children in plan:
        kernel = KernelSpec(
            name="k",
            thread_times=np.full(threads, us * 1e-6),
            dynamic_children=children,
        )
        ends.append((stream, sim.launch(kernel, stream=stream)))
    elapsed = sim.synchronize()
    return sim, ends, elapsed


@settings(**COMMON)
@given(plan=launches)
def test_time_monotone_and_nonnegative(plan):
    sim, ends, elapsed = run_plan(plan)
    assert elapsed >= 0.0
    assert all(end >= 0.0 for _, end in ends)
    assert elapsed >= max(end for _, end in ends) - 1e-15


@settings(**COMMON)
@given(plan=launches)
def test_work_conservation(plan):
    sim, _, elapsed = run_plan(plan)
    # Busy warp-seconds can never exceed what the device could supply.
    assert sim.metrics.warp_seconds_paid <= DEVICE.warp_slots * elapsed + 1e-12
    assert sim.metrics.utilization <= 1.0


@settings(**COMMON)
@given(plan=launches)
def test_stream_fifo_order(plan):
    _, ends, _ = run_plan(plan)
    per_stream: dict[int, list[float]] = {}
    for stream, end in ends:
        per_stream.setdefault(stream, []).append(end)
    for stream_ends in per_stream.values():
        assert stream_ends == sorted(stream_ends)


@settings(**COMMON)
@given(plan=launches)
def test_elapsed_at_least_critical_stream(plan):
    sim, _, elapsed = run_plan(plan)
    # Each stream's serial compute is a lower bound on the elapsed time.
    per_stream: dict[int, float] = {}
    for threads, us, stream, _ in plan:
        if threads == 0:
            continue
        t = np.full(threads, us * 1e-6)
        warps = -(-threads // DEVICE.warp_size)
        best_case = float(t.max())  # even fully parallel pays the max warp
        per_stream[stream] = per_stream.get(stream, 0.0) + best_case
    if per_stream:
        assert elapsed >= max(per_stream.values()) - 1e-12


@settings(**COMMON)
@given(plan=launches)
def test_determinism(plan):
    _, ends_a, elapsed_a = run_plan(plan)
    _, ends_b, elapsed_b = run_plan(plan)
    assert ends_a == ends_b
    assert elapsed_a == elapsed_b


@settings(**COMMON)
@given(plan=launches)
def test_metrics_consistency(plan):
    sim, _, _ = run_plan(plan)
    assert sim.metrics.kernels_launched == len(plan)
    assert sim.metrics.dynamic_kernels_launched == sum(c for *_, c in plan)
    assert sim.metrics.thread_seconds_useful <= sim.metrics.warp_seconds_paid * DEVICE.warp_size + 1e-12
