"""Unit tests for repro.gpusim.kernel (warps and divergence)."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.gpusim.kernel import KernelSpec, warp_compute_times


class TestWarpComputeTimes:
    def test_single_full_warp(self):
        times = np.arange(32, dtype=float)
        assert warp_compute_times(times, 32).tolist() == [31.0]

    def test_partial_warp_pays_slowest(self):
        assert warp_compute_times(np.array([1.0, 5.0, 2.0]), 32).tolist() == [5.0]

    def test_multiple_warps(self):
        times = np.concatenate([np.full(32, 2.0), np.full(32, 7.0)])
        assert warp_compute_times(times, 32).tolist() == [2.0, 7.0]

    def test_warp_size_one_is_identity(self):
        times = np.array([3.0, 1.0, 4.0])
        assert warp_compute_times(times, 1).tolist() == [3.0, 1.0, 4.0]

    def test_empty(self):
        assert warp_compute_times(np.array([]), 32).size == 0

    def test_rejects_negative(self):
        with pytest.raises(SimulationError):
            warp_compute_times(np.array([-1.0]), 32)

    def test_rejects_bad_warp_size(self):
        with pytest.raises(SimulationError):
            warp_compute_times(np.array([1.0]), 0)


class TestKernelSpec:
    def test_num_threads_and_warps(self):
        k = KernelSpec("k", thread_times=np.ones(70))
        assert k.num_threads == 70
        assert k.num_warps(32) == 3

    def test_empty_kernel(self):
        k = KernelSpec("k", thread_times=np.array([]))
        assert k.num_threads == 0 and k.num_warps(32) == 0

    def test_divergence_balanced(self):
        k = KernelSpec("k", thread_times=np.full(64, 3.0))
        assert k.divergence_ratio(32) == pytest.approx(1.0)

    def test_divergence_imbalanced(self):
        # One busy thread per warp of 32: ratio = 32.
        times = np.zeros(32)
        times[0] = 10.0
        k = KernelSpec("k", thread_times=times)
        assert k.divergence_ratio(32) == pytest.approx(32.0)

    def test_divergence_of_idle_kernel(self):
        k = KernelSpec("k", thread_times=np.zeros(32))
        assert k.divergence_ratio(32) == 1.0

    def test_rejects_negative_times(self):
        with pytest.raises(SimulationError):
            KernelSpec("k", thread_times=np.array([-0.5]))

    def test_rejects_negative_work_terms(self):
        with pytest.raises(SimulationError):
            KernelSpec("k", thread_times=np.ones(2), mem_elements=-1)
        with pytest.raises(SimulationError):
            KernelSpec("k", thread_times=np.ones(2), dynamic_children=-1)
