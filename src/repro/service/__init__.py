"""repro.service — production front-ends over the scheduling core.

The paper's algorithm solves one instance; a deployment serves a
*stream* of them.  Two front-ends share one engine room:

* :class:`~repro.service.batch.BatchScheduler` — the one-shot shape:
  fan a batch of requests across a thread pool, share one
  :class:`~repro.core.probe_cache.ProbeCache`, merge every request's
  trace into a deterministic aggregate report.
* :class:`~repro.service.daemon.SchedulingService` — the always-on
  shape: a long-lived asyncio daemon with priority queues, per-tenant
  admission quotas, request coalescing (identical in-flight requests
  share one pipeline run), and bound-first streaming results (an
  immediate LPT/MULTIFIT answer with its proven ratio, then the PTAS
  refinement on the same handle).  See ``docs/SERVICE.md``.

Both drive the same :class:`~repro.service.pipeline.ProbePipeline`,
so a request produces bit-identical results whichever front door it
entered through (tested).  :mod:`repro.service.loadgen` is the
open-loop Poisson load harness behind ``python -m repro serve`` and
``benchmarks/test_bench_service.py``.
"""

from repro.service.batch import (
    BatchReport,
    BatchRequest,
    BatchRequestResult,
    BatchScheduler,
)
from repro.service.daemon import (
    BoundResult,
    Priority,
    SchedulingService,
    ServiceHandle,
)
from repro.service.loadgen import (
    Arrival,
    LoadProfile,
    LoadReport,
    generate_arrivals,
    run_load,
)
from repro.service.pipeline import ProbePipeline

__all__ = [
    "BatchScheduler",
    "BatchRequest",
    "BatchRequestResult",
    "BatchReport",
    "BoundResult",
    "Priority",
    "ProbePipeline",
    "SchedulingService",
    "ServiceHandle",
    "Arrival",
    "LoadProfile",
    "LoadReport",
    "generate_arrivals",
    "run_load",
]
