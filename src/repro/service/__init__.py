"""repro.service — production front-ends over the scheduling core.

The paper's algorithm solves one instance; a deployment serves a
*stream* of them.  :mod:`repro.service.batch` is the first front-end:
a :class:`~repro.service.batch.BatchScheduler` that fans a batch of
scheduling requests across a thread pool, shares one
:class:`~repro.core.probe_cache.ProbeCache` between them, and merges
every request's trace into a single aggregate report — deterministic
results regardless of worker count (tested).
"""

from repro.service.batch import (
    BatchReport,
    BatchRequest,
    BatchRequestResult,
    BatchScheduler,
)

__all__ = [
    "BatchScheduler",
    "BatchRequest",
    "BatchRequestResult",
    "BatchReport",
]
