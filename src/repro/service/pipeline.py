"""The probe pipeline: one scheduling request, end to end.

Both service front-ends — the one-shot :class:`~repro.service.batch.
BatchScheduler` and the always-on :class:`~repro.service.daemon.
SchedulingService` — execute requests exactly the same way: resolve a
fresh solver from the registry, wire it to the shared probe/plan
caches and the resilience policy, run the PTAS under a per-request
tracer, and degrade to a bounded LPT/MULTIFIT baseline when every
backend fails.  :class:`ProbePipeline` is that shared engine-room,
extracted so the two front-ends cannot drift: a request coalesced by
the daemon and the same request in a batch produce bit-identical
results because they literally run the same code.

The pipeline is synchronous and thread-safe — the batch scheduler
calls it from a thread pool, the daemon from ``run_in_executor``
workers.  All cross-request state (probe cache, plan cache, fault
injector bookkeeping) is owned by the pipeline and already safe for
concurrent callers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.backends import get_spec, resolve
from repro.core.baselines import best_baseline
from repro.core.executor import default_executor
from repro.core.probe_cache import PlanCache, ProbeCache
from repro.core.ptas import ptas_schedule
from repro.errors import BackendError, ReproError
from repro.observability import Tracer
from repro.resilience import (
    AdmissionController,
    FaultInjector,
    ResiliencePolicy,
    RetryPolicy,
)

if TYPE_CHECKING:
    from repro.service.batch import BatchRequest, BatchRequestResult


def require_schedule_capable(name: str):
    """Resolve ``name``'s spec, refusing decision-only backends loudly."""
    spec = get_spec(name)
    if spec.decision_only:
        raise BackendError(
            f"backend {name!r} is decision-only (it answers OPT(N) <= m "
            "without a backtrackable table) and cannot produce the "
            "schedules the batch service exists to build — pick a "
            "table-producing backend such as 'auto' or 'vectorized'"
        )
    return spec


def build_resilience(
    faults: Optional[FaultInjector] = None,
    retry: Optional[RetryPolicy] = None,
    deadline_s: Optional[float] = None,
    memory_budget_bytes: Optional[int] = None,
    fill_workers: Optional[int] = None,
) -> Tuple[Optional[ResiliencePolicy], Optional[FaultInjector]]:
    """The resilience policy both service front-ends construct.

    An armed fault injector with no explicit retry policy still gets
    bounded retries — that is the configuration the chaos tests run,
    and retrying transient faults is what makes them invisible in the
    results (``docs/RELIABILITY.md``).  Returns ``(policy, faults)``;
    the policy is ``None`` when every knob is off.

    ``fill_workers`` tells the admission controller that fills may run
    host-parallel, so memory estimates cover the fabric's shared
    segments and per-worker scratch and
    :class:`~repro.errors.MemoryBudgetExceeded` fires before any
    segment is created.
    """
    if faults is not None and retry is None:
        retry = RetryPolicy()
    admission = (
        AdmissionController(memory_budget_bytes, fill_workers=fill_workers)
        if memory_budget_bytes is not None
        else None
    )
    if (
        faults is None
        and retry is None
        and deadline_s is None
        and admission is None
    ):
        return None, faults
    return (
        ResiliencePolicy(
            faults=faults, retry=retry, deadline_s=deadline_s, admission=admission
        ),
        faults,
    )


@dataclass
class ProbePipeline:
    """Execute scheduling requests against shared caches and one backend.

    Parameters mirror the service front-ends (see
    :class:`~repro.service.batch.BatchScheduler` for the full
    semantics): ``backend`` is the default registry name (requests may
    override it), ``cache``/``plan_cache`` are the cross-request reuse
    layers, ``resilience``/``faults`` the reliability knobs, and
    ``degrade`` selects bounded-baseline answers over raised failures.

    ``fill_workers`` (> 1) gives the pipeline its own fill fabric — a
    persistent :class:`~repro.parallel.fabric.BlockExecutor` injected
    into every fabric-aware backend it resolves, so large fills run
    process-parallel and plans ship to each worker once.  The pipeline
    owns the pool's lifecycle: the front-ends call :meth:`close` on
    drain (and with ``force=True`` on dirty shutdown) so no worker
    outlives the service.

    ``sparsify`` controls configuration sparsification
    (:mod:`repro.core.sparsify`) on sparsify-aware backends: ``None``
    keeps each backend's own default (decision-mode kernels prune,
    engines don't), ``True``/``False`` forces the knob on every
    resolved solver.  ``False`` additionally disables the probe
    cache's table-delta warm starts so a ``--no-sparsify`` run replays
    the dense fills bit-for-bit.
    """

    backend: str = "auto"
    cache: Optional[ProbeCache] = None
    plan_cache: PlanCache = field(default_factory=PlanCache)
    resilience: Optional[ResiliencePolicy] = None
    faults: Optional[FaultInjector] = None
    degrade: bool = True
    fill_workers: Optional[int] = None
    #: fabric dispatch threshold (cells); ``None`` keeps the fabric's
    #: default.  Chaos tests and the CI kill-smoke set it to 1 so every
    #: wave really crosses the process boundary.
    fill_min_cells: Optional[int] = None
    sparsify: Optional[bool] = None
    fill_fabric: Optional[object] = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        require_schedule_capable(self.backend)  # fail fast, before any work
        if self.sparsify is False and self.cache is not None:
            # Warm tables are seeded from prior fills; a no-sparsify
            # run promises the exact dense replay, so cold fills only.
            self.cache.warm_start = False
        if self.fill_workers is not None:
            if int(self.fill_workers) < 1:
                raise BackendError(
                    f"fill_workers must be >= 1, got {self.fill_workers}"
                )
            if int(self.fill_workers) > 1:
                from repro.parallel.fabric import BlockExecutor

                # The fabric shares the pipeline's fault injector: its
                # "fabric.worker" site turns chaos decisions into real
                # worker SIGKILLs, so service-level chaos tests exercise
                # genuine crash recovery, not simulated exceptions.
                kwargs: Dict[str, object] = {}
                if self.fill_min_cells is not None:
                    kwargs["min_parallel_cells"] = int(self.fill_min_cells)
                self.fill_fabric = BlockExecutor(
                    workers=int(self.fill_workers),
                    faults=self.faults,
                    **kwargs,
                )

    def fabric_health(self) -> Optional[dict]:
        """The fill fabric's :class:`~repro.parallel.fabric.FabricHealth`
        snapshot as a JSON-ready dict, or ``None`` without a fabric."""
        if self.fill_fabric is None:
            return None
        return self.fill_fabric.health().as_dict()

    def close(self, force: bool = False) -> None:
        """Release the pipeline's fill fabric (idempotent, safe without one).

        ``force=True`` terminates fabric workers instead of letting
        queued wave tasks finish — the dirty-shutdown path.
        """
        if self.fill_fabric is not None:
            self.fill_fabric.close(force=force)

    def run(self, request: "BatchRequest") -> Tuple["BatchRequestResult", Tracer]:
        """Execute one request with a fresh solver, executor, and tracer.

        Plan-aware backends receive the pipeline's shared
        :class:`~repro.core.probe_cache.PlanCache`, so requests whose
        probes round to the same structure reuse one probe plan.
        Returns the result (possibly degraded) and the request's own
        tracer; the front-end merges tracers in its preferred order.
        """
        from repro.service.batch import BatchRequestResult

        name = request.backend or self.backend
        spec = require_schedule_capable(name)
        model = request.instance.model
        if not spec.supports_model(model):
            raise BackendError(
                f"backend {spec.name!r} does not support the "
                f"{model!r} machine model (supported: "
                f"{', '.join(spec.models)}) — pick a backend whose spec "
                "lists the model, e.g. 'auto' or 'vectorized'"
            )
        kwargs: Dict[str, object] = {}
        if spec.plan_aware:
            kwargs["plan_cache"] = self.plan_cache
        if spec.fabric_aware and self.fill_fabric is not None:
            kwargs["fill_fabric"] = self.fill_fabric
        if spec.sparsify_aware and self.sparsify is not None:
            kwargs["sparsify"] = bool(self.sparsify)
        if self.faults is not None and (
            name == "fallback" or name.startswith("fallback:")
        ):
            # Chains check each member at site "dp.<member>", letting
            # chaos tests poison one named member of the chain.
            kwargs["faults"] = self.faults
        solver = resolve(name, **kwargs)
        executor = default_executor(solver, resilience=self.resilience)
        tracer = Tracer()
        start = time.perf_counter()
        try:
            result = ptas_schedule(
                request.instance,
                eps=request.eps,
                dp_solver=solver,
                search=request.search,
                cache=self.cache,
                trace=tracer,
                executor=executor,
            )
        except (ReproError, MemoryError) as exc:
            if not self.degrade:
                raise
            wall = time.perf_counter() - start
            return (
                self.degraded_result(request, exc, executor.elapsed_s, wall, tracer),
                tracer,
            )
        wall = time.perf_counter() - start
        return (
            BatchRequestResult(
                name=request.name,
                request=request,
                result=result,
                simulated_s=executor.elapsed_s,
                wall_s=wall,
            ),
            tracer,
        )

    def degraded_result(
        self,
        request: "BatchRequest",
        exc: BaseException,
        simulated_s: float,
        wall_s: float,
        tracer: Tracer,
    ) -> "BatchRequestResult":
        """A bounded baseline answer for a request whose backends all failed.

        For identical machines
        :func:`~repro.core.baselines.best_baseline` guarantees
        ``4/3 - 1/(3m)`` (LPT) or ``13/11`` (MULTIFIT) times the
        optimal makespan.  Those ratios are identical-machines theorems
        — for the other models ``best_baseline`` dispatches to the
        model's own heuristic, whose reported bound is the a-posteriori
        ratio against the model's makespan lower bound (always true,
        usually looser).  Every model's baseline is cheap enough to
        never fail on a valid instance, so N requests still produce N
        results, tagged ``degraded=True`` with the error (and any
        fallback chain log) that forced it.
        """
        from repro.service.batch import BatchRequestResult

        schedule, by, bound = best_baseline(request.instance)
        chain = tuple(getattr(exc, "fault_chain", ()))
        chain = chain + (f"{type(exc).__name__}: {exc}",)
        tracer.count("resilience.degraded")
        return BatchRequestResult(
            name=request.name,
            request=request,
            result=None,
            simulated_s=simulated_s,
            wall_s=wall_s,
            degraded=True,
            error=f"{type(exc).__name__}: {exc}",
            fault_chain=chain,
            degraded_schedule=schedule,
            degraded_by=by,
            degraded_bound=bound,
        )
