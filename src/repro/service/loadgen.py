"""Open-loop load generation for the always-on scheduling service.

The serving question is not "how fast is one request" but "what
latency do requests see *under load*" — and answering it honestly
requires an **open-loop** arrival process: requests arrive on a
Poisson clock regardless of whether earlier ones have finished (a
closed loop, where the next request waits for the previous response,
systematically hides queueing delay — the coordinated-omission trap).

:func:`generate_arrivals` draws a deterministic, seeded workload —
exponential inter-arrival gaps at ``arrival_rate_hz``, a mix of fresh
and repeated instances (the repeats are the coalescing pressure), a
tenant/priority mix — and :func:`run_load` plays it against a running
:class:`~repro.service.daemon.SchedulingService`, recording for every
request the bound-stage and refined-stage latencies and verifying the
bound-before-refined streaming contract.  The summary it returns is
what ``python -m repro serve`` prints and what
``benchmarks/test_bench_service.py`` writes to
``benchmarks/results/BENCH_service.json``.

Determinism: the workload (instances, gaps, priorities, tenants,
duplicate structure) is a pure function of the profile's ``seed``.
The measured latencies of course are not — they are the measurement.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.instance import Instance, uniform_instance
from repro.errors import InvalidInstanceError
from repro.service.daemon import Priority, SchedulingService, ServiceHandle
from repro.util.rng import make_rng


@dataclass(frozen=True)
class LoadProfile:
    """One reproducible open-loop workload.

    ``duplicate_fraction`` of the arrivals (after the first) re-submit
    a previously-generated instance with identical parameters — these
    are the requests that *can* coalesce if they land while their twin
    is still in flight.  ``priority_mix`` gives the sampling weights
    for HIGH/NORMAL/LOW.
    """

    requests: int = 32
    arrival_rate_hz: float = 50.0
    jobs: int = 20
    machines: int = 4
    low: int = 1
    high: int = 100
    eps: float = 0.3
    seed: int = 0
    duplicate_fraction: float = 0.3
    tenants: Tuple[str, ...] = ("tenant-a", "tenant-b")
    priority_mix: Tuple[float, float, float] = (0.2, 0.6, 0.2)
    #: machine model every generated instance declares; the model
    #: parameters below follow :func:`repro.models.with_model`'s
    #: defaults when left unset.
    model: str = "identical"
    type_speeds: Optional[Tuple[int, ...]] = None
    machines_per_type: Optional[Tuple[int, ...]] = None
    max_jobs_per_machine: Optional[int] = None

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise InvalidInstanceError(
                f"requests must be >= 1, got {self.requests}"
            )
        if self.arrival_rate_hz <= 0:
            raise InvalidInstanceError(
                f"arrival_rate_hz must be > 0, got {self.arrival_rate_hz}"
            )
        if not (0.0 <= self.duplicate_fraction <= 1.0):
            raise InvalidInstanceError(
                "duplicate_fraction must be in [0, 1], "
                f"got {self.duplicate_fraction}"
            )
        if len(self.priority_mix) != 3 or min(self.priority_mix) < 0 or not sum(
            self.priority_mix
        ):
            raise InvalidInstanceError(
                f"priority_mix must be 3 non-negative weights, got {self.priority_mix}"
            )


@dataclass(frozen=True)
class Arrival:
    """One scheduled request of the workload."""

    at_s: float
    instance: Instance
    tenant: str
    priority: Priority
    #: index of the earlier arrival this one duplicates (None = fresh).
    duplicate_of: Optional[int] = None


def generate_arrivals(profile: LoadProfile) -> List[Arrival]:
    """The deterministic arrival list for ``profile`` (seeded Poisson)."""
    rng = make_rng(profile.seed)
    weights = [w / sum(profile.priority_mix) for w in profile.priority_mix]
    priorities = (Priority.HIGH, Priority.NORMAL, Priority.LOW)
    arrivals: List[Arrival] = []
    clock = 0.0
    for i in range(profile.requests):
        clock += float(rng.exponential(1.0 / profile.arrival_rate_hz))
        duplicate_of: Optional[int] = None
        if arrivals and rng.random() < profile.duplicate_fraction:
            duplicate_of = int(rng.integers(0, len(arrivals)))
            instance = arrivals[duplicate_of].instance
        else:
            instance = uniform_instance(
                profile.jobs,
                profile.machines,
                low=profile.low,
                high=profile.high,
                seed=int(rng.integers(0, 2**31)),
            )
            if profile.model != "identical":
                from repro.models import with_model

                instance = with_model(
                    instance,
                    profile.model,
                    type_speeds=profile.type_speeds,
                    machines_per_type=profile.machines_per_type,
                    max_jobs_per_machine=profile.max_jobs_per_machine,
                )
        arrivals.append(
            Arrival(
                at_s=clock,
                instance=instance,
                tenant=profile.tenants[i % len(profile.tenants)],
                priority=priorities[int(rng.choice(3, p=weights))],
                duplicate_of=duplicate_of,
            )
        )
    return arrivals


@dataclass
class LoadReport:
    """Everything one load run measured (JSON-ready via :meth:`as_dict`)."""

    submitted: int = 0
    coalesced: int = 0
    degraded: int = 0
    bound_first_violations: int = 0
    wall_s: float = 0.0
    #: makespans per request name, for determinism assertions.
    makespans: Dict[str, int] = field(default_factory=dict)
    #: bound-stage makespan per request name (>= the refined one).
    bound_makespans: Dict[str, int] = field(default_factory=dict)
    stats: Dict[str, object] = field(default_factory=dict)

    @property
    def coalescing_hit_rate(self) -> float:
        return self.coalesced / self.submitted if self.submitted else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "submitted": self.submitted,
            "coalesced": self.coalesced,
            "coalescing_hit_rate": round(self.coalescing_hit_rate, 4),
            "degraded": self.degraded,
            "bound_first_violations": self.bound_first_violations,
            "wall_s": round(self.wall_s, 4),
            "stats": self.stats,
        }


async def _consume(handle: ServiceHandle, report: LoadReport) -> None:
    """Drain one handle's stream, checking the bound-first contract."""
    bound_seen = False
    async for stage, payload in handle.stream():
        if stage == "bound":
            bound_seen = True
            report.bound_makespans[handle.name] = payload.makespan
        else:
            if not bound_seen:
                report.bound_first_violations += 1
            report.makespans[handle.name] = payload.makespan
            if payload.degraded:
                report.degraded += 1


async def run_load(
    service: SchedulingService,
    profile: LoadProfile,
    arrivals: Optional[Sequence[Arrival]] = None,
    time_scale: float = 1.0,
) -> LoadReport:
    """Play ``profile`` against a started ``service``; returns the report.

    Open-loop: each arrival is submitted at its scheduled offset
    (scaled by ``time_scale`` — pass e.g. ``0.1`` to compress a long
    trace for a smoke test) whether or not earlier requests finished.
    Every handle's stream is drained by its own consumer task; the
    run ends when all deliveries (bound *and* refined) completed.
    """
    arrivals = list(arrivals) if arrivals is not None else generate_arrivals(profile)
    report = LoadReport()
    consumers: List[asyncio.Task] = []
    start = time.perf_counter()
    for arrival in arrivals:
        delay = arrival.at_s * time_scale - (time.perf_counter() - start)
        if delay > 0:
            await asyncio.sleep(delay)
        handle = await service.submit(
            arrival.instance,
            eps=profile.eps,
            tenant=arrival.tenant,
            priority=arrival.priority,
        )
        report.submitted += 1
        if not handle.bound.done():
            # The admission contract: the bound answer exists before
            # submit() even returns, so it trivially precedes the PTAS.
            report.bound_first_violations += 1
        if handle.coalesced:
            report.coalesced += 1
        consumers.append(asyncio.ensure_future(_consume(handle, report)))
    await asyncio.gather(*consumers)
    report.wall_s = time.perf_counter() - start
    report.stats = service.stats()
    return report
