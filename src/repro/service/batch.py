"""The batch scheduling service: many instances, one shared cache.

``P || Cmax`` rarely arrives one instance at a time in production — a
nightly cluster batch, a what-if sweep over accuracies, or a fleet of
tenant workloads all want *many* PTAS runs whose probes overlap
heavily.  :class:`BatchScheduler` is the engineering layer for that
workload (cf. Berndt et al., *"Load Balancing: The Long Road from
Theory to Practice"*):

* requests run across a **thread pool** (the DP fills are numpy-heavy,
  so threads overlap usefully despite the GIL, and a thread pool keeps
  one shared in-process cache — processes would not);
* one :class:`~repro.core.probe_cache.ProbeCache` is **shared across
  the whole batch**: probes from different requests that round to the
  same normalized geometry reuse each other's configuration sets and
  DP-tables (scale-invariance makes such collisions common — see the
  cache module docstring);
* one :class:`~repro.core.probe_cache.PlanCache` is likewise shared:
  plan-aware backends (``BackendSpec.plan_aware``) reuse probe *plans*
  — level schedules, work profiles, block partitions — across every
  request of the batch, which is sound even when DP sharing is off
  (plans are pure structure);
* each request records into its own
  :class:`~repro.observability.Tracer`; after the fan-out they are
  **merged in request order** into one aggregate tracer, so the
  report is deterministic even though execution interleaves;
* backends come from the **registry** (:mod:`repro.backends`): each
  request resolves a *fresh* solver instance, because the simulator
  engines are stateful accumulators that must not be shared across
  concurrent requests.

Determinism: a request's result depends only on its instance, ``eps``,
search, and backend — never on worker count or the cache (cache hits
are bit-identical to recomputation, property-tested).  The test suite
asserts batch results equal sequential :func:`~repro.core.ptas.ptas_schedule`
runs exactly.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.core.instance import Instance
from repro.core.probe_cache import CacheStats, PlanCache, ProbeCache
from repro.core.ptas import PtasResult
from repro.core.schedule import Schedule
from repro.errors import InvalidInstanceError
from repro.observability import Tracer
from repro.resilience import FaultInjector, RetryPolicy
from repro.service.pipeline import ProbePipeline, build_resilience


@dataclass(frozen=True)
class BatchRequest:
    """One scheduling request of a batch.

    ``name`` identifies the request in the report (defaults to its
    position); ``backend`` overrides the scheduler-level backend for
    this request only.
    """

    instance: Instance
    eps: float = 0.3
    search: str = "quarter"
    name: str = ""
    backend: Optional[str] = None


@dataclass(frozen=True)
class BatchRequestResult:
    """Outcome of one request: the PTAS result (or a degraded answer).

    N requests always yield N of these.  When every backend failed and
    the scheduler degrades (the default), ``result`` is ``None`` and
    the ``degraded_*`` fields carry a bounded baseline answer instead —
    LPT or MULTIFIT, whichever is better for the instance — plus the
    failure that forced the step-down (``error``, ``fault_chain``).
    """

    name: str
    request: BatchRequest
    result: Optional[PtasResult]
    #: simulated hardware seconds charged by the request's executor
    #: (0.0 for pure, non-simulated backends).
    simulated_s: float
    #: real wall seconds the request took inside the pool.
    wall_s: float
    #: True when the PTAS failed and a baseline answer was substituted.
    degraded: bool = False
    #: ``"ExcType: message"`` of the failure that triggered degradation.
    error: Optional[str] = None
    #: per-backend failure log (a fallback chain's step-downs plus the
    #: final error), most-preferred member first.
    fault_chain: tuple = ()
    #: the baseline schedule served instead of the PTAS one.
    degraded_schedule: Optional[Schedule] = None
    #: which baseline produced it (``"lpt"``/``"multifit"`` for
    #: identical machines; model-specific heuristics otherwise, e.g.
    #: ``"speed-list"`` or ``"capped-lpt"``).
    degraded_by: Optional[str] = None
    #: that baseline's proven approximation ratio vs. OPT.
    degraded_bound: Optional[float] = None

    @property
    def makespan(self) -> int:
        """Makespan served to the caller (PTAS or degraded baseline)."""
        if self.result is not None:
            return self.result.makespan
        assert self.degraded_schedule is not None
        return self.degraded_schedule.makespan

    @property
    def schedule(self) -> Schedule:
        """Schedule served to the caller (PTAS or degraded baseline)."""
        if self.result is not None:
            return self.result.schedule
        assert self.degraded_schedule is not None
        return self.degraded_schedule


@dataclass
class BatchReport:
    """Everything one batch run produced.

    ``results`` is in request order regardless of completion order.
    ``tracer`` is the merged per-request tracer (phases, counters, one
    probe event per DP probe of the whole batch); ``cache_stats`` is a
    snapshot of the shared cache's tallies after the batch.
    """

    backend: str
    workers: int
    results: List[BatchRequestResult] = field(default_factory=list)
    tracer: Tracer = field(default_factory=Tracer)
    cache_stats: Optional[CacheStats] = None
    #: tallies of the batch's shared plan cache (``None`` when the
    #: batch's backend is not plan-aware).
    plan_cache_stats: Optional[CacheStats] = None
    #: the fill fabric's :class:`~repro.parallel.fabric.FabricHealth`
    #: snapshot after the batch (``None`` without ``fill_workers``).
    #: Zero recovery tallies are already omitted inside the dict, so a
    #: healthy batch reports only the pool shape — the ``CacheStats``
    #: zero-noise convention.
    fabric: Optional[Dict[str, object]] = None
    wall_s: float = 0.0

    @property
    def total_probes(self) -> int:
        """DP probes across every request (degraded requests ran none)."""
        return sum(
            len(r.result.probes) for r in self.results if r.result is not None
        )

    @property
    def total_iterations(self) -> int:
        """Search iterations across every request."""
        return sum(
            r.result.iterations for r in self.results if r.result is not None
        )

    @property
    def degraded_count(self) -> int:
        """Requests served by a baseline instead of the PTAS."""
        return sum(1 for r in self.results if r.degraded)

    @property
    def total_simulated_s(self) -> float:
        """Simulated hardware seconds across every request."""
        return float(sum(r.simulated_s for r in self.results))

    def makespans(self) -> Dict[str, int]:
        """``{request name: makespan}`` in request order."""
        return {r.name: r.makespan for r in self.results}

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready summary (no schedules — those live on results)."""
        return {
            "backend": self.backend,
            "workers": self.workers,
            "requests": [
                {
                    "name": r.name,
                    "makespan": r.makespan,
                    "final_target": (
                        r.result.final_target if r.result is not None else None
                    ),
                    "iterations": (
                        r.result.iterations if r.result is not None else 0
                    ),
                    "probes": len(r.result.probes) if r.result is not None else 0,
                    "eps": r.request.eps,
                    "search": r.request.search,
                    "simulated_s": r.simulated_s,
                    "wall_s": r.wall_s,
                    **(
                        {
                            "degraded": True,
                            "degraded_by": r.degraded_by,
                            "degraded_bound": r.degraded_bound,
                            "error": r.error,
                            "fault_chain": list(r.fault_chain),
                        }
                        if r.degraded
                        else {}
                    ),
                }
                for r in self.results
            ],
            "total_probes": self.total_probes,
            "total_iterations": self.total_iterations,
            "degraded_requests": self.degraded_count,
            "counters": dict(self.tracer.counters),
            # The two headline perf-opt tallies, surfaced by name so
            # dashboards need not know the counter namespace: configs
            # dropped by dominance pruning and DP cells answered by a
            # warm-started fill without recomputation.
            "perf": {
                "sparsify_dropped": int(
                    self.tracer.counters.get("sparsify.dropped", 0)
                ),
                "warmstart_cells_reused": int(
                    self.tracer.counters.get("warmstart.cells_reused", 0)
                ),
            },
            "cache": self.cache_stats.as_dict() if self.cache_stats else {},
            "plan_cache": (
                self.plan_cache_stats.as_dict() if self.plan_cache_stats else {}
            ),
            **({"fabric": self.fabric} if self.fabric is not None else {}),
            "wall_s": self.wall_s,
        }


class BatchScheduler:
    """Schedule many instances concurrently against one backend.

    Parameters
    ----------
    backend:
        Registry name resolved *fresh per request* (engines are
        stateful).  Individual requests may override it.  Defaults to
        ``"auto"`` — the cost-model kernel selector of
        :mod:`repro.core.kernels`, which routes each probe to the
        cheapest kernel for its shape and budget.  Decision-only
        backends are rejected here: the service's whole point is
        producing schedules.
    workers:
        Thread-pool size; results are independent of it (tested).
    cache:
        The shared :class:`~repro.core.probe_cache.ProbeCache`; pass
        ``None`` to disable cross-request reuse entirely.
    search / eps:
        Defaults for requests that do not specify their own.
    faults / retry / deadline_s / memory_budget_bytes:
        The resilience knobs (see ``docs/RELIABILITY.md``): a
        deterministic :class:`~repro.resilience.FaultInjector` for
        chaos testing, a :class:`~repro.resilience.RetryPolicy` for
        transient failures (defaulted to ``RetryPolicy()`` whenever
        ``faults`` is armed), a per-probe deadline in wall seconds,
        and a per-probe admission budget in bytes.  All default off.
    degrade:
        When ``True`` (default) a request whose backends all fail is
        served a bounded LPT/MULTIFIT baseline answer tagged
        ``degraded=True`` instead of aborting the batch — N requests
        always produce N results.  ``False`` re-raises the failure.
    fill_workers:
        When > 1, the pipeline owns a persistent fill fabric
        (:class:`~repro.parallel.fabric.BlockExecutor`) of that many
        processes, injected into every fabric-aware backend so large
        fills run host-parallel.  Call :meth:`close` (or use the
        scheduler as a context manager) to shut the pool down; the
        admission estimate automatically covers the fabric's shared
        segments.  ``fill_min_cells`` overrides the fabric's dispatch
        threshold (waves below it run inline) — chaos tests set it to 1
        so every wave really crosses the process boundary.
    sparsify:
        Configuration-sparsification override (see
        :mod:`repro.core.sparsify`): ``None`` (default) keeps each
        backend's own default, ``True``/``False`` forces the knob on
        every sparsify-aware solver the batch resolves.  ``False``
        also disables the probe cache's warm starts so the batch
        replays dense fills exactly (the CLI's ``--no-sparsify``).

    Example::

        from repro.service import BatchScheduler
        scheduler = BatchScheduler(workers=4)      # backend="auto"
        report = scheduler.run([inst_a, inst_b, inst_c])
        report.makespans()          # deterministic, order-preserving
        report.cache_stats          # shared-cache tallies for the batch
    """

    def __init__(
        self,
        backend: str = "auto",
        workers: int = 4,
        cache: Optional[ProbeCache] = ...,  # type: ignore[assignment]
        search: str = "quarter",
        eps: float = 0.3,
        faults: Optional[FaultInjector] = None,
        retry: Optional[RetryPolicy] = None,
        deadline_s: Optional[float] = None,
        memory_budget_bytes: Optional[int] = None,
        degrade: bool = True,
        fill_workers: Optional[int] = None,
        fill_min_cells: Optional[int] = None,
        sparsify: Optional[bool] = None,
    ) -> None:
        if workers < 1:
            raise InvalidInstanceError(f"workers must be >= 1, got {workers}")
        self.backend = backend
        self.workers = int(workers)
        # The request-execution machinery is shared with the always-on
        # daemon (repro.service.daemon): both front-ends drive the same
        # ProbePipeline, which owns the resilience policy, the shared
        # plan cache (plans are pure structure, so sharing is always
        # sound — even when the probe cache is off or share_dp=False
        # keeps simulated timing honest), and degradation.
        resilience, faults = build_resilience(
            faults=faults,
            retry=retry,
            deadline_s=deadline_s,
            memory_budget_bytes=memory_budget_bytes,
            fill_workers=fill_workers,
        )
        self.pipeline = ProbePipeline(
            backend=backend,
            cache=ProbeCache() if cache is ... else cache,
            resilience=resilience,
            faults=faults,
            degrade=bool(degrade),
            fill_workers=fill_workers,
            fill_min_cells=fill_min_cells,
            sparsify=sparsify,
        )
        self.search = search
        self.eps = eps

    def close(self, force: bool = False) -> None:
        """Shut the pipeline's fill-fabric pool down (idempotent).

        A scheduler without ``fill_workers`` has nothing to release.
        ``force=True`` terminates fabric workers instead of letting
        in-flight wave tasks finish.  The scheduler stays usable — a
        later batch lazily restarts the pool.
        """
        self.pipeline.close(force=force)

    def __enter__(self) -> "BatchScheduler":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # Historical accessors: the caches, knobs, and policy now live on
    # the shared pipeline; these properties keep the original surface.

    @property
    def cache(self) -> Optional[ProbeCache]:
        """The shared probe cache (``None`` when reuse is disabled)."""
        return self.pipeline.cache

    @property
    def plan_cache(self) -> PlanCache:
        """The shared plan cache every plan-aware request reuses."""
        return self.pipeline.plan_cache

    @property
    def faults(self) -> Optional[FaultInjector]:
        """The armed fault injector, if any."""
        return self.pipeline.faults

    @property
    def resilience(self):
        """The pipeline's :class:`~repro.resilience.ResiliencePolicy`."""
        return self.pipeline.resilience

    @property
    def degrade(self) -> bool:
        """Whether failed requests are served bounded baseline answers."""
        return self.pipeline.degrade

    # -- request execution --------------------------------------------------

    def _as_request(
        self, item: Union[BatchRequest, Instance], index: int
    ) -> BatchRequest:
        """Normalize an item: bare instances get the scheduler defaults."""
        if isinstance(item, BatchRequest):
            if item.name:
                return item
            return BatchRequest(
                instance=item.instance,
                eps=item.eps,
                search=item.search,
                name=f"request-{index}",
                backend=item.backend,
            )
        return BatchRequest(
            instance=item,
            eps=self.eps,
            search=self.search,
            name=f"request-{index}",
        )

    def _run_one(self, request: BatchRequest) -> tuple[BatchRequestResult, Tracer]:
        """Execute one request on the shared :class:`ProbePipeline`."""
        return self.pipeline.run(request)

    def run(
        self, items: Sequence[Union[BatchRequest, Instance]]
    ) -> BatchReport:
        """Run the whole batch; returns a deterministic :class:`BatchReport`.

        Requests execute across the pool in submission order; results
        and the merged tracer are assembled in request order, so two
        runs of the same batch produce identical reports (up to wall
        timings) at any worker count.  A zero-request batch is a valid
        batch: it returns an empty report (no thread pool is spun up,
        and ``as_dict()`` is fully formed) rather than asking callers
        to special-case it.
        """
        requests = [self._as_request(item, i) for i, item in enumerate(items)]
        start = time.perf_counter()
        if not requests:
            outcomes: list[tuple[BatchRequestResult, Tracer]] = []
        elif self.workers == 1:
            outcomes = [self._run_one(r) for r in requests]
        else:
            with ThreadPoolExecutor(max_workers=self.workers) as pool:
                outcomes = list(pool.map(self._run_one, requests))
        report = BatchReport(
            backend=self.backend,
            workers=self.workers,
            cache_stats=self.cache.stats if self.cache is not None else None,
            plan_cache_stats=(
                self.plan_cache.stats if len(self.plan_cache) else None
            ),
        )
        for item_result, tracer in outcomes:
            report.results.append(item_result)
            report.tracer.merge(tracer)
        report.fabric = self.pipeline.fabric_health()
        report.wall_s = time.perf_counter() - start
        return report
