"""The always-on scheduling daemon: a continuous request stream, served.

:class:`~repro.service.batch.BatchScheduler` answers "here are N
instances, schedule them"; a deployment facing millions of users needs
the dual shape — a **long-lived service** that requests flow *through*.
:class:`SchedulingService` is that front door, an asyncio daemon over
the same :class:`~repro.service.pipeline.ProbePipeline` the batch
scheduler drives (so a request served here is bit-identical to the
same request in a batch).  Four mechanisms, in request order:

1. **Admission** — per-tenant in-flight quotas
   (:class:`~repro.resilience.TenantQuota`) refuse a flooding tenant
   before any queue slot exists, the same refuse-before-allocating
   discipline as the byte-budget
   :class:`~repro.resilience.AdmissionController` (which the pipeline
   still applies per probe).
2. **Bound-first streaming** — every admitted request immediately
   receives a proven-ratio answer (the better of LPT and MULTIFIT,
   via :func:`~repro.core.baselines.best_baseline` — the same
   primitive the degradation path serves) on the handle's ``bound``
   future, *before* the request ever queues.  The PTAS refinement
   follows on ``refined``; :meth:`ServiceHandle.stream` yields the two
   stages strictly in that order.
3. **Coalescing** — requests whose
   :func:`~repro.core.probe_cache.normalized_request_key` matches an
   in-flight request attach to its pipeline run instead of starting
   their own: one PTAS execution, N deliveries.  The key collapses
   ``eps`` to the accuracy parameter ``k = ceil(1/eps)`` (the only
   way ``eps`` enters the scheduling path), so each waiter's result is
   re-stamped with its own ``eps`` for an honest
   ``guarantee_bound()``.  Waiter futures are *mirrors*: cancelling
   one waiter never cancels the shared run while others still wait.
4. **Priority dispatch** — admitted work queues on an
   ``asyncio.PriorityQueue`` ordered by (:class:`Priority`, submission
   sequence); ties preserve FIFO.  ``workers`` event-loop tasks drain
   the queue, running the blocking pipeline in a thread executor
   (numpy releases the GIL in the DP hot loops, so worker threads
   genuinely overlap).

Introspection is live: :meth:`SchedulingService.stats` snapshots queue
depths, per-tenant occupancy, coalescing hit rate, latency percentiles
(:class:`~repro.observability.ServiceMetrics`), the shared cache
tallies, and the merged tracer counters — the payload a metrics
endpoint would export.  The load-test harness
(:mod:`repro.service.loadgen`, ``python -m repro serve``,
``benchmarks/test_bench_service.py``) drives exactly this surface.

Lifecycle::

    service = SchedulingService(workers=4, backend="auto")
    async with service:                       # start() ... shutdown()
        handle = await service.submit(inst, eps=0.3, tenant="acme",
                                      priority=Priority.HIGH)
        async for stage, result in handle.stream():
            ...                               # ("bound", ...) then ("refined", ...)

``shutdown(drain=True)`` stops admissions (further ``submit`` raises
:class:`~repro.errors.ServiceClosedError`), finishes queued and
in-flight work, and returns ``True`` on a clean drain — ``False`` when
the optional timeout expired with work still in flight (the CLI maps
that to exit code 7; see ``docs/RELIABILITY.md``).
"""

from __future__ import annotations

import asyncio
import dataclasses
import enum
import itertools
import time
from dataclasses import dataclass
from typing import AsyncIterator, Dict, List, Optional, Tuple

from repro.core.baselines import best_baseline
from repro.core.instance import Instance
from repro.core.probe_cache import (
    ProbeCache,
    RequestKey,
    normalized_request_key,
)
from repro.core.schedule import Schedule
from repro.errors import (
    InvalidInstanceError,
    ServiceClosedError,
)
from repro.observability import ServiceMetrics, Tracer
from repro.resilience import FaultInjector, RetryPolicy, TenantQuota
from repro.service.batch import BatchRequest, BatchRequestResult
from repro.service.pipeline import ProbePipeline, build_resilience


class Priority(enum.IntEnum):
    """Dispatch priority of a service request (lower value runs first)."""

    HIGH = 0
    NORMAL = 1
    LOW = 2


@dataclass(frozen=True)
class BoundResult:
    """The immediate, proven-ratio answer served before the PTAS runs.

    ``schedule`` is a complete feasible schedule; ``bound`` is the
    serving heuristic's proven approximation ratio versus the optimal
    makespan (``13/11`` for MULTIFIT, ``4/3 - 1/(3m)`` for LPT) —
    the same guarantees the degradation path relies on.
    """

    schedule: Schedule
    served_by: str
    bound: float

    @property
    def makespan(self) -> int:
        """Makespan of the bound-stage schedule."""
        return self.schedule.makespan


class ServiceHandle:
    """One caller's view of one submitted request.

    Exposes two awaitables — :attr:`bound` (resolved at admission with
    a :class:`BoundResult`) and :attr:`refined` (resolved when the
    PTAS pipeline finishes, with a
    :class:`~repro.service.batch.BatchRequestResult`) — plus
    :meth:`stream`, which yields both stages in guaranteed
    bound-before-refined order.  ``coalesced`` is ``True`` when this
    handle attached to another request's in-flight pipeline.

    Handles of coalesced requests hold *mirror* futures: cancelling
    one (:meth:`cancel`) abandons only that caller's delivery; the
    shared pipeline run — and every other waiter — continues.
    """

    def __init__(
        self,
        name: str,
        request: BatchRequest,
        tenant: str,
        priority: Priority,
        loop: asyncio.AbstractEventLoop,
    ) -> None:
        self.name = name
        self.request = request
        self.tenant = tenant
        self.priority = priority
        self.coalesced = False
        #: wall-clock timestamps for the latency accounting.
        self.submitted_at = time.perf_counter()
        self.bound: "asyncio.Future[BoundResult]" = loop.create_future()
        self.refined: "asyncio.Future[BatchRequestResult]" = loop.create_future()

    async def stream(
        self,
    ) -> AsyncIterator[Tuple[str, object]]:
        """Yield ``("bound", BoundResult)`` then ``("refined", result)``.

        The bound stage is resolved at admission — strictly before any
        pipeline work — so the first yield never waits on the PTAS.
        """
        yield "bound", await asyncio.shield(self.bound)
        yield "refined", await asyncio.shield(self.refined)

    async def result(self) -> BatchRequestResult:
        """The refined (PTAS or degraded) result; awaits completion."""
        return await asyncio.shield(self.refined)

    def cancel(self) -> None:
        """Abandon this caller's deliveries (the shared run continues)."""
        if not self.bound.done():
            self.bound.cancel()
        if not self.refined.done():
            self.refined.cancel()

    @property
    def done(self) -> bool:
        """Whether the refined stage has been delivered (or cancelled)."""
        return self.refined.done()


class _Inflight:
    """One in-flight pipeline run and the handles awaiting it."""

    def __init__(self, primary: ServiceHandle) -> None:
        self.primary = primary
        self.waiters: List[ServiceHandle] = [primary]
        self.bound_result: Optional[BoundResult] = None


class SchedulingService:
    """Long-lived asyncio scheduling service over the probe pipeline.

    Parameters
    ----------
    backend / search / eps:
        Defaults for requests that do not specify their own — identical
        semantics to :class:`~repro.service.batch.BatchScheduler`.
    workers:
        Number of concurrent pipeline executions.  Each worker is an
        event-loop task that runs the blocking pipeline in the default
        thread executor.
    cache:
        Shared :class:`~repro.core.probe_cache.ProbeCache` (pass
        ``None`` to disable cross-request reuse; default: a fresh
        bounded cache, as for batches).
    quota:
        A :class:`~repro.resilience.TenantQuota`, or ``None`` for
        unlimited admission.  Over-quota submissions raise
        :class:`~repro.errors.QuotaExceededError`.
    faults / retry / deadline_s / memory_budget_bytes / degrade:
        The resilience knobs, forwarded to the shared pipeline (see
        ``docs/RELIABILITY.md``).
    fill_workers:
        When > 1, the pipeline owns a persistent fill fabric
        (:class:`~repro.parallel.fabric.BlockExecutor`) injected into
        fabric-aware backends.  :meth:`shutdown` releases the pool on
        both the clean-drain and dirty-timeout paths, so no fabric
        worker ever outlives the service.
    sparsify:
        Configuration-sparsification override for sparsify-aware
        backends (``None`` keeps backend defaults; ``False`` also
        disables probe-cache warm starts) — identical semantics to
        :class:`~repro.service.batch.BatchScheduler`.
    max_queue:
        Optional bound on the dispatch queue; at capacity, ``submit``
        back-pressures (awaits space) rather than rejecting.
    """

    def __init__(
        self,
        backend: str = "auto",
        workers: int = 4,
        cache: Optional[ProbeCache] = ...,  # type: ignore[assignment]
        search: str = "quarter",
        eps: float = 0.3,
        quota: Optional[TenantQuota] = None,
        faults: Optional[FaultInjector] = None,
        retry: Optional[RetryPolicy] = None,
        deadline_s: Optional[float] = None,
        memory_budget_bytes: Optional[int] = None,
        degrade: bool = True,
        fill_workers: Optional[int] = None,
        fill_min_cells: Optional[int] = None,
        sparsify: Optional[bool] = None,
        max_queue: Optional[int] = None,
    ) -> None:
        if workers < 1:
            raise InvalidInstanceError(f"workers must be >= 1, got {workers}")
        resilience, faults = build_resilience(
            faults=faults,
            retry=retry,
            deadline_s=deadline_s,
            memory_budget_bytes=memory_budget_bytes,
            fill_workers=fill_workers,
        )
        self.pipeline = ProbePipeline(
            backend=backend,
            cache=ProbeCache() if cache is ... else cache,
            resilience=resilience,
            faults=faults,
            degrade=bool(degrade),
            fill_workers=fill_workers,
            fill_min_cells=fill_min_cells,
            sparsify=sparsify,
        )
        self.backend = backend
        self.workers = int(workers)
        self.search = search
        self.eps = eps
        self.quota = quota
        self.metrics = ServiceMetrics()
        #: merged per-request tracers, in completion order (the stream
        #: has no batch to order by; counters are order-independent).
        self.tracer = Tracer()
        self._queue: "asyncio.PriorityQueue[Tuple[int, int, Optional[_Inflight]]]" = (
            asyncio.PriorityQueue(maxsize=max_queue or 0)
        )
        self._inflight: Dict[RequestKey, _Inflight] = {}
        self._seq = itertools.count()
        self._workers: List[asyncio.Task] = []
        self._started = False
        self._closing = False
        self._idle = asyncio.Event()
        self._idle.set()
        self._active = 0  # queued + running pipeline entries

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Spawn the worker tasks (idempotent)."""
        if self._started:
            return
        self._started = True
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._workers = [
            loop.create_task(self._worker(i), name=f"repro-service-worker-{i}")
            for i in range(self.workers)
        ]

    async def __aenter__(self) -> "SchedulingService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.shutdown()

    async def shutdown(
        self, drain: bool = True, timeout_s: Optional[float] = None
    ) -> bool:
        """Stop the service; returns ``True`` on a clean shutdown.

        With ``drain=True`` (default) admissions stop immediately
        (``submit`` raises :class:`~repro.errors.ServiceClosedError`)
        but queued and in-flight requests complete; ``drain=False``
        additionally abandons queued entries (their waiters' futures
        are cancelled) and only waits out requests already running.
        ``timeout_s`` caps the wait: on expiry the workers are
        cancelled, every unresolved waiter future is cancelled, and
        the method returns ``False`` — the "dirty shutdown" the CLI
        reports as exit code 7.
        """
        self._closing = True
        if not self._started:
            self.pipeline.close()
            return True
        if not drain:
            self._flush_queue()
        clean = True
        if self._active:
            try:
                await asyncio.wait_for(self._idle.wait(), timeout=timeout_s)
            except asyncio.TimeoutError:
                clean = False
        for task in self._workers:
            task.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        self._started = False
        if not clean:
            self._abandon_inflight()
        # Both exits release the fill-fabric pool: a drained service
        # closes it gracefully, a dirty shutdown terminates its
        # workers — either way nothing outlives the daemon.
        self.pipeline.close(force=not clean)
        self.metrics.count("shutdown.clean" if clean else "shutdown.timeout")
        return clean

    def _flush_queue(self) -> None:
        """Drop every queued (not yet running) entry, cancelling waiters."""
        while True:
            try:
                _, _, entry = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            self._queue.task_done()
            if entry is None:
                continue
            for waiter in entry.waiters:
                if not waiter.refined.done():
                    waiter.refined.cancel()
            self._finish_entry(entry, abandoned=True)

    def _abandon_inflight(self) -> None:
        """Cancel unresolved futures after a timed-out shutdown."""
        for entry in list(self._inflight.values()):
            for waiter in entry.waiters:
                if not waiter.refined.done():
                    waiter.refined.cancel()
        self._inflight.clear()
        self._active = 0
        self._idle.set()

    # -- admission ----------------------------------------------------------

    async def submit(
        self,
        instance: Instance,
        eps: Optional[float] = None,
        search: Optional[str] = None,
        backend: Optional[str] = None,
        tenant: str = "default",
        priority: Priority = Priority.NORMAL,
        name: str = "",
    ) -> ServiceHandle:
        """Admit one request; returns its :class:`ServiceHandle`.

        Admission order: the service must be accepting
        (:class:`~repro.errors.ServiceClosedError` otherwise), the
        tenant must be under quota
        (:class:`~repro.errors.QuotaExceededError`), then the bound
        stage is computed and delivered, and the request either
        coalesces onto an in-flight twin or queues for dispatch.
        """
        if self._closing or not self._started:
            raise ServiceClosedError(
                "service is not accepting requests "
                + ("(shutting down)" if self._closing else "(not started)")
            )
        seq = next(self._seq)
        eps = self.eps if eps is None else eps
        search = self.search if search is None else search
        request = BatchRequest(
            instance=instance,
            eps=eps,
            search=search,
            name=name or f"request-{seq}",
            backend=backend,
        )
        handle = ServiceHandle(
            request.name, request, tenant, Priority(priority),
            asyncio.get_running_loop(),
        )
        if self.quota is not None:
            try:
                self.quota.acquire(tenant)
            except Exception:
                self.metrics.count("rejected.quota")
                raise
        self.metrics.count("submitted")
        self.metrics.count(f"submitted.priority.{Priority(priority).name.lower()}")

        key = normalized_request_key(
            instance, eps, search, backend or self.backend
        )
        entry = self._inflight.get(key)
        if entry is not None:
            # Coalesce: attach to the in-flight run.  The bound stage
            # is shared too — it depends only on the instance.
            handle.coalesced = True
            entry.waiters.append(handle)
            self.metrics.count("coalesced")
            self._deliver_bound(handle, entry.bound_result)
            return handle

        entry = _Inflight(handle)
        entry.bound_result = self._compute_bound(instance)
        self._deliver_bound(handle, entry.bound_result)
        self._inflight[key] = entry
        self._active += 1
        self._idle.clear()
        # PriorityQueue orders by the tuple: priority class first, then
        # submission sequence — FIFO within a class.
        await self._queue.put((int(priority), seq, entry))
        self.metrics.count("enqueued")
        return handle

    def _compute_bound(self, instance: Instance) -> BoundResult:
        """The bound-first answer (cheap: LPT + MULTIFIT, O(n log n))."""
        schedule, by, bound = best_baseline(instance)
        self.metrics.count("bound.served")
        self.metrics.count(f"bound.by.{by}")
        return BoundResult(schedule=schedule, served_by=by, bound=bound)

    def _deliver_bound(
        self, handle: ServiceHandle, bound: Optional[BoundResult]
    ) -> None:
        if bound is not None and not handle.bound.done():
            handle.bound.set_result(bound)
            self.metrics.record_latency(
                "bound", time.perf_counter() - handle.submitted_at
            )

    # -- dispatch -----------------------------------------------------------

    async def _worker(self, index: int) -> None:
        loop = asyncio.get_running_loop()
        while True:
            _, _, entry = await self._queue.get()
            try:
                if entry is None:
                    continue
                await self._execute(loop, entry)
            finally:
                self._queue.task_done()

    async def _execute(
        self, loop: asyncio.AbstractEventLoop, entry: _Inflight
    ) -> None:
        """Run one pipeline entry and deliver to every waiter."""
        request = entry.primary.request
        self.metrics.count("pipeline.runs")
        try:
            result, tracer = await loop.run_in_executor(
                None, self.pipeline.run, request
            )
        except asyncio.CancelledError:
            # Worker cancelled mid-run (timed-out shutdown): abandon
            # the waiters and let the cancellation propagate.
            self._finish_entry(entry)
            for waiter in entry.waiters:
                if not waiter.refined.done():
                    waiter.refined.cancel()
            raise
        except BaseException as exc:  # degrade=False, or a true bug
            self.metrics.count("pipeline.errors")
            self._finish_entry(entry)
            for waiter in entry.waiters:
                if not waiter.refined.done():
                    waiter.refined.set_exception(exc)
            return
        self.tracer.merge(tracer)
        if result.degraded:
            self.metrics.count("completed.degraded")
        self.metrics.count("completed.refined", len(entry.waiters))
        self._finish_entry(entry)
        now = time.perf_counter()
        for waiter in entry.waiters:
            if waiter.refined.done():  # cancelled by its caller
                self.metrics.count("delivery.skipped.cancelled")
                continue
            waiter.refined.set_result(self._stamp(result, waiter))
            self.metrics.record_latency("refined", now - waiter.submitted_at)

    def _stamp(
        self, result: BatchRequestResult, waiter: ServiceHandle
    ) -> BatchRequestResult:
        """Re-label a shared result for one waiter.

        Coalesced waiters may have asked with a different name or a
        different ``eps`` of equal accuracy ``k``; the schedule is
        bit-identical (that is what the coalescing key guarantees) but
        the delivered record carries the waiter's own name, request,
        and — inside the PTAS result — its own ``eps`` so
        ``guarantee_bound()`` reflects what *this* caller was promised.
        """
        if waiter.request is result.request and waiter.name == result.name:
            return result
        ptas = result.result
        if ptas is not None and ptas.eps != waiter.request.eps:
            ptas = dataclasses.replace(ptas, eps=waiter.request.eps)
        return dataclasses.replace(
            result, name=waiter.name, request=waiter.request, result=ptas
        )

    def _finish_entry(self, entry: _Inflight, abandoned: bool = False) -> None:
        """Retire an entry: in-flight table, quota slots, idle latch."""
        key = normalized_request_key(
            entry.primary.request.instance,
            entry.primary.request.eps,
            entry.primary.request.search,
            entry.primary.request.backend or self.backend,
        )
        current = self._inflight.get(key)
        if current is entry:
            del self._inflight[key]
        if self.quota is not None:
            for waiter in entry.waiters:
                self.quota.release(waiter.tenant)
        if abandoned:
            self.metrics.count("abandoned")
        self._active -= 1
        if self._active <= 0:
            self._active = 0
            self._idle.set()

    # -- introspection ------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Live JSON-ready snapshot — the introspection endpoint payload.

        Contains the service metrics (counters + latency percentiles),
        queue depth and in-flight/coalescing state, per-tenant quota
        occupancy, the shared probe/plan cache tallies, the merged
        tracer counters of every completed request, and the fill
        fabric's health snapshot (``"fabric"``, ``{}`` when the daemon
        runs without ``fill_workers``).
        """
        snapshot = self.metrics.snapshot()
        coalescing_rate = self.metrics.ratio("coalesced", "submitted")
        cache = self.pipeline.cache
        return {
            "backend": self.backend,
            "workers": self.workers,
            "accepting": self._started and not self._closing,
            "queue_depth": self._queue.qsize(),
            "inflight_keys": len(self._inflight),
            "active_requests": self._active,
            "tenants": (
                self.quota.snapshot() if self.quota is not None else {}
            ),
            "coalescing_hit_rate": (
                round(coalescing_rate, 4) if coalescing_rate is not None else None
            ),
            **snapshot,
            "cache": cache.stats.as_dict() if cache is not None else {},
            "plan_cache": (
                self.pipeline.plan_cache.stats.as_dict()
                if len(self.pipeline.plan_cache)
                else {}
            ),
            "tracer_counters": dict(self.tracer.counters),
            # Headline perf-opt tallies by name (the same pair the
            # batch report surfaces): configs dropped by dominance
            # pruning, DP cells a warm-started fill did not recompute.
            "perf": {
                "sparsify_dropped": int(
                    self.tracer.counters.get("sparsify.dropped", 0)
                ),
                "warmstart_cells_reused": int(
                    self.tracer.counters.get("warmstart.cells_reused", 0)
                ),
            },
            # Fill-fabric supervision snapshot (worker pids, restarts,
            # re-executed waves, reaped segments); {} without a fabric
            # so the key is always present for dashboards.
            "fabric": self.pipeline.fabric_health() or {},
        }

    async def join(self) -> None:
        """Wait until every admitted request has been delivered."""
        await self._idle.wait()
