"""Accumulating named-phase timers.

:class:`repro.util.timing.Timer` times one block; :class:`PhaseTimer`
times *many named blocks*, accumulating re-entries to the same name —
which is what a search loop needs ("total seconds spent in the DP fill
across all probes") and what the per-probe events record ("seconds of
*this* probe's rounding step").

The clock is ``time.perf_counter`` throughout, matching the rest of
the harness.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator


class PhaseTimer:
    """Accumulates wall-clock seconds per named phase.

    Example::

        timer = PhaseTimer()
        with timer.phase("rounding"):
            ...
        with timer.phase("dp"):
            ...
        timer.seconds["dp"]     # float seconds, accumulated
        timer.total             # sum over all phases

    Phases may nest (distinct names each accumulate their own wall
    time; nested seconds are therefore counted once per enclosing
    name, which is the conventional inclusive-time reading).
    """

    __slots__ = ("seconds", "entries", "_lock")

    def __init__(self) -> None:
        #: phase name -> accumulated seconds.
        self.seconds: Dict[str, float] = {}
        #: phase name -> number of times the phase was entered.
        self.entries: Dict[str, int] = {}
        # The ambient tracer's timer receives add() calls from the
        # parallel host executor's probe threads; the accumulation is
        # a read-modify-write, so it takes a lock.
        self._lock = threading.Lock()

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time one entry of phase ``name`` (accumulating)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - start)

    def add(self, name: str, seconds: float) -> None:
        """Credit ``seconds`` to ``name`` directly (merge path; thread-safe)."""
        with self._lock:
            self.seconds[name] = self.seconds.get(name, 0.0) + float(seconds)
            self.entries[name] = self.entries.get(name, 0) + 1

    def merge(self, other: "PhaseTimer") -> None:
        """Fold another timer's accumulations into this one."""
        for name, secs in other.seconds.items():
            self.seconds[name] = self.seconds.get(name, 0.0) + secs
            self.entries[name] = self.entries.get(name, 0) + other.entries.get(name, 0)

    @property
    def total(self) -> float:
        """Sum of all phase seconds (nested phases count per name)."""
        return float(sum(self.seconds.values()))

    def as_dict(self) -> Dict[str, float]:
        """Plain ``{name: seconds}`` copy for reports and JSON."""
        return dict(self.seconds)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v:.3g}s" for k, v in sorted(self.seconds.items()))
        return f"PhaseTimer({inner})"
