"""The ambient tracer: activate once, instrument everywhere.

Threading a collector object through every call of the search →
probe → DP → engine stack would contaminate a dozen signatures with a
parameter that is ``None`` in production.  Instead the collector is
*ambient*: :class:`Tracer` installs itself in a :class:`ContextVar`
for the duration of a ``with tracer.activate():`` block, and
instrumented library code calls the module-level helpers
(:func:`count`, :func:`phase`, :func:`add_time`,
:func:`record_probe`), which no-op when no tracer is active.

``ContextVar`` (not a module global) keeps concurrent searches
independent: each thread/task sees only the tracer it activated, so
e.g. the host-parallel wavefront workers or two interleaved PTAS runs
cannot pollute each other's counters.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Dict, Iterator, List, Optional

from repro.observability.timers import PhaseTimer
from repro.observability.trace import ProbeTrace, TraceSink

_ACTIVE: ContextVar[Optional["Tracer"]] = ContextVar("repro_tracer", default=None)

#: Number of currently-active tracer activations, process-wide.  The
#: module-level helpers check this plain integer before touching the
#: ContextVar: in production (no tracer anywhere) the per-config-pass
#: counters in the kernel hot loops then cost one global load and a
#: falsy test instead of a ContextVar lookup.  Over-counting across
#: threads is harmless — a non-zero count merely routes a call to the
#: exact ContextVar check, which still answers per-context.
_ACTIVATIONS = 0


class Tracer:
    """Collects phases, counters, and probe events for one activation.

    Parameters
    ----------
    sink:
        Optional :class:`~repro.observability.trace.TraceSink`
        receiving every probe event as it happens (the tracer also
        keeps its own list in :attr:`probes`).

    Example::

        tracer = Tracer()
        with tracer.activate():
            ptas_schedule(inst, eps=0.3)   # instrumented internally
        tracer.counters["probe.count"]
        tracer.timer.seconds["probe.dp"]
    """

    def __init__(self, sink: Optional[TraceSink] = None) -> None:
        self.sink = sink
        #: accumulated wall seconds per named phase.
        self.timer = PhaseTimer()
        #: accumulated named counters.
        self.counters: Dict[str, float] = {}
        #: every probe event recorded while active.
        self.probes: List[ProbeTrace] = []
        # One tracer may receive events from several threads at once
        # (the parallel host executor propagates the ambient context
        # into its probe workers); the read-modify-write tallies take
        # a lock so no increment is lost.
        self._lock = threading.Lock()

    # -- collection ---------------------------------------------------------

    def count(self, name: str, delta: float = 1) -> None:
        """Add ``delta`` to counter ``name`` (thread-safe)."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + delta

    def record_probe(self, probe: ProbeTrace) -> None:
        """Record one probe event (and forward it to the sink)."""
        with self._lock:
            self.probes.append(probe)
        if self.sink is not None:
            self.sink.record(probe)

    def merge(self, other: "Tracer") -> None:
        """Fold another tracer's collections into this one.

        Phases and counters accumulate; probe events append in order
        (and flow to this tracer's sink).  Used by the batch service to
        combine the per-request tracers of a fan-out into one
        aggregate report.
        """
        self.timer.merge(other.timer)
        for name, delta in other.counters.items():
            self.count(name, delta)
        for probe in other.probes:
            self.record_probe(probe)

    # -- activation ---------------------------------------------------------

    @contextmanager
    def activate(self) -> Iterator["Tracer"]:
        """Install this tracer as the ambient collector for the block."""
        global _ACTIVATIONS
        token = _ACTIVE.set(self)
        _ACTIVATIONS += 1
        try:
            yield self
        finally:
            _ACTIVATIONS -= 1
            _ACTIVE.reset(token)

    # -- reporting ----------------------------------------------------------

    def report(self) -> Dict[str, object]:
        """JSON-ready summary: phases, counters, and probe events."""
        return {
            "phases": self.timer.as_dict(),
            "counters": dict(self.counters),
            "probes": [p.to_dict() for p in self.probes],
        }


def as_tracer(trace: object) -> Optional[Tracer]:
    """Coerce a ``trace=`` argument into a :class:`Tracer`.

    Accepts ``None`` (no tracing), an existing :class:`Tracer` (used
    as-is), or a bare :class:`~repro.observability.trace.TraceSink`
    (wrapped in a fresh tracer that forwards probe events to it).
    """
    if trace is None:
        return None
    if isinstance(trace, Tracer):
        return trace
    if hasattr(trace, "record"):
        return Tracer(sink=trace)  # type: ignore[arg-type]
    raise TypeError(
        f"trace must be None, a Tracer, or a TraceSink; got {type(trace).__name__}"
    )


def current_tracer() -> Optional[Tracer]:
    """The ambient tracer, or ``None`` when nothing is being traced.

    Costs one global load when no tracer exists anywhere in the
    process — the common production case.
    """
    if not _ACTIVATIONS:
        return None
    return _ACTIVE.get()


def count(name: str, delta: float = 1) -> None:
    """Increment counter ``name`` on the ambient tracer (no-op if none).

    Hot loops should accumulate locally and call this once — with no
    tracer active anywhere the no-op path is a single global check,
    cheap enough for per-config-pass call sites.
    """
    if not _ACTIVATIONS:
        return
    tracer = _ACTIVE.get()
    if tracer is not None:
        tracer.count(name, delta)


def add_time(name: str, seconds: float) -> None:
    """Credit ``seconds`` to phase ``name`` on the ambient tracer."""
    if not _ACTIVATIONS:
        return
    tracer = _ACTIVE.get()
    if tracer is not None:
        tracer.timer.add(name, seconds)


@contextmanager
def phase(name: str) -> Iterator[None]:
    """Time a block as phase ``name`` on the ambient tracer.

    A fast no-op when no tracer is active (a global check plus, with
    tracers elsewhere, the ``ContextVar`` lookup).
    """
    if not _ACTIVATIONS:
        yield
        return
    tracer = _ACTIVE.get()
    if tracer is None:
        yield
        return
    with tracer.timer.phase(name):
        yield


def record_probe(probe: ProbeTrace) -> None:
    """Record a probe event on the ambient tracer (no-op if none)."""
    if not _ACTIVATIONS:
        return
    tracer = _ACTIVE.get()
    if tracer is not None:
        tracer.record_probe(probe)
