"""Service-level metrics: latency distributions and live gauges.

The probe-level observability stack (:class:`~repro.observability.Tracer`
and the ambient counters) answers *where one request's time went*.  A
long-lived scheduling daemon needs a second altitude: how long do
requests wait end to end, what fraction coalesce, how deep are the
queues *right now*.  This module provides the two pieces the daemon's
introspection surface is built from:

* :class:`LatencyRecorder` — a bounded reservoir of per-request
  latencies with exact percentiles (p50/p95/p99), one per served stage
  (``bound`` — the immediate LPT/MULTIFIT answer; ``refined`` — the
  PTAS result).  The same summaries feed ``BENCH_service.json``.
* :class:`ServiceMetrics` — thread-safe named counters plus a registry
  of latency recorders, with a single JSON-ready :meth:`snapshot`.

Both are deliberately independent of the ambient tracer: the daemon
serves many concurrent requests whose tracers come and go, while these
metrics live as long as the service does.
"""

from __future__ import annotations

import threading
from bisect import insort
from typing import Dict, List, Optional

#: The percentiles every latency summary reports.
PERCENTILES = (50.0, 95.0, 99.0)


def percentile(sorted_values: List[float], pct: float) -> float:
    """Exact (nearest-rank, linear-interpolated) percentile of a sorted list.

    The standard "linear" method (numpy's default): rank
    ``(len-1) * pct/100`` interpolated between its neighbours.  Raises
    ``ValueError`` on an empty list — a latency summary with no samples
    has no percentiles, and silently returning 0 would fabricate an
    SLO.
    """
    if not sorted_values:
        raise ValueError("cannot take a percentile of zero samples")
    if not (0.0 <= pct <= 100.0):
        raise ValueError(f"percentile must be in [0, 100], got {pct}")
    rank = (len(sorted_values) - 1) * (pct / 100.0)
    lo = int(rank)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = rank - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


class LatencyRecorder:
    """Bounded, sorted reservoir of latency samples with exact percentiles.

    Samples insert in sorted order (``bisect.insort``), so percentile
    reads are O(1) indexing and :meth:`summary` never sorts.  Past
    ``capacity`` samples the *earliest-inserted* are forgotten
    (tracked by insertion order, evicted from the sorted view), which
    keeps a week-long daemon's memory bounded while the reported
    distribution follows the recent workload.
    """

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._sorted: List[float] = []
        self._arrival: List[float] = []  # insertion order, for eviction
        self._count = 0  # lifetime samples, never decremented
        self._total = 0.0
        self._lock = threading.Lock()

    def record(self, seconds: float) -> None:
        """Add one latency sample (negative samples are a caller bug)."""
        if seconds < 0:
            raise ValueError(f"latency must be >= 0, got {seconds}")
        value = float(seconds)
        with self._lock:
            insort(self._sorted, value)
            self._arrival.append(value)
            self._count += 1
            self._total += value
            if len(self._arrival) > self.capacity:
                oldest = self._arrival.pop(0)
                # Remove one occurrence of the oldest sample from the
                # sorted view; identical values are interchangeable.
                idx = self._find(oldest)
                self._sorted.pop(idx)

    def _find(self, value: float) -> int:
        lo, hi = 0, len(self._sorted)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._sorted[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        return lo

    @property
    def count(self) -> int:
        """Lifetime number of samples recorded (eviction never lowers it)."""
        with self._lock:
            return self._count

    def summary(self) -> Dict[str, float]:
        """JSON-ready ``{count, mean_ms, p50_ms, p95_ms, p99_ms, max_ms}``.

        Latencies are reported in **milliseconds** (the natural unit at
        service scale).  An empty recorder summarizes to
        ``{"count": 0}`` only — no fabricated zeros.
        """
        with self._lock:
            if not self._sorted:
                return {"count": 0}
            out: Dict[str, float] = {
                "count": self._count,
                "mean_ms": round(1e3 * self._total / self._count, 4),
                "max_ms": round(1e3 * self._sorted[-1], 4),
            }
            for pct in PERCENTILES:
                out[f"p{pct:g}_ms"] = round(
                    1e3 * percentile(self._sorted, pct), 4
                )
            return out


class ServiceMetrics:
    """Thread-safe counters + latency recorders for one service instance.

    Counters are plain monotonic tallies (``submitted``, ``coalesced``,
    ``completed.refined``, ...); latency recorders are created lazily
    per stage name.  :meth:`snapshot` renders everything JSON-ready in
    one locked pass — the payload behind the daemon's introspection
    endpoint and the load-test harness's report.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self._latencies: Dict[str, LatencyRecorder] = {}
        self._lock = threading.Lock()

    def count(self, name: str, delta: float = 1) -> None:
        """Add ``delta`` to counter ``name``."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + delta

    def get(self, name: str) -> float:
        """Current value of counter ``name`` (0 when never counted)."""
        with self._lock:
            return self.counters.get(name, 0)

    def latency(self, stage: str) -> LatencyRecorder:
        """The (lazily created) latency recorder for ``stage``."""
        with self._lock:
            recorder = self._latencies.get(stage)
            if recorder is None:
                recorder = self._latencies[stage] = LatencyRecorder()
            return recorder

    def record_latency(self, stage: str, seconds: float) -> None:
        """Record one ``stage`` latency sample."""
        self.latency(stage).record(seconds)

    def ratio(self, numerator: str, denominator: str) -> Optional[float]:
        """``counters[numerator] / counters[denominator]`` or ``None``.

        The coalescing hit rate is ``ratio("coalesced", "submitted")``.
        """
        denom = self.get(denominator)
        if not denom:
            return None
        return self.get(numerator) / denom

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready view: counters plus per-stage latency summaries."""
        with self._lock:
            counters = dict(self.counters)
            stages = dict(self._latencies)
        return {
            "counters": counters,
            "latency": {name: rec.summary() for name, rec in sorted(stages.items())},
        }
