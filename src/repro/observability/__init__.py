"""Observability: per-phase timers, counters, and probe tracing.

The search strategies (:mod:`repro.core.bisection`,
:mod:`repro.core.quarter_split`) and the DP solvers they drive were
opaque: a PTAS run reported only its iteration count, with no way to
see where a probe's time went (rounding? configuration enumeration?
the DP fill? short-job packing?) or how much work the run repeated
across probes.  This package is the measurement layer that motivated —
and now validates — the cross-probe cache
(:mod:`repro.core.probe_cache`).

Three layers, smallest first:

* :class:`~repro.observability.timers.PhaseTimer` — an accumulating
  named-phase stopwatch (``with timer.phase("dp"): ...``).
* :class:`~repro.observability.trace.ProbeTrace` /
  :class:`~repro.observability.trace.TraceSink` — one structured event
  per dual-approximation probe and the pluggable protocol that
  receives them.  :class:`~repro.observability.trace.TraceRecorder`
  is the in-memory reference sink with JSON export.
* :class:`~repro.observability.context.Tracer` — the ambient
  collector.  Library code calls the module-level helpers
  (:func:`~repro.observability.context.count`,
  :func:`~repro.observability.context.phase`, ...) which are cheap
  no-ops unless a tracer has been activated, so the instrumented hot
  paths pay (almost) nothing when nobody is watching.

Typical use, via the PTAS entry point::

    from repro import ptas_schedule
    from repro.observability import TraceRecorder, Tracer

    recorder = TraceRecorder()
    tracer = Tracer(sink=recorder)
    result = ptas_schedule(inst, eps=0.3, trace=tracer)

    tracer.report()            # {"phases": {...}, "counters": {...}, ...}
    recorder.events            # one ProbeTrace per DP probe
    recorder.to_json()         # the same, serialized

or from the command line: ``python -m repro schedule ... --profile
--trace-json trace.json``.  See ``docs/PERFORMANCE.md`` for how to
read the output.
"""

from repro.observability.context import (
    Tracer,
    add_time,
    as_tracer,
    count,
    current_tracer,
    phase,
    record_probe,
)
from repro.observability.report import render_profile
from repro.observability.service_metrics import (
    LatencyRecorder,
    ServiceMetrics,
    percentile,
)
from repro.observability.timers import PhaseTimer
from repro.observability.trace import (
    NullSink,
    ProbeTrace,
    TraceRecorder,
    TraceSink,
    events_to_json,
)

__all__ = [
    "PhaseTimer",
    "ProbeTrace",
    "TraceSink",
    "TraceRecorder",
    "NullSink",
    "events_to_json",
    "Tracer",
    "as_tracer",
    "current_tracer",
    "count",
    "phase",
    "add_time",
    "record_probe",
    "render_profile",
    "LatencyRecorder",
    "ServiceMetrics",
    "percentile",
]
