"""Per-probe trace events and the pluggable sink protocol.

One :class:`ProbeTrace` is emitted for every dual-approximation probe
the PTAS performs (so a bisection run emits ``len(result.probes)``
events, and the quarter split emits up to four per iteration).  The
event carries everything needed to reconstruct where the probe's time
went and whether the cross-probe cache helped — without holding a
reference to the (potentially large) DP table itself, so sinks can
retain every event of a long batch run cheaply.

A *sink* is anything with a ``record(ProbeTrace)`` method
(:class:`TraceSink`).  The library ships two: :class:`TraceRecorder`
(in-memory list + JSON export — the default for tests and the CLI)
and :class:`NullSink` (explicitly discard).  Writing your own —
e.g. streaming events to a metrics backend — is the intended
extension point.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Sequence, runtime_checkable


@dataclass(frozen=True)
class ProbeTrace:
    """Structured record of one target-makespan probe.

    Attributes
    ----------
    target: the makespan ``T`` probed.
    accepted: whether the dual approximation certified feasibility.
    machines_needed: machines the probe used (``> m`` on rejection).
    k: accuracy parameter ``ceil(1/eps)``.
    dims: occupied job classes (DP-table dimensionality).
    n_long: number of long jobs (DP wavefront depth).
    table_size: DP-table cell count ``sigma``.
    num_configs: size of the machine-configuration set ``|C|``.
    phase_seconds: wall seconds of this probe's phases (``rounding``,
        ``configs``, ``dp``, ``extract``, ``place_long``,
        ``short_jobs``).
    cache_events: per-artifact cache outcome (``"hit"``/``"miss"``)
        when a :class:`~repro.core.probe_cache.ProbeCache` was active,
        keyed by ``rounding`` / ``configs`` / ``dp``; empty otherwise.
    """

    target: int
    accepted: bool
    machines_needed: int
    k: int
    dims: int
    n_long: int
    table_size: int
    num_configs: int
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    cache_events: Dict[str, str] = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        """Total wall seconds of the probe's recorded phases."""
        return float(sum(self.phase_seconds.values()))

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready plain-dict view."""
        return {
            "target": self.target,
            "accepted": self.accepted,
            "machines_needed": self.machines_needed,
            "k": self.k,
            "dims": self.dims,
            "n_long": self.n_long,
            "table_size": self.table_size,
            "num_configs": self.num_configs,
            "phase_seconds": dict(self.phase_seconds),
            "cache_events": dict(self.cache_events),
        }


@runtime_checkable
class TraceSink(Protocol):
    """Anything that can receive probe events."""

    def record(self, probe: ProbeTrace) -> None:
        """Handle one probe event (called in probe-execution order)."""
        ...


class NullSink:
    """A sink that discards every event (for explicitness in wiring)."""

    def record(self, probe: ProbeTrace) -> None:
        """Discard the event."""


class TraceRecorder:
    """In-memory :class:`TraceSink`: keeps every event, exports JSON.

    The reference sink — tests assert one event per probe against it,
    and the CLI's ``--trace-json`` serializes one.
    """

    def __init__(self) -> None:
        #: every recorded event, in probe-execution order.
        self.events: List[ProbeTrace] = []

    def record(self, probe: ProbeTrace) -> None:
        """Append one probe event."""
        self.events.append(probe)

    def __len__(self) -> int:
        return len(self.events)

    @property
    def accepted(self) -> List[ProbeTrace]:
        """Events of accepted probes only."""
        return [e for e in self.events if e.accepted]

    @property
    def cache_hits(self) -> int:
        """Number of probes whose DP table came from the cache."""
        return sum(1 for e in self.events if e.cache_events.get("dp") == "hit")

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialize all events (see :func:`events_to_json`)."""
        return events_to_json(self.events, indent=indent)


def events_to_json(events: Sequence[ProbeTrace], indent: Optional[int] = 2) -> str:
    """Serialize probe events to a JSON array string."""
    return json.dumps([e.to_dict() for e in events], indent=indent)
