"""Human-readable rendering of a tracer's collections (``--profile``).

Kept dependency-free (no :mod:`repro.analysis` import) so the
observability package stays a leaf of the import graph — everything
else may instrument itself against it.
"""

from __future__ import annotations

from typing import List

from repro.observability.context import Tracer


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:8.3f} ms"
    return f"{seconds * 1e6:8.1f} us"


def _fmt_count(value: float) -> str:
    if float(value).is_integer():
        return f"{int(value):,}"
    return f"{value:,.3f}"


def render_profile(tracer: Tracer, title: str = "profile") -> str:
    """Render a tracer's phases, counters, and probe summary as text.

    The layout is what ``python -m repro schedule --profile`` prints;
    ``docs/PERFORMANCE.md`` walks through reading it.
    """
    lines: List[str] = [f"== {title} =="]

    phases = tracer.timer.seconds
    if phases:
        lines.append("-- phases (wall time, accumulated) --")
        width = max(len(n) for n in phases)
        total = sum(phases.values())
        for name in sorted(phases, key=lambda n: -phases[n]):
            secs = phases[name]
            share = (secs / total * 100.0) if total > 0 else 0.0
            entries = tracer.timer.entries.get(name, 0)
            lines.append(
                f"  {name:<{width}}  {_fmt_seconds(secs)}  "
                f"{share:5.1f}%  ({entries} entries)"
            )

    if tracer.counters:
        lines.append("-- counters --")
        width = max(len(n) for n in tracer.counters)
        for name in sorted(tracer.counters):
            lines.append(f"  {name:<{width}}  {_fmt_count(tracer.counters[name])}")

    if tracer.probes:
        accepted = sum(1 for p in tracer.probes if p.accepted)
        dp_hits = sum(1 for p in tracer.probes if p.cache_events.get("dp") == "hit")
        lines.append("-- probes --")
        lines.append(
            f"  {len(tracer.probes)} probes ({accepted} accepted), "
            f"{dp_hits} DP cache hits"
        )
        lines.append("  target     accepted  table_size  |C|     dp_time     cache")
        for p in tracer.probes:
            cache = ",".join(f"{k}:{v}" for k, v in sorted(p.cache_events.items()))
            lines.append(
                f"  {p.target:<10} {str(p.accepted):<9} {p.table_size:<11} "
                f"{p.num_configs:<7} {_fmt_seconds(p.phase_seconds.get('dp', 0.0))}  "
                f"{cache or '-'}"
            )
    return "\n".join(lines)
