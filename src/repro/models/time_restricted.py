"""Time-restricted scheduling: identical machines, at most B jobs each.

Jaykrishnan–Levin's B-parameter becomes the instance field
``max_jobs_per_machine``.  The probe is the identical model's with two
twists: machine configurations carry at most ``B`` long jobs
(``enumerate_configurations(..., max_jobs=B)``), and the greedy short
placement only uses machines with free job slots.  The filtered
configuration set travels with the plan-cache token ``("maxjobs", B)``
so it can never alias the identical model's unfiltered plans.

Greedy slot-aware short placement is not an exact feasibility oracle
(unlike the identical model's, which certifies ``OPT > T`` on failure),
so a failed placement falls back to capped LPT: if that schedule's
makespan meets the target outright the probe still accepts — in
particular the probe at the search's initial upper bound (at least the
capped-LPT makespan) always accepts, which is the invariant
:func:`repro.core.search_common.finalize_search` relies on.  The
fallback takes no ``(1 + 1/k)`` slack on purpose: LPT's makespan is
never below the optimum, so with a non-binding cap it cannot accept a
target the identical model's probe rejects, and the ``B >= n`` lift
keeps the identical acceptance predicate exactly.  A rejection
certifies "neither construction fits", not ``OPT > T``;
docs/MODELS.md spells out the weakened guarantee.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

from repro.core.backtrack import extract_machine_configurations
from repro.core.bounds import MakespanBounds
from repro.errors import InvalidScheduleError
from repro.models.base import FillSpec, MachineModel, ProbeOutcome

if TYPE_CHECKING:
    from repro.core.dp_common import DPResult
    from repro.core.instance import Instance
    from repro.core.rounding import RoundedInstance
    from repro.core.schedule import Schedule
    from repro.observability.timers import PhaseTimer


class TimeRestrictedModel(MachineModel):
    """Identical machines with a per-machine job-count cap B."""

    name = "time-restricted"

    # -- instance-level ------------------------------------------------------

    def lower_bound(self, instance: "Instance") -> int:
        lb = max(instance.area_bound, instance.max_time)
        if instance.max_jobs_per_machine < instance.n_jobs:
            # Only when the cap actually binds: some machine runs at
            # least ceil(n/m) jobs, so its load is at least the sum of
            # the q smallest times.  With a non-binding cap we keep the
            # identical model's exact formula so the B >= n lift probes
            # the identical search interval bit-for-bit.
            q = -(-instance.n_jobs // instance.machines)
            lb = max(lb, int(sum(sorted(instance.times)[:q])))
        return lb

    def bounds(self, instance: "Instance") -> MakespanBounds:
        # ``area_bound + max_time`` keeps the interval aligned with the
        # identical model whenever capped LPT is at least as good (it
        # always is for B >= n, where capped LPT *is* LPT) — the same
        # alignment trick as the few-types model, and the reason the
        # non-binding lift is search-identical.
        lb = self.lower_bound(instance)
        if instance.max_jobs_per_machine >= instance.n_jobs:
            # Non-binding cap: capped LPT *is* LPT, whose makespan list
            # scheduling bounds by area + max — the structural term
            # already dominates, so skip building the schedule.
            return MakespanBounds(
                lower=lb, upper=max(lb, instance.area_bound + instance.max_time)
            )
        ub = max(
            lb,
            self._capped_lpt(instance).makespan,
            instance.area_bound + instance.max_time,
        )
        return MakespanBounds(lower=lb, upper=ub)

    def baseline(self, instance: "Instance") -> tuple:
        schedule = self._capped_lpt(instance)
        bound = schedule.makespan / self.lower_bound(instance)
        return schedule, "capped-lpt", bound

    def _capped_lpt(self, instance: "Instance") -> "Schedule":
        """LPT restricted to machines with a free job slot.

        Always feasible because ``n <= m * B`` (validated on the
        instance); deterministic tie-breaks by machine index.
        """
        from repro.core.schedule import Schedule

        cap = instance.max_jobs_per_machine
        loads = [0] * instance.machines
        counts = [0] * instance.machines
        machine_jobs: list[list[int]] = [[] for _ in range(instance.machines)]
        for j in instance.sorted_indices_desc():
            j = int(j)
            t = instance.times[j]
            best = min(
                (i for i in range(instance.machines) if counts[i] < cap),
                key=lambda i: (loads[i] + t, i),
            )
            loads[best] += t
            counts[best] += 1
            machine_jobs[best].append(j)
        return Schedule.from_machine_lists(instance, machine_jobs)

    # -- probe-level ---------------------------------------------------------

    def fills(self, rounded: "RoundedInstance") -> Tuple[FillSpec, ...]:
        instance = rounded.instance
        cap = instance.max_jobs_per_machine
        return (
            FillSpec(
                counts=rounded.counts,
                class_sizes=rounded.class_sizes,
                budget=rounded.target,
                max_jobs=cap,
                machine_clamp=instance.machines,
                token=("maxjobs", cap),
            ),
        )

    def assemble(
        self,
        rounded: "RoundedInstance",
        fills: Tuple[FillSpec, ...],
        dp_results: Tuple["DPResult", ...],
        timer: "PhaseTimer",
    ) -> ProbeOutcome:
        from repro.core.ptas import _place_long_jobs

        instance = rounded.instance
        m = instance.machines
        dp_result = dp_results[0]
        if not dp_result.feasible or dp_result.decided_infeasible:
            # With the B-filtered configuration set, infeasibility of the
            # long jobs alone certifies OPT > T exactly as for identical
            # machines (an optimal machine's long jobs are a <= B config).
            return ProbeOutcome(machines_needed=m + 1)

        with timer.phase("extract"):
            machine_configs = extract_machine_configurations(dp_result)
        with timer.phase("place_long"):
            machine_jobs = _place_long_jobs(rounded, machine_configs)
        with timer.phase("short_jobs"):
            machine_jobs = self._add_short_jobs(
                instance, rounded.target, machine_jobs, rounded.short_indices
            )

        needed = len(machine_jobs)
        if needed <= m:
            return ProbeOutcome(
                machines_needed=max(needed, len(machine_configs)),
                machine_jobs=machine_jobs,
            )
        # Greedy slot packing overflowed; capped LPT may still meet the
        # target outright — accept on its schedule if so.  The bound is
        # deliberately ``<= target`` with no (1 + 1/k) slack: LPT's
        # makespan is >= OPT, so for a non-binding cap the fallback can
        # never flip a probe the identical model would reject (greedy
        # overflow implies OPT > T implies LPT > T), keeping the B >= n
        # lift's acceptance predicate exactly the identical model's.
        # That same argument makes the fallback provably futile when the
        # cap cannot bind, so the lift skips building it.
        if instance.max_jobs_per_machine < instance.n_jobs:
            fallback = self._capped_lpt(instance)
            if fallback.makespan <= rounded.target:
                jobs = [list(fallback.jobs_on(i)) for i in range(m)]
                return ProbeOutcome(machines_needed=m, machine_jobs=jobs)
        return ProbeOutcome(machines_needed=max(needed, len(machine_configs)))

    def _add_short_jobs(
        self,
        instance: "Instance",
        target: int,
        machine_jobs: list,
        short_indices,
    ) -> list:
        """Identical-model greedy placement, skipping machines out of slots.

        With ``B >= n`` no slot ever binds and this is step-for-step
        :func:`repro.core.ptas._add_short_jobs` (same least-loaded
        choice, same open-new-machine rule) — the degenerate-case tests
        assert the schedules match exactly.
        """
        import heapq

        cap = instance.max_jobs_per_machine
        if cap >= instance.n_jobs:
            from repro.core.ptas import _add_short_jobs as _unconstrained

            return _unconstrained(instance, target, machine_jobs, short_indices)
        loads = [sum(instance.times[j] for j in jobs) for jobs in machine_jobs]
        counts = [len(jobs) for jobs in machine_jobs]
        heap = [(load, i) for i, load in enumerate(loads)]
        heapq.heapify(heap)
        shorts = sorted(short_indices, key=lambda j: -instance.times[j])
        for j in shorts:
            placed: Optional[int] = None
            while heap and heap[0][0] < target:
                load, i = heapq.heappop(heap)
                if counts[i] < cap:
                    placed = i
                    break
                # A full machine never regains slots; drop it for good.
            if placed is None:
                placed = len(machine_jobs)
                machine_jobs.append([])
                loads.append(0)
                counts.append(0)
                load = 0
            machine_jobs[placed].append(j)
            loads[placed] = load + instance.times[j]
            counts[placed] += 1
            heapq.heappush(heap, (loads[placed], placed))
        return machine_jobs

    # -- schedule-level ------------------------------------------------------

    def check_schedule(self, schedule: "Schedule") -> None:
        cap = schedule.instance.max_jobs_per_machine
        per_machine = [0] * schedule.instance.machines
        for machine in schedule.assignment:
            per_machine[machine] += 1
        for i, count in enumerate(per_machine):
            if count > cap:
                raise InvalidScheduleError(
                    f"machine {i} runs {count} jobs, model caps at {cap}"
                )
