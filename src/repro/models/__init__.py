"""Machine-model registry: every scheduling model the pipeline serves.

``get_model(name)`` / ``model_for(instance)`` resolve the singleton
model objects; ``verify_schedule`` is the model-aware feasibility
checker used by tests and the service layer.  The lift helpers embed an
identical-machines instance into the richer models (the cross-model
agreement suite proves the 1-type lift is bit-identical).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.instance import KNOWN_MODELS, Instance
from repro.core.schedule import Schedule
from repro.errors import InvalidInstanceError
from repro.models.base import FillSpec, MachineModel, ProbeOutcome
from repro.models.few_types import FewTypesModel, machine_speeds
from repro.models.identical import IdenticalModel
from repro.models.time_restricted import TimeRestrictedModel

_MODELS: Dict[str, MachineModel] = {
    model.name: model
    for model in (IdenticalModel(), FewTypesModel(), TimeRestrictedModel())
}


def model_names() -> tuple:
    """Registered model names, identical first."""
    return tuple(_MODELS)


def get_model(name: str) -> MachineModel:
    """The singleton :class:`MachineModel` registered under ``name``."""
    try:
        return _MODELS[name]
    except KeyError:
        raise InvalidInstanceError(
            f"unknown model {name!r}; known models: {', '.join(_MODELS)}"
        ) from None


def model_for(instance: Instance) -> MachineModel:
    """The model an instance declares (``instance.model``)."""
    return get_model(instance.model)


def verify_schedule(schedule: Schedule, target: Optional[int] = None) -> None:
    """Model-aware feasibility check; raises ``InvalidScheduleError``.

    ``Schedule`` construction already guarantees the assignment is a
    function of jobs onto valid machines; this adds the model's own
    constraints (job-count caps, fleet shape) and — when ``target`` is
    given — that every machine completes by ``target``.
    """
    model_for(schedule.instance).check_schedule(schedule)
    if target is not None:
        worst = int(schedule.completion_times().max()) if schedule.instance.n_jobs else 0
        if worst > target:
            from repro.errors import InvalidScheduleError

            raise InvalidScheduleError(
                f"schedule completes at {worst}, after the target {target}"
            )


def with_model(
    instance: Instance,
    model: str,
    type_speeds=None,
    machines_per_type=None,
    max_jobs_per_machine=None,
) -> Instance:
    """Rebuild an identical-machines instance under ``model``.

    The front-end construction path (CLI ``--model`` flags, the load
    generator): takes the plain times/machines core of ``instance``
    and attaches the model parameters, applying the friendly defaults
    — a few-types fleet without explicit layout becomes the single
    unit-speed type (the 1-type lift), a time-restricted instance
    without a cap gets the non-binding ``n_jobs``.  All structural
    validation is :class:`~repro.core.instance.Instance`'s.
    """
    get_model(model)  # reject unknown names before building anything
    if model == "identical":
        if type_speeds or machines_per_type or max_jobs_per_machine:
            raise InvalidInstanceError(
                "identical machines take no model parameters; drop "
                "--type-speeds/--machines-per-type/--max-jobs-per-machine "
                "or pick the matching --model"
            )
        return instance
    if model == "unrelated-few-types":
        speeds = tuple(int(s) for s in (type_speeds or (1,)))
        if machines_per_type is None:
            if len(speeds) != 1:
                raise InvalidInstanceError(
                    "--machines-per-type is required when more than one "
                    "machine type is declared"
                )
            per_type = (instance.machines,)
        else:
            per_type = tuple(int(m) for m in machines_per_type)
        if max_jobs_per_machine:
            raise InvalidInstanceError(
                "--max-jobs-per-machine belongs to the time-restricted "
                "model, not unrelated-few-types"
            )
        return Instance(
            times=instance.times,
            machines=instance.machines,
            name=instance.name,
            model=model,
            type_speeds=speeds,
            machines_per_type=per_type,
        )
    # time-restricted
    if type_speeds or machines_per_type:
        raise InvalidInstanceError(
            "--type-speeds/--machines-per-type belong to the "
            "unrelated-few-types model, not time-restricted"
        )
    cap = (
        int(max_jobs_per_machine)
        if max_jobs_per_machine is not None
        else instance.n_jobs
    )
    return Instance(
        times=instance.times,
        machines=instance.machines,
        name=instance.name,
        model=model,
        max_jobs_per_machine=cap,
    )


# -- lifts -------------------------------------------------------------------


def lift_to_few_types(instance: Instance, name: str = "") -> Instance:
    """Embed an identical instance as a 1-type unit-speed fleet.

    The lifted instance probes through the exact same DP fills (same
    budgets, same configuration sets) as the original — the agreement
    suite asserts bit-identical tables and equal makespans.
    """
    if instance.model != "identical":
        raise InvalidInstanceError(f"can only lift identical instances, got {instance.model!r}")
    return Instance(
        times=instance.times,
        machines=instance.machines,
        name=name or instance.name,
        model="unrelated-few-types",
        type_speeds=(1,),
        machines_per_type=(instance.machines,),
    )


def lift_to_time_restricted(
    instance: Instance, max_jobs: Optional[int] = None, name: str = ""
) -> Instance:
    """Embed an identical instance with a (default: non-binding) job cap."""
    if instance.model != "identical":
        raise InvalidInstanceError(f"can only lift identical instances, got {instance.model!r}")
    cap = int(max_jobs) if max_jobs is not None else instance.n_jobs
    return Instance(
        times=instance.times,
        machines=instance.machines,
        name=name or instance.name,
        model="time-restricted",
        max_jobs_per_machine=cap,
    )


__all__ = [
    "KNOWN_MODELS",
    "FillSpec",
    "MachineModel",
    "ProbeOutcome",
    "IdenticalModel",
    "FewTypesModel",
    "TimeRestrictedModel",
    "machine_speeds",
    "model_names",
    "get_model",
    "model_for",
    "verify_schedule",
    "with_model",
    "lift_to_few_types",
    "lift_to_time_restricted",
]
