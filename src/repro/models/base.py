"""The machine-model protocol behind the probe pipeline.

A :class:`MachineModel` owns everything about a scheduling model that
the generic probe driver (:func:`repro.core.ptas.probe_target`) must
not hard-code: instance validation, baseline makespan bounds, job-class
rounding, which dense DP fills a probe needs (:class:`FillSpec`), how
the filled tables assemble into machines (:meth:`MachineModel.assemble`),
model-specific baselines for degraded mode, and feasibility checking of
finished schedules.

The original ``P || Cmax`` stack is the ``identical`` model
(:mod:`repro.models.identical`); ``unrelated-few-types`` and
``time-restricted`` reuse the same solvers, engines, caches, and search
loops through the same protocol.  See docs/MODELS.md.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

if TYPE_CHECKING:
    from repro.core.bounds import MakespanBounds
    from repro.core.dp_common import DPResult
    from repro.core.instance import Instance
    from repro.core.rounding import RoundedInstance
    from repro.core.schedule import Schedule
    from repro.observability.timers import PhaseTimer


@dataclass(frozen=True)
class FillSpec:
    """One dense DP fill a probe needs.

    The identical model needs exactly one fill per probe — the classic
    configuration DP at budget ``T`` — while ``unrelated-few-types``
    needs one per machine type (budget ``speed * T``) and
    ``time-restricted`` one with a per-machine job-count cap.  The
    probe cache keys tables on ``(counts, class_sizes, budget, max_jobs)``
    normalized by the rounding unit, so coinciding fills from different
    models correctly share (a 1-type lift of an identical instance hits
    the identical model's cached tables bit-for-bit).

    Attributes
    ----------
    counts / class_sizes:
        The job-class vector the table is indexed by (always the
        rounded instance's own classes for the shipped models).
    budget:
        The per-machine capacity the configuration set is enumerated
        against (``sum_i s_i * size_i <= budget``).
    max_jobs:
        Optional per-machine cardinality cap on configurations
        (``time-restricted``'s B); ``None`` leaves enumeration exact.
    machine_clamp:
        When set, decision-capable solvers may clamp the fill at this
        machine budget (``bind_machines``); ``None`` demands an exact
        table (required when tables compose across fills).
    label:
        Short display name for traces and admission errors.
    token:
        Plan-cache discriminator appended to ``plan_signature`` so a
        filtered configuration set never aliases an unfiltered one.
        ``None`` (the identical/few-types case) keeps signatures
        bit-identical to the pre-model library.
    sparsify:
        Whether sparsify-aware solvers may dominance-prune this fill's
        configuration set (:mod:`repro.core.sparsify`).  ``True`` for
        every shipped model — each enumerates a downward-closed set
        (componentwise caps, a load budget, and optionally a job-count
        cap all survive decreasing a component), which is exactly the
        property the pruning needs.  A future model whose filtered set
        is *not* downward closed must ship ``sparsify=False`` to opt
        out; the probe cache then forces the dense fill on solvers
        that would otherwise prune.
    """

    counts: Tuple[int, ...]
    class_sizes: Tuple[int, ...]
    budget: int
    max_jobs: Optional[int] = None
    machine_clamp: Optional[int] = None
    label: str = "dp"
    token: Optional[Tuple] = None
    sparsify: bool = True

    @property
    def value_bound(self) -> int:
        """Largest finite table value this fill can produce.

        Clamped decision fills saturate at ``machine_clamp + 1``; exact
        fills are bounded by the total long-job count.  Feeds dtype
        selection in admission estimates.
        """
        if self.machine_clamp is not None:
            return int(self.machine_clamp) + 1
        return int(sum(self.counts))

    def enumerate(self) -> np.ndarray:
        """Enumerate this fill's configuration set (uncached)."""
        from repro.core.configs import enumerate_configurations

        return enumerate_configurations(
            self.class_sizes, self.counts, self.budget, max_jobs=self.max_jobs
        )


@dataclass(frozen=True)
class ProbeOutcome:
    """What a model's :meth:`~MachineModel.assemble` concluded for one probe.

    ``machine_jobs`` is the per-machine job-index lists (positionally
    aligned with the instance's machines when the model distinguishes
    them) or ``None`` when the probe certifies the target infeasible;
    ``machines_needed`` may exceed ``m`` on rejection.
    """

    machines_needed: int
    machine_jobs: Optional[list] = None

    @property
    def accepted(self) -> bool:
        return self.machine_jobs is not None


class MachineModel(ABC):
    """Everything the probe pipeline delegates per scheduling model."""

    #: Registry name; also the value of ``Instance.model``.
    name: str = ""

    # -- instance-level ------------------------------------------------------

    def validate(self, instance: "Instance") -> None:
        """Model-specific structural validation beyond ``Instance.__post_init__``.

        The default accepts anything the instance constructor accepted.
        """

    @abstractmethod
    def bounds(self, instance: "Instance") -> "MakespanBounds":
        """The bisection interval ``[LB, UB]`` for this model."""

    def lower_bound(self, instance: "Instance") -> int:
        """A certified lower bound on the optimal makespan."""
        return self.bounds(instance).lower

    @abstractmethod
    def baseline(self, instance: "Instance") -> tuple:
        """Cheap certified schedule: ``(schedule, name, proven_bound)``.

        ``proven_bound`` is a factor ``r`` such that the schedule's
        makespan is provably at most ``r`` times the optimum — an
        a-priori ratio for identical machines, an a-posteriori
        ``makespan / lower_bound`` certificate for the other models.
        Degraded mode and the daemon's bound-first stream both rely on
        it being *true*, never a guessed constant.
        """

    def completion_times(self, instance: "Instance", loads: np.ndarray) -> np.ndarray:
        """Per-machine completion times given per-machine total load."""
        return loads

    # -- probe-level ---------------------------------------------------------

    def round(self, instance: "Instance", target: int, eps: float) -> "RoundedInstance":
        """Short/long split and class rounding at target ``T``.

        All shipped models share the identical model's rounding (long
        iff ``t > T/k``, sizes floored to multiples of ``T/k^2``); a
        model may override to change the split.
        """
        from repro.core.rounding import round_instance

        return round_instance(instance, target, eps)

    @abstractmethod
    def fills(self, rounded: "RoundedInstance") -> Tuple[FillSpec, ...]:
        """The dense DP fills one probe at this target needs, in order."""

    @abstractmethod
    def assemble(
        self,
        rounded: "RoundedInstance",
        fills: Tuple[FillSpec, ...],
        dp_results: Tuple["DPResult", ...],
        timer: "PhaseTimer",
    ) -> ProbeOutcome:
        """Turn the filled tables into machines (or certify rejection).

        Receives the probe's :class:`~repro.observability.timers.PhaseTimer`
        so models keep emitting the library's canonical phase names
        (``extract`` / ``place_long`` / ``short_jobs``).
        """

    # -- schedule-level ------------------------------------------------------

    def check_schedule(self, schedule: "Schedule") -> None:
        """Raise ``InvalidScheduleError`` if the schedule violates the model.

        ``Schedule`` itself validates the assignment function; this adds
        model constraints (e.g. per-machine job-count caps).  The
        default has none.
        """

    # -- resource accounting -------------------------------------------------

    def admission_extra_bytes(self, rounded: "RoundedInstance") -> int:
        """Model overhead beyond the per-fill table estimates.

        ``unrelated-few-types`` composes per-type boolean feasibility
        lattices; others need nothing.
        """
        return 0
