"""``P || Cmax`` — the paper's model, rewritten behind :class:`MachineModel`.

This module must stay *bit-identical* to the pre-model library: one
clamped-capable DP fill at budget ``T``, greedy backtrack, per-class
long-job placement, and heap-based short placement, emitting the same
probe phases (``extract`` / ``place_long`` / ``short_jobs``) in the
same order.  The cross-model agreement suite and the benchmark gate
both assert this.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

from repro.core.backtrack import extract_machine_configurations
from repro.core.bounds import MakespanBounds
from repro.models.base import FillSpec, MachineModel, ProbeOutcome

if TYPE_CHECKING:
    from repro.core.dp_common import DPResult
    from repro.core.instance import Instance
    from repro.core.rounding import RoundedInstance
    from repro.observability.timers import PhaseTimer


class IdenticalModel(MachineModel):
    """Identical machines, minimize makespan (Hochbaum–Shmoys PTAS)."""

    name = "identical"

    def bounds(self, instance: "Instance") -> MakespanBounds:
        lb = max(instance.area_bound, instance.max_time)
        ub = instance.area_bound + instance.max_time
        return MakespanBounds(lower=lb, upper=ub)

    def baseline(self, instance: "Instance") -> tuple:
        # best_baseline owns the identical-machines LPT/MULTIFIT choice
        # (and its a-priori ratios); lazy import — baselines build
        # Schedules which consult models for non-identical instances.
        from repro.core.baselines import best_baseline

        return best_baseline(instance)

    def fills(self, rounded: "RoundedInstance") -> Tuple[FillSpec, ...]:
        return (
            FillSpec(
                counts=rounded.counts,
                class_sizes=rounded.class_sizes,
                budget=rounded.target,
                machine_clamp=rounded.instance.machines,
            ),
        )

    def assemble(
        self,
        rounded: "RoundedInstance",
        fills: Tuple[FillSpec, ...],
        dp_results: Tuple["DPResult", ...],
        timer: "PhaseTimer",
    ) -> ProbeOutcome:
        from repro.core.ptas import _add_short_jobs, _place_long_jobs

        instance = rounded.instance
        dp_result = dp_results[0]
        if not dp_result.feasible or dp_result.decided_infeasible:
            # Either no packing fits within T at all (e.g. a single job
            # larger than T), or a decision-mode fill proved OPT > m at
            # this target without finishing the table.  Certify OPT > T
            # either way.
            return ProbeOutcome(machines_needed=instance.machines + 1)

        with timer.phase("extract"):
            machine_configs = extract_machine_configurations(dp_result)
        with timer.phase("place_long"):
            machine_jobs = _place_long_jobs(rounded, machine_configs)
        with timer.phase("short_jobs"):
            machine_jobs = _add_short_jobs(
                instance, rounded.target, machine_jobs, rounded.short_indices
            )

        needed = len(machine_jobs)
        machines_needed = max(needed, len(machine_configs))
        if needed > instance.machines:
            return ProbeOutcome(machines_needed=machines_needed)
        return ProbeOutcome(machines_needed=machines_needed, machine_jobs=machine_jobs)
