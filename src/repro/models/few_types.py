"""Unrelated machines of few different types (Bonifaci–Wiese).

Machines come in ``K`` *types*; type ``t`` has ``machines_per_type[t]``
machines of integer speed ``type_speeds[t] >= 1``, and a machine of
speed ``s`` finishes total load ``L`` at time ``ceil(L / s)``.  Machines
are laid out type 0 first, so machine index determines type.

One probe at target ``T`` reuses the identical model's rounding and
runs the *same* configuration DP once per type, with type ``t``'s
per-machine capacity ``s_t * T`` as the fill budget — the unchanged
engines and kernels never learn about types.  The per-type tables
compose through a boolean lattice convolution::

    cover_t[v] = (OPT_t(v) <= m_t)          # type t can host vector v
    feas_t[w]  = exists v <= w with cover_t[v] and feas_{t-1}[w - v]

A probe accepts iff ``feas_{K-1}[N]``; a witness split backtracks each
type's share through the standard per-cell backtrack
(:func:`repro.core.backtrack.extract_configurations_at`).  Short jobs go
greedily to the machine with the smallest completion time whose load is
still below ``s * T``, opening idle machines fastest-first — for a
1-type speed-1 fleet this is step-for-step the identical model's
placement, which is what makes the lift bit-identical.
"""

from __future__ import annotations

from functools import lru_cache
from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

from repro.core.backtrack import extract_configurations_at
from repro.core.bounds import MakespanBounds
from repro.errors import DPError, InvalidScheduleError
from repro.models.base import FillSpec, MachineModel, ProbeOutcome

if TYPE_CHECKING:
    from repro.core.dp_common import DPResult
    from repro.core.instance import Instance
    from repro.core.rounding import RoundedInstance
    from repro.core.schedule import Schedule
    from repro.observability.timers import PhaseTimer


@lru_cache(maxsize=512)
def _machine_speeds(
    type_speeds: Tuple[int, ...], machines_per_type: Tuple[int, ...]
) -> np.ndarray:
    speeds = np.repeat(
        np.asarray(type_speeds, dtype=np.int64),
        np.asarray(machines_per_type, dtype=np.int64),
    )
    speeds.setflags(write=False)  # cached: callers share one array
    return speeds


def machine_speeds(instance: "Instance") -> np.ndarray:
    """Per-machine speed array (length ``m``), type 0's machines first."""
    return _machine_speeds(instance.type_speeds, instance.machines_per_type)


class FewTypesModel(MachineModel):
    """Uniform-speed machine types behind the identical probe skeleton."""

    name = "unrelated-few-types"

    # -- instance-level ------------------------------------------------------

    def completion_times(self, instance: "Instance", loads: np.ndarray) -> np.ndarray:
        if set(instance.type_speeds) == {1}:
            # Unit speed everywhere: completion == load (the lift's case).
            return np.asarray(loads)
        speeds = machine_speeds(instance)
        return -(-loads // speeds)

    def lower_bound(self, instance: "Instance") -> int:
        if set(instance.type_speeds) == {1}:
            # Unit speed everywhere: capacity is the machine count and
            # per-job stretch is the raw time — the identical formula.
            return max(instance.area_bound, instance.max_time, 1)
        s_max = max(instance.type_speeds)
        capacity = sum(
            m * s for m, s in zip(instance.machines_per_type, instance.type_speeds)
        )
        volume = -(-instance.total_time // capacity)
        single = max(-(-t // s_max) for t in instance.times)
        return max(volume, single, 1)

    def bounds(self, instance: "Instance") -> MakespanBounds:
        # The upper bound folds in ``volume + longest`` — the typed
        # analogue of the identical model's ``area_bound + max_time`` —
        # so a 1-type unit-speed fleet searches the *exact* interval the
        # identical model would.  That alignment is what makes the lift
        # bit-identical end to end (same probed targets, same accepted
        # set, same best schedule), which the agreement suite asserts.
        # Taking the max with an actual schedule's makespan keeps the
        # bound valid whenever the structural term is the smaller one.
        lb = self.lower_bound(instance)
        if instance.type_speeds == (1,):
            # Unit-speed 1-type fleet (the lift): list scheduling proves
            # OPT <= area + max = stretch, so the greedy schedule can
            # never raise the bound — skip building it.
            return MakespanBounds(
                lower=lb, upper=max(lb, instance.area_bound + instance.max_time)
            )
        s_max = max(instance.type_speeds)
        capacity = sum(
            m * s for m, s in zip(instance.machines_per_type, instance.type_speeds)
        )
        stretch = -(-instance.total_time // capacity) + max(
            -(-t // s_max) for t in instance.times
        )
        ub = max(lb, self._greedy_schedule(instance).makespan, stretch)
        return MakespanBounds(lower=lb, upper=ub)

    def baseline(self, instance: "Instance") -> tuple:
        schedule = self._greedy_schedule(instance)
        bound = schedule.makespan / self.lower_bound(instance)
        return schedule, "speed-list", bound

    def _greedy_schedule(self, instance: "Instance") -> "Schedule":
        """Speed-aware LPT: longest job first, to the machine finishing it soonest.

        Deterministic integer tie-breaks (resulting completion, then
        resulting load, then machine index) make it reproducible across
        platforms; its makespan is the search's UB, so probe acceptance
        at UB is guaranteed by the volume argument in :meth:`assemble`.
        """
        import heapq

        from repro.core.schedule import Schedule

        speeds = [int(s) for s in machine_speeds(instance)]
        machine_jobs: list[list[int]] = [[] for _ in range(instance.machines)]
        if len(set(speeds)) == 1:
            # Uniform speed: load order refines completion order, so a
            # (load, index) heap picks the same machines in O(n log m).
            heap = [(0, i) for i in range(instance.machines)]
            for j in instance.sorted_indices_desc():
                j = int(j)
                load, i = heapq.heappop(heap)
                machine_jobs[i].append(j)
                heapq.heappush(heap, (load + instance.times[j], i))
            return Schedule.from_machine_lists(instance, machine_jobs)
        loads = [0] * instance.machines
        for j in instance.sorted_indices_desc():
            j = int(j)
            t = instance.times[j]
            best = min(
                range(instance.machines),
                key=lambda i: (-(-(loads[i] + t) // speeds[i]), loads[i] + t, i),
            )
            loads[best] += t
            machine_jobs[best].append(j)
        return Schedule.from_machine_lists(instance, machine_jobs)

    # -- probe-level ---------------------------------------------------------

    def fills(self, rounded: "RoundedInstance") -> Tuple[FillSpec, ...]:
        instance = rounded.instance
        # Tables that compose across types must be exact (no decision
        # clamp: composition reads every cell).  A single-type fleet
        # composes with nothing — only the root cell and its backtrack
        # are read, exactly the identical model's access pattern — so
        # it may clamp, which keeps the 1-type lift on the identical
        # path's fast decision-capable kernels (benchmarked: the lift
        # overhead gate in benchmarks/test_bench_models.py).
        single = len(instance.type_speeds) == 1
        return tuple(
            FillSpec(
                counts=rounded.counts,
                class_sizes=rounded.class_sizes,
                budget=int(speed) * rounded.target,
                machine_clamp=instance.machines if single else None,
                label=f"type{t}",
            )
            for t, speed in enumerate(instance.type_speeds)
        )

    def assemble(
        self,
        rounded: "RoundedInstance",
        fills: Tuple[FillSpec, ...],
        dp_results: Tuple["DPResult", ...],
        timer: "PhaseTimer",
    ) -> ProbeOutcome:
        from repro.core.ptas import _place_long_jobs

        instance = rounded.instance
        m = instance.machines
        per_type = instance.machines_per_type

        if len(per_type) == 1 and (
            not dp_results[0].feasible or dp_results[0].decided_infeasible
        ):
            # The single-type fill may run clamped/decision-mode (see
            # :meth:`fills`), whose early exit leaves no trustworthy
            # root cell to compose from; the flags certify OPT > T.
            return ProbeOutcome(machines_needed=m + 1)

        with timer.phase("extract"):
            split = self._compose(rounded, dp_results, per_type)
            if split is None:
                return ProbeOutcome(machines_needed=m + 1)
            flat_configs: list[tuple[int, ...]] = []
            type_counts: list[int] = []
            for t, cell in enumerate(split):
                configs_t = extract_configurations_at(dp_results[t], cell)
                if len(configs_t) > per_type[t]:
                    raise DPError(
                        f"type {t} witness needs {len(configs_t)} machines "
                        f"but only {per_type[t]} exist"
                    )
                type_counts.append(len(configs_t))
                flat_configs.extend(configs_t)

        if len(per_type) == 1:
            # One type: machine index order is open order, so the
            # identical model's placement applies verbatim with the
            # speed-scaled budget ``s * T`` — the lift runs the exact
            # identical code path (and tie-breaks) end to end.
            from repro.core.ptas import _add_short_jobs as _uniform_place

            speed = int(instance.type_speeds[0])
            with timer.phase("place_long"):
                machine_jobs = _place_long_jobs(rounded, flat_configs)
            with timer.phase("short_jobs"):
                machine_jobs = _uniform_place(
                    instance, speed * rounded.target, machine_jobs, rounded.short_indices
                )
            needed = len(machine_jobs)
            if needed > m:
                return ProbeOutcome(machines_needed=needed)
            machine_jobs.extend([] for _ in range(m - needed))
            return ProbeOutcome(
                machines_needed=max(needed, len(flat_configs)),
                machine_jobs=machine_jobs,
            )

        with timer.phase("place_long"):
            packed = _place_long_jobs(rounded, flat_configs)
            # Spread the packed machines to their global indices: type t's
            # configs occupy the first slots of its machine range.
            machine_jobs: list[list[int]] = [[] for _ in range(m)]
            opened = [False] * m
            offset = 0
            pos = 0
            for t, used in enumerate(type_counts):
                for i in range(used):
                    machine_jobs[offset + i] = packed[pos]
                    opened[offset + i] = True
                    pos += 1
                offset += per_type[t]

        with timer.phase("short_jobs"):
            accepted = self._add_short_jobs(
                instance, rounded.target, machine_jobs, opened, rounded.short_indices
            )
        if not accepted:
            return ProbeOutcome(machines_needed=m + 1)
        machines_needed = sum(1 for flag in opened if flag)
        return ProbeOutcome(
            machines_needed=max(machines_needed, len(flat_configs)),
            machine_jobs=machine_jobs,
        )

    def _compose(
        self,
        rounded: "RoundedInstance",
        dp_results: Tuple["DPResult", ...],
        per_type: Tuple[int, ...],
    ) -> Optional[list]:
        """Split the full job vector across types, or ``None`` if impossible."""
        K = len(per_type)
        if rounded.dims == 0:
            return [() for _ in range(K)]
        shape = rounded.table_shape
        full = tuple(s - 1 for s in shape)
        if K == 1:
            # One type composes with nothing: only the root cell matters,
            # so skip materialising the whole-table cover lattice (the
            # identical model reads exactly this one cell too).
            return [full] if int(dp_results[0].table[full]) <= per_type[0] else None
        covers = [dp_results[t].table <= int(per_type[t]) for t in range(K)]

        feas = [covers[0]]
        for t in range(1, K):
            nxt = np.zeros(shape, dtype=bool)
            for v in np.argwhere(covers[t]):
                dst = tuple(slice(int(x), None) for x in v)
                src = tuple(slice(None, int(s) - int(x)) for s, x in zip(shape, v))
                np.logical_or(nxt[dst], feas[t - 1][src], out=nxt[dst])
            feas.append(nxt)
        if not bool(feas[K - 1][full]):
            return None

        cells: list = [None] * K
        w = np.asarray(full, dtype=np.int64)
        for t in range(K - 1, 0, -1):
            for v in np.argwhere(covers[t]):
                if (v <= w).all() and bool(feas[t - 1][tuple(w - v)]):
                    cells[t] = tuple(int(x) for x in v)
                    w = w - v
                    break
            else:  # pragma: no cover - feas guarantees a witness
                raise DPError("type composition claims feasibility but has no witness")
        head = tuple(int(x) for x in w)
        if not bool(covers[0][head]):  # pragma: no cover
            raise DPError("type composition witness does not cover type 0")
        cells[0] = head
        return cells

    def _add_short_jobs(
        self,
        instance: "Instance",
        target: int,
        machine_jobs: list,
        opened: list,
        short_indices,
    ) -> bool:
        """Greedy short placement over the typed fleet.

        Mirrors the identical model: each short goes to the *earliest
        finishing* open machine whose load is still below its capacity
        ``s * T``; when none qualifies, the fastest idle machine opens.
        Fails (returns False) only when all ``m`` machines are at
        capacity — impossible while total work fits ``sum m_t s_t T``.
        """
        import heapq

        loads = [sum(instance.times[j] for j in jobs) for jobs in machine_jobs]
        shorts = sorted(short_indices, key=lambda j: -instance.times[j])
        if len(set(instance.type_speeds)) == 1:
            # Uniform speed: load order refines completion order, so the
            # identical model's (load, index) heap picks the same
            # machines in O(n log m) — for a 1-type unit-speed fleet
            # this is step-for-step repro.core.ptas._add_short_jobs,
            # which is what keeps the lift bit-identical.  Equal speeds
            # also make fastest-first idle opening plain index order.
            idle = [i for i in range(instance.machines) if not opened[i]]
            cap = int(instance.type_speeds[0]) * target
            heap = [(loads[i], i) for i in range(instance.machines) if opened[i]]
            heapq.heapify(heap)
            for j in shorts:
                if heap and heap[0][0] < cap:
                    load, i = heapq.heappop(heap)
                elif idle:
                    i = idle.pop(0)
                    opened[i] = True
                    load = loads[i]
                else:
                    return False
                machine_jobs[i].append(j)
                loads[i] = load + instance.times[j]
                heapq.heappush(heap, (loads[i], i))
            return True
        speeds = [int(s) for s in machine_speeds(instance)]
        # Idle machines open fastest-first; ties by index.
        idle = sorted(
            (i for i in range(instance.machines) if not opened[i]),
            key=lambda i: (-speeds[i], i),
        )
        for j in shorts:
            candidates = [
                i
                for i in range(instance.machines)
                if opened[i] and loads[i] < speeds[i] * target
            ]
            if candidates:
                i = min(candidates, key=lambda i: (-(-loads[i] // speeds[i]), i))
            elif idle:
                i = idle.pop(0)
                opened[i] = True
            else:
                return False
            machine_jobs[i].append(j)
            loads[i] += instance.times[j]
        return True

    # -- schedule-level ------------------------------------------------------

    def check_schedule(self, schedule: "Schedule") -> None:
        # Any assignment is structurally feasible; completion times are
        # the objective, not a constraint.  Validate the fleet shape.
        instance = schedule.instance
        if len(machine_speeds(instance)) != instance.machines:
            raise InvalidScheduleError("machine layout does not match the fleet")

    def admission_extra_bytes(self, rounded: "RoundedInstance") -> int:
        # One boolean feasibility lattice per type plus one scratch.
        K = len(rounded.instance.type_speeds)
        return (K + 1) * rounded.table_size
