"""``python -m repro`` — dispatch to the CLI."""

from repro.cli import main

raise SystemExit(main())
