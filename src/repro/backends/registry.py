"""The backend registry: every DP solver under one string name.

A *backend* is anything satisfying the
:class:`~repro.core.ptas.DPSolver` protocol — the pure in-process
solvers (``dp_vectorized``, ``dp_frontier``, ``dp_reference``) and the
five simulator engines (serial, OpenMP, naive GPU, partitioned GPU,
hybrid).  Before this registry existed every call site constructed its
backend inline (the CLI hard-coded one list, the runner another, each
experiment a third); now construction happens in exactly one place and
callers say ``resolve("gpu-dim6")``.

Each backend registers a :class:`BackendSpec` carrying:

* ``name`` — the canonical string (``"vectorized"``, ``"omp-28"``,
  ``"gpu-dim6"``, ...), plus optional ``aliases`` (``"openmp-28"``);
* ``factory`` — builds a **fresh** solver per :func:`resolve` call
  (engines are stateful: they accumulate ``runs`` and simulated time,
  so sharing instances across runs would corrupt accounting);
* capability metadata — ``simulated`` (charges modelled hardware time
  vs. a pure function) and ``concurrency`` (``"none"`` /
  ``"host-threads"`` / ``"device-streams"``), which is what the runner
  uses to pick a :class:`~repro.core.executor.ProbeExecutor`.

Parameterised families (``omp-<threads>``, ``gpu-dim<d>``) resolve any
member by name even if only the common sizes are listed canonically:
``resolve("omp-40")`` or ``resolve("gpu-dim5")`` synthesise the right
spec on the fly.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.ptas import DPSolver
from repro.errors import BackendError

#: concurrency capability values a BackendSpec may declare.
CONCURRENCY_MODELS = ("none", "host-threads", "host-processes", "device-streams")


@dataclass(frozen=True)
class BackendSpec:
    """One registered backend: identity, factory, and capabilities."""

    #: canonical name, e.g. ``"gpu-dim6"``.
    name: str
    #: builds a fresh solver; keyword arguments are forwarded verbatim
    #: (e.g. ``resolve("gpu-naive", check_memory=False)``).
    factory: Callable[..., DPSolver]
    #: True when the backend charges simulated hardware time per probe.
    simulated: bool
    #: one of :data:`CONCURRENCY_MODELS` — how the backend overlaps work.
    concurrency: str
    #: one-line human description (shown by ``repro engines``/docs).
    description: str = ""
    #: accepted alternative names.
    aliases: Tuple[str, ...] = ()
    #: True when the factory accepts a ``plan_cache=`` keyword — the
    #: backend consumes the :class:`~repro.dptable.plan.ProbePlan` IR
    #: and can share plans across probes (see
    #: :class:`~repro.core.probe_cache.PlanCache`).  The batch service
    #: and the runners use this to inject a shared plan cache.
    plan_aware: bool = False
    #: True when the backend only answers the feasibility predicate
    #: ``OPT(N) <= m`` and produces no backtrackable table — schedule
    #: extraction is impossible by construction.  The runners and the
    #: batch service refuse such backends up front with a clear
    #: :class:`~repro.errors.BackendError`; a direct extraction attempt
    #: fails loudly inside the result object itself.
    decision_only: bool = False
    #: True when the factory accepts a ``fill_fabric=`` keyword — the
    #: backend can route its real table fills through the shared-memory
    #: fill fabric (:class:`~repro.parallel.fabric.BlockExecutor`).
    #: The service pipeline and the CLI use this to inject the
    #: ``--fill-workers`` pool; results stay bit-identical either way.
    fabric_aware: bool = False
    #: True when the factory accepts a ``sparsify=`` keyword — the
    #: backend can fill over the dominance-pruned configuration set
    #: (:mod:`repro.core.sparsify`) with unchanged results.  The
    #: service pipeline and the CLI use this to honour
    #: ``--no-sparsify`` and the per-request knob.
    sparsify_aware: bool = False
    #: machine-model names (see :mod:`repro.models`) this backend can
    #: serve.  Default: every registered model — a backend restricts
    #: this only when its solver cannot honour a model's fill contract
    #: (e.g. the checked frontier backend's windowed sweep assumes the
    #: full unfiltered configuration lattice, which the few-types
    #: composition fills violate).  The service pipeline and the CLI
    #: refuse a (model, backend) pair up front when the model is not
    #: listed here.
    models: Tuple[str, ...] = (
        "identical",
        "unrelated-few-types",
        "time-restricted",
    )

    def __post_init__(self) -> None:
        if self.concurrency not in CONCURRENCY_MODELS:
            raise BackendError(
                f"concurrency must be one of {CONCURRENCY_MODELS}, "
                f"got {self.concurrency!r}"
            )

    def supports_model(self, model: str) -> bool:
        """Whether this backend can serve probes for ``model``."""
        return model in self.models

    def create(self, **kwargs: object) -> DPSolver:
        """Build a fresh solver instance (engines) or the solver function."""
        return self.factory(**kwargs)


_REGISTRY: Dict[str, BackendSpec] = {}
_ALIASES: Dict[str, str] = {}
#: (compiled pattern, spec-builder) pairs for parameterised families.
_FAMILIES: List[Tuple[re.Pattern[str], Callable[[re.Match[str]], BackendSpec]]] = []


def register(spec: BackendSpec) -> BackendSpec:
    """Add ``spec`` to the registry (idempotent per name; re-register to replace)."""
    _REGISTRY[spec.name] = spec
    for alias in spec.aliases:
        _ALIASES[alias] = spec.name
    return spec


def register_family(
    pattern: str, build: Callable[[re.Match[str]], BackendSpec]
) -> None:
    """Register a parameterised name family.

    ``pattern`` is a full-match regex; when :func:`get_spec` misses the
    canonical table, the first matching family builds (and caches) a
    spec from the match — e.g. ``omp-(\\d+)`` → an OpenMP engine with
    that thread count.
    """
    _FAMILIES.append((re.compile(pattern), build))


def backend_names(simulated: Optional[bool] = None) -> List[str]:
    """Canonical names in registration order, optionally filtered.

    ``simulated=True`` keeps only the simulator engines,
    ``simulated=False`` only the pure solvers, ``None`` everything.
    """
    return [
        s.name
        for s in _REGISTRY.values()
        if simulated is None or s.simulated == simulated
    ]


def iter_backends(simulated: Optional[bool] = None) -> List[BackendSpec]:
    """Registered specs in registration order, optionally filtered."""
    return [
        s
        for s in _REGISTRY.values()
        if simulated is None or s.simulated == simulated
    ]


def get_spec(name: str) -> BackendSpec:
    """Look up a backend spec by canonical name, alias, or family match.

    Raises :class:`~repro.errors.BackendError` (listing every valid
    canonical name) when nothing matches.
    """
    if name in _REGISTRY:
        return _REGISTRY[name]
    if name in _ALIASES:
        return _REGISTRY[_ALIASES[name]]
    for pattern, build in _FAMILIES:
        match = pattern.fullmatch(name)
        if match:
            # Synthesised on the fly, deliberately NOT added to the
            # canonical table: the listing stays the curated set while
            # any family member still resolves.
            return build(match)
    raise BackendError(
        f"unknown backend {name!r}; valid backends: "
        + ", ".join(backend_names())
        + " (plus the omp-<threads> and gpu-dim<d> families)"
    )


def resolve(name: str, **kwargs: object) -> DPSolver:
    """Build a fresh solver for backend ``name``.

    Keyword arguments are forwarded to the backend factory (engines
    accept their constructor keywords, e.g.
    ``resolve("gpu-dim6", num_streams=2)`` or
    ``resolve("gpu-naive", check_memory=False)``; the pure solver
    factories accept none).
    """
    return get_spec(name).create(**kwargs)


def is_registered(name: str) -> bool:
    """Whether ``name`` resolves (canonical, alias, or family member)."""
    try:
        get_spec(name)
    except BackendError:
        return False
    return True
