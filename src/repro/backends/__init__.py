"""repro.backends — the DP solver backends behind one registry.

Importing this package registers the default backends; see
:mod:`repro.backends.registry` for the mechanism and
``docs/API.md`` ("Architecture") for how the layers fit together.

Pure solvers (``simulated=False`` — real wall-clock work, no modelled
hardware):

* ``"vectorized"`` — :func:`~repro.core.dp_vectorized.dp_vectorized`,
  the exact relaxation fill.
* ``"auto"`` — :class:`~repro.core.kernels.AutoKernel`, cost-model
  kernel selection per probe (the recommended production default;
  used by :class:`~repro.service.batch.BatchScheduler`).
* ``"decision"`` — :class:`~repro.core.kernels.DecisionKernel`, the
  clamped decision-mode fill (early exit at the machine budget).
* ``"sweep"`` — :class:`~repro.core.kernels.SweepKernel`, the
  plan-driven single-sweep fill (one pass per anti-diagonal level).
* ``"frontier"`` — :func:`~repro.core.dp_frontier.dp_frontier_checked`,
  the frontier sweep cross-checked against the dense fill on every
  probe (a validation backend; probes need the dense table anyway).
* ``"frontier-decision"`` — :class:`~repro.core.kernels.FrontierDecisionKernel`,
  the *decision-only* frontier sweep: answers feasibility with no
  table at all (``decision_only=True``; cannot produce schedules).
* ``"reference"`` — :func:`~repro.core.dp_reference.dp_reference`,
  the slow, obviously-correct oracle.
* ``"wavefront"`` — :class:`~repro.parallel.wavefront.WavefrontSolver`,
  real host-parallel execution on shared-memory worker processes; any
  ``wavefront-<workers>`` resolves.
* ``"hostpar"`` — :class:`~repro.parallel.fabric.HostParallelSolver`,
  exact fills on the persistent shared-memory fill fabric (worker pool
  and shipped plans survive across probes); any ``hostpar-<p>``
  resolves.
* ``"fallback"`` — :class:`~repro.resilience.FallbackChain` over
  ``auto → sweep → vectorized``: steps down to the next member when one
  fails hard (OOM, backend bug); any ``fallback:<a>,<b>,...`` resolves
  a custom chain.  See ``docs/RELIABILITY.md``.

Simulator engines (``simulated=True`` — compute the same DP values
while charging time to a modelled device):

* ``"serial"`` — one CPU core (Algorithm 1+2).
* ``"omp-16"`` / ``"omp-28"`` (aliases ``"openmp-16"``/``"openmp-28"``)
  — the Ghalami–Grosu OpenMP baseline; any ``omp-<threads>`` resolves.
* ``"gpu-naive"`` — the unpartitioned GPU port (§III's strawman).
* ``"gpu-dim3"`` / ``"gpu-dim6"`` / ``"gpu-dim9"`` — the paper's
  data-partitioned engine; any ``gpu-dim<d>`` resolves.
* ``"hybrid"`` — per-probe CPU/GPU dispatch by predicted cost.

Typical use::

    from repro.backends import resolve

    solver = resolve("gpu-dim6")            # fresh engine instance
    result = ptas_schedule(inst, dp_solver=solver, search="quarter")
    solver.total_simulated_s                # simulated device seconds
"""

from repro.backends.registry import (
    BackendSpec,
    backend_names,
    get_spec,
    is_registered,
    iter_backends,
    register,
    register_family,
    resolve,
)
from repro.core.dp_frontier import dp_frontier_checked
from repro.core.dp_reference import dp_reference
from repro.core.dp_vectorized import dp_vectorized
from repro.core.kernels import (
    AutoKernel,
    DecisionKernel,
    FrontierDecisionKernel,
    SweepKernel,
)
from repro.engines.gpu_naive import GpuNaiveEngine
from repro.engines.gpu_partitioned import GpuPartitionedEngine
from repro.engines.hybrid import HybridEngine
from repro.engines.openmp_engine import OpenMPEngine
from repro.engines.sequential import SequentialEngine
from repro.parallel.fabric import HostParallelSolver
from repro.parallel.wavefront import WavefrontSolver

__all__ = [
    "BackendSpec",
    "backend_names",
    "get_spec",
    "is_registered",
    "iter_backends",
    "register",
    "register_family",
    "resolve",
]


def _solver_factory(fn):
    """Wrap a pure solver function as a zero-argument factory."""

    def factory() -> object:
        return fn

    return factory


def _register_defaults() -> None:
    register(
        BackendSpec(
            name="vectorized",
            factory=_solver_factory(dp_vectorized),
            simulated=False,
            concurrency="none",
            description="vectorized numpy DP fill (production default)",
            aliases=("dp-vectorized",),
        )
    )
    register(
        BackendSpec(
            name="frontier",
            factory=_solver_factory(dp_frontier_checked),
            simulated=False,
            concurrency="none",
            description="frontier sweep cross-checked against the dense fill",
            aliases=("dp-frontier",),
        )
    )
    register(
        BackendSpec(
            name="reference",
            factory=_solver_factory(dp_reference),
            simulated=False,
            concurrency="none",
            description="reference DP oracle (slow, obviously correct)",
            aliases=("dp-reference",),
        )
    )
    register(
        BackendSpec(
            name="decision",
            factory=DecisionKernel,
            simulated=False,
            concurrency="none",
            description="clamped decision-mode DP (early exit at the machine budget)",
            aliases=("dp-decision",),
            plan_aware=True,
            sparsify_aware=True,
        )
    )
    register(
        BackendSpec(
            name="sweep",
            factory=SweepKernel,
            simulated=False,
            concurrency="none",
            description="plan-driven single-sweep DP (one pass per anti-diagonal level)",
            aliases=("levelsweep", "dp-sweep"),
            plan_aware=True,
            sparsify_aware=True,
        )
    )
    register(
        BackendSpec(
            name="auto",
            factory=AutoKernel,
            simulated=False,
            concurrency="none",
            description=(
                "cost-model kernel selection per probe "
                "(decision/sweep/vectorized/hostpar)"
            ),
            aliases=("kernel-auto",),
            plan_aware=True,
            fabric_aware=True,
            sparsify_aware=True,
        )
    )
    register(
        BackendSpec(
            name="frontier-decision",
            factory=FrontierDecisionKernel,
            simulated=False,
            concurrency="none",
            description="decision-only frontier sweep (no table, no schedules)",
            aliases=("decision-frontier",),
            decision_only=True,
            # The windowed sweep answers feasibility from the root cell
            # only; the few-types composition needs every cell of each
            # per-type table, so this backend cannot serve that model.
            models=("identical", "time-restricted"),
        )
    )
    register(
        BackendSpec(
            name="serial",
            factory=SequentialEngine,
            simulated=True,
            concurrency="none",
            description="serial PTAS on one simulated CPU core",
            plan_aware=True,
            sparsify_aware=True,
        )
    )
    for threads in (16, 28):
        register(
            BackendSpec(
                name=f"omp-{threads}",
                factory=lambda threads=threads, **kw: OpenMPEngine(
                    threads=threads, **kw
                ),
                simulated=True,
                concurrency="host-threads",
                description=f"OpenMP baseline on {threads} simulated threads",
                aliases=(f"openmp-{threads}",),
                plan_aware=True,
                fabric_aware=True,
                sparsify_aware=True,
            )
        )
    register(
        BackendSpec(
            name="gpu-naive",
            factory=GpuNaiveEngine,
            simulated=True,
            concurrency="device-streams",
            description="unpartitioned GPU port (the ~100x-slower strawman)",
            plan_aware=True,
            sparsify_aware=True,
        )
    )
    for dim in (3, 6, 9):
        register(
            BackendSpec(
                name=f"gpu-dim{dim}",
                factory=lambda dim=dim, **kw: GpuPartitionedEngine(dim=dim, **kw),
                simulated=True,
                concurrency="device-streams",
                description=f"data-partitioned GPU engine, {dim} partitioned dims",
                plan_aware=True,
                fabric_aware=True,
                sparsify_aware=True,
            )
        )
    register(
        BackendSpec(
            name="hybrid",
            factory=HybridEngine,
            simulated=True,
            concurrency="host-threads",
            description="per-probe CPU/GPU dispatch by predicted cost",
            plan_aware=True,
            fabric_aware=True,
            sparsify_aware=True,
        )
    )
    register(
        BackendSpec(
            name="wavefront",
            factory=WavefrontSolver,
            simulated=False,
            concurrency="host-processes",
            description="real host-parallel wavefront DP on shared memory",
            plan_aware=True,
            fabric_aware=True,
        )
    )
    register(
        BackendSpec(
            name="hostpar",
            factory=HostParallelSolver,
            simulated=False,
            concurrency="host-processes",
            description=(
                "exact DP fills on the persistent shared-memory fill fabric"
            ),
            plan_aware=True,
            fabric_aware=True,
            sparsify_aware=True,
        )
    )

    def _fallback_factory(members):
        def factory(**kw):
            # Imported lazily: repro.resilience.fallback resolves its
            # members through this package, so a top-level import of
            # either module from the other would be circular.
            from repro.resilience.fallback import FallbackChain

            return FallbackChain(members, **kw)

        return factory

    register(
        BackendSpec(
            name="fallback",
            factory=_fallback_factory(("auto", "sweep", "vectorized")),
            simulated=False,
            concurrency="none",
            description=(
                "resilient chain auto→sweep→vectorized: steps down to a "
                "cheaper solver on hard failure"
            ),
            plan_aware=True,
        )
    )
    register_family(
        r"fallback:(.+)",
        lambda m: BackendSpec(
            name=f"fallback:{m.group(1)}",
            factory=_fallback_factory(tuple(m.group(1).split(","))),
            simulated=False,
            concurrency="none",
            description=f"resilient chain {'→'.join(m.group(1).split(','))}",
            plan_aware=True,
        ),
    )
    register_family(
        r"(?:omp|openmp)-(\d+)",
        lambda m: BackendSpec(
            name=f"omp-{int(m.group(1))}",
            factory=lambda threads=int(m.group(1)), **kw: OpenMPEngine(
                threads=threads, **kw
            ),
            simulated=True,
            concurrency="host-threads",
            description=f"OpenMP baseline on {int(m.group(1))} simulated threads",
            plan_aware=True,
            fabric_aware=True,
            sparsify_aware=True,
        ),
    )
    register_family(
        r"gpu-dim(\d+)",
        lambda m: BackendSpec(
            name=f"gpu-dim{int(m.group(1))}",
            factory=lambda dim=int(m.group(1)), **kw: GpuPartitionedEngine(
                dim=dim, **kw
            ),
            simulated=True,
            concurrency="device-streams",
            description=f"data-partitioned GPU engine, {int(m.group(1))} partitioned dims",
            plan_aware=True,
            fabric_aware=True,
            sparsify_aware=True,
        ),
    )
    register_family(
        r"hybrid-omp(\d+)-dim(\d+)",
        lambda m: BackendSpec(
            name=f"hybrid-omp{int(m.group(1))}-dim{int(m.group(2))}",
            factory=lambda threads=int(m.group(1)), dim=int(m.group(2)), **kw: (
                HybridEngine(threads=threads, dim=dim, **kw)
            ),
            simulated=True,
            concurrency="host-threads",
            description="per-probe CPU/GPU dispatch by predicted cost",
            plan_aware=True,
            fabric_aware=True,
            sparsify_aware=True,
        ),
    )
    register_family(
        r"wavefront-(\d+)",
        lambda m: BackendSpec(
            name=f"wavefront-{int(m.group(1))}",
            factory=lambda workers=int(m.group(1)), **kw: WavefrontSolver(
                workers=workers, **kw
            ),
            simulated=False,
            concurrency="host-processes",
            description=(
                f"real host-parallel wavefront DP on {int(m.group(1))} processes"
            ),
            plan_aware=True,
            fabric_aware=True,
        ),
    )
    register_family(
        r"hostpar-(\d+)",
        lambda m: BackendSpec(
            name=f"hostpar-{int(m.group(1))}",
            factory=lambda workers=int(m.group(1)), **kw: HostParallelSolver(
                workers=workers, **kw
            ),
            simulated=False,
            concurrency="host-processes",
            description=(
                f"exact DP fills on the {int(m.group(1))}-worker fill fabric"
            ),
            plan_aware=True,
            fabric_aware=True,
            sparsify_aware=True,
        ),
    )


_register_defaults()
