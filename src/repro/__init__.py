"""repro — GPU-style parallel PTAS for ``P || Cmax``.

A faithful, executable reproduction of *"A GPU Parallel Approximation
Algorithm for Scheduling Parallel Identical Machines to Minimize
Makespan"* (Li, Ghalami, Schwiebert, Grosu — IPDPS Workshops 2018):

* the Hochbaum–Shmoys PTAS with plain bisection and the paper's
  quarter-split search (:mod:`repro.core`);
* the high-dimensional DP-table machinery, anti-diagonal wavefronts,
  and the data-partitioning scheme with its blocked memory layout
  (:mod:`repro.dptable`);
* discrete-event GPU and OpenMP-style CPU simulators standing in for
  the paper's K40 / dual-Xeon testbeds (:mod:`repro.gpusim`,
  :mod:`repro.cpusim`) and the four execution engines mapped onto them
  (:mod:`repro.engines`);
* real multi-process execution of the wavefront DP
  (:mod:`repro.parallel`);
* a cross-probe solver cache (:mod:`repro.core.probe_cache`) and the
  observability layer that motivated it — per-phase timers, counters,
  per-probe trace events (:mod:`repro.observability`);
* a backend registry resolving every solver and engine by name
  (:mod:`repro.backends`), the probe-executor layer that owns
  sequential vs concurrent-device time accounting
  (:mod:`repro.core.executor`), and a batch scheduling service fanning
  many instances across a thread pool with one shared cache
  (:mod:`repro.service`);
* the full evaluation harness regenerating every figure and table
  (:mod:`repro.analysis`).

Quickstart::

    from repro import Instance, ptas_schedule

    inst = Instance(times=(27, 19, 19, 15, 12, 8, 8, 5), machines=3)
    result = ptas_schedule(inst, eps=0.3)
    print(result.makespan, result.schedule.loads())
"""

from repro.core import (
    ConcurrentDeviceExecutor,
    Instance,
    ProbeCache,
    PtasResult,
    Schedule,
    SequentialExecutor,
    bisection_search,
    dp_reference,
    dp_vectorized,
    makespan_bounds,
    ptas_schedule,
    quarter_split_search,
    round_instance,
    uniform_instance,
)
from repro.errors import ReproError
from repro.observability import TraceRecorder, Tracer

__version__ = "1.0.0"

__all__ = [
    "Instance",
    "Schedule",
    "PtasResult",
    "ptas_schedule",
    "bisection_search",
    "quarter_split_search",
    "dp_reference",
    "dp_vectorized",
    "makespan_bounds",
    "round_instance",
    "uniform_instance",
    "ProbeCache",
    "SequentialExecutor",
    "ConcurrentDeviceExecutor",
    "Tracer",
    "TraceRecorder",
    "ReproError",
    "__version__",
]
