"""Seeded random-number-generator plumbing.

All stochastic code in the library (instance generators, workload
sweeps) takes either an integer seed or an already-constructed
``numpy.random.Generator``.  Centralising the coercion here guarantees
experiments are reproducible end to end: the benchmark harness passes a
fixed seed and every run regenerates the identical instance set.
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a ``numpy.random.Generator``.

    ``None`` yields a fresh OS-entropy generator; an ``int`` yields a
    deterministic PCG64 stream; an existing ``Generator`` passes through
    untouched (so callers can thread one stream through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent generators from one seed.

    Uses ``SeedSequence.spawn`` so the child streams are statistically
    independent — the supported way to hand one stream per worker in a
    parallel sweep (re-seeding workers with ``seed + rank`` correlates
    streams; spawning does not).
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if isinstance(seed, np.random.Generator):
        seq = seed.bit_generator.seed_seq  # type: ignore[attr-defined]
    else:
        seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]
