"""Small shared utilities: validation helpers, seeded RNG plumbing, timers.

Nothing in this package is specific to scheduling; it exists so the core
modules stay focused on the algorithms from the paper.
"""

from repro.util.validation import (
    check_positive_int,
    check_nonnegative_int,
    check_positive_times,
    check_probability,
)
from repro.util.rng import make_rng, spawn_rngs
from repro.util.timing import Timer

__all__ = [
    "check_positive_int",
    "check_nonnegative_int",
    "check_positive_times",
    "check_probability",
    "make_rng",
    "spawn_rngs",
    "Timer",
]
