"""Argument-validation helpers used across the library.

These raise :class:`repro.errors.InvalidInstanceError` (a ``ValueError``
subclass) with messages that name the offending argument, so failures
surface at the API boundary rather than deep inside a numpy kernel.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import InvalidInstanceError


def check_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is an integer >= 1 and return it as ``int``.

    Accepts numpy integer scalars; rejects bools (which are ``int``
    subclasses but never a meaningful count).
    """
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise InvalidInstanceError(f"{name} must be an integer, got {value!r}")
    if value < 1:
        raise InvalidInstanceError(f"{name} must be >= 1, got {value}")
    return int(value)


def check_nonnegative_int(value: int, name: str) -> int:
    """Validate that ``value`` is an integer >= 0 and return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise InvalidInstanceError(f"{name} must be an integer, got {value!r}")
    if value < 0:
        raise InvalidInstanceError(f"{name} must be >= 0, got {value}")
    return int(value)


def check_positive_times(times: Iterable[int], name: str = "processing times") -> tuple[int, ...]:
    """Validate a job processing-time collection.

    Every entry must be a positive integer (the PTAS assumes integral
    times; see Algorithm 1 in the paper).  Returns an immutable tuple.
    """
    out = []
    for idx, t in enumerate(times):
        if isinstance(t, bool) or not isinstance(t, (int, np.integer)):
            raise InvalidInstanceError(
                f"{name}[{idx}] must be an integer, got {t!r}"
            )
        if t < 1:
            raise InvalidInstanceError(
                f"{name}[{idx}] must be a positive integer, got {t}"
            )
        out.append(int(t))
    if not out:
        raise InvalidInstanceError(f"{name} must contain at least one job")
    return tuple(out)


def check_probability(value: float, name: str) -> float:
    """Validate that ``value`` lies in the open interval (0, 1]."""
    value = float(value)
    if not (0.0 < value <= 1.0):
        raise InvalidInstanceError(f"{name} must be in (0, 1], got {value}")
    return value


def check_same_length(a: Sequence, b: Sequence, name_a: str, name_b: str) -> None:
    """Validate that two sequences have equal length."""
    if len(a) != len(b):
        raise InvalidInstanceError(
            f"{name_a} (len {len(a)}) and {name_b} (len {len(b)}) must have equal length"
        )
