"""Wall-clock timing helper for the experiment harness.

The figures in the paper report *simulated* device time (produced by the
cost models), but the harness also records how long the reproduction
itself took to run; ``Timer`` is the single utility for that.
"""

from __future__ import annotations

import time
from types import TracebackType
from typing import Optional, Type


class Timer:
    """Context-manager stopwatch with monotonic-clock semantics.

    Example::

        with Timer() as t:
            run_experiment()
        print(t.elapsed)  # seconds, float

    ``elapsed`` is also readable while the timer is still running, which
    the sweep driver uses to enforce soft time budgets.
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self._stop: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        self._stop = None
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self._stop = time.perf_counter()

    @property
    def running(self) -> bool:
        """True between ``__enter__`` and ``__exit__``."""
        return self._start is not None and self._stop is None

    @property
    def elapsed(self) -> float:
        """Seconds elapsed; live-updating while running, frozen after exit."""
        if self._start is None:
            return 0.0
        end = self._stop if self._stop is not None else time.perf_counter()
        return end - self._start
