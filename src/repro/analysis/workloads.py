"""Workload generation: harvesting DP-tables the way the paper did.

The paper evaluates per-DP-table, not per-instance (§IV-A): one PTAS
run produces several DP-tables of different sizes (one per probed
target), so the authors collected tables from many uniform-random
instances and *selected* sizes spanning their three groups.
:func:`harvest_tables` reproduces that methodology: run the rounding
step over a seeded pool of uniform instances and random targets inside
the instance's ``[LB, UB]``, collect the ``(counts, sizes, target)``
probes, and pick a spread of table sizes per requested group.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bounds import makespan_bounds
from repro.core.instance import uniform_instance
from repro.core.rounding import round_instance
from repro.errors import InvalidInstanceError
from repro.util.rng import SeedLike, make_rng


@dataclass(frozen=True)
class HarvestedTable:
    """One DP probe harvested from a random instance's bisection."""

    counts: tuple[int, ...]
    class_sizes: tuple[int, ...]
    target: int
    table_size: int
    dims: int
    n_jobs: int
    machines: int


def harvest_tables(
    groups: list[tuple[int, int]],
    per_group: int,
    eps: float = 0.3,
    seed: SeedLike = 0,
    pool_size: int = 4000,
    job_range: tuple[int, int] = (20, 140),
    machine_range: tuple[int, int] = (4, 28),
    time_range: tuple[int, int] = (5, 100),
) -> list[HarvestedTable]:
    """Collect ``per_group`` DP-tables per size group.

    Draws up to ``pool_size`` (instance, target) probes, keeps those
    whose table size lands in a group, and returns an evenly spread
    selection per group, sorted by size.  Raises if a group cannot be
    filled — enlarge ``pool_size`` rather than silently under-covering.
    """
    if per_group < 1:
        raise InvalidInstanceError(f"per_group must be >= 1, got {per_group}")
    rng = make_rng(seed)
    buckets: list[list[HarvestedTable]] = [[] for _ in groups]
    seen_sizes: set[int] = set()

    for _ in range(pool_size):
        n = int(rng.integers(job_range[0], job_range[1] + 1))
        m = int(rng.integers(machine_range[0], machine_range[1] + 1))
        inst = uniform_instance(
            n, m, low=time_range[0], high=time_range[1],
            seed=int(rng.integers(1 << 62)),
        )
        bounds = makespan_bounds(inst)
        target = int(rng.integers(bounds.lower, bounds.upper + 1))
        rounded = round_instance(inst, target, eps)
        if rounded.dims == 0:
            continue
        size = rounded.table_size
        if size in seen_sizes:
            continue
        for g, (lo, hi) in enumerate(groups):
            if lo <= size <= hi:
                seen_sizes.add(size)
                buckets[g].append(
                    HarvestedTable(
                        counts=rounded.counts,
                        class_sizes=rounded.class_sizes,
                        target=rounded.target,
                        table_size=size,
                        dims=rounded.dims,
                        n_jobs=n,
                        machines=m,
                    )
                )
                break

    selected: list[HarvestedTable] = []
    for g, bucket in enumerate(buckets):
        if len(bucket) < per_group:
            raise InvalidInstanceError(
                f"group {groups[g]} yielded only {len(bucket)} tables; "
                f"increase pool_size"
            )
        bucket.sort(key=lambda t: t.table_size)
        # Even spread across the group's size range.
        picks = np.linspace(0, len(bucket) - 1, per_group).round().astype(int)
        selected.extend(bucket[int(i)] for i in sorted(set(picks.tolist())))
    return sorted(selected, key=lambda t: t.table_size)
