"""Result records shared by all experiments.

An experiment produces an :class:`ExperimentResult`: an exhibit id, a
list of uniform :class:`Row` mappings, and free-form notes.  The
benches print them (via :mod:`repro.analysis.report`) and the tests
assert on them, so the schema stays deliberately plain (string keys,
scalar values) rather than growing per-experiment classes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

Row = Mapping[str, Any]


@dataclass
class ExperimentResult:
    """Outcome of one exhibit reproduction."""

    exhibit: str  # e.g. "fig3a", "table7"
    description: str
    rows: list[Row] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def column(self, key: str) -> list[Any]:
        """Values of one column across all rows (missing keys -> None)."""
        return [row.get(key) for row in self.rows]

    def filter(self, **conditions: Any) -> "ExperimentResult":
        """Rows matching all equality conditions, as a new result."""
        rows = [
            row
            for row in self.rows
            if all(row.get(k) == v for k, v in conditions.items())
        ]
        return ExperimentResult(
            exhibit=self.exhibit, description=self.description, rows=rows,
            notes=list(self.notes),
        )

    def to_json(self) -> str:
        """Serialise for EXPERIMENTS.md regeneration and archiving."""
        def _default(o: Any):
            if hasattr(o, "tolist"):
                return o.tolist()
            return str(o)

        return json.dumps(
            {
                "exhibit": self.exhibit,
                "description": self.description,
                "rows": [dict(r) for r in self.rows],
                "notes": self.notes,
            },
            indent=2,
            default=_default,
        )
