"""Statistics helpers for performance comparisons.

Speedup aggregation done right: speedups are ratios, so they aggregate
by **geometric** mean (arithmetic means of ratios overweight outliers
and are not reciprocal-consistent).  The bootstrap interval quantifies
how stable a measured crossover or speedup is across the harvested
workload sample — useful because the paper reports single runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ReproError
from repro.util.rng import SeedLike, make_rng


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (the right mean for ratios)."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ReproError("geometric mean of an empty sequence")
    if (arr <= 0).any():
        raise ReproError("geometric mean requires strictly positive values")
    return float(np.exp(np.log(arr).mean()))


def speedups(baseline: Sequence[float], contender: Sequence[float]) -> np.ndarray:
    """Per-item speedup ``baseline / contender`` (>1 = contender faster)."""
    a = np.asarray(baseline, dtype=np.float64)
    b = np.asarray(contender, dtype=np.float64)
    if a.shape != b.shape:
        raise ReproError("baseline and contender must have equal length")
    if (a <= 0).any() or (b <= 0).any():
        raise ReproError("times must be strictly positive")
    return a / b


@dataclass(frozen=True)
class BootstrapCI:
    """A two-sided bootstrap confidence interval for a statistic."""

    estimate: float
    lower: float
    upper: float
    confidence: float

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval."""
        return self.lower <= value <= self.upper


def bootstrap_geomean_ci(
    ratios: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: SeedLike = 0,
) -> BootstrapCI:
    """Bootstrap CI for the geometric-mean ratio.

    Percentile bootstrap over ``resamples`` with-replacement resamples;
    deterministic given ``seed``.
    """
    if not (0.0 < confidence < 1.0):
        raise ReproError(f"confidence must be in (0, 1), got {confidence}")
    if resamples < 10:
        raise ReproError(f"resamples must be >= 10, got {resamples}")
    arr = np.asarray(ratios, dtype=np.float64)
    if arr.size == 0 or (arr <= 0).any():
        raise ReproError("ratios must be non-empty and positive")
    rng = make_rng(seed)
    logs = np.log(arr)
    idx = rng.integers(0, arr.size, size=(resamples, arr.size))
    means = np.exp(logs[idx].mean(axis=1))
    alpha = (1.0 - confidence) / 2.0
    return BootstrapCI(
        estimate=geometric_mean(arr),
        lower=float(np.quantile(means, alpha)),
        upper=float(np.quantile(means, 1.0 - alpha)),
        confidence=confidence,
    )


def summarize_speedup(
    baseline: Sequence[float],
    contender: Sequence[float],
    confidence: float = 0.95,
    seed: SeedLike = 0,
) -> dict:
    """One-call summary: per-item ratios, geomean, CI, win rate."""
    ratios = speedups(baseline, contender)
    ci = bootstrap_geomean_ci(ratios, confidence=confidence, seed=seed)
    return {
        "geomean_speedup": ci.estimate,
        "ci_lower": ci.lower,
        "ci_upper": ci.upper,
        "confidence": confidence,
        "win_rate": float((ratios > 1.0).mean()),
        "min": float(ratios.min()),
        "max": float(ratios.max()),
        "n": int(ratios.size),
    }
