"""Table VII — quarter split vs OpenMP bisection: iterations and runtime.

The paper picks "designated configurations" identified by their DP-table
size and counts (a) the bisection iterations to the best makespan and
(b) the total runtime, for the GPU quarter split and the OpenMP
implementation.  Expected shapes: the quarter split needs roughly half
the iterations; OpenMP remains competitive at the small sizes (12960,
20736) and loses by an order of magnitude at 403200.

We reproduce this per size by finding a uniform-random instance whose
*first bisection probe* produces a DP-table near the requested size
(the paper's sizes are themselves harvested from such runs), then
running both full PTAS drivers on it.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.records import ExperimentResult
from repro.analysis.paper_data import TABLE_VII
from repro.core.bounds import makespan_bounds
from repro.core.instance import Instance, uniform_instance
from repro.core.rounding import round_instance
from repro.engines.runner import run_ptas_gpu, run_ptas_openmp
from repro.errors import InvalidInstanceError
from repro.util.rng import make_rng


def find_instance_with_table_size(
    target_size: int,
    eps: float = 0.3,
    seed: int = 0,
    tolerance: float = 0.25,
    attempts: int = 3000,
) -> Instance:
    """Instance whose first-probe DP-table is within ``tolerance`` of size.

    Deterministic given ``seed``.  Raises when no instance lands inside
    the tolerance after ``attempts`` draws (loosen it rather than
    silently returning something far off).
    """
    rng = make_rng(seed)
    best: tuple[float, Instance] | None = None
    for _ in range(attempts):
        n = int(rng.integers(20, 140))
        m = int(rng.integers(4, 28))
        inst = uniform_instance(n, m, low=5, high=100, seed=int(rng.integers(1 << 62)))
        bounds = makespan_bounds(inst)
        # The bisection probes several targets; the *largest* table it
        # builds dominates the runtime, so that is the size by which
        # the paper identifies its "designated configurations".  Sample
        # the probe targets the searches actually visit.
        lb, ub = bounds.lower, bounds.upper
        probe_targets = {(lb + ub) // 2, (3 * lb + ub) // 4, lb + (ub - lb) // 8}
        sizes = []
        for t in probe_targets:
            rounded = round_instance(inst, max(t, 1), eps)
            if rounded.dims:
                sizes.append(rounded.table_size)
        if not sizes:
            continue
        err = abs(max(sizes) - target_size) / target_size
        if best is None or err < best[0]:
            best = (err, inst)
        if err <= tolerance / 4:
            break
    if best is None or best[0] > tolerance:
        raise InvalidInstanceError(
            f"no instance within {tolerance:.0%} of table size {target_size} "
            f"after {attempts} attempts (best: {best[0]:.0%} off)" if best else
            f"no instance produced any DP-table in {attempts} attempts"
        )
    return best[1]


def run(
    sizes: Sequence[int] = (12960, 20736, 27360, 30240),
    eps: float = 0.3,
    dim: int = 6,
    seed: int = 7,
) -> ExperimentResult:
    """One row per designated size; paper values attached for comparison.

    The default omits the paper's 403200 row because it costs minutes of
    wall time; pass ``sizes=(..., 403200)`` (the bench's full mode does)
    to include it.
    """
    paper = {row.table_size: row for row in TABLE_VII}
    result = ExperimentResult(
        exhibit="table7",
        description=(
            "Iterations and simulated runtime: GPU quarter split vs "
            "OpenMP bisection"
        ),
    )
    for size in sizes:
        inst = find_instance_with_table_size(size, eps=eps, seed=seed + size)
        omp = run_ptas_openmp(inst, eps=eps)
        gpu = run_ptas_gpu(inst, eps=eps, dim=dim)
        if gpu.result.final_target != omp.result.final_target:
            raise InvalidInstanceError(
                f"search strategies disagree on the converged target at size {size}"
            )
        row: dict = {
            "table_size": size,
            "actual_max_table": max(max(omp.dp_table_sizes), max(gpu.dp_table_sizes)),
            "gpu_itr": gpu.iterations,
            "gpu_ms": gpu.simulated_s * 1e3,
            "omp_itr": omp.iterations,
            "omp_ms": omp.simulated_s * 1e3,
            "makespan": gpu.makespan,
        }
        if size in paper:
            ref = paper[size]
            row.update(
                paper_gpu_itr=ref.gpu_iterations,
                paper_gpu_ms=ref.gpu_runtime_ms,
                paper_omp_itr=ref.openmp_iterations,
                paper_omp_ms=ref.openmp_runtime_ms,
            )
        result.rows.append(row)
    result.notes.append(
        "paper shapes: quarter split needs ~half the iterations; GPU and "
        "OpenMP runtimes comparable at 12960-20736, GPU decisively ahead "
        "from ~27360 and ~30x ahead at 403200"
    )
    return result
