"""Device-sensitivity study — beyond the paper's single-GPU evaluation.

The paper evaluates one device (a K40).  A natural referee question is
how its conclusions depend on the hardware: does the CPU/GPU crossover
move on a smaller Kepler (K20) or vanish on a modern datacenter part?
This experiment reruns the Fig. 3-style comparison on all three device
models (same cost structure, different resources) and reports, per
device: the per-table winner and the crossover.

Expectations under the model: the K20 shifts the crossover slightly up
(fewer SMs, less bandwidth); the modern device shifts it down
substantially (cheap launches, deep memory-level parallelism) but the
small-table regime where the wavefront cannot feed the device — the
paper's fundamental observation — persists.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.records import ExperimentResult
from repro.analysis.workloads import HarvestedTable, harvest_tables
from repro.engines.gpu_partitioned import GpuPartitionedEngine
from repro.engines.openmp_engine import OpenMPEngine
from repro.gpusim.spec import (
    DeviceSpec,
    KEPLER_K20,
    KEPLER_K40,
    MODERN_DATACENTER,
)

DEFAULT_DEVICES: tuple[DeviceSpec, ...] = (
    KEPLER_K20,
    KEPLER_K40,
    MODERN_DATACENTER,
)


def run(
    devices: Sequence[DeviceSpec] = DEFAULT_DEVICES,
    dim: int = 6,
    seed: int = 77,
    tables: Sequence[HarvestedTable] | None = None,
) -> ExperimentResult:
    """One row per (device, table): GPU vs OMP28 on that device."""
    if tables is None:
        tables = harvest_tables(
            [(500, 8_000), (8_001, 60_000), (60_001, 200_000)],
            per_group=3,
            seed=seed,
            pool_size=4000,
        )
    result = ExperimentResult(
        exhibit="sensitivity",
        description=(
            f"device sensitivity: GPU-DIM{dim} vs OMP28 across "
            f"{len(devices)} device models"
        ),
    )
    for table in tables:
        omp = OpenMPEngine(threads=28).run(
            table.counts, table.class_sizes, table.target
        )
        for device in devices:
            gpu = GpuPartitionedEngine(dim=dim, spec=device).run(
                table.counts, table.class_sizes, table.target
            )
            result.rows.append(
                {
                    "device": device.name,
                    "table_size": table.table_size,
                    "omp28_s": omp.simulated_s,
                    "gpu_s": gpu.simulated_s,
                    "gpu_wins": gpu.simulated_s < omp.simulated_s,
                }
            )
    return result


def crossover_per_device(result: ExperimentResult) -> dict[str, int | None]:
    """Smallest winning table size per device (None = never wins)."""
    out: dict[str, int | None] = {}
    for device in {r["device"] for r in result.rows}:
        wins = [
            r["table_size"]
            for r in result.rows
            if r["device"] == device and r["gpu_wins"]
        ]
        out[device] = min(wins) if wins else None
    return out
