"""Fig. 4 — how the number of non-zero dimensions shapes GPU performance.

For each of the six showcased table sizes the paper compares DP-tables
of *equal size but different dimensionality* (the exact shapes are the
``dimension size`` columns of Tables I–VI), running each under
GPU-DIM3..GPU-DIM9.  Expected shapes (§IV-B): the best setting
partitions along roughly 5–7 dimensions; tables with more non-zero
dimensions generally beat same-size tables with fewer (extra dimensions
"scatter the high-density dimensions", improving block regularity) —
with exceptions the paper itself notes.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.paper_data import FIG4_SIZES, GPU_DIMS, TABLES_I_TO_VI
from repro.analysis.records import ExperimentResult
from repro.analysis.synthetic import synthetic_probe
from repro.engines.gpu_partitioned import GpuPartitionedEngine


def run(
    sizes: Sequence[int] = tuple(FIG4_SIZES),
    dims_settings: Sequence[int] = tuple(GPU_DIMS),
) -> ExperimentResult:
    """One row per (table size, table shape, partition setting)."""
    result = ExperimentResult(
        exhibit="fig4",
        description=(
            "GPU runtime vs number of partitioned dimensions, for "
            "equal-size tables of different dimensionality (shapes from "
            "Tables I-VI)"
        ),
    )
    for size in sizes:
        if size not in TABLES_I_TO_VI:
            raise KeyError(f"no paper shapes recorded for table size {size}")
        for paper_row in TABLES_I_TO_VI[size]:
            probe = synthetic_probe(paper_row.dimension_sizes)
            assert probe.table_size == size, (probe.table_size, size)
            configs = probe.configs()
            for dim in dims_settings:
                engine = GpuPartitionedEngine(dim=dim)
                run_ = engine.run(
                    probe.counts, probe.class_sizes, probe.target, configs
                )
                result.rows.append(
                    {
                        "table_size": size,
                        "n_dims": paper_row.n_dims,
                        "partition_dim": dim,
                        "simulated_s": run_.simulated_s,
                        "block_shape": run_.metrics["block_shape"],
                        "num_blocks": run_.metrics["num_blocks"],
                    }
                )
    result.notes.append(
        "paper shapes: best setting at 5-7 partitioned dimensions; "
        "higher-dimensional tables of the same size are usually faster"
    )
    return result


def best_partition_dim(result: ExperimentResult, table_size: int, n_dims: int) -> int:
    """The partition setting with the lowest simulated time for one shape."""
    rows = [
        r
        for r in result.rows
        if r["table_size"] == table_size and r["n_dims"] == n_dims
    ]
    if not rows:
        raise KeyError(f"no rows for size={table_size}, n_dims={n_dims}")
    return min(rows, key=lambda r: r["simulated_s"])["partition_dim"]
