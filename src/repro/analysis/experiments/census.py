"""Probe census — quantifying the paper's §IV-A observation.

"The number of non-zero dimensions is unknown before the execution
because it is determined not only by the jobs' processing times, but
also by the target makespan value T.  Since each interval [LB, UB] has
its unique T in one instance, we can get multiple DP-tables of
different sizes from each instance during the execution."

This experiment makes that statement quantitative: run the bisection on
a seeded population of uniform instances, record every probe's DP-table
(size, non-zero dimensions, long-job count), and summarise the spread —
within single instances and across the population.  The results justify
the evaluation methodology (grouping by table size rather than by
instance) that both the paper and our Fig. 3 harness use.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.records import ExperimentResult
from repro.core.bisection import bisection_search
from repro.core.instance import uniform_instance
from repro.util.rng import SeedLike, make_rng


def run(
    population: int = 25,
    eps: float = 0.3,
    seed: SeedLike = 41,
    job_range: tuple[int, int] = (20, 90),
    machine_range: tuple[int, int] = (4, 16),
) -> ExperimentResult:
    """One row per instance, summarising its probes' tables."""
    rng = make_rng(seed)
    result = ExperimentResult(
        exhibit="census",
        description=(
            f"DP-table census over {population} uniform instances: table "
            "sizes and dimensionalities encountered during bisection"
        ),
    )
    all_dims: list[int] = []
    all_sizes: list[int] = []
    for i in range(population):
        n = int(rng.integers(job_range[0], job_range[1] + 1))
        m = int(rng.integers(machine_range[0], machine_range[1] + 1))
        inst = uniform_instance(n, m, low=5, high=100, seed=int(rng.integers(1 << 62)))
        search = bisection_search(inst, eps)
        dims = [p.rounded.dims for p in search.probes]
        sizes = [p.rounded.table_size for p in search.probes]
        all_dims.extend(d for d in dims if d > 0)
        all_sizes.extend(s for s, d in zip(sizes, dims) if d > 0)
        result.rows.append(
            {
                "instance": i,
                "jobs": n,
                "machines": m,
                "probes": len(search.probes),
                "distinct_sizes": len(set(sizes)),
                "min_size": min(sizes),
                "max_size": max(sizes),
                "min_dims": min(dims),
                "max_dims": max(dims),
            }
        )
    if all_dims:
        result.notes.append(
            f"across all probes: dims min/median/max = "
            f"{min(all_dims)}/{int(np.median(all_dims))}/{max(all_dims)}; "
            f"table size min/median/max = "
            f"{min(all_sizes)}/{int(np.median(all_sizes))}/{max(all_sizes)}"
        )
    spreads = [r["max_size"] / max(1, r["min_size"]) for r in result.rows]
    result.notes.append(
        f"within one instance the largest probe table is up to "
        f"{max(spreads):.0f}x the smallest — grouping results by table "
        "size (not by instance) is the only meaningful aggregation, as "
        "the paper does"
    )
    return result
