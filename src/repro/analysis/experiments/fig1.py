"""Fig. 1 — the dependency wavefront of a 2-D DP-table on four cores.

The paper's introductory illustration: the subproblems of ``OPT(2,3)``
(a 3x4 table) grouped by anti-diagonal level and assigned round-robin
to a four-core parallel system.  ``run`` regenerates the assignment as
data: one row per cell with its level and core, plus the per-level
concurrency profile.
"""

from __future__ import annotations

from repro.analysis.records import ExperimentResult
from repro.dptable.antidiagonal import level_sizes, wavefront
from repro.dptable.table import TableGeometry


def run(counts: tuple[int, ...] = (2, 3), cores: int = 4) -> ExperimentResult:
    """Regenerate the Fig. 1 assignment for ``OPT(counts)`` on ``cores``."""
    geometry = TableGeometry.from_counts(counts)
    result = ExperimentResult(
        exhibit="fig1",
        description=(
            f"Wavefront of OPT{counts} — a {'x'.join(map(str, geometry.shape))} "
            f"DP-table on {cores} cores"
        ),
    )
    for level, cells in enumerate(wavefront(geometry)):
        for slot, flat in enumerate(cells.tolist()):
            result.rows.append(
                {
                    "cell": geometry.unravel(flat),
                    "level": level,
                    "core": slot % cores,
                }
            )
    sizes = level_sizes(geometry).tolist()
    result.notes.append(
        f"level sizes {sizes}: each level's cells are independent and "
        f"run concurrently; levels execute in order (the paper's Fig. 1)"
    )
    return result
