"""Fig. 3 — average running time vs DP-table size.

The paper plots 36 DP-table sizes in three groups (100–10k, 20k–100k,
110k–500k) for OMP16, OMP28, and GPU-DIM3..GPU-DIM9, averaging five
runs.  Our engines are deterministic, so one run per probe suffices;
the probes themselves are harvested from uniform-random instances with
the paper's methodology (:func:`repro.analysis.workloads.harvest_tables`).

Expected shapes (§IV-B): OpenMP wins on panel (a); the GPU overtakes
above roughly the 20k–30k boundary; GPU-DIM3 is the weakest partition
setting; panel (c)'s curves are smooth because large tables keep the
device busy end to end.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.analysis.paper_data import FIG3_GROUPS, FIG3_SIZES_PER_GROUP
from repro.analysis.records import ExperimentResult
from repro.analysis.workloads import HarvestedTable, harvest_tables
from repro.engines.gpu_partitioned import GpuPartitionedEngine
from repro.engines.openmp_engine import OpenMPEngine


def default_engines(dims: Sequence[int] = (3, 6, 9)) -> dict[str, Callable[[], object]]:
    """Engine factories for the Fig. 3 lines.

    ``dims`` defaults to a representative subset of GPU-DIM3..9 to keep
    runtimes manageable; pass ``repro.analysis.paper_data.GPU_DIMS`` for
    the paper's full seven settings.
    """
    engines: dict[str, Callable[[], object]] = {
        "omp16": lambda: OpenMPEngine(threads=16),
        "omp28": lambda: OpenMPEngine(threads=28),
    }
    for d in dims:
        engines[f"gpu-dim{d}"] = lambda d=d: GpuPartitionedEngine(dim=d)
    return engines


def run(
    groups: Sequence[tuple[int, int]] = tuple(FIG3_GROUPS),
    per_group: int = FIG3_SIZES_PER_GROUP,
    dims: Sequence[int] = (3, 6, 9),
    seed: int = 2018,
    tables: Sequence[HarvestedTable] | None = None,
) -> ExperimentResult:
    """Reproduce Fig. 3: one row per (table, engine).

    ``tables`` overrides harvesting (tests pass small fixed probes).
    """
    if tables is None:
        tables = harvest_tables(list(groups), per_group, seed=seed)
    engines = default_engines(dims)

    result = ExperimentResult(
        exhibit="fig3",
        description=(
            "Average running time vs DP-table size "
            f"({len(tables)} tables, engines: {', '.join(engines)})"
        ),
    )
    for table in tables:
        for name, make in engines.items():
            engine = make()
            run_ = engine.run(table.counts, table.class_sizes, table.target)
            result.rows.append(
                {
                    "table_size": table.table_size,
                    "dims": table.dims,
                    "engine": name,
                    "simulated_s": run_.simulated_s,
                    "group": _group_of(table.table_size, groups),
                }
            )
    result.notes.append(
        "paper shapes: OpenMP fastest below ~10k; GPU fastest above ~30k; "
        "GPU-DIM3 the weakest partition setting"
    )
    return result


def _group_of(size: int, groups: Sequence[tuple[int, int]]) -> str:
    """Panel label (a/b/c) for a table size."""
    for i, (lo, hi) in enumerate(groups):
        if lo <= size <= hi:
            return chr(ord("a") + i)
    return "?"


def crossover_size(result: ExperimentResult, cpu: str = "omp28", gpu_prefix: str = "gpu-") -> int | None:
    """Smallest table size where the best GPU setting beats ``cpu``.

    The quantity §IV-B quotes as "larger than 30000".  ``None`` when the
    GPU never wins in the measured range.
    """
    by_size: dict[int, dict[str, float]] = {}
    for row in result.rows:
        by_size.setdefault(row["table_size"], {})[row["engine"]] = row["simulated_s"]
    for size in sorted(by_size):
        times = by_size[size]
        gpu_best = min(
            (t for e, t in times.items() if e.startswith(gpu_prefix)), default=None
        )
        if gpu_best is not None and cpu in times and gpu_best < times[cpu]:
            return size
    return None
