"""Fig. 2 — partitioning a 3-D DP-table by a divisor (3, 3, 3).

The paper's illustration: a 6x6x6 table cut into 27 blocks of 2x2x2,
grouped into 7 block-levels (the colours of the figure), each block
holding 4 in-block anti-diagonal levels.  ``run`` regenerates the exact
decomposition as data (one row per block) plus the aggregate counts the
caption states.
"""

from __future__ import annotations

from repro.analysis.records import ExperimentResult
from repro.dptable.partition import BlockPartition
from repro.dptable.table import TableGeometry


def run(shape: tuple[int, ...] = (6, 6, 6), divisor: tuple[int, ...] = (3, 3, 3)) -> ExperimentResult:
    """Regenerate the Fig. 2 decomposition for ``shape`` / ``divisor``."""
    partition = BlockPartition(TableGeometry(shape), divisor)
    streams = partition.stream_assignment(num_streams=4)

    result = ExperimentResult(
        exhibit="fig2",
        description=(
            f"Partition of a {'x'.join(map(str, shape))} DP-table by divisor "
            f"{divisor}: blocks, block-levels, in-block levels, stream assignment"
        ),
    )
    for level, blocks in enumerate(partition.iter_block_levels()):
        for block in blocks:
            result.rows.append(
                {
                    "block": block,
                    "block_level": level,
                    "stream": streams[block],
                    "cells": partition.cells_per_block,
                    "inblock_levels": partition.num_inblock_levels,
                }
            )
    result.notes.append(
        f"{partition.num_blocks} blocks of shape {partition.block_shape}, "
        f"{partition.num_block_levels} block-levels, "
        f"{partition.num_inblock_levels} in-block anti-diagonal levels "
        f"(paper: 27 blocks of 2x2x2, 7 block-levels, 4 in-block levels)"
    )
    return result
