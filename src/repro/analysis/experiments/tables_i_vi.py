"""Tables I–VI — block dimensional sizes under GPU-DIM3 vs the best GPU-DIMd.

Pure geometry: for every table shape the paper lists, compute the
Algorithm 4 divisor under ``dim = 3`` and under the table's best
setting, derive the block shapes, and compare them to the paper's
printed rows.  Agreement is reported per row; the known transcription
inconsistencies in the paper (see
:mod:`repro.analysis.paper_data`) show up as explicit mismatches rather
than being silently absorbed.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.paper_data import TABLES_I_TO_VI
from repro.analysis.records import ExperimentResult
from repro.dptable.partition import BlockPartition, compute_divisor
from repro.dptable.table import TableGeometry


def _blocks_for(shape: tuple[int, ...], dim: int) -> tuple[int, ...]:
    """Block shape produced by Algorithm 4 for one partition setting."""
    geometry = TableGeometry(shape)
    partition = BlockPartition(geometry, compute_divisor(shape, dim))
    return partition.block_shape


def run(sizes: Sequence[int] | None = None) -> ExperimentResult:
    """One row per paper row; ``match_*`` flags record agreement."""
    result = ExperimentResult(
        exhibit="tables_i_vi",
        description=(
            "Block dimensional sizes: Algorithm 4 divisor vs the paper's "
            "printed GPU-DIM3 and best-GPU-DIMd columns"
        ),
    )
    table_sizes = sizes if sizes is not None else sorted(TABLES_I_TO_VI)
    for size in table_sizes:
        for paper_row in TABLES_I_TO_VI[size]:
            shape = paper_row.dimension_sizes
            ours_dim3 = _blocks_for(shape, 3)
            ours_best = _blocks_for(shape, paper_row.best_dim)
            result.rows.append(
                {
                    "table_size": size,
                    "n_dims": paper_row.n_dims,
                    "shape": shape,
                    "ours_dim3": ours_dim3,
                    "paper_dim3": paper_row.gpu_dim3_blocks,
                    "match_dim3": ours_dim3 == paper_row.gpu_dim3_blocks,
                    "best_dim": paper_row.best_dim,
                    "ours_best": ours_best,
                    "paper_best": paper_row.gpu_best_blocks,
                    "match_best": ours_best == paper_row.gpu_best_blocks,
                }
            )
    matched = sum(1 for r in result.rows if r["match_dim3"] and r["match_best"])
    result.notes.append(
        f"{matched}/{len(result.rows)} rows reproduce the paper's block "
        "shapes verbatim; mismatching rows imply divisors Algorithm 4's "
        "stated rule cannot produce (documented in EXPERIMENTS.md)"
    )
    return result
