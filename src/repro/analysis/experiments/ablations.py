"""§III design-choice ablations.

Three claims the paper makes in prose get their own sweeps:

* ``naive_port`` — "a direct GPU translation of the OpenMP
  implementation is about a hundred times slower than the OpenMP
  implementation" (§III intro);
* ``stream_count`` — "applying four streams to each data set provides
  the best performance for the majority of problem instances" (§III-E);
* ``coalescing`` — the data-partitioning scheme's effective-bus-
  utilization gain: strided whole-table scans vs block-contiguous scans
  (§III-B/E), read off the engines' memory-model metrics.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.records import ExperimentResult
from repro.analysis.synthetic import synthetic_probe
from repro.analysis.workloads import harvest_tables
from repro.engines.gpu_naive import GpuNaiveEngine
from repro.engines.gpu_partitioned import GpuPartitionedEngine
from repro.engines.openmp_engine import OpenMPEngine


def naive_port(
    size_groups: Sequence[tuple[int, int]] = ((8_000, 30_000), (60_000, 160_000)),
    seed: int = 99,
) -> ExperimentResult:
    """Naive GPU port vs OpenMP: the ~100x claim."""
    tables = harvest_tables(list(size_groups), per_group=2, seed=seed)
    result = ExperimentResult(
        exhibit="ablation-naive",
        description="direct GPU translation vs OpenMP (paper: ~100x slower)",
    )
    for t in tables:
        omp = OpenMPEngine(threads=28).run(t.counts, t.class_sizes, t.target)
        naive = GpuNaiveEngine(check_memory=False).run(t.counts, t.class_sizes, t.target)
        result.rows.append(
            {
                "table_size": t.table_size,
                "omp28_s": omp.simulated_s,
                "naive_gpu_s": naive.simulated_s,
                "slowdown": naive.simulated_s / omp.simulated_s,
            }
        )
    return result


def stream_count(
    shape: tuple[int, ...] = (4, 4, 6, 6, 2, 3, 3, 2),
    streams: Sequence[int] = (1, 2, 4, 8, 16),
    dim: int = 6,
) -> ExperimentResult:
    """Sweep the per-segment stream count (paper fixes 4)."""
    probe = synthetic_probe(shape)
    configs = probe.configs()
    result = ExperimentResult(
        exhibit="ablation-streams",
        description=f"stream-count sweep on shape {shape} (paper: 4 streams best)",
    )
    for s in streams:
        engine = GpuPartitionedEngine(dim=dim, num_streams=s)
        run_ = engine.run(probe.counts, probe.class_sizes, probe.target, configs)
        result.rows.append(
            {
                "streams": s,
                "simulated_s": run_.simulated_s,
                "utilization": run_.metrics["utilization"],
            }
        )
    return result


def coalescing(
    shape: tuple[int, ...] = (4, 4, 6, 6, 2, 3, 3, 2), dim: int = 6
) -> ExperimentResult:
    """Bus utilization and traffic: partitioned vs naive memory behaviour."""
    probe = synthetic_probe(shape)
    configs = probe.configs()
    part = GpuPartitionedEngine(dim=dim).run(
        probe.counts, probe.class_sizes, probe.target, configs
    )
    naive = GpuNaiveEngine(check_memory=False).run(
        probe.counts, probe.class_sizes, probe.target, configs
    )
    result = ExperimentResult(
        exhibit="ablation-coalescing",
        description="memory-system effect of the data-partitioning scheme",
    )
    for run_ in (part, naive):
        result.rows.append(
            {
                "engine": run_.engine,
                "scan_scope": run_.metrics["scan_scope"],
                "bus_utilization": run_.metrics["avg_bus_utilization"],
                "bytes_moved": run_.metrics["mem_bytes_moved"],
                "simulated_s": run_.simulated_s,
            }
        )
    result.notes.append(
        "partitioned scans are block-contiguous (high bus utilization, "
        "small scope); the naive port's are table-wide and strided"
    )
    return result
