"""One module per paper exhibit; each exposes ``run(...) -> ExperimentResult``.

* :mod:`~repro.analysis.experiments.fig1` — the OPT(2,3) wavefront on 4 cores.
* :mod:`~repro.analysis.experiments.fig2` — the 6x6x6 partition example.
* :mod:`~repro.analysis.experiments.fig3` — runtime vs DP-table size,
  OMP16/OMP28 vs GPU-DIM3..9, three size groups.
* :mod:`~repro.analysis.experiments.fig4` — effect of the number of
  non-zero dimensions at fixed table size.
* :mod:`~repro.analysis.experiments.tables_i_vi` — block dimensional
  sizes under GPU-DIM3 vs the best GPU-DIMd.
* :mod:`~repro.analysis.experiments.table7` — quarter-split iteration
  counts and runtimes vs OpenMP bisection.
* :mod:`~repro.analysis.experiments.ablations` — §III design-choice
  sweeps (naive port, stream count, coalescing).
* :mod:`~repro.analysis.experiments.sensitivity` — beyond the paper:
  the CPU/GPU crossover across device generations.
* :mod:`~repro.analysis.experiments.census` — the §IV-A observation
  made quantitative: table sizes/dims encountered during bisection.
"""

from repro.analysis.experiments import (  # noqa: F401
    ablations,
    census,
    fig1,
    fig2,
    fig3,
    fig4,
    sensitivity,
    table7,
    tables_i_vi,
)

__all__ = [
    "fig1", "fig2", "fig3", "fig4", "tables_i_vi", "table7", "ablations",
    "sensitivity", "census",
]
