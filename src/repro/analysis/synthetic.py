"""Synthetic DP probes with a prescribed table shape.

Fig. 4 and Tables I–VI analyse *specific DP-table shapes* (the paper
lists dimension sizes explicitly).  During a real PTAS run the shape
depends on the instance and the bisection state, so the paper's authors
filtered their logs for matching shapes; we instead construct a probe
with the exact shape directly — same table, same wavefronts, same
partitioning — by choosing class sizes and a target consistent with the
PTAS's own rounding geometry (eps = 0.3 → k = 4, class sizes are
multiples of ``T/k^2`` in ``(T/k, T]``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.configs import enumerate_configurations
from repro.core.rounding import accuracy_k
from repro.errors import InvalidInstanceError


@dataclass(frozen=True)
class SyntheticProbe:
    """A DP probe (counts, class sizes, target) with a chosen shape."""

    counts: tuple[int, ...]
    class_sizes: tuple[int, ...]
    target: int

    @property
    def table_shape(self) -> tuple[int, ...]:
        """Table extents ``(n_i + 1)``."""
        return tuple(c + 1 for c in self.counts)

    @property
    def table_size(self) -> int:
        """Total cells ``sigma``."""
        out = 1
        for c in self.counts:
            out *= c + 1
        return out

    @property
    def dims(self) -> int:
        """Number of (non-zero) dimensions."""
        return len(self.counts)

    def configs(self) -> np.ndarray:
        """The machine-configuration set for this probe."""
        return enumerate_configurations(self.class_sizes, self.counts, self.target)


def synthetic_probe(
    shape: Sequence[int], eps: float = 0.3, unit: int = 10
) -> SyntheticProbe:
    """Build a probe whose DP-table has exactly ``shape``.

    With ``k = ceil(1/eps)`` the rounding unit is ``T/k^2``; choosing
    ``T = k^2 * unit`` makes the unit exactly ``unit`` and the feasible
    long-job class indices ``k+1 .. k^2`` (sizes in ``(T/k, T]``).  The
    ``d`` dimensions get distinct class indices spread evenly over that
    range — small indices admit multi-job machine configurations, large
    ones only single-job, reproducing the heterogeneous per-cell
    workloads of real probes.

    Raises when ``shape`` has more dimensions than there are distinct
    feasible classes (``k^2 - k``; 12 for the paper's eps = 0.3).
    """
    shape = tuple(int(s) for s in shape)
    if any(s < 2 for s in shape):
        raise InvalidInstanceError(
            f"every table extent must be >= 2 (>= 1 job per class), got {shape}"
        )
    k = accuracy_k(eps)
    max_classes = k * k - k
    d = len(shape)
    if d > max_classes:
        raise InvalidInstanceError(
            f"{d} dimensions exceed the {max_classes} long-job classes of eps={eps}"
        )
    # Distinct class indices, evenly spread over (k, k^2].
    indices = np.unique(np.round(np.linspace(k + 1, k * k, d)).astype(int))
    while indices.size < d:
        # Rounding collided; fill in the unused indices deterministically.
        missing = [i for i in range(k + 1, k * k + 1) if i not in indices]
        indices = np.sort(np.concatenate([indices, missing[: d - indices.size]]))
    target = k * k * unit
    class_sizes = tuple(int(i) * unit for i in indices)
    counts = tuple(s - 1 for s in shape)
    return SyntheticProbe(counts=counts, class_sizes=class_sizes, target=target)
