"""Plain-text rendering: aligned tables and ASCII log-log plots.

The benchmark harness runs under pytest in a terminal, so the exhibits
are rendered as monospace text — a table per paper table, and a
log-scale scatter/line chart per figure panel (good enough to read the
crossovers and orderings the reproduction is judged on).
"""

from __future__ import annotations

import math
from typing import Any, Mapping, Sequence


def render_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    title: str = "",
    floatfmt: str = ".4g",
) -> str:
    """Render rows as an aligned text table.

    ``columns`` fixes the order (default: keys of the first row).
    Floats are formatted with ``floatfmt``; everything else via ``str``.
    """
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    if columns is None:
        columns = list(rows[0].keys())

    def fmt(value: Any) -> str:
        if isinstance(value, bool) or value is None:
            return str(value)
        if isinstance(value, float):
            return format(value, floatfmt)
        return str(value)

    table = [[fmt(row.get(c)) for c in columns] for row in rows]
    widths = [
        max(len(str(c)), *(len(r[i]) for r in table)) for i, c in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(c).rjust(w) for c, w in zip(columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in table:
        lines.append("  ".join(v.rjust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def ascii_plot(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 72,
    height: int = 20,
    logx: bool = True,
    logy: bool = True,
    title: str = "",
    xlabel: str = "x",
    ylabel: str = "y",
) -> str:
    """Multi-series scatter plot on a character grid.

    Each series gets a marker (its name's first letter, upper-cased,
    disambiguated with digits).  Log scales default on because the
    paper's figures span 3+ orders of magnitude on both axes.
    """
    points = [
        (x, y) for pts in series.values() for x, y in pts if x > 0 and y > 0
    ]
    if not points:
        return f"{title}\n(no data)"

    def tx(v: float) -> float:
        return math.log10(v) if logx else v

    def ty(v: float) -> float:
        return math.log10(v) if logy else v

    xs = [tx(x) for x, _ in points]
    ys = [ty(y) for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    markers: dict[str, str] = {}
    used: set[str] = set()
    for name in series:
        mark = name[:1].upper() or "?"
        while mark in used:
            mark = chr(ord(mark) + 1) if mark.isalpha() else "#"
        used.add(mark)
        markers[name] = mark

    for name, pts in series.items():
        for x, y in pts:
            if x <= 0 or y <= 0:
                continue
            col = int((tx(x) - x_lo) / x_span * (width - 1))
            row = int((ty(y) - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = markers[name]

    lines = []
    if title:
        lines.append(title)
    lines.append(
        f"{ylabel} [{10 ** y_lo:.3g} .. {10 ** y_hi:.3g}]"
        if logy
        else f"{ylabel} [{y_lo:.3g} .. {y_hi:.3g}]"
    )
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(
        f"{xlabel} [{10 ** x_lo:.3g} .. {10 ** x_hi:.3g}]"
        if logx
        else f"{xlabel} [{x_lo:.3g} .. {x_hi:.3g}]"
    )
    legend = "  ".join(f"{m}={n}" for n, m in markers.items())
    lines.append("legend: " + legend)
    return "\n".join(lines)
