"""Experiment harness: workloads, sweeps, reporting, one module per exhibit.

``repro.analysis.experiments`` contains a module per paper exhibit
(Fig. 2, Fig. 3, Fig. 4, Tables I–VI, Table VII, plus the §III ablation
claims); each exposes a ``run(...)`` returning an
:class:`~repro.analysis.records.ExperimentResult` that the benchmark
harness prints next to the paper's reported values.
"""

from repro.analysis.synthetic import synthetic_probe, SyntheticProbe
from repro.analysis.workloads import harvest_tables, HarvestedTable
from repro.analysis.records import ExperimentResult, Row
from repro.analysis.report import render_table, ascii_plot
from repro.analysis.stats import geometric_mean, speedups, summarize_speedup

__all__ = [
    "synthetic_probe",
    "SyntheticProbe",
    "harvest_tables",
    "HarvestedTable",
    "ExperimentResult",
    "Row",
    "render_table",
    "ascii_plot",
    "geometric_mean",
    "speedups",
    "summarize_speedup",
]
