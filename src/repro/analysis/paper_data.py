"""The paper's reported numbers, transcribed for side-by-side comparison.

Every benchmark prints its measured values next to these.  Sources:

* ``TABLES_I_TO_VI`` — Tables I–VI: for each of the six showcased
  DP-table sizes, the rows (#non-zero dims, dimension sizes, block
  sizes under GPU-DIM3, block sizes under the best GPU-DIMd).
* ``TABLE_VII`` — Table VII: iteration counts and total runtimes
  (milliseconds) for the GPU quarter split vs the OpenMP bisection.
* ``FIG3_GROUPS`` — the three table-size ranges of Fig. 3.
* ``FIG4_SIZES`` — the six sizes Fig. 4 analyses.

Note on internal consistency: several GPU-DIM3/GPU-DIMd rows below
imply per-dimension divisors that Algorithm 4's stated rule
(largest divisor <= sqrt(extent), keep the largest ``dim`` dimensions)
cannot produce — e.g. Table I's 9-dim row shows block size 1 for
extent 3, requiring divisor 3 > sqrt(3).  Our reproduction implements
Algorithm 4 as written; the Tables I–VI bench reports row-by-row
agreement and flags these discrepancies (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PaperBlockRow:
    """One row of Tables I–VI."""

    n_dims: int
    dimension_sizes: tuple[int, ...]
    gpu_dim3_blocks: tuple[int, ...]
    best_dim: int
    gpu_best_blocks: tuple[int, ...]


#: Tables I–VI keyed by DP-table size; ``best_dim`` is the partition
#: count of the right-hand column of each table (5, 5, 5, 6, 7, 7).
TABLES_I_TO_VI: dict[int, list[PaperBlockRow]] = {
    3456: [
        PaperBlockRow(5, (6, 4, 6, 6, 4), (3, 4, 3, 3, 4), 5, (3, 2, 3, 3, 2)),
        PaperBlockRow(6, (2, 6, 3, 4, 6, 4), (2, 3, 3, 2, 3, 4), 5, (2, 3, 1, 2, 3, 2)),
        PaperBlockRow(
            8, (2, 2, 4, 3, 2, 6, 3, 2), (2, 2, 2, 1, 2, 3, 3, 2), 5,
            (1, 2, 2, 1, 1, 3, 1, 1),
        ),
        PaperBlockRow(
            9, (3, 2, 3, 2, 2, 2, 2, 3, 4), (1, 2, 1, 2, 2, 2, 2, 3, 2), 5,
            (1, 1, 1, 2, 2, 2, 2, 1, 2),
        ),
        PaperBlockRow(
            10, (2, 3, 2, 2, 3, 3, 2, 2, 2, 2), (2, 1, 2, 2, 1, 1, 2, 2, 2, 2), 5,
            (2, 1, 1, 1, 1, 1, 2, 2, 2, 2),
        ),
    ],
    8640: [
        PaperBlockRow(7, (5, 3, 6, 3, 4, 4, 2), (1, 3, 3, 3, 2, 4, 2), 5, (1, 1, 3, 3, 2, 2, 2)),
        PaperBlockRow(
            8, (5, 6, 2, 3, 2, 2, 4, 3), (1, 3, 2, 3, 2, 2, 2, 3), 5,
            (1, 3, 2, 1, 2, 2, 2, 1),
        ),
        PaperBlockRow(
            9, (3, 3, 4, 3, 2, 2, 5, 2, 2), (1, 3, 2, 3, 2, 2, 1, 2, 2), 5,
            (1, 1, 2, 1, 2, 2, 1, 2, 2),
        ),
    ],
    12960: [
        PaperBlockRow(4, (3, 16, 15, 18), (3, 4, 5, 6), 5, (1, 4, 5, 6)),
        PaperBlockRow(7, (4, 5, 3, 6, 4, 3, 3), (2, 1, 3, 3, 4, 3, 3), 5, (2, 1, 1, 3, 2, 3, 3)),
        PaperBlockRow(
            8, (3, 4, 3, 4, 3, 5, 3, 2), (3, 2, 3, 2, 3, 1, 3, 2), 5,
            (1, 2, 1, 2, 3, 1, 3, 2),
        ),
        PaperBlockRow(
            9, (3, 3, 3, 2, 3, 4, 2, 5, 2), (1, 3, 3, 2, 3, 2, 2, 1, 2), 5,
            (1, 1, 1, 2, 3, 2, 2, 1, 2),
        ),
    ],
    20736: [
        PaperBlockRow(
            8, (4, 4, 6, 6, 2, 3, 3, 2), (2, 4, 3, 3, 2, 3, 3, 1), 6,
            (2, 1, 2, 2, 1, 1, 1, 1),
        ),
        PaperBlockRow(
            11, (2, 4, 2, 3, 3, 3, 3, 2, 2, 2, 2),
            (2, 2, 2, 1, 1, 3, 3, 2, 2, 2, 2), 6,
            (1, 2, 2, 1, 1, 1, 1, 2, 2, 2, 2),
        ),
    ],
    362880: [
        PaperBlockRow(
            8, (5, 6, 3, 7, 6, 4, 8, 3), (5, 3, 3, 1, 5, 4, 4, 3), 7,
            (1, 3, 1, 1, 3, 2, 4, 3),
        ),
        PaperBlockRow(
            10, (3, 3, 3, 4, 5, 7, 2, 3, 4, 4), (3, 3, 3, 2, 1, 1, 2, 3, 4, 4), 7,
            (3, 3, 1, 2, 1, 1, 2, 1, 2, 2),
        ),
    ],
    403200: [
        PaperBlockRow(
            7, (3, 10, 7, 6, 4, 8, 10), (3, 5, 7, 6, 4, 4, 5), 7,
            (1, 5, 1, 3, 2, 4, 5),
        ),
        PaperBlockRow(
            9, (4, 5, 4, 2, 3, 5, 7, 3, 8), (4, 1, 4, 2, 3, 5, 1, 3, 4), 7,
            (2, 1, 2, 2, 1, 1, 1, 3, 4),
        ),
    ],
}


@dataclass(frozen=True)
class PaperTable7Row:
    """One row of Table VII (runtimes in milliseconds)."""

    table_size: int
    gpu_iterations: int
    gpu_runtime_ms: int
    openmp_iterations: int
    openmp_runtime_ms: int

    @property
    def gpu_speedup(self) -> float:
        """OpenMP runtime / GPU runtime as reported."""
        return self.openmp_runtime_ms / self.gpu_runtime_ms


TABLE_VII: list[PaperTable7Row] = [
    PaperTable7Row(12960, 8, 13_183, 13, 11_160),
    PaperTable7Row(20736, 4, 13_031, 6, 13_072),
    PaperTable7Row(27360, 1, 4_559, 3, 15_238),
    PaperTable7Row(30240, 3, 11_139, 5, 34_098),
    PaperTable7Row(403200, 3, 300_881, 5, 9_654_220),
]

#: The three Fig. 3 table-size groups (inclusive ranges).
FIG3_GROUPS: list[tuple[int, int]] = [
    (100, 10_000),
    (20_000, 100_000),
    (110_000, 500_000),
]

#: Number of table sizes Fig. 3 plots per group (36 total / 3 groups).
FIG3_SIZES_PER_GROUP = 12

#: The six table sizes Fig. 4 and Tables I–VI analyse.
FIG4_SIZES: list[int] = [3456, 8640, 12960, 20736, 362880, 403200]

#: GPU partition settings evaluated in the paper.
GPU_DIMS: list[int] = [3, 4, 5, 6, 7, 8, 9]

#: Paper wall-clock cap (ms) — runs exceeding it are reported as
#: timeouts (the paper's DIM3/DIM4 runs at size 403200).
WALL_CLOCK_LIMIT_MS = 10_800_000
