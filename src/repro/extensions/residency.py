"""Block-residency analysis — the paper's second future-work item.

§V: "If the blocks that include the required subproblems can be
located, only the values of the subproblems in these blocks are needed
on the GPU."  This module performs that location analysis for the
scheduler DP:

* a block's dependencies reach at most ``ceil(max_c c_i / b_i)`` blocks
  backwards in each dimension ``i`` (``c`` ranging over the
  configuration set, ``b`` the block shape) — the *dependency span*;
* executing block-level ``L`` therefore needs resident: the level-``L``
  blocks themselves plus every block within the span behind them;
* the peak over block-levels, times the block's byte size, is the
  device memory a residency-managed execution requires — compared
  against keeping the whole table resident (what the paper's
  implementation does today).

:meth:`BlockResidency.plan` also yields the load/evict schedule a
residency-managed runtime would follow, so the saving is not just a
bound but an executable plan (verified in tests: every dependency of
every scheduled block is resident when the block runs).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterator

import numpy as np

from repro.dptable.partition import BlockPartition
from repro.errors import PartitionError


@dataclass(frozen=True)
class ResidencyStep:
    """One block-level's working set in the residency plan."""

    block_level: int
    execute: tuple[tuple[int, ...], ...]  # blocks computed at this level
    resident: tuple[tuple[int, ...], ...]  # blocks that must be on-device
    load: tuple[tuple[int, ...], ...]  # newly loaded before executing
    evict: tuple[tuple[int, ...], ...]  # dropped after executing


class BlockResidency:
    """Dependency-span analysis and residency planning for one partition."""

    def __init__(self, partition: BlockPartition, configs: np.ndarray) -> None:
        if configs.ndim != 2 or (
            configs.shape[0] and configs.shape[1] != partition.geometry.ndim
        ):
            raise PartitionError("configs arity does not match the table")
        self.partition = partition
        self.configs = configs

    @cached_property
    def dependency_span(self) -> tuple[int, ...]:
        """Blocks reached backwards per dimension: ``ceil(max_i c_i / b_i)``.

        A cell's predecessor ``x - c`` can cross at most this many block
        boundaries in each dimension, because configurations are the
        only offsets the recurrence subtracts.
        """
        if self.configs.shape[0] == 0:
            return (0,) * self.partition.geometry.ndim
        max_offset = self.configs.max(axis=0)
        return tuple(
            -(-int(off) // b) for off, b in zip(max_offset, self.partition.block_shape)
        )

    def blocks_needed_by(self, block: tuple[int, ...]) -> set[tuple[int, ...]]:
        """All blocks holding any dependency of ``block`` (itself included)."""
        grid = self.partition.block_grid
        if not grid.contains(block):
            raise PartitionError(f"block {block} outside grid {self.partition.divisor}")
        span = self.dependency_span
        ranges = [
            range(max(0, b - s), b + 1) for b, s in zip(block, span)
        ]
        out: set[tuple[int, ...]] = set()

        def rec(prefix: list[int], dim: int) -> None:
            if dim == len(ranges):
                out.add(tuple(prefix))
                return
            for v in ranges[dim]:
                prefix.append(v)
                rec(prefix, dim + 1)
                prefix.pop()

        rec([], 0)
        return out

    def plan(self) -> Iterator[ResidencyStep]:
        """Yield the per-block-level load/execute/evict schedule.

        A block stays resident from the step that loads it until no
        later block-level within the dependency span can still read it
        (its last consumer finished).
        """
        levels = list(self.partition.iter_block_levels())
        # Last block-level that reads each block.
        last_reader: dict[tuple[int, ...], int] = {}
        needs: list[set[tuple[int, ...]]] = []
        for lvl, blocks in enumerate(levels):
            needed: set[tuple[int, ...]] = set()
            for block in blocks:
                needed |= self.blocks_needed_by(block)
            needs.append(needed)
            for b in needed:
                last_reader[b] = lvl

        resident: set[tuple[int, ...]] = set()
        for lvl, blocks in enumerate(levels):
            load = needs[lvl] - resident
            resident |= load
            step_resident = tuple(sorted(resident))
            evict = {b for b in resident if last_reader.get(b, -1) <= lvl}
            resident -= evict
            yield ResidencyStep(
                block_level=lvl,
                execute=tuple(sorted(blocks)),
                resident=step_resident,
                load=tuple(sorted(load)),
                evict=tuple(sorted(evict)),
            )

    # -- headline numbers -------------------------------------------------------

    @cached_property
    def peak_resident_blocks(self) -> int:
        """Largest number of simultaneously resident blocks in the plan."""
        return max((len(step.resident) for step in self.plan()), default=0)

    def peak_resident_bytes(self, element_bytes: int = 8) -> int:
        """Device memory a residency-managed run needs."""
        return self.peak_resident_blocks * self.partition.cells_per_block * element_bytes

    def full_table_bytes(self, element_bytes: int = 8) -> int:
        """Memory of the paper's current approach (whole table resident)."""
        return self.partition.geometry.size * element_bytes

    def savings_ratio(self) -> float:
        """``1 - peak / full`` — the fraction of device memory saved."""
        full = self.full_table_bytes()
        if full == 0:
            return 0.0
        return 1.0 - self.peak_resident_bytes() / full
