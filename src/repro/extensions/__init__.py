"""The paper's future-work directions, implemented.

§V names two: applying the data-partitioning scheme to *other*
high-dimensional dynamic programs ("like higher-dimensional knapsack
problems, and eventually ... a general technique"), and reducing GPU
memory further by keeping only the *blocks* a computation step actually
needs resident.

* :mod:`repro.extensions.knapsack` — a multidimensional 0/1 knapsack
  solved with the same blocked wavefront machinery and simulated on the
  same GPU model, demonstrating the scheme's generality.
* :mod:`repro.extensions.residency` — block-residency analysis: which
  blocks each block-level's dependencies touch, and the peak device
  memory a residency-managed execution needs vs. keeping the whole
  table resident.
"""

from repro.extensions.knapsack import (
    KnapsackInstance,
    knapsack_dp,
    knapsack_greedy,
    knapsack_items,
    KnapsackGpuEngine,
)
from repro.extensions.residency import BlockResidency

__all__ = [
    "KnapsackInstance",
    "knapsack_dp",
    "knapsack_greedy",
    "knapsack_items",
    "KnapsackGpuEngine",
    "BlockResidency",
]
