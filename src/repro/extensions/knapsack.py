"""Multidimensional 0/1 knapsack under the data-partitioning scheme.

The paper's first future-work item (§V): "apply the proposed
data-partitioning scheme to other higher-dimensional dynamic programming
problems, like higher-dimensional knapsack problems".  This module does
exactly that, reusing the reproduction's machinery end to end:

* the DP-table is the capacity lattice ``prod(capacity_i + 1)``
  (:class:`~repro.dptable.table.TableGeometry`);
* the per-item relaxation ``best[c] = max(best[c], best[c - w] + v)``
  plays the role Equation 1's configurations play in the scheduler —
  dependencies again point componentwise downward, so Algorithm 4's
  blocks and block-levels apply verbatim;
* :class:`KnapsackGpuEngine` executes the blocked schedule on the same
  :class:`~repro.gpusim.engine.GpuSimulator`, demonstrating that the
  partitioning scheme — not anything scheduler-specific — is what maps
  the DP onto the device.

The value semantics: ``knapsack_dp`` returns, for *every* capacity
vector ``c``, the best achievable value using each item at most once
(the standard dense multidimensional 0/1 knapsack table).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.dptable.partition import BlockPartition, compute_divisor
from repro.dptable.table import TableGeometry
from repro.errors import DPError, InvalidInstanceError
from repro.gpusim.engine import GpuSimulator
from repro.gpusim.kernel import KernelSpec
from repro.gpusim.memory import AccessPattern
from repro.gpusim.spec import DeviceSpec, KEPLER_K40
from repro.util.rng import SeedLike, make_rng


@dataclass(frozen=True)
class KnapsackInstance:
    """A multidimensional 0/1 knapsack.

    Attributes
    ----------
    weights: ``(n_items, d)`` non-negative integer weights.
    values: length-``n_items`` positive values.
    capacity: length-``d`` capacity vector.
    """

    weights: tuple[tuple[int, ...], ...]
    values: tuple[int, ...]
    capacity: tuple[int, ...]

    def __post_init__(self) -> None:
        weights = tuple(tuple(int(w) for w in row) for row in self.weights)
        values = tuple(int(v) for v in self.values)
        capacity = tuple(int(c) for c in self.capacity)
        if len(weights) != len(values):
            raise InvalidInstanceError("one value per item required")
        if not capacity or any(c < 0 for c in capacity):
            raise InvalidInstanceError("capacity must be non-negative, d >= 1")
        d = len(capacity)
        for i, row in enumerate(weights):
            if len(row) != d:
                raise InvalidInstanceError(f"item {i} has wrong weight arity")
            if any(w < 0 for w in row):
                raise InvalidInstanceError(f"item {i} has negative weight")
        for i, v in enumerate(values):
            if v <= 0:
                raise InvalidInstanceError(f"item {i} must have positive value")
        object.__setattr__(self, "weights", weights)
        object.__setattr__(self, "values", values)
        object.__setattr__(self, "capacity", capacity)

    @property
    def n_items(self) -> int:
        """Number of items."""
        return len(self.values)

    @property
    def dims(self) -> int:
        """Number of capacity dimensions ``d``."""
        return len(self.capacity)

    @property
    def table_shape(self) -> tuple[int, ...]:
        """DP-table extent ``(capacity_i + 1)``."""
        return tuple(c + 1 for c in self.capacity)

    @property
    def table_size(self) -> int:
        """Total DP cells."""
        out = 1
        for c in self.capacity:
            out *= c + 1
        return out


def random_knapsack(
    n_items: int,
    capacity: Sequence[int],
    max_weight: int = 6,
    max_value: int = 100,
    seed: SeedLike = None,
) -> KnapsackInstance:
    """Uniform random instance (weights may be zero in some dimensions)."""
    if n_items < 1:
        raise InvalidInstanceError("need at least one item")
    rng = make_rng(seed)
    d = len(capacity)
    weights = rng.integers(0, max_weight + 1, size=(n_items, d))
    # Ensure no all-zero weight rows (they would be free value).
    for i in range(n_items):
        if not weights[i].any():
            weights[i, int(rng.integers(0, d))] = 1
    values = rng.integers(1, max_value + 1, size=n_items)
    return KnapsackInstance(
        weights=tuple(map(tuple, weights.tolist())),
        values=tuple(values.tolist()),
        capacity=tuple(int(c) for c in capacity),
    )


def knapsack_dp(instance: KnapsackInstance) -> np.ndarray:
    """Dense DP table: best value at every capacity vector (vectorized).

    Standard 0/1 recurrence, one whole-table shifted-max per item —
    the same slice idiom as :func:`repro.core.dp_vectorized.dp_vectorized`.
    Items are processed in reverse capacity order implicitly by taking
    the max against the *previous* item's table (no in-place reuse), so
    each item is used at most once.
    """
    shape = instance.table_shape
    table = np.zeros(shape, dtype=np.int64)
    for row, value in zip(instance.weights, instance.values):
        if any(int(w) > cap for w, cap in zip(row, instance.capacity)):
            continue  # the item can never fit anywhere in the lattice
        shifted_dst = tuple(slice(int(w), None) for w in row)
        shifted_src = tuple(
            slice(None, s - int(w)) for s, w in zip(shape, row)
        )
        candidate = table[shifted_src] + value
        new = table.copy()
        np.maximum(new[shifted_dst], candidate, out=new[shifted_dst])
        table = new
    return table


def knapsack_items(instance: KnapsackInstance) -> tuple[int, ...]:
    """Recover an optimal item subset from the DP table.

    Re-derives the per-item tables implicitly by walking items in
    reverse: item ``i`` is in an optimal solution at capacity ``c`` iff
    ``dp_{0..i}(c) == dp_{0..i-1}(c - w_i) + v_i`` and that beats
    skipping it.  To keep memory flat we simply recompute prefix tables
    (items are processed once forward, once backward) — fine at the
    library's scales and verified against brute force in tests.
    """
    # Prefix tables: prefix[i] = best values using items[0..i).
    shape = instance.table_shape
    prefix: list[np.ndarray] = [np.zeros(shape, dtype=np.int64)]
    for row, value in zip(instance.weights, instance.values):
        current = prefix[-1]
        new = current.copy()
        if all(int(w) <= cap for w, cap in zip(row, instance.capacity)):
            dst = tuple(slice(int(w), None) for w in row)
            src = tuple(slice(None, s - int(w)) for s, w in zip(shape, row))
            np.maximum(new[dst], current[src] + value, out=new[dst])
        prefix.append(new)

    chosen: list[int] = []
    cap = tuple(c for c in instance.capacity)
    for i in range(instance.n_items - 1, -1, -1):
        with_i = prefix[i + 1][cap]
        without_i = prefix[i][cap]
        if with_i > without_i:
            chosen.append(i)
            cap = tuple(
                c - int(w) for c, w in zip(cap, instance.weights[i])
            )
    chosen.reverse()
    return tuple(chosen)


def knapsack_greedy(instance: KnapsackInstance) -> int:
    """Greedy baseline: best value by density ordering (no guarantee).

    Density is value per unit of *normalised* weight; ties by value.
    Used in tests/examples to show the DP's advantage.
    """
    capacity = np.asarray(instance.capacity, dtype=np.float64)
    scale = np.where(capacity > 0, capacity, 1.0)
    remaining = np.asarray(instance.capacity, dtype=np.int64).copy()
    order = sorted(
        range(instance.n_items),
        key=lambda i: (
            -instance.values[i]
            / max(1e-9, float((np.asarray(instance.weights[i]) / scale).sum())),
            -instance.values[i],
        ),
    )
    total = 0
    for i in order:
        w = np.asarray(instance.weights[i], dtype=np.int64)
        if (w <= remaining).all():
            remaining -= w
            total += instance.values[i]
    return int(total)


@dataclass(frozen=True)
class KnapsackRun:
    """Outcome of a simulated knapsack execution."""

    table: np.ndarray
    simulated_s: float
    metrics: dict

    @property
    def best_value(self) -> int:
        """Optimal value at full capacity."""
        return int(self.table[tuple(s - 1 for s in self.table.shape)])


class KnapsackGpuEngine:
    """The blocked (Algorithm 4-style) GPU execution of the knapsack DP.

    Per item, the per-cell update depends on one cell componentwise
    below it, so the block-level wavefront of the scheduler DP carries
    over: blocks of one block-level are independent *within an item
    pass*, and in-block cells are embarrassingly parallel per pass
    because the source table is the previous item's (double buffering —
    which is how the vectorized recurrence works anyway).  Kernel
    structure: one kernel per (item, block), blocks of a pass cycled
    over ``num_streams`` streams, a device sync between items.
    """

    def __init__(
        self,
        dim: int = 6,
        num_streams: int = 4,
        spec: DeviceSpec = KEPLER_K40,
        check_memory: bool = True,
    ) -> None:
        self.dim = dim
        self.num_streams = num_streams
        self.spec = spec
        self.check_memory = check_memory

    def run(self, instance: KnapsackInstance) -> KnapsackRun:
        """Compute the real DP (vectorized) and charge simulated time."""
        geometry = TableGeometry(instance.table_shape)
        divisor = compute_divisor(geometry.shape, self.dim)
        partition = BlockPartition(geometry, divisor)

        table = knapsack_dp(instance)

        op_time = self.spec.op_time_s
        sim = GpuSimulator(self.spec, check_memory=self.check_memory)
        cells = partition.cells_per_block
        # Per item pass: every block reads its own cells plus the
        # shifted source cells (coalesced after the Alg. 4 reorg) and
        # performs one compare-add per cell.
        per_thread = 4 * op_time
        block_bytes = cells * 8
        for item in range(instance.n_items):
            for level_blocks in partition.iter_block_levels():
                for i, _block in enumerate(level_blocks):
                    sim.launch(
                        KernelSpec(
                            name=f"knapsack-item{item}",
                            thread_times=np.full(cells, per_thread),
                            mem_elements=2 * cells,
                            mem_pattern=AccessPattern.COALESCED,
                            mem_footprint_bytes=2 * block_bytes,
                        ),
                        stream=i % self.num_streams,
                    )
            sim.synchronize()  # item barrier (double buffer swap)

        return KnapsackRun(
            table=table,
            simulated_s=sim.now,
            metrics={
                **sim.metrics.as_dict(),
                "dim": self.dim,
                "divisor": divisor,
                "num_blocks": partition.num_blocks,
                "cells_per_block": cells,
            },
        )


def knapsack_exact_bruteforce(instance: KnapsackInstance) -> int:
    """Exhaustive oracle for tests (2^n subsets — keep n small)."""
    if instance.n_items > 22:
        raise DPError("brute force limited to 22 items")
    best = 0
    capacity = np.asarray(instance.capacity, dtype=np.int64)
    weights = np.asarray(instance.weights, dtype=np.int64)
    values = np.asarray(instance.values, dtype=np.int64)
    for mask in range(1 << instance.n_items):
        idx = [i for i in range(instance.n_items) if mask >> i & 1]
        if not idx:
            continue
        if (weights[idx].sum(axis=0) <= capacity).all():
            best = max(best, int(values[idx].sum()))
    return best
