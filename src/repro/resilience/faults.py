"""Deterministic, seedable fault injection for the probe path.

A production scheduler meets failures the paper never mentions: a
worker OOMs on one adversarial table, a device resets mid-fill, a probe
stalls behind a noisy neighbour.  Testing the recovery machinery
(retries, fallback chains, graceful degradation) against *real*
chaos is flaky by construction; :class:`FaultInjector` makes the chaos
deterministic instead.

Design constraints, in order:

* **Determinism under concurrency.**  Decisions are *keyed*, not
  sequenced: whether a check at ``(site, instance, target, attempt)``
  fires is a pure function of the injector's ``seed`` and that key
  (via a BLAKE2 hash — never Python's salted ``hash``), so thread
  interleavings in :class:`~repro.core.executor.ParallelHostExecutor`
  or the batch pool cannot change which probes fail.  Two runs with
  the same seed inject the same faults (tested).
* **Bounded per-probe damage.**  Each key fires at most
  ``max_failures`` times, then passes forever.  The cap is *per key*
  — and a probe's attempt crosses every armed site on its path
  (``"probe"`` then ``"dp"``), each with its own key — so the eventual-
  success guarantee is ``armed_sites_on_path * max_failures <
  RetryPolicy.max_attempts``: with both sites armed at
  ``max_failures=2``, give the policy ``max_attempts >= 5`` and every
  transient fault clears within the retry budget — the property the
  bit-identity hypothesis suite relies on.
* **Realistic failure types.**  The injector raises the same
  exceptions real code would: ``MemoryError`` for ``"oom"``,
  :class:`~repro.errors.TransientDPError` for ``"dperror"``,
  :class:`~repro.errors.WorkerCrashError` for ``"crash"``; ``"slow"``
  sleeps ``slow_s`` real seconds so per-probe deadlines trip.
  Recovery code therefore cannot special-case "injected" failures.

Hook sites (strings; an injector only acts on sites listed in its
``sites``):

* ``"probe"`` — checked by
  :meth:`~repro.resilience.ResiliencePolicy.run_probe` before the
  probe starts (models a worker crash in the executor fan-out);
* ``"dp"`` — checked when the (wrapped) DP solver is invoked, i.e.
  inside the kernel/engine call of an actual fill (cache hits skip
  the solver and therefore the fault — exactly like real hardware);
* ``"dp.<backend>"`` — per-member checks inside a
  :class:`~repro.resilience.FallbackChain`, so a chain can be driven
  to step down from one named backend to the next.
* ``"fabric.worker"`` — consulted (via :meth:`FaultInjector.decide`,
  the non-raising entry point) by the fill fabric once per dispatched
  parallel wave; a hit **SIGKILLs a live pool worker** instead of
  raising, so the supervision/respawn machinery of
  :class:`~repro.parallel.fabric.BlockExecutor` is exercised against a
  genuinely dead process, not a simulated one.
"""

from __future__ import annotations

import contextlib
import contextvars
import hashlib
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.instance import Instance
from repro.errors import (
    InvalidInstanceError,
    TransientDPError,
    WorkerCrashError,
)
from repro.observability import context as obs

#: The fault kinds an injector can produce.
FAULT_KINDS = ("oom", "dperror", "crash", "slow")

_RAISERS = {
    "oom": MemoryError,
    "dperror": TransientDPError,
    "crash": WorkerCrashError,
}

#: The instance whose probe is currently executing.  DPSolvers receive
#: only (counts, class_sizes, target) — never the instance — so nested
#: check sites (a fallback chain's ``dp.<member>`` wrappers) resolve
#: the ambient instance from here for keying and ``match`` predicates.
#: A ContextVar survives the thread-pool fan-outs, which propagate the
#: submitting context via ``contextvars.copy_context``.
_AMBIENT_INSTANCE: contextvars.ContextVar[Optional[Instance]] = (
    contextvars.ContextVar("repro_fault_instance", default=None)
)


@contextlib.contextmanager
def fault_scope(instance: Optional[Instance]) -> Iterator[None]:
    """Mark ``instance`` as the one whose probe is executing.

    Entered by :meth:`~repro.resilience.ResiliencePolicy.run_probe`
    around the probe body; :meth:`FaultInjector.check` calls with
    ``instance=None`` fall back to this scope's instance.
    """
    token = _AMBIENT_INSTANCE.set(instance)
    try:
        yield
    finally:
        _AMBIENT_INSTANCE.reset(token)


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault: where, what, and on which attempt."""

    site: str
    kind: str
    target: int
    attempt: int


class FaultInjector:
    """Deterministic seeded fault source for the probe path.

    Parameters
    ----------
    seed:
        Determines every injection decision (with the check's key).
    rate:
        Probability in ``[0, 1]`` that an eligible check fires.
    kinds:
        Subset of :data:`FAULT_KINDS` to draw from.
    sites:
        Hook sites the injector acts on; checks at other sites pass
        untouched.  See the module docstring for the site vocabulary.
    max_failures:
        Per-key failure cap: after this many injected faults for one
        ``(site, instance, target)`` the key passes forever.  Keep it
        below the retry budget to guarantee eventual success.
    slow_s:
        Real seconds the ``"slow"`` kind sleeps (it does not raise).
    match:
        Optional predicate ``match(site, instance, target) -> bool``;
        checks it rejects pass untouched.  Lets a test poison exactly
        one request of a batch.
    """

    def __init__(
        self,
        seed: int = 0,
        rate: float = 1.0,
        kinds: Sequence[str] = ("dperror",),
        sites: Sequence[str] = ("dp",),
        max_failures: int = 2,
        slow_s: float = 0.05,
        match: Optional[Callable[[str, Optional[Instance], int], bool]] = None,
    ) -> None:
        if not (0.0 <= rate <= 1.0):
            raise InvalidInstanceError(f"rate must be in [0, 1], got {rate}")
        bad = [k for k in kinds if k not in FAULT_KINDS]
        if bad or not kinds:
            raise InvalidInstanceError(
                f"kinds must be a non-empty subset of {FAULT_KINDS}, got {tuple(kinds)}"
            )
        if max_failures < 0:
            raise InvalidInstanceError(
                f"max_failures must be >= 0, got {max_failures}"
            )
        if slow_s < 0:
            raise InvalidInstanceError(f"slow_s must be >= 0, got {slow_s}")
        self.seed = int(seed)
        self.rate = float(rate)
        self.kinds = tuple(kinds)
        self.sites = tuple(sites)
        self.max_failures = int(max_failures)
        self.slow_s = float(slow_s)
        self.match = match
        #: every injected fault, in injection order (thread-unordered
        #: under parallel executors; compare as multisets there).
        self.events: List[FaultEvent] = []
        self._fired: Dict[Tuple[str, str, int], int] = {}
        self._lock = threading.Lock()

    @classmethod
    def from_spec(cls, spec: str) -> "FaultInjector":
        """Build an injector from a CLI spec string.

        Format: comma-separated ``key=value`` pairs, e.g.
        ``"seed=7,rate=0.5,kinds=dperror|crash,sites=dp,max=1,slow=0.02"``.
        Unknown keys are rejected loudly.
        """
        kwargs: Dict[str, object] = {}
        for part in filter(None, (p.strip() for p in spec.split(","))):
            if "=" not in part:
                raise InvalidInstanceError(
                    f"bad --inject-faults entry {part!r}: expected key=value"
                )
            key, value = part.split("=", 1)
            if key == "seed":
                kwargs["seed"] = int(value)
            elif key == "rate":
                kwargs["rate"] = float(value)
            elif key == "kinds":
                kwargs["kinds"] = tuple(value.split("|"))
            elif key == "sites":
                kwargs["sites"] = tuple(value.split("|"))
            elif key == "max":
                kwargs["max_failures"] = int(value)
            elif key == "slow":
                kwargs["slow_s"] = float(value)
            else:
                raise InvalidInstanceError(
                    f"unknown --inject-faults key {key!r}; valid keys: "
                    "seed, rate, kinds, sites, max, slow"
                )
        return cls(**kwargs)  # type: ignore[arg-type]

    # -- decision machinery -------------------------------------------------

    @staticmethod
    def _instance_sig(instance: Optional[Instance]) -> str:
        # A stable (unsalted) identity: Python's hash() is salted per
        # process, which would break same-seed replay across CLI runs.
        if instance is None:
            return "-"
        return f"{instance.machines}:{','.join(map(str, instance.times))}"

    def _draw(self, site: str, sig: str, target: int, attempt: int) -> Optional[str]:
        payload = f"{self.seed}|{site}|{sig}|{target}|{attempt}".encode()
        digest = hashlib.blake2b(payload, digest_size=16).digest()
        u = int.from_bytes(digest[:8], "big") / 2**64
        if u >= self.rate:
            return None
        return self.kinds[int.from_bytes(digest[8:], "big") % len(self.kinds)]

    def decide(
        self,
        site: str,
        instance: Optional[Instance] = None,
        target: int = 0,
    ) -> Optional[str]:
        """Draw one injection decision at ``site`` without acting on it.

        Returns the fault kind to realise, or ``None`` when the site is
        not armed, the ``match`` predicate rejects, the per-key failure
        cap is spent, or the seeded draw passes.  A returned kind is
        *recorded* (event log, counter, per-key cap) exactly like a
        :meth:`check` hit — the caller owns realising it.  This is the
        hook for fault sites that cannot be expressed as a raise: the
        fill fabric's ``"fabric.worker"`` site turns any returned kind
        into a real ``SIGKILL`` of a live pool worker.
        """
        decision = self._decide(site, instance, target)
        if decision is None:
            return None
        return decision[0]

    def _decide(
        self,
        site: str,
        instance: Optional[Instance],
        target: int,
    ) -> Optional[Tuple[str, int]]:
        """The shared decision core: ``(kind, attempt)`` or ``None``."""
        if site not in self.sites:
            return None
        if instance is None:
            instance = _AMBIENT_INSTANCE.get()
        if self.match is not None and not self.match(site, instance, target):
            return None
        sig = self._instance_sig(instance)
        key = (site, sig, int(target))
        with self._lock:
            fired = self._fired.get(key, 0)
            if fired >= self.max_failures:
                return None
            kind = self._draw(site, sig, int(target), fired)
            if kind is None:
                return None
            self._fired[key] = fired + 1
            self.events.append(FaultEvent(site, kind, int(target), fired))
        obs.count(f"faults.injected.{kind}")
        return kind, fired

    def check(
        self,
        site: str,
        instance: Optional[Instance] = None,
        target: int = 0,
    ) -> None:
        """Possibly inject one fault at ``site`` (raises or sleeps).

        A no-op when the site is not armed, the ``match`` predicate
        rejects, the per-key failure cap is spent, or the seeded draw
        passes.  ``instance=None`` resolves the ambient
        :func:`fault_scope` instance (if any) first.
        """
        decision = self._decide(site, instance, target)
        if decision is None:
            return
        kind, fired = decision
        if kind == "slow":
            time.sleep(self.slow_s)
            return
        raise _RAISERS[kind](
            f"injected {kind} fault at {site} (T={target}, attempt {fired})"
        )

    def wrap_solver(
        self,
        dp_solver,
        site: str = "dp",
        instance: Optional[Instance] = None,
    ):
        """A DPSolver proxy that checks ``site`` before every real fill."""
        return _FaultWrappedSolver(dp_solver, self, site, instance)

    # -- introspection ------------------------------------------------------

    def replay_signature(self) -> Tuple[FaultEvent, ...]:
        """Order-independent view of the injected faults (for replay tests)."""
        with self._lock:
            return tuple(
                sorted(self.events, key=lambda e: (e.site, e.target, e.attempt, e.kind))
            )

    def reset(self) -> None:
        """Forget fired-fault history and events (the seed is retained)."""
        with self._lock:
            self._fired.clear()
            self.events.clear()

    def __repr__(self) -> str:
        return (
            f"FaultInjector(seed={self.seed}, rate={self.rate}, "
            f"kinds={self.kinds}, sites={self.sites}, "
            f"max_failures={self.max_failures})"
        )


class _FaultWrappedSolver:
    """DPSolver proxy: one injector check per actual fill.

    Transparent otherwise — ``bind_machines`` re-wraps the bound copy
    (so the check survives the probe driver's budget binding), and
    every other attribute (``runs``, ``dp_cache_token``, ...) forwards
    to the wrapped solver.
    """

    def __init__(
        self,
        inner,
        injector: FaultInjector,
        site: str,
        instance: Optional[Instance],
    ) -> None:
        self._inner = inner
        self._injector = injector
        self._site = site
        self._instance = instance

    def __call__(self, counts, class_sizes, target, configs=None, **kwargs):
        self._injector.check(self._site, instance=self._instance, target=int(target))
        return self._inner(counts, class_sizes, target, configs=configs, **kwargs)

    def bind_machines(self, machines: Optional[int]):
        bind = getattr(self._inner, "bind_machines", None)
        inner = bind(machines) if bind is not None else self._inner
        return _FaultWrappedSolver(inner, self._injector, self._site, self._instance)

    def __getattr__(self, name: str):
        return getattr(self._inner, name)

    def __repr__(self) -> str:
        return f"faulted({self._inner!r}, site={self._site!r})"
