"""Fallback chains: step down to a cheaper backend instead of failing.

A :class:`FallbackChain` is a :class:`~repro.core.ptas.DPSolver` that
tries an ordered list of registry backends and steps down on
*non-transient* failure: a ``MemoryError`` in the first member routes
the fill to the second, and so on.  Transient failures
(:func:`repro.resilience.retry.is_transient`) propagate immediately —
the retry layer re-attempts the *whole* probe, which re-enters the
chain at its head, so a flaky-but-preferred backend is never abandoned
permanently for one bad fill.

Chains resolve from the registry by name: ``"fallback:auto,vectorized"``
builds this class over those two members, and the bare ``"fallback"``
name is the recommended production chain
(``auto → sweep → vectorized``).  Every step-down emits the
``resilience.fallback`` counter; a chain whose members *all* fail
raises the last failure with a ``fault_chain`` attribute listing every
member's error — which is what the batch service records on a degraded
result.

Correctness: all exact solvers produce bit-identical tables for
identical inputs (property-tested across the registry), so stepping
down never changes a probe's outcome, only its cost.  Decision-only
backends are rejected as members (no backtrackable table); simulated
engines are allowed but their per-fill time accounting stays on the
member that actually served the fill.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import BackendError, ReproError
from repro.observability import context as obs
from repro.resilience.faults import FaultInjector
from repro.resilience.retry import is_transient


class FallbackChain:
    """Ordered multi-backend DPSolver with step-down on hard failure.

    Parameters
    ----------
    members:
        Registry backend names, most- to least-preferred.  Each is
        resolved fresh at construction (engines are stateful).
    plan_cache:
        Shared plan cache, forwarded to plan-aware members.
    faults:
        Optional :class:`~repro.resilience.FaultInjector`; when set,
        each member's fill is checked at site ``"dp.<member>"`` so
        chaos tests can poison one named member.
    """

    def __init__(
        self,
        members: Sequence[str],
        plan_cache=None,
        faults: Optional[FaultInjector] = None,
        machines: Optional[int] = None,
    ) -> None:
        # Imported here, not at module top: repro.backends registers the
        # "fallback:" family at import time, so a top-level import would
        # be circular.
        from repro.backends import get_spec, resolve

        names = [m.strip() for m in members if m.strip()]
        if not names:
            raise BackendError("a fallback chain needs at least one member backend")
        resolved: List[Tuple[str, object]] = []
        for name in names:
            spec = get_spec(name)  # raises BackendError for unknown members
            if spec.decision_only:
                raise BackendError(
                    f"fallback member {name!r} is decision-only (no "
                    "backtrackable table) and can never serve a schedule "
                    "request — remove it from the chain"
                )
            kwargs = {"plan_cache": plan_cache} if spec.plan_aware else {}
            resolved.append((spec.name, resolve(name, **kwargs)))
        self.members = tuple(name for name, _ in resolved)
        self._solvers = resolved
        self.plan_cache = plan_cache
        self.faults = faults
        self.machines = None if machines is None else int(machines)
        #: member that served the most recent successful fill.
        self.last_served_by: Optional[str] = None
        #: per-member error strings of the most recent fill's step-downs.
        self.fault_chain: Tuple[str, ...] = ()
        # bound views report outcomes back to the chain the caller holds.
        self._root: "FallbackChain" = self

    def bind_machines(self, machines: Optional[int]) -> "FallbackChain":
        """A budget-bound view of this chain (members bind per fill).

        ``None`` *unbinds*: members are used exact, even on a view
        derived from a previously bound chain.
        """
        bound = FallbackChain.__new__(FallbackChain)
        bound.members = self.members
        bound._solvers = self._solvers
        bound.plan_cache = self.plan_cache
        bound.faults = self.faults
        bound.machines = None if machines is None else int(machines)
        bound.last_served_by = None
        bound.fault_chain = ()
        bound._root = self._root
        return bound

    @property
    def dp_cache_token(self) -> Optional[tuple]:
        """Per-budget probe-cache key, mirroring the decision kernels.

        A bound chain may serve fills from a bound ``auto`` member,
        whose tables can be clamped at the machine budget; isolating
        them under the same ``("decision", m)`` token the auto kernel
        uses keeps exact consumers safe and still shares tables that
        are valid for this budget.
        """
        if self.machines is None:
            return None
        return ("decision", self.machines)

    def __call__(self, counts, class_sizes, target, configs=None, model_token=None):
        chain_log: List[str] = []
        last: Optional[BaseException] = None
        extra = {} if model_token is None else {"model_token": model_token}
        for name, solver in self._solvers:
            attempt = solver
            if self.machines is not None:
                bind = getattr(attempt, "bind_machines", None)
                if bind is not None:
                    attempt = bind(self.machines)
            if self.faults is not None:
                attempt = self.faults.wrap_solver(attempt, site=f"dp.{name}")
            try:
                result = attempt(counts, class_sizes, target, configs=configs, **extra)
            except (MemoryError, ReproError) as exc:
                if is_transient(exc):
                    # Transient failures belong to the retry layer: the
                    # whole probe re-runs and re-enters at the head.
                    raise
                chain_log.append(f"{name}: {type(exc).__name__}: {exc}")
                obs.count("resilience.fallback")
                last = exc
                continue
            if chain_log:
                obs.count("resilience.fallback.recovered")
            self.last_served_by = self._root.last_served_by = name
            self.fault_chain = self._root.fault_chain = tuple(chain_log)
            return result
        assert last is not None  # members is non-empty by construction
        self.fault_chain = self._root.fault_chain = tuple(chain_log)
        last.fault_chain = tuple(chain_log)  # type: ignore[attr-defined]
        raise last

    def __repr__(self) -> str:
        bound = "unbound" if self.machines is None else f"m={self.machines}"
        return f"FallbackChain({'->'.join(self.members)}, {bound})"
