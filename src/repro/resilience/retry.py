"""Retry policy: bounded re-attempts for transient probe failures.

Retrying is only sound for failures that are expected to clear on
their own: the marker class :class:`~repro.errors.TransientError`
(injected transient DP errors, worker crashes) and
:class:`~repro.errors.ProbeTimeoutError` (slowness is usually
contention).  Deterministic failures — ``MemoryError``,
:class:`~repro.errors.MemoryBudgetExceeded`, invalid instances — are
never retried; they flow to fallback chains and graceful degradation
instead (:mod:`repro.resilience.fallback`,
:class:`~repro.service.batch.BatchScheduler`).

Backoff is **simulated**: :meth:`RetryPolicy.backoff_s` returns the
seconds a production deployment would wait, and the caller accounts
them as a counter (``resilience.backoff_s``) instead of sleeping — the
test suite stays fast and deterministic, and the accounting still
shows what the recovery cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Type

from repro.errors import InvalidInstanceError, ProbeTimeoutError, TransientError

#: Exception types a retry may legitimately re-attempt.
TRANSIENT_TYPES: Tuple[Type[BaseException], ...] = (
    TransientError,
    ProbeTimeoutError,
)


def is_transient(exc: BaseException) -> bool:
    """Whether ``exc`` is worth retrying (see module docstring)."""
    return isinstance(exc, TRANSIENT_TYPES)


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to re-attempt a probe, and at what simulated cost.

    Attributes
    ----------
    max_attempts:
        Total attempts including the first (``1`` disables retries).
    backoff_base_s:
        Simulated wait before the first retry.
    backoff_factor:
        Exponential growth factor between consecutive retries.
    retry_on:
        Exception types eligible for retry; defaults to
        :data:`TRANSIENT_TYPES`.  Narrow it to make a policy stricter —
        widening it past the transient family voids the determinism
        guarantees documented in ``docs/RELIABILITY.md``.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.01
    backoff_factor: float = 2.0
    retry_on: Tuple[Type[BaseException], ...] = TRANSIENT_TYPES

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise InvalidInstanceError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base_s < 0 or self.backoff_factor < 1.0:
            raise InvalidInstanceError(
                "backoff_base_s must be >= 0 and backoff_factor >= 1.0, got "
                f"{self.backoff_base_s}/{self.backoff_factor}"
            )

    def backoff_s(self, attempt: int) -> float:
        """Simulated seconds to wait after failed attempt ``attempt`` (1-based)."""
        if attempt < 1:
            raise InvalidInstanceError(f"attempt must be >= 1, got {attempt}")
        return self.backoff_base_s * self.backoff_factor ** (attempt - 1)

    def should_retry(self, exc: BaseException, attempt: int) -> bool:
        """Whether failed attempt ``attempt`` (1-based) warrants another."""
        return attempt < self.max_attempts and isinstance(exc, self.retry_on)
