"""repro.resilience — engineering the PTAS for a hostile world.

The theory in this repository assumes probes always finish; production
does not.  This package is the resilience layer (see
``docs/RELIABILITY.md`` for the full fault model and guarantees):

* :class:`FaultInjector` — deterministic, seedable chaos for the probe
  path (OOMs, transient DP errors, worker crashes, slow probes), keyed
  so thread interleavings cannot change which probes fail.
* :class:`AdmissionController` — rejects probes whose estimated
  DP-table footprint exceeds a byte budget *before* any allocation
  (:class:`~repro.errors.MemoryBudgetExceeded`).
* :class:`RetryPolicy` — bounded retries of *transient* failures with
  exponential backoff charged in simulated time.
* :class:`ResiliencePolicy` — the bundle the probe executors consult;
  adds per-probe deadlines (:class:`~repro.errors.ProbeTimeoutError`).
* :class:`FallbackChain` — a registry backend
  (``"fallback:auto,vectorized"``, or the curated ``"fallback"``) that
  steps down to a cheaper solver on non-transient failure.

Graceful degradation — returning a bounded LPT/MULTIFIT answer when
every backend fails — lives in
:class:`~repro.service.batch.BatchScheduler`, built on these parts.

Typical chaos-test wiring::

    from repro.resilience import FaultInjector, RetryPolicy, ResiliencePolicy
    from repro.core.executor import SequentialExecutor

    policy = ResiliencePolicy(
        faults=FaultInjector(seed=7, rate=0.3, kinds=("dperror", "crash")),
        retry=RetryPolicy(max_attempts=4),
    )
    executor = SequentialExecutor(resilience=policy)
    result = ptas_schedule(inst, executor=executor)   # same makespan, tested
"""

from repro.resilience.admission import AdmissionController, TenantQuota
from repro.resilience.fallback import FallbackChain
from repro.resilience.faults import FAULT_KINDS, FaultEvent, FaultInjector
from repro.resilience.policy import ResiliencePolicy
from repro.resilience.retry import TRANSIENT_TYPES, RetryPolicy, is_transient

__all__ = [
    "AdmissionController",
    "FallbackChain",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "ResiliencePolicy",
    "RetryPolicy",
    "TenantQuota",
    "TRANSIENT_TYPES",
    "is_transient",
]
