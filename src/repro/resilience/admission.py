"""Admission control: reject oversized probes before any allocation.

The DP-table for a probe has ``prod(n_i + 1)`` cells, so one
adversarial ``(eps, T)`` pair can request a table orders of magnitude
larger than every other probe in a batch.  Waiting for the resulting
``MemoryError`` means the allocation was already attempted — possibly
taking the whole process (and every sibling request) down with it.

:class:`AdmissionController` closes that hole: the peak footprint of a
fill is pure arithmetic on the rounded count vector
(:func:`repro.core.dp_common.estimate_fill_bytes` — table size times
the narrow dtype :func:`~repro.core.dp_common.pick_table_dtype` would
choose, plus the widened int64 table), so the controller can refuse
with :class:`~repro.errors.MemoryBudgetExceeded` *before* a single
array exists.  Rejections emit the ``admission.rejected`` counter.

Rejection composes with re-routing: the ``auto`` kernel
(:mod:`repro.core.kernels.auto`) accepts its own
``memory_budget_bytes`` and re-routes over-budget fills to the
low-footprint sweep kernel, so a deployment typically sets the kernel
budget below the admission budget — probes between the two run on the
sweep, probes above the admission budget are refused outright (and a
:class:`~repro.service.batch.BatchScheduler` degrades them to a
bounded baseline answer instead of erroring the request).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence

from repro.core.dp_common import estimate_fill_bytes
from repro.dptable.table import TableGeometry
from repro.errors import (
    InvalidInstanceError,
    MemoryBudgetExceeded,
    QuotaExceededError,
)
from repro.observability import context as obs


@dataclass(frozen=True)
class AdmissionController:
    """Pre-allocation gate on the estimated DP fill footprint.

    ``memory_budget_bytes`` is the per-probe ceiling; probes whose
    estimate exceeds it are refused with
    :class:`~repro.errors.MemoryBudgetExceeded`.

    ``fill_workers`` declares that fills may run host-parallel on the
    shared-memory fill fabric: the estimate then also covers the plan
    shipment segment and per-worker chunk scratch (see
    :func:`~repro.core.dp_common.estimate_fill_bytes`), so
    :class:`~repro.errors.MemoryBudgetExceeded` fires *before* any
    shared segment is created.
    """

    memory_budget_bytes: int
    fill_workers: Optional[int] = None

    def __post_init__(self) -> None:
        if self.memory_budget_bytes < 1:
            raise InvalidInstanceError(
                f"memory_budget_bytes must be >= 1, got {self.memory_budget_bytes}"
            )
        if self.fill_workers is not None and self.fill_workers < 1:
            raise InvalidInstanceError(
                f"fill_workers must be >= 1 (or None), got {self.fill_workers}"
            )

    def estimate(self, counts: Sequence[int], value_bound: Optional[int] = None) -> int:
        """Estimated peak bytes for a fill over ``counts`` (no allocation)."""
        return estimate_fill_bytes(
            counts, value_bound=value_bound, fill_workers=self.fill_workers
        )

    def admit(
        self,
        counts: Sequence[int],
        value_bound: Optional[int] = None,
        target: Optional[int] = None,
    ) -> int:
        """Admit or refuse one probe; returns the estimate on admission.

        Raises :class:`~repro.errors.MemoryBudgetExceeded` (and counts
        ``admission.rejected``) when the estimate exceeds the budget.
        """
        estimate = self.estimate(counts, value_bound=value_bound)
        if estimate > self.memory_budget_bytes:
            obs.count("admission.rejected")
            shape = tuple(int(c) + 1 for c in counts)
            at = f" at T={target}" if target is not None else ""
            raise MemoryBudgetExceeded(
                f"probe{at} needs an estimated {estimate} bytes "
                f"(table shape {shape}) but the memory budget is "
                f"{self.memory_budget_bytes} bytes; raise the budget, loosen "
                "eps, or let the batch service degrade this request"
            )
        obs.count("admission.admitted")
        return estimate

    def admit_probe(self, rounded, target: Optional[int] = None) -> int:
        """Admit or refuse one probe across its model's DP fills.

        ``rounded`` is a :class:`~repro.core.rounding.RoundedInstance`;
        its instance's :class:`~repro.models.base.MachineModel` defines
        the fills the probe will run.  A single-fill probe (identical,
        time-restricted) admits through :meth:`admit` with that fill's
        geometry — for the identical model this is exactly the
        historical ``admit(rounded.counts, m + 1)`` gate.  Multi-fill
        models (few-types) are charged the *sum* of their fills plus
        the model's composition scratch
        (:meth:`~repro.models.base.MachineModel.admission_extra_bytes`),
        since every per-type table must be alive at composition time.
        """
        from repro.models import model_for

        model = model_for(rounded.instance)
        fills = model.fills(rounded)
        if len(fills) <= 1:
            fill = fills[0] if fills else None
            counts = fill.counts if fill is not None else rounded.counts
            value_bound = (
                fill.value_bound
                if fill is not None
                else rounded.instance.machines + 1
            )
            return self.admit(counts, value_bound=value_bound, target=target)
        total = sum(
            self.estimate(f.counts, value_bound=f.value_bound) for f in fills
        )
        total += int(model.admission_extra_bytes(rounded))
        if total > self.memory_budget_bytes:
            obs.count("admission.rejected")
            at = f" at T={target}" if target is not None else ""
            raise MemoryBudgetExceeded(
                f"probe{at} needs an estimated {total} bytes across "
                f"{len(fills)} {model.name} fills but the memory budget is "
                f"{self.memory_budget_bytes} bytes; raise the budget, loosen "
                "eps, or let the batch service degrade this request"
            )
        obs.count("admission.admitted")
        return total

    def admit_geometry(self, geometry: TableGeometry, value_bound: int) -> int:
        """:meth:`admit` from a :class:`~repro.dptable.table.TableGeometry`.

        Convenience for callers already holding a probe plan's geometry
        (``ProbePlan.geometry``); extents are ``n_i + 1``, hence the
        ``- 1`` when reconstructing the count vector.
        """
        return self.admit([s - 1 for s in geometry.shape], value_bound=value_bound)


class TenantQuota:
    """Per-tenant in-flight admission quota for the scheduling service.

    The byte-budget :class:`AdmissionController` protects the process
    from one oversized *probe*; this gate protects it from one noisy
    *tenant* — a client that floods the always-on service's queues and
    starves everyone else.  Each tenant may hold at most ``limit``
    requests admitted (queued or running) at once; an over-quota
    ``acquire`` raises :class:`~repro.errors.QuotaExceededError` and
    counts ``quota.rejected`` — the request is refused before any queue
    slot, bound computation, or probe work exists, mirroring the
    admission controller's refuse-before-allocating discipline.

    Parameters
    ----------
    default_limit:
        In-flight ceiling for tenants without an explicit entry;
        ``None`` means unlimited (the quota still tracks occupancy for
        introspection).
    per_tenant:
        Optional ``{tenant: limit}`` overrides.
    """

    def __init__(
        self,
        default_limit: Optional[int] = None,
        per_tenant: Optional[Mapping[str, int]] = None,
    ) -> None:
        if default_limit is not None and default_limit < 1:
            raise InvalidInstanceError(
                f"default_limit must be >= 1 (or None), got {default_limit}"
            )
        for tenant, limit in (per_tenant or {}).items():
            if limit < 1:
                raise InvalidInstanceError(
                    f"limit for tenant {tenant!r} must be >= 1, got {limit}"
                )
        self.default_limit = default_limit
        self.per_tenant = dict(per_tenant or {})
        self._in_flight: Dict[str, int] = {}
        self._lock = threading.Lock()

    def limit_for(self, tenant: str) -> Optional[int]:
        """The in-flight ceiling applying to ``tenant`` (None = unlimited)."""
        return self.per_tenant.get(tenant, self.default_limit)

    def acquire(self, tenant: str) -> None:
        """Admit one request for ``tenant`` or refuse it.

        Raises :class:`~repro.errors.QuotaExceededError` (and counts
        ``quota.rejected``) when the tenant is already at its limit;
        otherwise the tenant's occupancy is incremented (and
        ``quota.admitted`` counted) — pair every successful ``acquire``
        with exactly one :meth:`release`.
        """
        limit = self.limit_for(tenant)
        with self._lock:
            held = self._in_flight.get(tenant, 0)
            if limit is not None and held >= limit:
                refused = True
            else:
                refused = False
                self._in_flight[tenant] = held + 1
        if refused:
            obs.count("quota.rejected")
            raise QuotaExceededError(
                f"tenant {tenant!r} already has {held} request(s) in flight "
                f"(limit {limit}); back off and resubmit, or raise the "
                "tenant's quota"
            )
        obs.count("quota.admitted")

    def release(self, tenant: str) -> None:
        """Return one admitted slot for ``tenant`` (request finished)."""
        with self._lock:
            held = self._in_flight.get(tenant, 0)
            if held <= 1:
                self._in_flight.pop(tenant, None)
            else:
                self._in_flight[tenant] = held - 1

    def in_flight(self, tenant: Optional[str] = None) -> int:
        """Currently admitted requests, for one tenant or in total."""
        with self._lock:
            if tenant is not None:
                return self._in_flight.get(tenant, 0)
            return sum(self._in_flight.values())

    def snapshot(self) -> Dict[str, int]:
        """``{tenant: in-flight count}`` for every occupied tenant."""
        with self._lock:
            return dict(self._in_flight)
