"""Admission control: reject oversized probes before any allocation.

The DP-table for a probe has ``prod(n_i + 1)`` cells, so one
adversarial ``(eps, T)`` pair can request a table orders of magnitude
larger than every other probe in a batch.  Waiting for the resulting
``MemoryError`` means the allocation was already attempted — possibly
taking the whole process (and every sibling request) down with it.

:class:`AdmissionController` closes that hole: the peak footprint of a
fill is pure arithmetic on the rounded count vector
(:func:`repro.core.dp_common.estimate_fill_bytes` — table size times
the narrow dtype :func:`~repro.core.dp_common.pick_table_dtype` would
choose, plus the widened int64 table), so the controller can refuse
with :class:`~repro.errors.MemoryBudgetExceeded` *before* a single
array exists.  Rejections emit the ``admission.rejected`` counter.

Rejection composes with re-routing: the ``auto`` kernel
(:mod:`repro.core.kernels.auto`) accepts its own
``memory_budget_bytes`` and re-routes over-budget fills to the
low-footprint sweep kernel, so a deployment typically sets the kernel
budget below the admission budget — probes between the two run on the
sweep, probes above the admission budget are refused outright (and a
:class:`~repro.service.batch.BatchScheduler` degrades them to a
bounded baseline answer instead of erroring the request).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.dp_common import estimate_fill_bytes
from repro.dptable.table import TableGeometry
from repro.errors import InvalidInstanceError, MemoryBudgetExceeded
from repro.observability import context as obs


@dataclass(frozen=True)
class AdmissionController:
    """Pre-allocation gate on the estimated DP fill footprint.

    ``memory_budget_bytes`` is the per-probe ceiling; probes whose
    estimate exceeds it are refused with
    :class:`~repro.errors.MemoryBudgetExceeded`.
    """

    memory_budget_bytes: int

    def __post_init__(self) -> None:
        if self.memory_budget_bytes < 1:
            raise InvalidInstanceError(
                f"memory_budget_bytes must be >= 1, got {self.memory_budget_bytes}"
            )

    def estimate(self, counts: Sequence[int], value_bound: Optional[int] = None) -> int:
        """Estimated peak bytes for a fill over ``counts`` (no allocation)."""
        return estimate_fill_bytes(counts, value_bound=value_bound)

    def admit(
        self,
        counts: Sequence[int],
        value_bound: Optional[int] = None,
        target: Optional[int] = None,
    ) -> int:
        """Admit or refuse one probe; returns the estimate on admission.

        Raises :class:`~repro.errors.MemoryBudgetExceeded` (and counts
        ``admission.rejected``) when the estimate exceeds the budget.
        """
        estimate = self.estimate(counts, value_bound=value_bound)
        if estimate > self.memory_budget_bytes:
            obs.count("admission.rejected")
            shape = tuple(int(c) + 1 for c in counts)
            at = f" at T={target}" if target is not None else ""
            raise MemoryBudgetExceeded(
                f"probe{at} needs an estimated {estimate} bytes "
                f"(table shape {shape}) but the memory budget is "
                f"{self.memory_budget_bytes} bytes; raise the budget, loosen "
                "eps, or let the batch service degrade this request"
            )
        obs.count("admission.admitted")
        return estimate

    def admit_geometry(self, geometry: TableGeometry, value_bound: int) -> int:
        """:meth:`admit` from a :class:`~repro.dptable.table.TableGeometry`.

        Convenience for callers already holding a probe plan's geometry
        (``ProbePlan.geometry``); extents are ``n_i + 1``, hence the
        ``- 1`` when reconstructing the count vector.
        """
        return self.admit([s - 1 for s in geometry.shape], value_bound=value_bound)
