"""The resilience policy: one object the executors consult per probe.

:class:`ResiliencePolicy` bundles the four recovery mechanisms —
fault injection (for chaos testing), admission control, retry with
simulated backoff, and per-probe deadlines — behind a single
:meth:`~ResiliencePolicy.run_probe` that the probe executors
(:mod:`repro.core.executor`) call in place of a bare
:func:`~repro.core.ptas.probe_target`.  The order of operations per
probe:

1. **Admission** — estimate the fill footprint from the (cached)
   rounding and refuse over-budget probes with
   :class:`~repro.errors.MemoryBudgetExceeded` *before* anything is
   allocated.
2. **Fault check** — an armed :class:`~repro.resilience.FaultInjector`
   may crash the "worker" (site ``"probe"``) or poison the DP solver
   (site ``"dp"``, via a transparent wrapper).
3. **The probe itself**, wall-timed; exceeding ``deadline_s`` raises
   :class:`~repro.errors.ProbeTimeoutError` (the oversized result is
   discarded — a deadline is a promise to the caller, not a hint).
4. **Retry** — transient failures re-enter at step 2 while the
   :class:`~repro.resilience.RetryPolicy` budget lasts, charging
   exponential backoff to the ``resilience.backoff_s`` counter in
   simulated time (no real sleeping).

Invariant: when retries eventually succeed, the returned
:class:`~repro.core.ptas.ProbeResult` is bit-identical to a fault-free
probe — solvers are deterministic and a failed attempt leaves no
partial state behind (caches insert only on success).  This is the
property the hypothesis suite in ``tests/resilience`` pins down.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.instance import Instance
from repro.core.probe_cache import as_cache
from repro.errors import ProbeTimeoutError
from repro.observability import context as obs
from repro.resilience.admission import AdmissionController
from repro.resilience.faults import FaultInjector, fault_scope
from repro.resilience.retry import RetryPolicy

if TYPE_CHECKING:
    from repro.core.probe_cache import ProbeCache
    from repro.core.ptas import DPSolver, ProbeResult


@dataclass(frozen=True)
class ResiliencePolicy:
    """What the executors do when a probe fails (or must not start).

    All four parts are optional; an all-``None`` policy behaves exactly
    like no policy (a plain ``probe_target`` call).
    """

    faults: Optional[FaultInjector] = None
    retry: Optional[RetryPolicy] = None
    deadline_s: Optional[float] = None
    admission: Optional[AdmissionController] = None

    def run_probe(
        self,
        instance: Instance,
        target: int,
        eps: float,
        dp_solver: "DPSolver",
        cache: Optional["ProbeCache"] = None,
    ) -> "ProbeResult":
        """One probe under this policy; see the module docstring."""
        from repro.core.ptas import probe_target

        if self.admission is not None:
            # Rounding is memoized (and re-used by the probe below), so
            # the admission estimate costs arithmetic only — and runs
            # strictly before any table allocation.  admit_probe is
            # model-aware: multi-fill models are charged every fill.
            rounded = as_cache(cache).rounding(instance, int(target), eps)
            self.admission.admit_probe(rounded, target=int(target))

        retry = self.retry if self.retry is not None else RetryPolicy(max_attempts=1)
        attempt = 0
        while True:
            attempt += 1
            try:
                solver = dp_solver
                if self.faults is not None:
                    self.faults.check("probe", instance=instance, target=int(target))
                    solver = self.faults.wrap_solver(
                        dp_solver, site="dp", instance=instance
                    )
                start = time.perf_counter()
                # fault_scope lets nested check sites (a fallback
                # chain's per-member wrappers) key on this instance.
                with fault_scope(instance):
                    probe = probe_target(instance, target, eps, solver, cache=cache)
                elapsed = time.perf_counter() - start
                if self.deadline_s is not None and elapsed > self.deadline_s:
                    obs.count("resilience.timeout")
                    raise ProbeTimeoutError(
                        f"probe at T={target} took {elapsed:.4f}s, over the "
                        f"{self.deadline_s}s deadline"
                    )
                return probe
            except Exception as exc:
                if not retry.should_retry(exc, attempt):
                    raise
                obs.count("resilience.retry")
                obs.count("resilience.backoff_s", retry.backoff_s(attempt))
