"""The paper's contribution: data-partitioned GPU DP (Algorithms 4 + 5).

Execution structure, faithful to §III-C/D/E:

1. The probe's :class:`~repro.dptable.plan.ProbePlan` supplies the
   blocked schedule for the requested ``dim`` (GPU-DIM3..GPU-DIM9):
   divisor, equal-block partition
   (:class:`~repro.dptable.partition.BlockPartition`), block-contiguous
   memory layout (:class:`~repro.dptable.layout.BlockedLayout`), and
   one :class:`~repro.dptable.plan.KernelGroup` per
   (block, in-block-level) — all memoized on the plan and shared
   across probes via the plan cache.
2. The engine *interprets* that schedule: it walks block-levels in
   order; blocks of one level are independent and are distributed
   cyclically over ``num_streams`` CUDA streams (Alg. 4 line 31 — 4
   streams "provides the best performance for the majority of problem
   instances").
3. Inside a block, one ``FindOPT`` kernel per in-block anti-diagonal
   level (kernels of the same block serialize on the block's stream —
   the block-local synchronization of §III-E); each thread handles one
   cell and dynamically launches ``FindValidSub`` + ``SetOPT`` children
   whose work is folded into the thread's time and whose launches are
   charged the device-launch overhead.
4. ``cudaDeviceSynchronize`` between block-levels.

Memory behaviour vs the naive port: locate scans touch
``cells_per_block / 2`` *contiguous* elements instead of ``sigma / 2``
strided ones, and scratch buffers are block-scope instead of
table-scope — both §III-E claims, both visible in the metrics.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.dp_common import DPResult
from repro.dptable.plan import ProbePlan
from repro.extensions.residency import BlockResidency
from repro.engines.base import (
    EngineRun,
    degenerate_run,
    fill_plan,
    note_engine_run,
    resolve_plan,
)
from repro.engines.costmodel import CostConstants, DEFAULT_COSTS
from repro.gpusim.engine import GpuSimulator
from repro.gpusim.kernel import KernelSpec
from repro.gpusim.memory import AccessPattern
from repro.gpusim.spec import DeviceSpec, KEPLER_K40


class GpuPartitionedEngine:
    """Algorithms 4+5 with partitioning along ``dim`` dimensions."""

    supports_sparsify = True

    def __init__(
        self,
        dim: int = 6,
        num_streams: int = 4,
        spec: DeviceSpec = KEPLER_K40,
        costs: CostConstants = DEFAULT_COSTS,
        check_memory: bool = True,
        block_residency: bool = False,
        plan_cache=None,
        fill_fabric=None,
        sparsify: bool = False,
    ) -> None:
        self.dim = dim
        self.num_streams = num_streams
        self.spec = spec
        self.costs = costs
        self.check_memory = check_memory
        # Future work (paper §V): keep only the blocks a block-level's
        # dependencies touch resident on the device instead of the
        # whole table.  Off by default to match the paper's published
        # implementation; the future-work bench turns it on.
        self.block_residency = block_residency
        self.plan_cache = plan_cache
        # Optional repro.parallel.fabric.BlockExecutor: route the real
        # table fill through host processes (simulated costs unchanged).
        self.fill_fabric = fill_fabric
        self.sparsify = bool(sparsify)
        self.total_simulated_s = 0.0
        self.runs: list[EngineRun] = []

    @property
    def name(self) -> str:
        """Engine label, e.g. ``gpu-dim6`` (the paper's GPU-DIM6)."""
        return f"gpu-dim{self.dim}"

    # -- execution ------------------------------------------------------------------

    def run(
        self,
        counts: Sequence[int],
        class_sizes: Sequence[int],
        target: int,
        configs: Optional[np.ndarray] = None,
        plan: Optional[ProbePlan] = None,
        model_token: Optional[tuple] = None,
        sparsify: Optional[bool] = None,
    ) -> EngineRun:
        """Execute one DP probe as the blocked two-level schedule."""
        if len(counts) == 0:
            run = degenerate_run(self.name)
            self.runs.append(run)
            return run
        sparse = self.sparsify if sparsify is None else bool(sparsify)
        plan = resolve_plan(
            self.plan_cache, counts, class_sizes, target, configs, plan,
            model_token=model_token,
        )
        geometry = plan.geometry
        blocked = plan.blocked(self.dim)
        partition = blocked.partition
        layout = blocked.layout  # the Alg. 4 reorg, materialised on the plan

        # Real DP values in the engine's own order: the sequential path
        # verifies no dependency is violated by the blocked schedule;
        # the fabric path executes the same waves process-parallel.
        table = fill_plan(
            plan, self.fill_fabric, blocked_dim=self.dim, sparsify=sparse
        )
        dp_result = DPResult(
            table=table.reshape(geometry.shape), configs=plan.configs
        )

        # -- simulated execution --------------------------------------------------
        op_time = self.spec.op_time_s
        # Locate scans stay inside the block: contiguous (coalesced)
        # storage of cells_per_block cells; also charge the scan's
        # compare ops as compute (the per-thread loop of Alg.5 l.26-28).
        scan_elems_per_cell = plan.scan_elements(
            partition.cells_per_block, sparsify=sparse
        )
        cell_compute = (
            plan.thread_ops(self.costs, sparsify=sparse)
            + scan_elems_per_cell * self.costs.gpu_scan_ops_per_element
        ) * op_time

        sim = GpuSimulator(self.spec, check_memory=self.check_memory)
        block_bytes = partition.cells_per_block * 8
        # Device-resident DP values: the whole table per the paper's
        # implementation, or only the dependency-reachable blocks when
        # the residency extension is on.
        residency = None
        table_resident_bytes = geometry.size * 8
        if self.block_residency:
            residency = BlockResidency(partition, plan.configs)
            table_resident_bytes = residency.peak_resident_bytes()
        reorg_elements = geometry.size  # one streaming pass for the Alg.4 reorg
        sim.launch(
            KernelSpec(
                name="reorganize",
                thread_times=np.full(
                    min(geometry.size, self.spec.total_cores), 2 * op_time
                ),
                mem_elements=2 * reorg_elements,
                mem_pattern=AccessPattern.COALESCED,
            ),
            stream=0,
        )
        sim.synchronize()

        for level_kernels in blocked.by_block_level:
            # Blocks of one level go round-robin into the streams; a
            # block's own kernels serialize on its stream because they
            # are launched back to back into it.
            stream_of_block: dict[int, int] = {}
            next_stream = 0
            for kernel_group in level_kernels:
                bid, cells = kernel_group.block_id, kernel_group.cells
                if bid not in stream_of_block:
                    stream_of_block[bid] = next_stream % self.num_streams
                    next_stream += 1
                kernel = KernelSpec(
                    name="FindOPT",
                    thread_times=cell_compute[cells],
                    mem_elements=int(scan_elems_per_cell[cells].sum()),
                    mem_pattern=AccessPattern.COALESCED,
                    dynamic_children=2 * int(cells.size),
                    mem_footprint_bytes=table_resident_bytes
                    + block_bytes
                    + int(plan.candidates[cells].max()) * 8,
                )
                sim.launch(kernel, stream=stream_of_block[bid])
            sim.synchronize()  # block-level barrier (Alg. 4 lines 29-31)

        run = EngineRun(
            engine=self.name,
            dp_result=dp_result,
            simulated_s=sim.now,
            metrics={
                **sim.metrics.as_dict(),
                "dim": self.dim,
                "divisor": partition.divisor,
                "block_shape": partition.block_shape,
                "num_blocks": partition.num_blocks,
                "cells_per_block": partition.cells_per_block,
                "num_block_levels": partition.num_block_levels,
                "num_streams": self.num_streams,
                "total_candidates": plan.total_candidates,
                "total_valid": int(plan.work_valid(sparse).sum()),
                "scan_scope": partition.cells_per_block,
                "sparsify": sparse,
                "strided_span_example": layout.strided_span(
                    (0,) * geometry.ndim
                ),
                "block_residency": self.block_residency,
                "table_resident_bytes": table_resident_bytes,
                "residency_savings": (
                    residency.savings_ratio() if residency is not None else 0.0
                ),
            },
        )
        self.total_simulated_s += run.simulated_s
        self.runs.append(run)
        note_engine_run(run)
        return run

    def __call__(
        self,
        counts: Sequence[int],
        class_sizes: Sequence[int],
        target: int,
        configs: Optional[np.ndarray] = None,
        model_token: Optional[tuple] = None,
        sparsify: Optional[bool] = None,
    ) -> DPResult:
        """DPSolver protocol for the PTAS drivers."""
        return self.run(
            counts,
            class_sizes,
            target,
            configs,
            model_token=model_token,
            sparsify=sparsify,
        ).dp_result
