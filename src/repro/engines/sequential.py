"""Serial PTAS engine — Algorithm 1+2 on one CPU core.

The baseline the OpenMP implementation of [1] was originally measured
against.  The paper omits it from its own comparison ("the performance
of the sequential PTAS was already compared against the OpenMP
implementation in [1]"); we keep it because it anchors the cost model
(OpenMP at P threads must approach the serial time / P for
compute-bound levels — asserted in tests) and the examples use it.

Like every engine, this is an *interpreter* of a
:class:`~repro.dptable.plan.ProbePlan`: the plan owns the wavefront
schedule and per-cell work profile (shared across probes via the
:class:`~repro.core.probe_cache.PlanCache`); the engine keeps only its
cost semantics — here, one core executing every op in sequence.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.dp_common import DPResult
from repro.cpusim.openmp import OpenMPModel
from repro.cpusim.spec import CpuSpec, XEON_E5_2697V3_DUAL
from repro.dptable.plan import ProbePlan
from repro.engines.base import (
    EngineRun,
    degenerate_run,
    fill_by_groups,
    note_engine_run,
    resolve_plan,
)
from repro.engines.costmodel import CostConstants, DEFAULT_COSTS


class SequentialEngine:
    """One-core execution of the wavefront DP.

    Also usable as a :class:`~repro.core.ptas.DPSolver` via
    :meth:`__call__`; simulated time accumulates across calls in
    ``total_simulated_s`` so the PTAS drivers can report per-instance
    totals.

    ``sparsify`` (default off — engines are exact-fill baselines)
    gathers over the plan's dominance-pruned maximal subset with
    clipped predecessors; tables and simulated cost accounting both
    reflect the set that really ran, and results stay bit-identical.
    """

    supports_sparsify = True

    def __init__(
        self,
        spec: CpuSpec = XEON_E5_2697V3_DUAL,
        costs: CostConstants = DEFAULT_COSTS,
        plan_cache=None,
        sparsify: bool = False,
    ) -> None:
        self.spec = spec
        self.costs = costs
        self.plan_cache = plan_cache
        self.sparsify = bool(sparsify)
        self.total_simulated_s = 0.0
        self.runs: list[EngineRun] = []

    @property
    def name(self) -> str:
        """Engine label used in records and reports."""
        return "serial"

    def run(
        self,
        counts: Sequence[int],
        class_sizes: Sequence[int],
        target: int,
        configs: Optional[np.ndarray] = None,
        plan: Optional[ProbePlan] = None,
        model_token: Optional[tuple] = None,
        sparsify: Optional[bool] = None,
    ) -> EngineRun:
        """Execute one DP probe; returns values plus simulated time."""
        if len(counts) == 0:
            run = degenerate_run(self.name)
            self.runs.append(run)
            return run
        sparse = self.sparsify if sparsify is None else bool(sparsify)
        plan = resolve_plan(
            self.plan_cache, counts, class_sizes, target, configs, plan,
            model_token=model_token,
        )
        geometry = plan.geometry

        fill_configs = plan.sparse_configs if sparse else plan.configs
        table = fill_by_groups(
            geometry, fill_configs, plan.level_groups(), clipped=sparse
        )
        dp_result = DPResult(
            table=table.reshape(geometry.shape), configs=plan.configs
        )

        # Serial cost: every op in sequence; scans run from cache.
        ops = plan.thread_ops(self.costs, sparsify=sparse)
        scan = (
            plan.scan_elements(geometry.size, sparsify=sparse)
            * self.costs.scan_ops_per_element
            * self.costs.cpu_scan_elements_cached
        )
        total_valid = int(plan.work_valid(sparse).sum())
        model = OpenMPModel(self.spec, threads=1)
        model.parallel_for(
            (ops + scan) * self.spec.op_time_s,
            mem_bytes=total_valid * 8,
        )

        run = EngineRun(
            engine=self.name,
            dp_result=dp_result,
            simulated_s=model.elapsed_s,
            metrics={
                "regions": model.regions,
                "total_candidates": plan.total_candidates,
                "total_valid": total_valid,
                "sparsify": sparse,
            },
        )
        self.total_simulated_s += run.simulated_s
        self.runs.append(run)
        note_engine_run(run)
        return run

    def __call__(
        self,
        counts: Sequence[int],
        class_sizes: Sequence[int],
        target: int,
        configs: Optional[np.ndarray] = None,
        model_token: Optional[tuple] = None,
        sparsify: Optional[bool] = None,
    ) -> DPResult:
        """DPSolver protocol: used directly by the PTAS drivers."""
        return self.run(
            counts,
            class_sizes,
            target,
            configs,
            model_token=model_token,
            sparsify=sparsify,
        ).dp_result
