"""Serial PTAS engine — Algorithm 1+2 on one CPU core.

The baseline the OpenMP implementation of [1] was originally measured
against.  The paper omits it from its own comparison ("the performance
of the sequential PTAS was already compared against the OpenMP
implementation in [1]"); we keep it because it anchors the cost model
(OpenMP at P threads must approach the serial time / P for
compute-bound levels — asserted in tests) and the examples use it.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.dp_common import DPResult
from repro.cpusim.openmp import OpenMPModel
from repro.cpusim.spec import CpuSpec, XEON_E5_2697V3_DUAL
from repro.dptable.antidiagonal import wavefront
from repro.engines.base import EngineRun, degenerate_run, fill_by_groups, note_engine_run
from repro.engines.costmodel import CostConstants, DEFAULT_COSTS, WorkProfile


class SequentialEngine:
    """One-core execution of the wavefront DP.

    Also usable as a :class:`~repro.core.ptas.DPSolver` via
    :meth:`__call__`; simulated time accumulates across calls in
    ``total_simulated_s`` so the PTAS drivers can report per-instance
    totals.
    """

    def __init__(
        self,
        spec: CpuSpec = XEON_E5_2697V3_DUAL,
        costs: CostConstants = DEFAULT_COSTS,
    ) -> None:
        self.spec = spec
        self.costs = costs
        self.total_simulated_s = 0.0
        self.runs: list[EngineRun] = []

    @property
    def name(self) -> str:
        """Engine label used in records and reports."""
        return "serial"

    def run(
        self,
        counts: Sequence[int],
        class_sizes: Sequence[int],
        target: int,
        configs: Optional[np.ndarray] = None,
    ) -> EngineRun:
        """Execute one DP probe; returns values plus simulated time."""
        if len(counts) == 0:
            run = degenerate_run(self.name)
            self.runs.append(run)
            return run
        profile = WorkProfile(counts, class_sizes, target, configs)
        geometry = profile.geometry

        table = fill_by_groups(geometry, profile.configs, wavefront(geometry))
        dp_result = DPResult(
            table=table.reshape(geometry.shape), configs=profile.configs
        )

        # Serial cost: every op in sequence; scans run from cache.
        ops = profile.thread_ops(self.costs)
        scan = (
            profile.scan_elements(geometry.size)
            * self.costs.scan_ops_per_element
            * self.costs.cpu_scan_elements_cached
        )
        model = OpenMPModel(self.spec, threads=1)
        model.parallel_for(
            (ops + scan) * self.spec.op_time_s,
            mem_bytes=int(profile.total_valid) * 8,
        )

        run = EngineRun(
            engine=self.name,
            dp_result=dp_result,
            simulated_s=model.elapsed_s,
            metrics={
                "regions": model.regions,
                "total_candidates": profile.total_candidates,
                "total_valid": profile.total_valid,
            },
        )
        self.total_simulated_s += run.simulated_s
        self.runs.append(run)
        note_engine_run(run)
        return run

    def __call__(
        self,
        counts: Sequence[int],
        class_sizes: Sequence[int],
        target: int,
        configs: Optional[np.ndarray] = None,
    ) -> DPResult:
        """DPSolver protocol: used directly by the PTAS drivers."""
        return self.run(counts, class_sizes, target, configs).dp_result
