"""The naive GPU port — the strawman §III measures at ~100x slower.

A direct translation of the OpenMP structure: one kernel per
anti-diagonal level, one thread per cell, each thread enumerating its
candidate sub-configurations and locating every valid one by scanning
the whole row-major table in *global memory*.  Nothing is partitioned,
so the engine exhibits all three §III-B pathologies that motivate the
paper:

* locate scans walk ``sigma/2`` elements of scattered (strided) global
  memory per valid sub-configuration — charged through the
  latency-bound random-access bandwidth;
* cells of wildly different workloads share warps — full divergence
  cost (warp pays its slowest thread);
* per-cell candidate buffers are allocated at table scope, so large
  probes exceed device memory (:class:`~repro.errors.SimulationError`),
  reproducing the out-of-memory failures §III-C describes.

The level schedule and work arrays come from the probe's
:class:`~repro.dptable.plan.ProbePlan`; the engine keeps only the
kernel-per-level launch structure and its memory charges.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.dp_common import DPResult
from repro.dptable.plan import ProbePlan
from repro.engines.base import (
    EngineRun,
    degenerate_run,
    fill_by_groups,
    note_engine_run,
    resolve_plan,
)
from repro.engines.costmodel import CostConstants, DEFAULT_COSTS
from repro.gpusim.engine import GpuSimulator
from repro.gpusim.kernel import KernelSpec
from repro.gpusim.memory import AccessPattern
from repro.gpusim.spec import DeviceSpec, KEPLER_K40


class GpuNaiveEngine:
    """Direct GPU translation of Algorithm 2 (no data partitioning)."""

    supports_sparsify = True

    def __init__(
        self,
        spec: DeviceSpec = KEPLER_K40,
        costs: CostConstants = DEFAULT_COSTS,
        check_memory: bool = True,
        plan_cache=None,
        sparsify: bool = False,
    ) -> None:
        self.spec = spec
        self.costs = costs
        self.check_memory = check_memory
        self.plan_cache = plan_cache
        self.sparsify = bool(sparsify)
        self.total_simulated_s = 0.0
        self.runs: list[EngineRun] = []

    @property
    def name(self) -> str:
        """Engine label."""
        return "gpu-naive"

    def run(
        self,
        counts: Sequence[int],
        class_sizes: Sequence[int],
        target: int,
        configs: Optional[np.ndarray] = None,
        plan: Optional[ProbePlan] = None,
        model_token: Optional[tuple] = None,
        sparsify: Optional[bool] = None,
    ) -> EngineRun:
        """Execute one DP probe as one kernel per anti-diagonal level."""
        if len(counts) == 0:
            run = degenerate_run(self.name)
            self.runs.append(run)
            return run
        sparse = self.sparsify if sparsify is None else bool(sparsify)
        plan = resolve_plan(
            self.plan_cache, counts, class_sizes, target, configs, plan,
            model_token=model_token,
        )
        geometry = plan.geometry

        levels = plan.level_groups()
        fill_configs = plan.sparse_configs if sparse else plan.configs
        table = fill_by_groups(geometry, fill_configs, levels, clipped=sparse)
        dp_result = DPResult(
            table=table.reshape(geometry.shape), configs=plan.configs
        )

        # Per-thread compute (enumeration + SetOPT bookkeeping); the
        # locate scans are charged as strided memory traffic below.
        op_time = self.spec.op_time_s
        cell_compute = plan.thread_ops(self.costs, sparsify=sparse) * op_time
        scan_elements = plan.scan_elements(geometry.size, sparsify=sparse)

        sim = GpuSimulator(self.spec, check_memory=self.check_memory)
        table_bytes = geometry.size * 8
        for level_cells in levels:
            if level_cells.size == 0:
                continue
            # Table-scope candidate buffers: every thread holds its
            # candidate set simultaneously (the §III-C memory hazard).
            buffer_bytes = int(plan.candidates[level_cells].sum()) * 8
            kernel = KernelSpec(
                name=f"naive-lvl",
                thread_times=cell_compute[level_cells],
                mem_elements=int(scan_elements[level_cells].sum()),
                mem_pattern=AccessPattern.STRIDED,
                dynamic_children=2 * int(level_cells.size),
                mem_footprint_bytes=table_bytes + buffer_bytes,
            )
            sim.launch(kernel, stream=0)
            sim.synchronize()  # level barrier

        run = EngineRun(
            engine=self.name,
            dp_result=dp_result,
            simulated_s=sim.now,
            metrics={
                **sim.metrics.as_dict(),
                "total_candidates": plan.total_candidates,
                "total_valid": int(plan.work_valid(sparse).sum()),
                "scan_scope": geometry.size,
                "sparsify": sparse,
            },
        )
        self.total_simulated_s += run.simulated_s
        self.runs.append(run)
        note_engine_run(run)
        return run

    def __call__(
        self,
        counts: Sequence[int],
        class_sizes: Sequence[int],
        target: int,
        configs: Optional[np.ndarray] = None,
        model_token: Optional[tuple] = None,
        sparsify: Optional[bool] = None,
    ) -> DPResult:
        """DPSolver protocol for the PTAS drivers."""
        return self.run(
            counts,
            class_sizes,
            target,
            configs,
            model_token=model_token,
            sparsify=sparsify,
        ).dp_result
