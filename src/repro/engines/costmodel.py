"""Per-cell work characterization and the calibrated cost constants.

Algorithm 5 fixes what one DP cell ("configuration") costs:

* **FindValidSub** enumerates every vector below the cell —
  ``candidates(v) = prod(v_i + 1)`` trial vectors, each tested against
  the budget (the paper notes this enumeration is why "even the
  execution of a relatively small size DP problem can run out of
  memory", §III-C);
* **SetOPT** takes each *valid* sub-configuration —
  ``valid(v) = #{c in C : c <= v}`` of them — and locates its OPT value
  by scanning storage (Alg. 5 lines 26–28).  The scan scope is the
  engine's key difference: the whole table for the OpenMP baseline and
  the naive port (Alg. 2 lines 18–19), one *block* after
  data-partitioning (§III-E).

:class:`WorkProfile` computes ``candidates`` and ``valid`` for every
cell in vectorized passes.  :class:`CostConstants` holds every per-op
constant in one frozen, documented place; they were calibrated once so
the reproduced Table VII lands in the paper's bands (see EXPERIMENTS.md)
and are frozen for all experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from repro.dptable.partition import BlockPartition
from repro.dptable.plan import ProbePlan, build_probe_plan
from repro.errors import CalibrationError, DPError


@dataclass(frozen=True)
class CostConstants:
    """Calibrated per-operation costs (abstract ops; device specs turn
    them into seconds via their clock and ``cycles_per_op``).

    Attributes
    ----------
    candidate_ops:
        Abstract ops to generate and budget-test one candidate
        sub-configuration inside FindValidSub (vector subtract + dot
        against sizes, ~2 ops per dimension folded into one constant).
    scan_ops_per_element:
        Ops per storage element touched by the SetOPT locate scan
        (load + compare) on the CPU, whose scans vectorize and run from
        cache.
    gpu_scan_ops_per_element:
        Ops per scanned element on the GPU.  The in-block locate loop
        (Alg. 5 lines 26-28) is a serial per-thread loop of dependent
        loads and compares — several times the CPU's per-element cost;
        this asymmetry is what makes over-large blocks (GPU-DIM3's)
        expensive and drives the paper's block-size tradeoff.
    setopt_ops:
        Ops per *valid* sub-configuration outside the scan (min-reduce
        bookkeeping, Alg. 5 lines 29–32).
    cpu_scan_elements_cached:
        On the CPU the repeated table scans run from the last-level
        cache; this multiplier (<= 1) discounts the scan ops
        accordingly.  The GPU engines charge scans through the memory
        model instead (coalescing-aware), not through this constant.
    """

    candidate_ops: float = 6.0
    scan_ops_per_element: float = 3.0
    setopt_ops: float = 8.0
    gpu_scan_ops_per_element: float = 60.0
    cpu_scan_elements_cached: float = 1.0

    def __post_init__(self) -> None:
        for name in (
            "candidate_ops",
            "scan_ops_per_element",
            "setopt_ops",
            "gpu_scan_ops_per_element",
            "cpu_scan_elements_cached",
        ):
            if getattr(self, name) <= 0:
                raise CalibrationError(f"{name} must be positive")

    def with_overrides(self, **kwargs) -> "CostConstants":
        """Copy with some constants replaced (ablation benches use this)."""
        return replace(self, **kwargs)


#: The frozen constants used by every experiment.
DEFAULT_COSTS = CostConstants()


class WorkProfile:
    """Vectorized per-cell work quantities for one DP probe.

    All arrays are indexed by the cell's flat row-major table index.

    Since the probe-plan refactor this is a thin *view* over a
    :class:`~repro.dptable.plan.ProbePlan` — the plan owns the shared
    per-cell arrays (and may come from a
    :class:`~repro.core.probe_cache.PlanCache`); the profile keeps the
    probe's absolute quantities (``class_sizes``, ``target``) and the
    caller's configuration array identity.  Pass ``plan=`` to wrap an
    existing plan instead of building one.
    """

    def __init__(
        self,
        counts: Sequence[int],
        class_sizes: Sequence[int],
        target: int,
        configs: np.ndarray | None = None,
        plan: ProbePlan | None = None,
    ) -> None:
        self.counts = tuple(int(c) for c in counts)
        self.class_sizes = tuple(int(s) for s in class_sizes)
        if len(self.counts) != len(self.class_sizes):
            raise DPError("counts and class_sizes must have equal length")
        self.target = int(target)
        if plan is None:
            plan = build_probe_plan(self.counts, self.class_sizes, self.target, configs)
        self.plan = plan
        self.geometry = plan.geometry
        self.configs = configs if configs is not None else plan.configs

    # -- per-cell arrays (views into the plan) --------------------------------

    @property
    def levels(self) -> np.ndarray:
        """Anti-diagonal level of every cell."""
        return self.plan.level_schedule.levels

    @property
    def candidates(self) -> np.ndarray:
        """FindValidSub enumeration size per cell: ``prod(v_i + 1)``."""
        return self.plan.candidates

    @property
    def valid(self) -> np.ndarray:
        """Applicable configurations per cell: ``#{c in C : c <= v}``."""
        return self.plan.valid

    # -- aggregates ------------------------------------------------------------

    @property
    def total_candidates(self) -> int:
        """Sum of FindValidSub work over the whole table."""
        return self.plan.total_candidates

    @property
    def total_valid(self) -> int:
        """Sum of SetOPT work items over the whole table."""
        return self.plan.total_valid

    def partition(self, dim: int) -> BlockPartition:
        """The plan's memoized Algorithm 4 partition for ``dim``."""
        return self.plan.partition(dim)

    def thread_ops(self, costs: CostConstants) -> np.ndarray:
        """Per-cell compute ops *excluding* the locate scan.

        The scan is charged separately because its cost depends on the
        engine's storage layout (whole table vs block) and medium
        (cached CPU scan vs GPU global memory).
        """
        return self.plan.thread_ops(costs)

    def scan_elements(self, scan_scope: np.ndarray | int) -> np.ndarray:
        """Per-cell elements touched by locate scans.

        ``scan_scope`` is the storage size each scan walks (scalar, or
        per-cell array for block-local scans); the expected scan hits
        the target halfway through.
        """
        return self.plan.scan_elements(scan_scope)
