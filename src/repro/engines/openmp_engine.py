"""The OpenMP baseline engine — Ghalami & Grosu's Algorithm 2 on the Xeon model.

One-level parallelism: each anti-diagonal level is one
``parallel for`` over its cells with ``schedule(static)``; within a
cell the thread enumerates candidate sub-configurations and locates
each valid one by scanning the *entire* DP-table (Alg. 2 lines 18–19 —
the search the paper's data-partitioning scheme later confines to a
block).  Level barriers separate the regions.

The whole-table scan makes the per-cell cost grow with ``sigma``, so
the engine's simulated time is superlinear in table size — the reason
the OpenMP lines in Fig. 3(c) blow up on large tables while the
partitioned GPU stays moderate.

The level schedule and per-cell work arrays come from the probe's
:class:`~repro.dptable.plan.ProbePlan`; this engine contributes only
the ``parallel for`` cost semantics.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.dp_common import DPResult
from repro.cpusim.openmp import OpenMPModel
from repro.cpusim.spec import CpuSpec, XEON_E5_2697V3_DUAL
from repro.dptable.plan import ProbePlan
from repro.engines.base import (
    EngineRun,
    degenerate_run,
    fill_plan,
    note_engine_run,
    resolve_plan,
)
from repro.engines.costmodel import CostConstants, DEFAULT_COSTS


class OpenMPEngine:
    """Algorithm 2 on ``threads`` CPU threads (OMP16 / OMP28 in the paper)."""

    supports_sparsify = True

    def __init__(
        self,
        threads: int = 28,
        spec: CpuSpec = XEON_E5_2697V3_DUAL,
        costs: CostConstants = DEFAULT_COSTS,
        schedule: str = "static",
        plan_cache=None,
        fill_fabric=None,
        sparsify: bool = False,
    ) -> None:
        self.threads = threads
        self.spec = spec
        self.costs = costs
        self.schedule = schedule
        self.plan_cache = plan_cache
        # Optional repro.parallel.fabric.BlockExecutor: route the real
        # table fill through host processes (simulated costs unchanged).
        self.fill_fabric = fill_fabric
        self.sparsify = bool(sparsify)
        self.total_simulated_s = 0.0
        self.runs: list[EngineRun] = []

    @property
    def name(self) -> str:
        """Engine label, e.g. ``omp-28`` (the paper's OMP28)."""
        return f"omp-{self.threads}"

    def run(
        self,
        counts: Sequence[int],
        class_sizes: Sequence[int],
        target: int,
        configs: Optional[np.ndarray] = None,
        plan: Optional[ProbePlan] = None,
        model_token: Optional[tuple] = None,
        sparsify: Optional[bool] = None,
    ) -> EngineRun:
        """Execute one DP probe level by level on the CPU model."""
        if len(counts) == 0:
            run = degenerate_run(self.name)
            self.runs.append(run)
            return run
        sparse = self.sparsify if sparsify is None else bool(sparsify)
        plan = resolve_plan(
            self.plan_cache, counts, class_sizes, target, configs, plan,
            model_token=model_token,
        )
        geometry = plan.geometry

        levels = plan.level_groups()
        table = fill_plan(plan, self.fill_fabric, sparsify=sparse)
        dp_result = DPResult(
            table=table.reshape(geometry.shape), configs=plan.configs
        )

        # Per-cell cost: candidate enumeration + SetOPT bookkeeping +
        # whole-table locate scans (cached, so discounted).
        ops = plan.thread_ops(self.costs, sparsify=sparse)
        scan = (
            plan.scan_elements(geometry.size, sparsify=sparse)
            * self.costs.scan_ops_per_element
            * self.costs.cpu_scan_elements_cached
        )
        cell_costs = (ops + scan) * self.spec.op_time_s
        # Streamed traffic per cell: its scans touch valid * sigma/2
        # elements of 8 bytes; the shared-bandwidth ceiling caps how
        # fast 16 or 28 threads can co-scan.
        cell_bytes = plan.scan_elements(geometry.size, sparsify=sparse) * 8.0

        model = OpenMPModel(self.spec, threads=self.threads)
        worst_imbalance = 1.0
        for level_cells in levels:
            if level_cells.size == 0:
                continue
            result = model.parallel_for(
                cell_costs[level_cells],
                mem_bytes=int(cell_bytes[level_cells].sum()),
                schedule=self.schedule,
            )
            worst_imbalance = max(worst_imbalance, result.imbalance)

        run = EngineRun(
            engine=self.name,
            dp_result=dp_result,
            simulated_s=model.elapsed_s,
            metrics={
                "threads": self.threads,
                "regions": model.regions,
                "worst_level_imbalance": worst_imbalance,
                "total_candidates": plan.total_candidates,
                "total_valid": int(plan.work_valid(sparse).sum()),
                "scan_scope": geometry.size,
                "sparsify": sparse,
            },
        )
        self.total_simulated_s += run.simulated_s
        self.runs.append(run)
        note_engine_run(run)
        return run

    def __call__(
        self,
        counts: Sequence[int],
        class_sizes: Sequence[int],
        target: int,
        configs: Optional[np.ndarray] = None,
        model_token: Optional[tuple] = None,
        sparsify: Optional[bool] = None,
    ) -> DPResult:
        """DPSolver protocol for the PTAS drivers."""
        return self.run(
            counts,
            class_sizes,
            target,
            configs,
            model_token=model_token,
            sparsify=sparsify,
        ).dp_result
