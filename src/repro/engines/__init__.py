"""Execution engines: the paper's implementations on the simulated hardware.

Each engine *actually computes* the DP-table — in its own schedule order
via the shared group-fill kernel (:mod:`repro.engines.base`), so all
engines provably produce identical values — while simultaneously
charging simulated time to its hardware model:

* :class:`~repro.engines.sequential.SequentialEngine` — serial PTAS
  (Algorithm 1+2 on one core).
* :class:`~repro.engines.openmp_engine.OpenMPEngine` — the Ghalami–Grosu
  OpenMP baseline [1]: one ``parallel for`` per anti-diagonal level,
  whole-table sub-configuration search.
* :class:`~repro.engines.gpu_naive.GpuNaiveEngine` — the straight GPU
  port §III calls "about a hundred times slower": one kernel per level,
  strided whole-table searches, no partitioning.
* :class:`~repro.engines.gpu_partitioned.GpuPartitionedEngine` — the
  paper's contribution (Algorithms 4+5): data-partitioned blocks over
  four streams with two-level parallelism.
"""

from repro.engines.base import EngineRun, fill_by_groups
from repro.engines.costmodel import CostConstants, WorkProfile, DEFAULT_COSTS
from repro.engines.sequential import SequentialEngine
from repro.engines.openmp_engine import OpenMPEngine
from repro.engines.gpu_naive import GpuNaiveEngine
from repro.engines.gpu_partitioned import GpuPartitionedEngine
from repro.engines.hybrid import HybridEngine

__all__ = [
    "EngineRun",
    "fill_by_groups",
    "CostConstants",
    "WorkProfile",
    "DEFAULT_COSTS",
    "SequentialEngine",
    "OpenMPEngine",
    "GpuNaiveEngine",
    "GpuPartitionedEngine",
    "HybridEngine",
]
