"""PTAS-level orchestration on the simulated hardware (Table VII).

Combines a search strategy with an engine and accounts *instance-level*
simulated time:

* :func:`run_ptas_openmp` — plain bisection (Algorithm 1) on the OpenMP
  engine; probes are sequential, so the instance time is the sum of
  probe times.
* :func:`run_ptas_gpu` — the quarter split (Algorithm 3) on the
  partitioned GPU engine; the four segment probes of one iteration run
  *concurrently* on the device (four Hyper-Q process queues, four
  streams each — the paper's sixteen streams).  Concurrent time is
  bounded below by both the longest single probe (the span) and the
  total busy warp-time divided by the device's warp slots (the work);
  we charge ``max(span, work / slots)`` — the standard work/span bound,
  exact when the probes interleave ideally and pessimistic otherwise.

Both functions return a :class:`PtasRun` with the schedule, the
iteration count ("#itr" in Table VII), and the simulated runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.bounds import makespan_bounds
from repro.core.instance import Instance
from repro.core.probe_cache import ProbeCache
from repro.core.ptas import ProbeResult, PtasResult, probe_target
from repro.core.quarter_split import segment_targets
from repro.engines.base import EngineRun
from repro.engines.gpu_partitioned import GpuPartitionedEngine
from repro.engines.openmp_engine import OpenMPEngine
from repro.engines.sequential import SequentialEngine
from repro.errors import ReproError


@dataclass(frozen=True)
class PtasRun:
    """One PTAS execution on simulated hardware.

    ``iterations`` counts search rounds (one probe per round for
    bisection, up to four concurrent probes for the quarter split);
    ``simulated_s`` is the modelled wall time on the device/host;
    ``dp_table_sizes`` lists the sizes of every DP-table filled.
    """

    engine: str
    result: PtasResult
    simulated_s: float
    dp_table_sizes: tuple[int, ...]

    @property
    def iterations(self) -> int:
        """Search iterations ("#itr" of Table VII)."""
        return self.result.iterations

    @property
    def makespan(self) -> int:
        """Final schedule makespan."""
        return self.result.makespan


def run_ptas_openmp(
    instance: Instance,
    eps: float = 0.3,
    threads: int = 28,
    engine: Optional[OpenMPEngine] = None,
    cache: Optional[ProbeCache] = None,
) -> PtasRun:
    """Algorithm 1 with plain bisection on the OpenMP cost model.

    ``cache`` should be a ``ProbeCache(share_dp=False)`` when faithful
    per-probe simulated-time accounting matters: rounding and
    configuration enumeration are then reused (pure harness speedup)
    while the engine still fills — and charges — every probe.  A
    full ``ProbeCache()`` also skips the engine on repeated probes,
    which understates ``simulated_s`` relative to the paper's
    cacheless implementation.
    """
    from repro.core.bisection import bisection_search

    engine = engine or OpenMPEngine(threads=threads)
    result = bisection_search(instance, eps, dp_solver=engine, cache=cache)
    return PtasRun(
        engine=engine.name,
        result=result,
        simulated_s=engine.total_simulated_s,
        dp_table_sizes=tuple(r.table_size for r in engine.runs),
    )


def run_ptas_serial(
    instance: Instance,
    eps: float = 0.3,
    engine: Optional[SequentialEngine] = None,
    cache: Optional[ProbeCache] = None,
) -> PtasRun:
    """Algorithm 1 with plain bisection on a single simulated core.

    See :func:`run_ptas_openmp` for the ``cache`` accounting caveat.
    """
    from repro.core.bisection import bisection_search

    engine = engine or SequentialEngine()
    result = bisection_search(instance, eps, dp_solver=engine, cache=cache)
    return PtasRun(
        engine=engine.name,
        result=result,
        simulated_s=engine.total_simulated_s,
        dp_table_sizes=tuple(r.table_size for r in engine.runs),
    )


def _concurrent_time(runs: list[EngineRun], warp_slots: int) -> float:
    """Work/span bound for probes sharing one device (see module docstring)."""
    if not runs:
        return 0.0
    span = max(r.simulated_s for r in runs)
    busy = sum(float(r.metrics.get("warp_seconds_paid", 0.0)) for r in runs)
    return max(span, busy / warp_slots)


def run_ptas_gpu(
    instance: Instance,
    eps: float = 0.3,
    dim: int = 6,
    segments: int = 4,
    streams_per_segment: int = 4,
    engine: Optional[GpuPartitionedEngine] = None,
    cache: Optional[ProbeCache] = None,
) -> PtasRun:
    """Algorithm 3 (quarter split) on the partitioned GPU engine.

    Replicates :func:`repro.core.quarter_split.quarter_split_search` but
    groups each iteration's probes to charge them as concurrent device
    work.  The returned makespan is identical to the plain search
    (property-tested).

    One ``cache`` serves all four concurrent segment probes of an
    iteration; see :func:`run_ptas_openmp` for the ``share_dp``
    accounting caveat (pass ``ProbeCache(share_dp=False)`` to keep
    Table VII-faithful simulated times).
    """
    engine = engine or GpuPartitionedEngine(dim=dim, num_streams=streams_per_segment)
    bounds = makespan_bounds(instance)
    lb, ub = bounds.lower, bounds.upper

    probes: list[ProbeResult] = []
    best_accept: Optional[ProbeResult] = None
    iterations = 0
    simulated = 0.0

    while lb < ub:
        iterations += 1
        targets = segment_targets(lb, ub, segments)
        mark = len(engine.runs)
        round_probes = [
            probe_target(instance, t, eps, engine, cache=cache) for t in targets
        ]
        probes.extend(round_probes)
        simulated += _concurrent_time(engine.runs[mark:], engine.spec.warp_slots)

        accepted = [p for p in round_probes if p.accepted]
        rejected = [p for p in round_probes if not p.accepted]
        if accepted:
            lowest = min(accepted, key=lambda p: p.target)
            ub = lowest.target
            if best_accept is None or lowest.target <= best_accept.target:
                best_accept = lowest
        rejected_below = [p for p in rejected if p.target < ub]
        if rejected_below:
            lb = max(p.target for p in rejected_below) + 1
        elif not accepted:
            lb = max(p.target for p in round_probes) + 1

    if best_accept is None or best_accept.target != ub:
        mark = len(engine.runs)
        probe = probe_target(instance, ub, eps, engine, cache=cache)
        probes.append(probe)
        simulated += _concurrent_time(engine.runs[mark:], engine.spec.warp_slots)
        if not probe.accepted:
            raise ReproError(
                f"quarter split invariant violated: final target {ub} rejected"
            )
        best_accept = probe

    best_schedule = min(
        (p.schedule for p in probes if p.schedule is not None),
        key=lambda s: s.makespan,
    )
    result = PtasResult(
        schedule=best_schedule,
        eps=eps,
        iterations=iterations,
        probes=probes,
        final_target=best_accept.target,
    )
    return PtasRun(
        engine=engine.name,
        result=result,
        simulated_s=simulated,
        dp_table_sizes=tuple(r.table_size for r in engine.runs),
    )
