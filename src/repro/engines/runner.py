"""PTAS-level orchestration on the simulated hardware (Table VII).

One generic driver, :func:`run_ptas`, combines three registry/executor
building blocks:

1. resolve the backend (a name like ``"omp-28"`` / ``"gpu-dim6"`` via
   :mod:`repro.backends`, or an already-constructed engine);
2. pick a :class:`~repro.core.executor.ProbeExecutor` from the
   backend's concurrency capability — host backends charge each search
   round as the **sum** of its probe times
   (:class:`~repro.core.executor.SequentialExecutor`), device backends
   as the **work/span bound** ``max(span, work / warp_slots)``
   (:class:`~repro.core.executor.ConcurrentDeviceExecutor` — the four
   Hyper-Q process queues of the paper, four streams each);
3. run the *shared* search implementation from :mod:`repro.core`
   (bisection or quarter split) with that executor.

The named wrappers (:func:`run_ptas_openmp`, :func:`run_ptas_serial`,
:func:`run_ptas_gpu`) are exactly that — a registry lookup plus an
executor choice.  None of them owns a search loop anymore: the GPU
runner's former private copy of the quarter split (a divergence bug
waiting to happen) is gone, and every backend gains correct concurrent
accounting on either search for free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.backends import get_spec, resolve
from repro.core.executor import (
    ConcurrentDeviceExecutor,
    ProbeExecutor,
    SequentialExecutor,
    default_executor,
)
from repro.core.instance import Instance
from repro.core.probe_cache import ProbeCache
from repro.core.ptas import DPSolver, PtasResult, ptas_schedule
from repro.engines.gpu_partitioned import GpuPartitionedEngine


@dataclass(frozen=True)
class PtasRun:
    """One PTAS execution on simulated hardware.

    ``iterations`` counts search rounds (one probe per round for
    bisection, up to four concurrent probes for the quarter split);
    ``simulated_s`` is the modelled wall time on the device/host as
    charged by the executor; ``dp_table_sizes`` lists the sizes of
    every DP-table filled.
    """

    engine: str
    result: PtasResult
    simulated_s: float
    dp_table_sizes: tuple[int, ...]

    @property
    def iterations(self) -> int:
        """Search iterations ("#itr" of Table VII)."""
        return self.result.iterations

    @property
    def makespan(self) -> int:
        """Final schedule makespan."""
        return self.result.makespan


def run_ptas(
    instance: Instance,
    backend: Union[str, DPSolver] = "vectorized",
    search: str = "bisection",
    eps: float = 0.3,
    cache: Optional[ProbeCache] = None,
    executor: Optional[ProbeExecutor] = None,
) -> PtasRun:
    """Run the PTAS on any backend with capability-matched accounting.

    ``backend`` is a registry name (``"serial"``, ``"omp-28"``,
    ``"gpu-dim6"``, ``"vectorized"``, ...) or a constructed solver.
    ``executor`` defaults from the backend's capabilities: device
    engines get a :class:`ConcurrentDeviceExecutor` sized to their
    ``spec.warp_slots``, everything else a :class:`SequentialExecutor`.

    ``cache`` should be a ``ProbeCache(share_dp=False)`` when faithful
    per-probe simulated-time accounting matters: rounding and
    configuration enumeration are then reused (pure harness speedup)
    while the engine still fills — and charges — every probe.  A full
    ``ProbeCache()`` also skips the engine on repeated probes, which
    understates ``simulated_s`` relative to the paper's cacheless
    implementation.
    """
    solver = resolve(backend) if isinstance(backend, str) else backend
    if executor is None:
        executor = default_executor(solver)
    result = ptas_schedule(
        instance,
        eps=eps,
        dp_solver=solver,
        search=search,
        cache=cache,
        executor=executor,
    )
    runs = getattr(solver, "runs", None)
    if runs is not None:
        table_sizes = tuple(r.table_size for r in runs)
    else:
        table_sizes = tuple(p.rounded.table_size for p in result.probes)
    label = getattr(solver, "name", None) or (
        backend if isinstance(backend, str) else type(solver).__name__
    )
    return PtasRun(
        engine=label,
        result=result,
        simulated_s=executor.elapsed_s,
        dp_table_sizes=table_sizes,
    )


def run_ptas_openmp(
    instance: Instance,
    eps: float = 0.3,
    threads: int = 28,
    engine: Optional[DPSolver] = None,
    cache: Optional[ProbeCache] = None,
) -> PtasRun:
    """Algorithm 1 with plain bisection on the OpenMP cost model.

    Thin wrapper: registry lookup (``omp-<threads>``) + sequential
    executor; see :func:`run_ptas` for the ``cache`` accounting caveat.
    """
    solver = engine if engine is not None else resolve(f"omp-{threads}")
    return run_ptas(
        instance,
        backend=solver,
        search="bisection",
        eps=eps,
        cache=cache,
        executor=SequentialExecutor(),
    )


def run_ptas_serial(
    instance: Instance,
    eps: float = 0.3,
    engine: Optional[DPSolver] = None,
    cache: Optional[ProbeCache] = None,
) -> PtasRun:
    """Algorithm 1 with plain bisection on a single simulated core.

    Thin wrapper: registry lookup (``serial``) + sequential executor.
    """
    solver = engine if engine is not None else resolve("serial")
    return run_ptas(
        instance,
        backend=solver,
        search="bisection",
        eps=eps,
        cache=cache,
        executor=SequentialExecutor(),
    )


def run_ptas_gpu(
    instance: Instance,
    eps: float = 0.3,
    dim: int = 6,
    segments: int = 4,
    streams_per_segment: int = 4,
    engine: Optional[GpuPartitionedEngine] = None,
    cache: Optional[ProbeCache] = None,
) -> PtasRun:
    """Algorithm 3 (quarter split) on the partitioned GPU engine.

    Thin wrapper: registry lookup (``gpu-dim<dim>``) + concurrent
    device executor, so each iteration's segment probes are charged as
    concurrent device work; the search loop itself is the one shared
    :func:`~repro.core.quarter_split.quarter_split_search` (so the
    returned makespan is identical to the plain search —
    property-tested).

    One ``cache`` serves all four concurrent segment probes of an
    iteration; see :func:`run_ptas` for the ``share_dp`` accounting
    caveat (pass ``ProbeCache(share_dp=False)`` to keep Table
    VII-faithful simulated times).
    """
    from repro.core.quarter_split import quarter_split_search

    if engine is None:
        engine = resolve(f"gpu-dim{dim}", num_streams=streams_per_segment)
    executor = ConcurrentDeviceExecutor.for_engine(engine)
    result = quarter_split_search(
        instance,
        eps,
        dp_solver=engine,
        segments=segments,
        cache=cache,
        executor=executor,
    )
    return PtasRun(
        engine=engine.name,
        result=result,
        simulated_s=executor.elapsed_s,
        dp_table_sizes=tuple(r.table_size for r in engine.runs),
    )


def backend_label(backend: Union[str, DPSolver]) -> str:
    """Human-facing label for a backend name or instance.

    Registry names resolve to their canonical spec name; instances use
    their ``name`` attribute when present.
    """
    if isinstance(backend, str):
        return get_spec(backend).name
    return getattr(backend, "name", None) or type(backend).__name__
