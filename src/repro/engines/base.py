"""Shared engine infrastructure: the group-fill kernel and result type.

Every engine executes the DP in its own schedule order — wavefront
levels for the CPU engines, (block-level, in-block-level) groups for the
partitioned GPU engine.  :func:`fill_by_groups` is the one computation
kernel they all share: given any *topologically valid* sequence of cell
groups it fills the table with vectorized gathers, so each engine's
values really are produced in that engine's order (and therefore prove
the order is dependency-safe), yet no per-cell Python loop exists.

For each group and each configuration the kernel gathers the
predecessor values of every cell in the group at once
(``table_flat[prev_flat]``) and min-reduces across configurations —
``O(|C|)`` gathers of group size per group, ``O(|C| * sigma)`` total.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core.dp_common import (
    DPResult,
    UNREACHABLE,
    pick_table_dtype,
    unreachable_for,
    widen_table,
)
from repro.dptable.table import TableGeometry
from repro.errors import DPError
from repro.observability import context as obs


def fill_by_groups(
    geometry: TableGeometry,
    configs: np.ndarray,
    groups: Iterable[np.ndarray],
    clipped: bool = False,
) -> np.ndarray:
    """Fill the DP-table processing ``groups`` of flat indices in order.

    Every dependency of a cell must lie in an earlier group (or be the
    origin).  Raises :class:`DPError` if a group reads a cell that no
    earlier group wrote and that is reachable — which would mean the
    schedule violated a dependency.  Returns the flat int64 table (the
    fill itself runs in the narrowest dtype holding the level bound
    and is widened at the end — bit-identical, less memory traffic).

    ``clipped=True`` switches to the cover recurrence of
    :mod:`repro.core.sparsify`: the predecessor of a cell ``u`` under
    configuration ``c`` is ``clip(u - c)``, and configurations whose
    support is disjoint from ``u``'s are skipped (they clip back to
    ``u`` itself).  Pass the plan's dominance-pruned
    :attr:`~repro.dptable.plan.ProbePlan.sparse_configs` as ``configs``
    in that mode — the clipped fixpoint over the maximal subset is
    bit-identical to the exact full-set fill.  Clipped predecessors sit
    at strictly lower levels, so the same dependency certification
    applies.
    """
    size = geometry.size
    dtype = pick_table_dtype(geometry.max_level)
    unreach = unreachable_for(dtype)
    table = np.full(size, unreach, dtype=dtype)
    table[0] = 0  # the origin: zero jobs need zero machines
    written = np.zeros(size, dtype=bool)
    written[0] = True

    shape = geometry.shape
    strides = np.asarray(geometry.strides, dtype=np.int64)
    covered = 0

    for group in groups:
        group = np.asarray(group, dtype=np.int64)
        if group.size == 0:
            continue
        covered += group.size
        # Origin may appear in the first group; it is already final.
        group = group[group != 0]
        if group.size == 0:
            continue
        coords = np.stack(np.unravel_index(group, shape), axis=1)
        best = np.full(group.size, unreach, dtype=dtype)
        for cfg in configs:
            if clipped:
                prev = np.maximum(coords - cfg, 0)
                ok = (prev != coords).any(axis=1)
            else:
                prev = coords - cfg
                ok = (prev >= 0).all(axis=1)
            if not ok.any():
                continue
            prev_flat = prev[ok] @ strides
            if not written[prev_flat].all():
                raise DPError(
                    "schedule violates a DP dependency: a group reads a cell "
                    "no earlier group produced"
                )
            vals = table[prev_flat]
            sel = np.flatnonzero(ok)  # unique per cell, plain fancy indexing is safe
            best[sel] = np.minimum(best[sel], vals)
        reachable = best < unreach
        table[group[reachable]] = best[reachable] + 1
        written[group] = True

    if covered < size:
        raise DPError(
            f"schedule covered {covered} of {size} cells; groups must tile the table"
        )
    obs.count("engine.fill.calls")
    obs.count("engine.fill.cells", covered)
    return widen_table(table)


def fill_plan(plan, fill_fabric=None, blocked_dim=None, sparsify: bool = False) -> np.ndarray:
    """One plan's flat int64 table, sequentially or on the fill fabric.

    With ``fill_fabric`` (a :class:`~repro.parallel.fabric.BlockExecutor`)
    the waves run process-parallel over a shared narrow-dtype arena;
    otherwise :func:`fill_by_groups` executes the same groups inline.
    Both paths are bit-identical (property-tested); the sequential path
    additionally certifies the schedule's dependency safety, which is
    why the fabric may trust it.

    ``blocked_dim=None`` selects the anti-diagonal level schedule;
    an integer selects the blocked ``(block-level, in-block-level)``
    groups for that block count.  ``sparsify=True`` gathers over the
    plan's dominance-pruned maximal subset with clipped predecessors —
    same table, fewer configuration passes.
    """
    if fill_fabric is not None:
        return fill_fabric.fill(plan, blocked_dim=blocked_dim, sparsify=sparsify)
    groups = (
        plan.level_groups()
        if blocked_dim is None
        else plan.blocked(blocked_dim).fill_groups
    )
    if sparsify:
        return fill_by_groups(
            plan.geometry, plan.sparse_configs, groups, clipped=True
        )
    return fill_by_groups(plan.geometry, plan.configs, groups)


def resolve_plan(
    plan_cache,
    counts: Sequence[int],
    class_sizes: Sequence[int],
    target: int,
    configs: np.ndarray | None,
    plan,
    model_token: tuple | None = None,
):
    """The probe's :class:`~repro.dptable.plan.ProbePlan`, one way or another.

    Engines call this at the top of :meth:`run`: an explicitly supplied
    ``plan`` wins (the hybrid engine hands its plan down to the engine
    it dispatched to); otherwise the engine's own ``plan_cache`` — or,
    when it has none, the process-wide
    :func:`~repro.core.probe_cache.default_plan_cache` — serves the
    lookup.  Plans are pure structure, so sharing them is always sound;
    see :class:`~repro.core.probe_cache.PlanCache`.
    """
    if plan is not None:
        return plan
    if plan_cache is None:
        from repro.core.probe_cache import default_plan_cache

        plan_cache = default_plan_cache()
    return plan_cache.plan(
        tuple(int(c) for c in counts),
        tuple(int(s) for s in class_sizes),
        int(target),
        configs,
        model_token=model_token,
    )


def note_engine_run(run: "EngineRun") -> None:
    """Report one engine probe to the ambient tracer (no-op untraced).

    Called by every engine at the end of :meth:`run` so PTAS-level
    traces can attribute simulated hardware time per engine without
    the engines knowing about the tracer's lifetime.
    """
    obs.count(f"engine.{run.engine}.probes")
    obs.count(f"engine.{run.engine}.simulated_s", run.simulated_s)


def degenerate_run(engine: str) -> "EngineRun":
    """Run for the no-long-jobs case: a 0-d table, zero simulated time.

    Every engine returns this when the rounding step produced no job
    classes (all jobs short); the PTAS then decides feasibility from
    the short-job packing alone.
    """
    from repro.core.dp_common import empty_dp_result

    run = EngineRun(engine=engine, dp_result=empty_dp_result(), simulated_s=0.0)
    note_engine_run(run)
    return run


@dataclass(frozen=True)
class EngineRun:
    """What one engine produced for one DP probe.

    Attributes
    ----------
    engine: engine label ("openmp-28", "gpu-dim6", ...).
    dp_result: the (real, verified-identical) DP values.
    simulated_s: simulated hardware seconds for the probe.
    metrics: engine-specific counters (utilization, transactions,
        imbalance, kernel counts, ...), plain dict for the records layer.
    """

    engine: str
    dp_result: DPResult
    simulated_s: float
    metrics: Mapping[str, object] = field(default_factory=dict)

    @property
    def table_size(self) -> int:
        """DP-table size ``sigma`` (the x-axis of Fig. 3)."""
        return int(np.prod(self.dp_result.shape)) if self.dp_result.shape else 1
