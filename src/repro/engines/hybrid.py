"""Hybrid engine: route each DP probe to the cheaper device.

The practical upshot of Fig. 3: small tables belong on the CPU, large
ones on the partitioned GPU — and one PTAS run contains *both* kinds of
probe (early bisection targets yield small tables, later ones large).
:class:`HybridEngine` predicts each probe's cost on both devices from
the cheap side of the cost model (no simulation needed: total candidate
work, scan volume, level structure) and dispatches accordingly, the
policy a production deployment of the paper's system would use.

The predictor is intentionally simple — the dominant cost terms only —
and is validated in tests: its *choices* must match the simulated
outcome (which engine actually turns out cheaper) on the vast majority
of probes, which is what matters; exact time prediction does not.

The probe's :class:`~repro.dptable.plan.ProbePlan` is resolved once
here and handed down to whichever engine wins the prediction, so a
routed probe never rebuilds its schedule; the predictors read the
plan's work arrays and its memoized ``partition(dim)`` directly
(:class:`~repro.engines.costmodel.WorkProfile` exposes the same
surface, so either satisfies them).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.dp_common import DPResult
from repro.cpusim.spec import CpuSpec, XEON_E5_2697V3_DUAL
from repro.dptable.plan import ProbePlan
from repro.engines.base import EngineRun, degenerate_run, resolve_plan
from repro.engines.costmodel import CostConstants, DEFAULT_COSTS
from repro.engines.gpu_partitioned import GpuPartitionedEngine
from repro.engines.openmp_engine import OpenMPEngine
from repro.gpusim.spec import DeviceSpec, KEPLER_K40


class HybridEngine:
    """Dispatch probes between the OpenMP and partitioned-GPU engines."""

    supports_sparsify = True

    def __init__(
        self,
        dim: int = 6,
        threads: int = 28,
        cpu_spec: CpuSpec = XEON_E5_2697V3_DUAL,
        gpu_spec: DeviceSpec = KEPLER_K40,
        costs: CostConstants = DEFAULT_COSTS,
        plan_cache=None,
        fill_fabric=None,
        sparsify: bool = False,
    ) -> None:
        # The fabric (repro.parallel.fabric.BlockExecutor) threads down
        # to both sub-engines: whichever wins the prediction routes its
        # real table fill through the same shared worker pool.  The
        # sparsify knob threads down the same way so the winner fills
        # (and charges) the dominance-pruned set.
        self.cpu_engine = OpenMPEngine(
            threads=threads,
            spec=cpu_spec,
            costs=costs,
            plan_cache=plan_cache,
            fill_fabric=fill_fabric,
            sparsify=sparsify,
        )
        self.gpu_engine = GpuPartitionedEngine(
            dim=dim,
            spec=gpu_spec,
            costs=costs,
            plan_cache=plan_cache,
            fill_fabric=fill_fabric,
            sparsify=sparsify,
        )
        self.costs = costs
        self.dim = dim
        self.plan_cache = plan_cache
        self.fill_fabric = fill_fabric
        self.sparsify = bool(sparsify)
        self.choices: list[str] = []
        self.runs: list[EngineRun] = []

    @property
    def name(self) -> str:
        """Engine label."""
        return f"hybrid-omp{self.cpu_engine.threads}-dim{self.dim}"

    @property
    def total_simulated_s(self) -> float:
        """Simulated seconds across both devices."""
        return self.cpu_engine.total_simulated_s + self.gpu_engine.total_simulated_s

    # -- cost prediction ---------------------------------------------------------

    def predict_cpu_s(self, profile) -> float:
        """Dominant CPU terms: compute over threads vs shared-bandwidth floor.

        ``profile`` is a :class:`~repro.dptable.plan.ProbePlan` or a
        :class:`~repro.engines.costmodel.WorkProfile` (same surface).
        """
        spec = self.cpu_engine.spec
        ops = float(profile.thread_ops(self.costs).sum())
        scan = float(profile.scan_elements(profile.geometry.size).sum())
        compute = (
            (ops + scan * self.costs.scan_ops_per_element * self.costs.cpu_scan_elements_cached)
            * spec.op_time_s
            / self.cpu_engine.threads
        )
        memory = scan * 8.0 / spec.mem_bandwidth_bytes_per_s
        barriers = (profile.geometry.max_level + 1) * spec.fork_join_overhead_s
        return max(compute, memory) + barriers

    def predict_gpu_s(self, profile) -> float:
        """Dominant GPU terms: lane work at model utilisation + kernel chain."""
        spec = self.gpu_engine.spec
        partition = profile.partition(self.dim)
        ops = float(profile.thread_ops(self.costs).sum())
        scan = float(
            profile.scan_elements(partition.cells_per_block).sum()
        ) * self.costs.gpu_scan_ops_per_element
        # Lane-seconds spread over the device at a conservative
        # utilisation matching the simulator's mid-size behaviour.
        lane_s = (ops + scan) * spec.op_time_s
        throughput = lane_s / (spec.total_cores * 0.25)
        # Kernel chain: blocks serialize per stream, levels serialize.
        kernels = partition.num_blocks * partition.num_inblock_levels
        chain = (
            kernels
            / max(1, self.gpu_engine.num_streams)
            * (spec.kernel_launch_overhead_s + spec.dynamic_sync_overhead_s)
        )
        return throughput + chain

    # -- execution -----------------------------------------------------------------

    def run(
        self,
        counts: Sequence[int],
        class_sizes: Sequence[int],
        target: int,
        configs: Optional[np.ndarray] = None,
        plan: Optional[ProbePlan] = None,
        model_token: Optional[tuple] = None,
        sparsify: Optional[bool] = None,
    ) -> EngineRun:
        """Route one probe to the predicted-cheaper engine and run it."""
        if len(counts) == 0:
            run = degenerate_run(self.name)
            self.runs.append(run)
            return run
        plan = resolve_plan(
            self.plan_cache, counts, class_sizes, target, configs, plan,
            model_token=model_token,
        )
        cpu_pred = self.predict_cpu_s(plan)
        gpu_pred = self.predict_gpu_s(plan)
        if cpu_pred <= gpu_pred:
            self.choices.append("cpu")
            run = self.cpu_engine.run(
                counts, class_sizes, target, plan.configs, plan=plan,
                sparsify=sparsify,
            )
        else:
            self.choices.append("gpu")
            run = self.gpu_engine.run(
                counts, class_sizes, target, plan.configs, plan=plan,
                sparsify=sparsify,
            )
        self.runs.append(run)
        return run

    def __call__(
        self,
        counts: Sequence[int],
        class_sizes: Sequence[int],
        target: int,
        configs: Optional[np.ndarray] = None,
        model_token: Optional[tuple] = None,
        sparsify: Optional[bool] = None,
    ) -> DPResult:
        """DPSolver protocol for the PTAS drivers."""
        return self.run(
            counts,
            class_sizes,
            target,
            configs,
            model_token=model_token,
            sparsify=sparsify,
        ).dp_result
