"""Lower and upper bounds on the optimal makespan (Algorithm 1, lines 2–3).

The PTAS bisects the target makespan over ``[LB, UB]`` where::

    LB = max( ceil(sum(t) / m),  max(t) )
    UB = ceil(sum(t) / m) + max(t)

``LB`` is valid because the optimum can be no smaller than the average
machine load nor than the largest single job; ``UB`` is valid because
Graham list scheduling always achieves ``avg + max`` (each machine's
load exceeds the average by less than one job).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.instance import Instance


@dataclass(frozen=True)
class MakespanBounds:
    """The bisection interval ``[lower, upper]`` for an instance."""

    lower: int
    upper: int

    def __post_init__(self) -> None:
        if self.lower < 1 or self.upper < self.lower:
            raise ValueError(f"invalid bounds [{self.lower}, {self.upper}]")

    @property
    def width(self) -> int:
        """``upper - lower`` — the initial bisection range size."""
        return self.upper - self.lower

    def quarter_points(self, segments: int = 4) -> list[tuple[int, int]]:
        """Split ``[lower, upper]`` into ``segments`` contiguous pieces.

        Implements Algorithm 3 lines 2–4: segment ``p`` spans
        ``[LB_p, UB_p]`` with ``LB_0 = lower``, ``UB_{last} = upper``,
        and interior boundaries at even fractions of the range.  The
        segments tile the interval: ``UB_p == LB_{p+1}``.
        """
        if segments < 1:
            raise ValueError(f"segments must be >= 1, got {segments}")
        points = [
            self.lower + (self.width * p) // segments for p in range(segments)
        ] + [self.upper]
        return [(points[p], points[p + 1]) for p in range(segments)]


def makespan_bounds(instance: Instance) -> MakespanBounds:
    """Compute ``[LB, UB]`` for ``instance`` per Algorithm 1.

    The formula above is the identical-machines bound; other models
    own their interval (speed-aware averages, job-count caps) and are
    dispatched to :meth:`repro.models.base.MachineModel.bounds`.
    """
    if instance.model != "identical":
        from repro.models import model_for

        return model_for(instance).bounds(instance)
    lb = max(instance.area_bound, instance.max_time)
    ub = instance.area_bound + instance.max_time
    return MakespanBounds(lower=lb, upper=ub)
