"""MULTIFIT (Coffman–Garey–Johnson) — bin-packing-based 13/11-approximation.

MULTIFIT bisects a machine *capacity* ``C`` and asks whether First Fit
Decreasing (FFD) packs all jobs into ``m`` bins of capacity ``C``.  It
is the strongest classical heuristic for ``P || Cmax`` and shares the
dual-approximation spirit of the PTAS (bisection over a capacity bound
with a packing oracle), which makes it a natural baseline in the
examples comparing solution quality.
"""

from __future__ import annotations

from typing import Optional

from repro.core.instance import Instance
from repro.core.schedule import Schedule
from repro.errors import InvalidInstanceError


def ffd_pack(instance: Instance, capacity: int) -> Optional[list[list[int]]]:
    """First Fit Decreasing into ``m`` bins of ``capacity``.

    Returns per-bin job lists when everything fits, ``None`` otherwise.
    Jobs are placed largest-first into the first bin with room; a linear
    scan over ``m`` bins is fine at baseline scale.
    """
    if capacity < 1:
        return None
    bins: list[list[int]] = [[] for _ in range(instance.machines)]
    loads = [0] * instance.machines
    for j in instance.sorted_indices_desc():
        t = instance.times[int(j)]
        for b in range(instance.machines):
            if loads[b] + t <= capacity:
                bins[b].append(int(j))
                loads[b] += t
                break
        else:
            return None
    return bins


def multifit_bound() -> float:
    """The proven MULTIFIT approximation ratio ``13/11`` (Yue, 1990)."""
    return 13.0 / 11.0


def multifit_schedule(instance: Instance, rounds: int = 20) -> Schedule:
    """Run MULTIFIT with ``rounds`` bisection steps over the capacity.

    The search interval is the standard
    ``[max(avg, max_t), max(2*avg, max_t)]``; FFD is guaranteed to
    succeed at the upper end.  Because capacities are integers the loop
    also terminates early once the interval closes.
    """
    if rounds < 1:
        raise InvalidInstanceError(f"rounds must be >= 1, got {rounds}")
    avg = instance.area_bound
    lower = max(avg, instance.max_time)
    upper = max(2 * avg, instance.max_time)

    best: Optional[list[list[int]]] = ffd_pack(instance, upper)
    if best is None:
        raise InvalidInstanceError(
            "internal error: FFD must succeed at capacity max(2*avg, max_t)"
        )
    for _ in range(rounds):
        if lower >= upper:
            break
        capacity = (lower + upper) // 2
        packed = ffd_pack(instance, capacity)
        if packed is not None:
            best = packed
            upper = capacity
        else:
            lower = capacity + 1
    return Schedule.from_machine_lists(instance, best)
