"""Classic ``P || Cmax`` heuristics and an exact solver.

These are the comparison points the paper's introduction situates the
PTAS against: list scheduling (Graham, 2-approximation), LPT
(4/3-approximation), MULTIFIT (13/11), and — for small instances — an
exact branch-and-bound used by the tests to verify the PTAS's
``(1 + eps)`` guarantee against the true optimum.
"""

from typing import Tuple

from repro.core.baselines.listsched import list_schedule
from repro.core.baselines.lpt import lpt_bound, lpt_schedule
from repro.core.baselines.multifit import multifit_bound, multifit_schedule
from repro.core.baselines.exact import branch_and_bound_optimal
from repro.core.instance import Instance
from repro.core.schedule import Schedule


def best_baseline(instance: Instance) -> Tuple[Schedule, str, float]:
    """The better of LPT and MULTIFIT for ``instance``.

    Returns ``(schedule, name, proven_bound)`` where ``name`` is
    ``"lpt"`` or ``"multifit"`` and ``proven_bound`` is that
    heuristic's approximation ratio versus the optimal makespan.  This
    is the shared "bounded answer, cheaply" primitive: the batch
    service degrades to it when every backend fails, and the streaming
    daemon serves it as the immediate bound-first response while the
    PTAS refinement is still in flight.  Ties go to MULTIFIT (the
    tighter proven ratio, 13/11 vs. ``4/3 - 1/(3m)``).

    Those ratios are identical-machines theorems and do NOT transfer
    to the other models; non-identical instances dispatch to their
    model's own baseline, whose bound is a-posteriori (makespan over
    the model's makespan lower bound) and therefore always true.
    """
    if instance.model != "identical":
        from repro.models import model_for

        return model_for(instance).baseline(instance)
    lpt = lpt_schedule(instance)
    mf = multifit_schedule(instance)
    if mf.makespan <= lpt.makespan:
        return mf, "multifit", multifit_bound()
    return lpt, "lpt", lpt_bound(instance.machines)


__all__ = [
    "best_baseline",
    "list_schedule",
    "lpt_bound",
    "lpt_schedule",
    "multifit_bound",
    "multifit_schedule",
    "branch_and_bound_optimal",
]
