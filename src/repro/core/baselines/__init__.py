"""Classic ``P || Cmax`` heuristics and an exact solver.

These are the comparison points the paper's introduction situates the
PTAS against: list scheduling (Graham, 2-approximation), LPT
(4/3-approximation), MULTIFIT (13/11), and — for small instances — an
exact branch-and-bound used by the tests to verify the PTAS's
``(1 + eps)`` guarantee against the true optimum.
"""

from repro.core.baselines.listsched import list_schedule
from repro.core.baselines.lpt import lpt_bound, lpt_schedule
from repro.core.baselines.multifit import multifit_bound, multifit_schedule
from repro.core.baselines.exact import branch_and_bound_optimal

__all__ = [
    "list_schedule",
    "lpt_bound",
    "lpt_schedule",
    "multifit_bound",
    "multifit_schedule",
    "branch_and_bound_optimal",
]
