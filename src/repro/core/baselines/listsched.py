"""Graham list scheduling — the classic online 2-approximation.

Jobs are taken in the given order and each goes to the currently
least-loaded machine.  Guarantee: makespan <= (2 - 1/m) * OPT.  Besides
being a baseline, it furnishes the PTAS's initial upper bound
(``avg + max``; see :mod:`repro.core.bounds`).
"""

from __future__ import annotations

import heapq
from typing import Optional, Sequence

from repro.core.instance import Instance
from repro.core.schedule import Schedule
from repro.errors import InvalidInstanceError


def list_schedule(instance: Instance, order: Optional[Sequence[int]] = None) -> Schedule:
    """Schedule jobs in ``order`` (default: input order) greedily.

    ``order`` must be a permutation of ``range(n)``; it lets LPT and the
    tests reuse this core loop with custom priorities.
    """
    n = instance.n_jobs
    if order is None:
        order = range(n)
    else:
        order = [int(j) for j in order]
        if sorted(order) != list(range(n)):
            raise InvalidInstanceError("order must be a permutation of all job indices")

    assignment = [0] * n
    # Heap of (load, machine); machine index breaks ties deterministically.
    heap = [(0, i) for i in range(instance.machines)]
    heapq.heapify(heap)
    for j in order:
        load, machine = heapq.heappop(heap)
        assignment[j] = machine
        heapq.heappush(heap, (load + instance.times[j], machine))
    return Schedule(instance, tuple(assignment))
