"""Longest Processing Time first (LPT) — Graham's 4/3-approximation.

List scheduling with jobs sorted by non-increasing processing time.
Guarantee: makespan <= (4/3 - 1/(3m)) * OPT, and the bound is tight on
the adversarial family built by
:func:`repro.core.instance.adversarial_lpt_instance`.  LPT is the
heuristic that dominates practical schedulers; the PTAS's value
proposition (arbitrarily small eps) is measured against it in the
examples.
"""

from __future__ import annotations

from repro.core.baselines.listsched import list_schedule
from repro.core.instance import Instance
from repro.core.schedule import Schedule


def lpt_schedule(instance: Instance) -> Schedule:
    """Schedule ``instance`` by LPT (deterministic: ties by job index)."""
    return list_schedule(instance, order=instance.sorted_indices_desc())


def lpt_bound(machines: int) -> float:
    """The proven LPT approximation ratio ``4/3 - 1/(3m)``."""
    if machines < 1:
        raise ValueError(f"machines must be >= 1, got {machines}")
    return 4.0 / 3.0 - 1.0 / (3.0 * machines)
