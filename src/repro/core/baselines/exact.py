"""Exact branch-and-bound for small ``P || Cmax`` instances.

Used by the test suite as the ground-truth optimum against which the
PTAS's ``(1 + eps)`` guarantee is property-checked, and by the examples
to report true optimality gaps.  Exponential in the worst case — keep
``n`` below ~20 for interactive use.

The search assigns jobs largest-first (strong early pruning), bounds
with the volume bound ``ceil(remaining / m)`` plus the current maximum
load, starts from the LPT makespan as the incumbent, and breaks machine
symmetry by never opening more than one empty machine per node.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.baselines.lpt import lpt_schedule
from repro.core.instance import Instance
from repro.core.schedule import Schedule
from repro.errors import InvalidInstanceError


@dataclass(frozen=True)
class ExactResult:
    """Optimal schedule plus search statistics."""

    schedule: Schedule
    nodes_explored: int

    @property
    def makespan(self) -> int:
        """The optimal makespan ``C*max``."""
        return self.schedule.makespan


def branch_and_bound_optimal(instance: Instance, node_limit: int = 5_000_000) -> ExactResult:
    """Compute an optimal schedule by depth-first branch and bound.

    Raises :class:`InvalidInstanceError` when ``node_limit`` nodes are
    expanded without proving optimality (a guard against accidentally
    feeding the exact solver a large instance).
    """
    m = instance.machines
    order = [int(j) for j in instance.sorted_indices_desc()]
    times = [instance.times[j] for j in order]
    n = len(times)

    incumbent = lpt_schedule(instance)
    best_makespan = incumbent.makespan
    best_assignment = list(incumbent.assignment)

    # Remaining work after position i (inclusive), for the volume bound.
    suffix = [0] * (n + 1)
    for i in range(n - 1, -1, -1):
        suffix[i] = suffix[i + 1] + times[i]

    loads = [0] * m
    assignment = [-1] * n  # in `order` positions
    nodes = 0

    def lower_bound(pos: int) -> int:
        current_max = max(loads)
        volume = (sum(loads) + suffix[pos] + m - 1) // m
        # The next (largest remaining) job must land somewhere.
        next_job = times[pos] + min(loads) if pos < n else 0
        return max(current_max, volume, next_job)

    def dfs(pos: int) -> None:
        nonlocal nodes, best_makespan, best_assignment
        nodes += 1
        if nodes > node_limit:
            raise InvalidInstanceError(
                f"branch and bound exceeded {node_limit} nodes; instance too large"
            )
        if pos == n:
            span = max(loads)
            if span < best_makespan:
                best_makespan = span
                final = [0] * n
                for p, machine in enumerate(assignment):
                    final[order[p]] = machine
                best_assignment = final
            return
        if lower_bound(pos) >= best_makespan:
            return
        t = times[pos]
        tried: set[int] = set()  # skip machines with identical load (symmetry)
        opened_empty = False
        for machine in range(m):
            load = loads[machine]
            if load in tried:
                continue
            if load == 0:
                if opened_empty:
                    continue
                opened_empty = True
            tried.add(load)
            if load + t >= best_makespan:
                continue
            loads[machine] += t
            assignment[pos] = machine
            dfs(pos + 1)
            loads[machine] -= t
            assignment[pos] = -1

    dfs(0)
    return ExactResult(
        schedule=Schedule(instance, tuple(best_assignment)),
        nodes_explored=nodes,
    )
