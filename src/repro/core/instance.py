"""The ``P || Cmax`` problem instance and instance generators.

An instance is ``n`` jobs with positive integer processing times to be
scheduled non-preemptively on ``m`` identical machines, minimising the
makespan (the maximum machine completion time).  The paper's experiments
generate instances "using the uniform distribution and considering
different numbers of jobs and machines" (§IV-A); this module provides
that generator plus a few structured generators used by the examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import InvalidInstanceError
from repro.util.rng import SeedLike, make_rng
from repro.util.validation import check_positive_int, check_positive_times

#: Machine-model names the library ships.  Kept here (not in
#: :mod:`repro.models`) so :class:`Instance` can validate without a
#: circular import; a registry-consistency test asserts the two sets
#: agree.
KNOWN_MODELS: tuple[str, ...] = ("identical", "unrelated-few-types", "time-restricted")


@dataclass(frozen=True)
class Instance:
    """An immutable scheduling instance for one of the machine models.

    The default is the paper's ``P || Cmax``: ``n`` jobs on ``m``
    identical machines.  Two further models ride on the same job
    vector (see :mod:`repro.models` and docs/MODELS.md):

    - ``unrelated-few-types`` — machines come in a few uniform-speed
      types (Bonifaci–Wiese); ``type_speeds`` and ``machines_per_type``
      describe the fleet, and a machine of speed ``s`` finishes load
      ``L`` at time ``ceil(L / s)``.
    - ``time-restricted`` — identical machines, but no machine may run
      more than ``max_jobs_per_machine`` jobs (Jaykrishnan–Levin's
      B-parameter).

    Attributes
    ----------
    times:
        Tuple of positive integer processing times, one per job.  Job
        identity is positional: job ``j`` has time ``times[j]``.
    machines:
        Number of machines ``m >= 1``.
    name:
        Optional label used by the experiment harness when reporting.
    model:
        Machine-model name from :data:`KNOWN_MODELS`; default
        ``"identical"``.
    type_speeds:
        For ``unrelated-few-types`` only: positive integer speed of
        each machine type.  Must be empty otherwise.
    machines_per_type:
        For ``unrelated-few-types`` only: machine count per type,
        summing to ``machines``.  Machines are laid out type 0 first.
    max_jobs_per_machine:
        For ``time-restricted`` only: the B-parameter ``>= 1`` with
        ``n_jobs <= machines * B``.  Must be 0 otherwise.
    """

    times: tuple[int, ...]
    machines: int
    name: str = ""
    model: str = "identical"
    type_speeds: tuple[int, ...] = ()
    machines_per_type: tuple[int, ...] = ()
    max_jobs_per_machine: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "times", check_positive_times(self.times))
        object.__setattr__(self, "machines", check_positive_int(self.machines, "machines"))
        if self.model not in KNOWN_MODELS:
            raise InvalidInstanceError(
                f"unknown model {self.model!r}; known models: {', '.join(KNOWN_MODELS)}"
            )
        object.__setattr__(self, "type_speeds", tuple(int(s) for s in self.type_speeds))
        object.__setattr__(
            self, "machines_per_type", tuple(int(c) for c in self.machines_per_type)
        )
        object.__setattr__(self, "max_jobs_per_machine", int(self.max_jobs_per_machine))
        if self.model == "unrelated-few-types":
            self._validate_few_types()
        elif self.max_jobs_per_machine or self.type_speeds or self.machines_per_type:
            if self.model == "time-restricted":
                if self.type_speeds or self.machines_per_type:
                    raise InvalidInstanceError(
                        "type_speeds/machines_per_type are only valid for "
                        "model='unrelated-few-types'"
                    )
                self._validate_time_restricted()
            else:
                raise InvalidInstanceError(
                    "model='identical' takes no type_speeds/machines_per_type/"
                    "max_jobs_per_machine"
                )
        elif self.model == "time-restricted":
            raise InvalidInstanceError(
                "model='time-restricted' requires max_jobs_per_machine >= 1"
            )

    def _validate_few_types(self) -> None:
        if not self.type_speeds:
            raise InvalidInstanceError(
                "model='unrelated-few-types' requires non-empty type_speeds"
            )
        if len(self.type_speeds) != len(self.machines_per_type):
            raise InvalidInstanceError(
                f"type_speeds has {len(self.type_speeds)} entries but "
                f"machines_per_type has {len(self.machines_per_type)}"
            )
        for s in self.type_speeds:
            if s < 1:
                raise InvalidInstanceError(f"type speeds must be >= 1, got {s}")
        for c in self.machines_per_type:
            if c < 1:
                raise InvalidInstanceError(f"machines_per_type entries must be >= 1, got {c}")
        if sum(self.machines_per_type) != self.machines:
            raise InvalidInstanceError(
                f"machines_per_type sums to {sum(self.machines_per_type)} "
                f"but machines={self.machines}"
            )
        if self.max_jobs_per_machine:
            raise InvalidInstanceError(
                "max_jobs_per_machine is only valid for model='time-restricted'"
            )

    def _validate_time_restricted(self) -> None:
        if self.max_jobs_per_machine < 1:
            raise InvalidInstanceError(
                "model='time-restricted' requires max_jobs_per_machine >= 1"
            )
        if len(self.times) > self.machines * self.max_jobs_per_machine:
            raise InvalidInstanceError(
                f"{len(self.times)} jobs cannot fit on {self.machines} machines "
                f"with at most {self.max_jobs_per_machine} jobs each"
            )

    # -- derived quantities -------------------------------------------------

    @property
    def n_jobs(self) -> int:
        """Number of jobs ``n``."""
        return len(self.times)

    @property
    def total_time(self) -> int:
        """Sum of all processing times (total work)."""
        return int(sum(self.times))

    @property
    def max_time(self) -> int:
        """Largest single processing time."""
        return int(max(self.times))

    @property
    def area_bound(self) -> int:
        """``ceil(total_time / m)`` — the volume lower bound on makespan."""
        return -(-self.total_time // self.machines)

    def times_array(self) -> np.ndarray:
        """Processing times as a fresh ``int64`` numpy array."""
        return np.asarray(self.times, dtype=np.int64)

    def sorted_indices_desc(self) -> np.ndarray:
        """Job indices ordered by non-increasing processing time.

        Ties broken by job index (stable), so baselines like LPT are
        deterministic.
        """
        t = self.times_array()
        return np.argsort(-t, kind="stable")

    def __repr__(self) -> str:  # compact: instances can have thousands of jobs
        label = f" {self.name!r}" if self.name else ""
        tag = f" model={self.model!r}" if self.model != "identical" else ""
        return (
            f"Instance(n={self.n_jobs}, m={self.machines},"
            f" total={self.total_time}, max={self.max_time}{tag}{label})"
        )


# -- generators --------------------------------------------------------------


def uniform_instance(
    n_jobs: int,
    machines: int,
    low: int = 1,
    high: int = 100,
    seed: SeedLike = None,
    name: str = "",
) -> Instance:
    """Random instance with i.i.d. uniform integer times in ``[low, high]``.

    This is the generator used for the paper's evaluation (§IV-A).
    ``high`` is inclusive to match the usual OR-library convention.
    """
    n_jobs = check_positive_int(n_jobs, "n_jobs")
    machines = check_positive_int(machines, "machines")
    if not (1 <= low <= high):
        raise InvalidInstanceError(f"need 1 <= low <= high, got low={low}, high={high}")
    rng = make_rng(seed)
    times = rng.integers(low, high + 1, size=n_jobs)
    return Instance(tuple(int(t) for t in times), machines, name=name)


def bimodal_instance(
    n_jobs: int,
    machines: int,
    short_range: tuple[int, int] = (1, 20),
    long_range: tuple[int, int] = (80, 100),
    long_fraction: float = 0.3,
    seed: SeedLike = None,
    name: str = "",
) -> Instance:
    """Instance mixing short and long jobs — stresses the PTAS's split.

    A fraction ``long_fraction`` of jobs is drawn from ``long_range``
    and the rest from ``short_range``.  Bimodal workloads are the
    classic hard case for list schedulers and the motivating scenario
    for rounding-based schemes.
    """
    n_jobs = check_positive_int(n_jobs, "n_jobs")
    machines = check_positive_int(machines, "machines")
    if not (0.0 <= long_fraction <= 1.0):
        raise InvalidInstanceError(f"long_fraction must be in [0, 1], got {long_fraction}")
    for lo, hi in (short_range, long_range):
        if not (1 <= lo <= hi):
            raise InvalidInstanceError(f"invalid range ({lo}, {hi})")
    rng = make_rng(seed)
    n_long = int(round(n_jobs * long_fraction))
    n_short = n_jobs - n_long
    shorts = rng.integers(short_range[0], short_range[1] + 1, size=n_short)
    longs = rng.integers(long_range[0], long_range[1] + 1, size=n_long)
    times = np.concatenate([shorts, longs])
    rng.shuffle(times)
    return Instance(tuple(int(t) for t in times), machines, name=name)


def adversarial_lpt_instance(machines: int, name: str = "") -> Instance:
    """The classic worst case for LPT: ratio approaches ``4/3 - 1/(3m)``.

    ``2m + 1`` jobs: two each of sizes ``2m-1, 2m-2, ..., m+1`` wait —
    the standard construction is jobs ``{2m-1, 2m-1, 2m-2, 2m-2, ...,
    m+1, m+1, m, m, m}``.  Used by tests to verify LPT's tight bound and
    by examples to show where the PTAS is worth its extra cost.
    """
    m = check_positive_int(machines, "machines")
    times: list[int] = []
    for v in range(2 * m - 1, m, -1):
        times.extend([v, v])
    times.extend([m, m, m])
    return Instance(tuple(times), m, name=name or f"lpt-adversarial-m{m}")


def clustered_instance(
    n_jobs: int,
    machines: int,
    cluster_values: Sequence[int],
    jitter: int = 0,
    seed: SeedLike = None,
    name: str = "",
) -> Instance:
    """Jobs clustered around a few base values (± ``jitter``).

    Produces DP-tables with a *small, controllable number of non-zero
    dimensions*, which is how the Fig. 4 / Tables I–VI experiments vary
    dimensionality at a fixed table size.
    """
    n_jobs = check_positive_int(n_jobs, "n_jobs")
    machines = check_positive_int(machines, "machines")
    if not cluster_values:
        raise InvalidInstanceError("cluster_values must be non-empty")
    for v in cluster_values:
        if v - jitter < 1:
            raise InvalidInstanceError(
                f"cluster value {v} with jitter {jitter} allows non-positive times"
            )
    rng = make_rng(seed)
    base = rng.choice(np.asarray(cluster_values, dtype=np.int64), size=n_jobs)
    if jitter:
        base = base + rng.integers(-jitter, jitter + 1, size=n_jobs)
    return Instance(tuple(int(t) for t in base), machines, name=name)
