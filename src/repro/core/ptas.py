"""The Hochbaum–Shmoys PTAS driver (Algorithm 1).

The PTAS is a *dual approximation*: for a target makespan ``T`` the
probe either produces a schedule with makespan at most ``(1 + eps) T``
or certifies that the optimum exceeds ``T``.  Bisecting ``T`` over
``[LB, UB]`` (:mod:`repro.core.bounds`) then yields a schedule within
``(1 + eps)`` of optimal.

One probe (:func:`probe_target`) does:

1. Split jobs into short/long and round the long ones
   (:mod:`repro.core.rounding`).
2. Solve the high-dimensional DP for ``OPT(N)`` — the minimum number of
   machines packing the rounded long jobs within ``T`` (pluggable
   solver; the default is the vectorized one, the simulator engines
   substitute their own instrumented solvers).
3. Extract one configuration per machine
   (:mod:`repro.core.backtrack`) and place the *actual* long jobs.
4. Greedily add short jobs to any machine with load still below ``T``,
   opening further machines only when every open machine is at ``T`` or
   more.  If that needs more than ``m`` machines, total work exceeds
   ``m*T`` and the probe certifies ``OPT > T``.

The accepted schedule's makespan is at most ``T + T/k <= (1 + eps) T``:
long-job rounding loses less than ``k * floor(T/k^2) <= T/k`` per
machine, and a short job (``t <= T/k``) is only ever added to a machine
whose load is below ``T``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Protocol, Sequence, Union

import numpy as np

from repro.core.dp_common import DPResult, empty_dp_result
from repro.core.dp_vectorized import dp_vectorized
from repro.core.instance import Instance
from repro.core.rounding import RoundedInstance
from repro.core.schedule import Schedule
from repro.errors import InvalidInstanceError
from repro.observability import context as obs
from repro.observability.timers import PhaseTimer
from repro.observability.trace import ProbeTrace, TraceSink

if TYPE_CHECKING:  # import cycle: probe_cache imports nothing from here,
    # but keeping the runtime import lazy keeps repro.core.ptas a light
    # dependency for the DP-only users.
    from repro.core.executor import ProbeExecutor
    from repro.core.probe_cache import NullProbeCache, ProbeCache

    ProbeCacheLike = Union[ProbeCache, NullProbeCache]


class DPSolver(Protocol):
    """Signature every DP backend implements (engines included)."""

    def __call__(
        self,
        counts: Sequence[int],
        class_sizes: Sequence[int],
        target: int,
        configs: Optional[np.ndarray] = None,
    ) -> DPResult: ...


@dataclass(frozen=True)
class ProbeResult:
    """Outcome of one target-makespan probe.

    ``machines_needed`` counts the machines the dual-approximation
    procedure used (possibly exceeding ``m``); ``schedule`` is present
    only when ``machines_needed <= m``.  ``dp_result`` is kept so
    engines and tests can inspect the table that was filled; models
    needing several fills per probe (``unrelated-few-types``) append
    the full tuple as ``dp_results`` (``dp_result`` is its first
    entry).
    """

    target: int
    rounded: RoundedInstance
    dp_result: DPResult
    machines_needed: int
    schedule: Optional[Schedule]
    dp_results: tuple = ()

    @property
    def accepted(self) -> bool:
        """Whether the probe certified feasibility at this target."""
        return self.schedule is not None


def _place_long_jobs(
    rounded: RoundedInstance, machine_configs: list[tuple[int, ...]]
) -> list[list[int]]:
    """Turn per-machine class counts into per-machine real job lists.

    Jobs within a class are interchangeable under rounding, so each
    machine simply pops the next ``s_i`` jobs from class ``i``'s queue.
    """
    queues = [list(idx) for idx in rounded.long_indices]
    machines: list[list[int]] = []
    for cfg in machine_configs:
        jobs: list[int] = []
        for cls, count in enumerate(cfg):
            take, queues[cls] = queues[cls][:count], queues[cls][count:]
            if len(take) != count:
                raise InvalidInstanceError(
                    "internal error: configuration demands more jobs than the class holds"
                )
            jobs.extend(take)
        machines.append(jobs)
    if any(queues[cls] for cls in range(len(queues))):
        raise InvalidInstanceError("internal error: long jobs left unassigned")
    return machines


def _add_short_jobs(
    instance: Instance,
    target: int,
    machine_jobs: list[list[int]],
    short_indices: Sequence[int],
) -> list[list[int]]:
    """Greedy short-job placement of the dual-approximation argument.

    Each short job goes to the *least-loaded* machine whose load is
    still below ``target`` (least-loaded keeps the final makespan as
    flat as possible); a new machine opens only when every open machine
    has reached ``target``.  A heap keyed by load gives O(n log m).
    """
    loads = [sum(instance.times[j] for j in jobs) for jobs in machine_jobs]
    heap = [(load, i) for i, load in enumerate(loads)]
    heapq.heapify(heap)
    # Sorting shorts longest-first tightens the resulting makespan a
    # little (classic LPT effect) at no asymptotic cost.
    shorts = sorted(short_indices, key=lambda j: -instance.times[j])
    for j in shorts:
        if heap and heap[0][0] < target:
            load, i = heapq.heappop(heap)
        else:
            i = len(machine_jobs)
            machine_jobs.append([])
            load = 0
        machine_jobs[i].append(j)
        heapq.heappush(heap, (load + instance.times[j], i))
    return machine_jobs


def _emit_probe_trace(
    timer: PhaseTimer,
    rounded: RoundedInstance,
    num_configs: int,
    machines_needed: int,
    accepted: bool,
    cache: "ProbeCacheLike",
) -> None:
    """Merge this probe's timings into the ambient tracer and emit one event."""
    tracer = obs.current_tracer()
    if tracer is None:
        return
    tracer.count("probe.count")
    tracer.count("probe.cells", rounded.table_size)
    tracer.count("probe.configs", num_configs)
    for name, seconds in timer.seconds.items():
        tracer.timer.add(f"probe.{name}", seconds)
    tracer.record_probe(
        ProbeTrace(
            target=rounded.target,
            accepted=accepted,
            machines_needed=machines_needed,
            k=rounded.k,
            dims=rounded.dims,
            n_long=rounded.n_long,
            table_size=rounded.table_size,
            num_configs=num_configs,
            phase_seconds=timer.as_dict(),
            cache_events=dict(cache.last_events),
        )
    )


def probe_target(
    instance: Instance,
    target: int,
    eps: float,
    dp_solver: DPSolver = dp_vectorized,
    cache: Optional["ProbeCache"] = None,
) -> ProbeResult:
    """Run one dual-approximation probe at makespan target ``target``.

    The probe is model-driven: the instance's
    :class:`~repro.models.base.MachineModel` declares which dense DP
    fills the target needs (one for identical machines, one per type
    for ``unrelated-few-types``), the generic driver below runs them
    through the solver and cache, and the model assembles the tables
    into machines.  The identical path is bit-identical to the
    pre-model library (tested).

    ``cache`` (a :class:`~repro.core.probe_cache.ProbeCache`) reuses
    rounding, configuration enumeration, and DP-tables across probes;
    the probe's outcome is bit-identical with or without it (tested).
    Sparsify-aware solvers additionally fill over the dominance-pruned
    configuration set (:mod:`repro.core.sparsify`) when the model's
    :class:`~repro.models.base.FillSpec` permits it, and warm-capable
    solvers may seed from a cached table at a nearby smaller target —
    both preserve the feasibility verdict and the extracted schedule.
    Phase timings and one :class:`~repro.observability.trace.ProbeTrace`
    flow to the ambient tracer when one is active
    (:mod:`repro.observability`).
    """
    # A single code path regardless of caching: ``cache=None`` becomes a
    # pass-through NullProbeCache that performs every derivation fresh.
    from repro.core.probe_cache import as_cache
    from repro.models import model_for

    model = model_for(instance)
    cache = as_cache(cache)
    timer = PhaseTimer()
    cache.begin_probe()
    with timer.phase("rounding"):
        rounded = cache.rounding(instance, target, eps)
    fills = model.fills(rounded)
    dp_results: list[DPResult] = []
    with timer.phase("dp"):
        for spec in fills:
            # Decision-capable solvers (the clamped kernels) need the
            # machine budget, which is not part of the DPSolver call
            # signature; bind it per fill.  The bound copy carries a
            # dp_cache_token so the probe cache never serves its
            # budget-dependent tables to another budget.  Fills whose
            # tables compose across machines clamp nothing
            # (machine_clamp=None) and run exact.
            solver = dp_solver
            bind = getattr(dp_solver, "bind_machines", None)
            if bind is not None:
                solver = bind(spec.machine_clamp)
            dp_results.append(cache.dp(rounded, solver, fill=spec))

    outcome = model.assemble(rounded, fills, tuple(dp_results), timer)
    num_configs = sum(int(r.configs.shape[0]) for r in dp_results)

    schedule: Optional[Schedule] = None
    if outcome.machine_jobs is not None:
        machine_jobs = outcome.machine_jobs
        # Pad to exactly m machines (empty machines are legal).
        schedule = Schedule.from_machine_lists(
            instance,
            machine_jobs + [[] for _ in range(instance.machines - len(machine_jobs))],
        )
    _emit_probe_trace(
        timer, rounded, num_configs, outcome.machines_needed, schedule is not None, cache
    )
    return ProbeResult(
        target=target,
        rounded=rounded,
        dp_result=dp_results[0] if dp_results else empty_dp_result(),
        machines_needed=outcome.machines_needed,
        schedule=schedule,
        dp_results=tuple(dp_results),
    )


@dataclass
class PtasResult:
    """Everything a PTAS run produced, for the harness and the tests.

    Attributes
    ----------
    schedule: the final schedule (makespan <= (1+eps) * optimum).
    eps: the accuracy the run was asked for.
    iterations: number of bisection iterations executed.
    probes: every probe performed, in execution order (the quarter
        split performs several per iteration).
    final_target: the ``T`` whose probe produced ``schedule``.
    """

    schedule: Schedule
    eps: float
    iterations: int
    probes: list[ProbeResult] = field(default_factory=list)
    final_target: int = 0

    @property
    def makespan(self) -> int:
        """Makespan of the returned schedule."""
        return self.schedule.makespan

    @property
    def dp_table_sizes(self) -> list[int]:
        """Size ``sigma`` of every DP-table filled during the search."""
        return [p.rounded.table_size for p in self.probes]

    def guarantee_bound(self) -> float:
        """The proven upper bound ``(1 + eps) * final_target``.

        ``final_target`` is itself at most the optimal makespan, so the
        schedule is within ``1 + eps`` of optimal.
        """
        return (1.0 + self.eps) * self.final_target


def ptas_schedule(
    instance: Instance,
    eps: float = 0.3,
    dp_solver: DPSolver = dp_vectorized,
    search: str = "bisection",
    cache: Optional["ProbeCache"] = None,
    trace: Optional[Union["obs.Tracer", TraceSink]] = None,
    executor: Optional["ProbeExecutor"] = None,
) -> PtasResult:
    """Schedule ``instance`` within ``(1 + eps)`` of the optimal makespan.

    ``search`` selects the target-search strategy: ``"bisection"``
    (Algorithm 1) or ``"quarter"`` (the paper's quarter split,
    Algorithm 3).  Both return identical final makespans (tested); the
    quarter split needs fewer iterations, which is what Table VII
    measures.

    ``cache`` is an optional
    :class:`~repro.core.probe_cache.ProbeCache` shared across the
    run's probes (and, if you pass the same object again, across
    runs); results are bit-identical with or without it.

    ``trace`` is an optional
    :class:`~repro.observability.Tracer` (its phases/counters are
    filled in place) or bare
    :class:`~repro.observability.TraceSink` (receives one
    :class:`~repro.observability.ProbeTrace` per probe).  See
    ``docs/PERFORMANCE.md``.

    ``executor`` is an optional
    :class:`~repro.core.executor.ProbeExecutor` that runs each search
    round's probes and accounts their simulated time (sequential vs
    concurrent-device); the default is a fresh
    :class:`~repro.core.executor.SequentialExecutor`.  Executors never
    change the result, only the time accounting.
    """
    # Imported here to avoid a circular import (the search modules call
    # probe_target from this module).
    from repro.core.bisection import bisection_search
    from repro.core.quarter_split import quarter_split_search

    if search == "bisection":
        return bisection_search(
            instance, eps, dp_solver, cache=cache, trace=trace, executor=executor
        )
    if search == "quarter":
        return quarter_split_search(
            instance, eps, dp_solver, cache=cache, trace=trace, executor=executor
        )
    raise InvalidInstanceError(f"unknown search strategy {search!r}")
