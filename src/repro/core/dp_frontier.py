"""Memory-light DP: keep only the live anti-diagonal levels.

The dense solvers hold the entire ``sigma``-cell table.  But Equation 1
only ever reads cells at most ``max_c sum(c)`` levels back (a machine
configuration holds at most ``k`` jobs, so ``<= k`` levels) — the same
observation behind the paper's §V memory direction, applied to level
granularity instead of block granularity.

:func:`dp_frontier` walks the wavefront keeping a sliding window of
levels: memory drops from ``O(sigma)`` to ``O(depth * max_level_size)``
where ``depth <= k``.  Each level is stored as a sorted array of flat
indices plus values; predecessor lookups are vectorized
``searchsorted`` gathers.  Returns ``OPT(N)`` (and optionally any
requested cells' values) — by construction it cannot return the full
table, that is the point.

Use when only the feasibility answer is needed (the bisection
predicate!) and tables are too big to hold — e.g. fine-``eps`` probes.
``dp_frontier`` is cross-checked against the dense solvers in tests.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.configs import enumerate_configurations
from repro.core.dp_common import UNREACHABLE, pick_table_dtype, unreachable_for
from repro.dptable.table import TableGeometry
from repro.errors import DPError
from repro.observability import context as obs


def frontier_depth(configs: np.ndarray) -> int:
    """How many previous levels the recurrence can reach: ``max_c sum(c)``."""
    if configs.shape[0] == 0:
        return 0
    return int(configs.sum(axis=1).max())


def dp_frontier(
    counts: Sequence[int],
    class_sizes: Sequence[int],
    target: int,
    configs: Optional[np.ndarray] = None,
) -> int:
    """Compute ``OPT(N)`` with a sliding window of anti-diagonal levels.

    Returns the machine count, or :data:`UNREACHABLE` when no packing
    exists.  Peak memory is ``O(depth * widest_level)`` cells instead
    of the full table.
    """
    counts = tuple(int(c) for c in counts)
    if len(counts) != len(class_sizes):
        raise DPError("counts and class_sizes must have equal length")
    if len(counts) == 0:
        return 0
    if configs is None:
        configs = enumerate_configurations(class_sizes, counts, target)
    if configs.shape[0] == 0:
        return UNREACHABLE if any(counts) else 0

    geometry = TableGeometry.from_counts(counts)
    depth = frontier_depth(configs)
    strides = np.asarray(geometry.strides, dtype=np.int64)
    config_levels = configs.sum(axis=1)
    config_flat = configs @ strides

    # Window *values* are machine counts bounded by sum(counts); store
    # them in the narrowest dtype that holds the bound (indices stay
    # int64).  The per-dtype sentinel maps back to UNREACHABLE on exit.
    value_dtype = pick_table_dtype(sum(counts))
    unreach = value_dtype.type(unreachable_for(value_dtype))

    # Enumerate each level's cells lazily from the previous level:
    # level L+1 cells are level L cells plus one unit step in any
    # dimension (deduplicated) — no full-table materialisation.
    unit_steps = strides  # flat offsets of +1 along each dimension

    # window[l % (depth+1)] = (sorted flat indices, values) of level l.
    window: list[tuple[np.ndarray, np.ndarray]] = [
        (np.empty(0, dtype=np.int64), np.empty(0, dtype=value_dtype))
        for _ in range(depth + 1)
    ]
    level0 = (np.zeros(1, dtype=np.int64), np.zeros(1, dtype=value_dtype))
    window[0] = level0

    max_level = geometry.max_level
    shape = np.asarray(geometry.shape, dtype=np.int64)
    current_cells = np.zeros((1, geometry.ndim), dtype=np.int64)

    final_flat = int((shape - 1) @ strides)
    if max_level == 0:
        return 0

    for level in range(1, max_level + 1):
        # Successor cells: previous level's coords +1 in each dimension.
        grown = (current_cells[:, None, :] + np.eye(geometry.ndim, dtype=np.int64)).reshape(
            -1, geometry.ndim
        )
        ok = (grown < shape).all(axis=1)
        grown = grown[ok]
        flat = grown @ strides
        flat, first = np.unique(flat, return_index=True)
        cells = grown[first]

        best = np.full(flat.size, unreach, dtype=value_dtype)
        for idx in range(configs.shape[0]):
            span = int(config_levels[idx])
            if span > level or span > depth:
                continue
            prev_flat_all, prev_vals = window[(level - span) % (depth + 1)]
            if prev_flat_all.size == 0:
                continue  # nothing reachable that far back
            ok_cfg = (cells >= configs[idx]).all(axis=1)
            if not ok_cfg.any():
                continue
            lookup = flat[ok_cfg] - int(config_flat[idx])
            pos = np.searchsorted(prev_flat_all, lookup)
            found = (pos < prev_flat_all.size) & (
                prev_flat_all[np.minimum(pos, prev_flat_all.size - 1)] == lookup
            )
            vals = np.where(found, prev_vals[np.minimum(pos, prev_vals.size - 1)], unreach)
            sel = np.flatnonzero(ok_cfg)
            best[sel] = np.minimum(best[sel], vals.astype(value_dtype, copy=False))

        reachable = best < unreach
        best[reachable] += 1
        window[level % (depth + 1)] = (flat[reachable], best[reachable])
        current_cells = cells

        if level == max_level:
            obs.count("dp.frontier.calls")
            obs.count("dp.frontier.levels", max_level)
            lv_flat, lv_vals = window[level % (depth + 1)]
            pos = np.searchsorted(lv_flat, final_flat)
            if pos < lv_flat.size and lv_flat[pos] == final_flat:
                return int(lv_vals[pos])
            return UNREACHABLE
    raise DPError("unreachable")  # loop always returns at max_level


def dp_frontier_checked(
    counts: Sequence[int],
    class_sizes: Sequence[int],
    target: int,
    configs: Optional[np.ndarray] = None,
    model_token: Optional[tuple] = None,
):
    """Probe-compatible frontier solver: windowed answer, dense table.

    A PTAS probe must *extract a schedule*, which needs the dense
    table the frontier sweep deliberately never materializes.  This
    wrapper — what the ``"frontier"`` backend registers — therefore
    fills the dense table as well and verifies the two fills agree at
    the root, making it a validation backend: every probe cross-checks
    the windowed sweep against the production fill.  Use plain
    :func:`dp_frontier` when only the feasibility answer is needed.
    """
    from repro.core.dp_vectorized import dp_vectorized

    if model_token is not None and configs is None:
        raise DPError(
            "model-filtered probes must supply their configuration set"
        )
    if configs is None:
        configs = enumerate_configurations(class_sizes, counts, target)
    dense = dp_vectorized(counts, class_sizes, target, configs)
    windowed = dp_frontier(counts, class_sizes, target, configs)
    dense_opt = dense.opt
    if (windowed >= UNREACHABLE) != (dense_opt >= UNREACHABLE) or (
        windowed < UNREACHABLE and windowed != dense_opt
    ):
        raise DPError(
            f"frontier/vectorized disagreement: OPT(N) {windowed} vs {dense_opt}"
        )
    return dense
