"""Cross-probe solver cache: stop re-deriving what adjacent probes share.

Every dual-approximation probe at a target ``T`` performs three
derivations before any scheduling happens: round the instance
(:func:`repro.core.rounding.round_instance`), enumerate the machine
configurations ``C`` (:func:`repro.core.configs.enumerate_configurations`),
and fill the DP-table.  A PTAS search performs dozens of probes —
and the instrumentation layer (:mod:`repro.observability`) shows that
configuration enumeration plus the DP fill dominate every probe.
Much of that work is *identical across probes*:

* The final clean-up probe of both searches re-probes a target that
  was usually already probed inside the loop.
* Batch workloads (``examples/cluster_batch_scheduling.py``) schedule
  related instances over several accuracies and searches, repeating
  probes wholesale.
* Most importantly, the rounded view is **scale-invariant**: rounding
  maps each long job to class index ``c = t // unit`` with
  ``unit = floor(T/k^2)``, and a configuration ``s`` is feasible iff
  ``sum_i s_i * (c_i * unit) <= T``, i.e. iff
  ``sum_i s_i * c_i <= T // unit``.  Two probes at *different* targets
  whose rounding produced the same class-index vector, the same job
  counts, and the same scaled budget ``T // unit`` therefore have
  **bit-identical configuration sets and DP-tables**, even though
  their absolute ``class_sizes`` differ.  Nearby targets frequently
  collide this way — the sparsification observation of
  Jansen–Klein–Verschae, applied at the probe level.

:class:`ProbeCache` memoizes all three artifacts.  Rounding is keyed
on the exact ``(instance, target, k)``; configurations and DP results
are keyed on the *normalized* ``(class-index vector, counts,
T // unit)`` so hits occur across targets, across the four concurrent
quarter-split segments, across both search strategies, and across the
instances of a batch run that happen to round identically.

Correctness: the DP-table's values are machine counts determined
solely by the configuration set and the count vector, both functions
of the normalized key — so a cache hit returns exactly the table the
solver would have produced (property-tested: cached and uncached runs
yield identical final targets, makespans, and schedules).

The cache is **opt-in** (``ptas_schedule(..., cache=ProbeCache())``):
the simulated engines charge hardware time per DP fill as a side
effect, and a cache hit legitimately skips that charge, which is the
right accounting for a real system but not for reproducing the
paper's no-cache Table VII numbers.

Thread-safety: plain dicts guarded by the GIL; safe for the
concurrent quarter-split segments (which in this reproduction execute
sequentially) and for multi-threaded readers.  Do not share one cache
across processes.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional, Tuple

import numpy as np

from collections import OrderedDict

from repro.core.configs import enumerate_configurations
from repro.core.dp_common import DPResult
from repro.core.instance import Instance
from repro.core.rounding import RoundedInstance, accuracy_k, round_instance

if TYPE_CHECKING:
    from repro.models.base import FillSpec
from repro.dptable.plan import (
    ProbePlan,
    build_probe_plan,
    configs_signature,
    plan_signature,
)
from repro.dptable.table import TableGeometry
from repro.observability import context as obs

#: Normalized probe key: (class-index vector, counts, scaled target).
NormalizedKey = Tuple[Tuple[int, ...], Tuple[int, ...], int]

#: Normalized request key: (model, instance, accuracy k, search, backend).
RequestKey = Tuple[str, Instance, int, str, Optional[str]]

#: Sentinel distinguishing "not cached" from a cached falsy artifact.
_MISS = object()


@dataclass
class CacheStats:
    """Hit/miss (and eviction) tallies per cached artifact kind."""

    hits: Dict[str, int] = field(default_factory=dict)
    misses: Dict[str, int] = field(default_factory=dict)
    evictions: Dict[str, int] = field(default_factory=dict)

    def record(self, kind: str, hit: bool) -> None:
        """Tally one lookup of ``kind``."""
        bucket = self.hits if hit else self.misses
        bucket[kind] = bucket.get(kind, 0) + 1

    def record_eviction(self, kind: str) -> None:
        """Tally one capacity eviction of ``kind``."""
        self.evictions[kind] = self.evictions.get(kind, 0) + 1

    def hit_rate(self, kind: str) -> float:
        """Fraction of ``kind`` lookups served from the cache."""
        h = self.hits.get(kind, 0)
        m = self.misses.get(kind, 0)
        return h / (h + m) if (h + m) else 0.0

    @property
    def total_hits(self) -> int:
        """Hits summed over every artifact kind."""
        return sum(self.hits.values())

    @property
    def total_misses(self) -> int:
        """Misses summed over every artifact kind."""
        return sum(self.misses.values())

    @property
    def total_evictions(self) -> int:
        """Evictions summed over every artifact kind."""
        return sum(self.evictions.values())

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready view with per-kind rates.

        The ``evictions`` entry appears only for kinds that actually
        evicted — unbounded caches keep the historical compact shape.
        """
        kinds = sorted(set(self.hits) | set(self.misses) | set(self.evictions))
        out: Dict[str, object] = {}
        for kind in kinds:
            spec: Dict[str, object] = {
                "hits": self.hits.get(kind, 0),
                "misses": self.misses.get(kind, 0),
                "hit_rate": round(self.hit_rate(kind), 4),
            }
            if self.evictions.get(kind, 0):
                spec["evictions"] = self.evictions[kind]
            out[kind] = spec
        return out

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{kind}={spec['hits']}/{spec['hits'] + spec['misses']}"  # type: ignore[index]
            for kind, spec in self.as_dict().items()
        )
        return f"CacheStats({parts or 'empty'})"


class NullProbeCache:
    """Pass-through stand-in for :class:`ProbeCache`: same interface, no reuse.

    :func:`repro.core.ptas.probe_target` always talks to a cache object
    so the probe has one code path instead of parallel cached/uncached
    branches; when the caller passed ``cache=None`` it talks to this
    one, which simply performs every derivation fresh.  ``last_events``
    stays empty (there are no hits or misses to report), matching the
    cacheless trace output exactly.
    """

    #: mirrors ProbeCache.share_dp: the DP solver runs on every probe.
    share_dp = False

    def __init__(self) -> None:
        self.stats = CacheStats()
        self.last_events: Dict[str, str] = {}

    def rounding(self, instance: Instance, target: int, eps: float) -> RoundedInstance:
        """Uncached :func:`~repro.core.rounding.round_instance`."""
        return round_instance(instance, target, eps)

    def configurations(
        self, rounded: RoundedInstance, fill: Optional["FillSpec"] = None
    ) -> np.ndarray:
        """Uncached configuration enumeration (``fill`` overrides budget/cap)."""
        if _is_default_fill(rounded, fill):
            return enumerate_configurations(
                rounded.class_sizes, rounded.counts, rounded.target
            )
        return fill.enumerate()

    def dp(
        self, rounded: RoundedInstance, solver, fill: Optional["FillSpec"] = None
    ) -> DPResult:
        """Run ``solver`` directly (it enumerates configurations itself)."""
        if _is_default_fill(rounded, fill):
            return solver(
                rounded.counts,
                rounded.class_sizes,
                rounded.target,
                **_solver_kwargs(fill, solver),
            )
        configs = fill.enumerate()
        return solver(
            fill.counts,
            fill.class_sizes,
            fill.budget,
            configs=configs,
            **_solver_kwargs(fill, solver),
        )

    def geometry(self, counts: Tuple[int, ...]) -> TableGeometry:
        """Uncached :meth:`TableGeometry.from_counts`."""
        return TableGeometry.from_counts(tuple(int(c) for c in counts))

    def begin_probe(self) -> None:
        """No per-probe state to reset."""

    def clear(self) -> None:
        """Nothing cached, nothing to drop."""

    def __len__(self) -> int:
        return 0


def as_cache(cache: Optional["ProbeCache"]) -> "ProbeCache | NullProbeCache":
    """Coerce a ``cache=`` argument into a cache object.

    ``None`` becomes a fresh :class:`NullProbeCache`; anything else is
    returned as-is.  This is what lets every caller hold exactly one
    code path regardless of whether caching was requested.
    """
    return cache if cache is not None else NullProbeCache()


def normalized_probe_key(rounded: RoundedInstance) -> NormalizedKey:
    """The scale-invariant identity of a rounded probe.

    ``class_sizes[i] == index_i * unit`` exactly (rounding is a floor
    to a multiple of ``unit``), so the integer divisions below are
    lossless; see the module docstring for why ``target // unit``
    completes the key.
    """
    unit = rounded.unit
    indices = tuple(s // unit for s in rounded.class_sizes)
    return (indices, rounded.counts, rounded.target // unit)


def _is_default_fill(rounded: RoundedInstance, fill: Optional["FillSpec"]) -> bool:
    """Whether ``fill`` is the classic identical-model fill of ``rounded``.

    The default fill (budget ``T``, no job cap, no plan token, the
    rounded instance's own classes) is exactly what the pre-model
    library solved, so it keeps the pre-model cache keys and solver
    call shapes — including across models: a 1-type unit-speed lift
    produces this same default fill and therefore shares tables with
    the identical model bit-for-bit.
    """
    return fill is None or (
        fill.budget == rounded.target
        and fill.max_jobs is None
        and fill.token is None
        and fill.counts == rounded.counts
        and fill.class_sizes == rounded.class_sizes
    )


def _fill_key(rounded: RoundedInstance, fill: "FillSpec"):
    """Scale-invariant identity of a non-default fill.

    Mirrors :func:`normalized_probe_key`: sizes are exact multiples of
    the unit and a configuration is feasible iff the *scaled* budget
    admits it, so ``budget // unit`` is lossless.  The job cap joins
    the key because it filters the configuration set.  Being a 4-tuple
    it can never collide with the default fills' 3-tuple keys.
    """
    unit = rounded.unit
    indices = tuple(s // unit for s in fill.class_sizes)
    return (indices, fill.counts, fill.budget // unit, fill.max_jobs)


def _fill_kwargs(fill: "FillSpec") -> Dict[str, object]:
    """Extra solver kwargs a fill demands (the plan token, when set)."""
    return {} if fill.token is None else {"model_token": fill.token}


def _solver_kwargs(
    fill: Optional["FillSpec"], solver
) -> Dict[str, object]:
    """Solver kwargs for one fill, shaped to what ``solver`` accepts.

    The plan token passes through whenever set.  A fill that opted out
    of sparsification (``FillSpec.sparsify=False`` — a model whose
    configuration set is not downward closed) forces ``sparsify=False``
    onto solvers that advertise ``supports_sparsify``; solvers without
    the attribute never prune, so they get the historical call shape
    untouched.
    """
    if fill is None:
        return {}
    kwargs = _fill_kwargs(fill)
    if not fill.sparsify and getattr(solver, "supports_sparsify", False):
        kwargs["sparsify"] = False
    return kwargs


def _warm_family(base_key) -> tuple:
    """The warm-start family of a DP key: everything but the budget.

    Default-fill keys are ``(indices, counts, scaled_budget)``;
    non-default fills append ``max_jobs``.  Two fills in one family
    differ only in the scaled budget, so the smaller budget's
    configuration set is a subset of the larger's and its table values
    are pointwise upper bounds on the larger fill's fixpoint — exactly
    the seeding precondition of
    :func:`~repro.core.dp_vectorized.seed_warm_table`.
    """
    indices, counts = base_key[0], base_key[1]
    max_jobs = base_key[3] if len(base_key) > 3 else None
    return (indices, counts, max_jobs)


def _warm_budget(base_key) -> int:
    """The scaled budget component of a DP key."""
    return int(base_key[2])


def normalized_request_key(
    instance: Instance,
    eps: float,
    search: str,
    backend: Optional[str] = None,
) -> RequestKey:
    """The coalescing identity of one *whole scheduling request*.

    Two requests with this key produce bit-identical PTAS outcomes, so
    an in-flight pipeline can be shared between them (the always-on
    service's request coalescer keys its in-flight table on this).

    The key extends the probe-level normalization one level up: ``eps``
    enters the scheduling path only through the accuracy parameter
    ``k = ceil(1/eps)`` (rounding, configuration enumeration, and the
    DP all see ``k``, never ``eps`` itself — the same collapse
    :meth:`ProbeCache.rounding` exploits), so requests at different
    ``eps`` with equal ``k`` coalesce.  The search strategy and backend
    stay in the key: both searches converge to the same final target
    but keep different best-schedule tie-breaks and iteration counts,
    and simulated backends charge different modelled time.

    The machine model leads the key explicitly: requests for different
    models over coincidentally-equal job arrays must never share a
    pipeline run (the frozen instance hash already covers the model
    fields, but the leading element makes the discriminator structural
    rather than incidental).
    """
    return (instance.model, instance, accuracy_k(eps), str(search), backend)


class ProbeCache:
    """Memoizes rounding, configuration enumeration, and DP-tables.

    Share one instance across an entire search — and across searches
    and instances of a batch — to reuse everything reusable.  See the
    module docstring for the keying scheme and the opt-in rationale;
    ``docs/PERFORMANCE.md`` for tuning guidance.

    Parameters
    ----------
    share_dp:
        When ``False``, only rounding and configuration enumeration
        are cached and every probe still runs its DP solver.  Use
        this when the solver's side effects matter (e.g. the
        simulated engines accumulating per-probe hardware time).
    capacity:
        Maximum entries *per artifact kind*; least-recently-used
        entries are evicted past it (tallied in ``stats.evictions``
        and the ``cache.<kind>.evicted`` counter).  ``None`` keeps the
        historical unbounded behaviour.  The default bounds a
        long-lived batch service: DP entries hold full tables, so an
        unbounded cache fed adversarial probe mixes grows without
        limit.
    warm_start:
        When ``True`` (default), a DP miss whose solver advertises
        ``supports_warm_start`` is seeded from the cached table of the
        *nearest smaller scaled budget* in the same key family (same
        class indices, counts, job cap, and solver token): that
        table's values are pointwise upper bounds on the new fill's
        fixpoint, so relaxing from them converges to the exact same
        table as a cold fill while skipping the rounds that rebuilt
        the shared structure.  Warm results are stored under a
        ``("warm", token)`` key extension — a warm table is the full
        no-change fixpoint while a cold decision fill may have
        early-accepted with non-final interior cells, so the two must
        never alias.  Lookups consult the cold key first, then the
        warm key (a warm table answers strictly more).
    """

    def __init__(
        self,
        share_dp: bool = True,
        capacity: Optional[int] = 4096,
        warm_start: bool = True,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("ProbeCache capacity must be >= 1 (or None)")
        self.share_dp = share_dp
        self.capacity = capacity
        self.warm_start = bool(warm_start)
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._rounding: "OrderedDict[Tuple[Instance, int, int], RoundedInstance]" = (
            OrderedDict()
        )
        self._configs: "OrderedDict[NormalizedKey, np.ndarray]" = OrderedDict()
        self._dp: "OrderedDict[Tuple[NormalizedKey, object], DPResult]" = OrderedDict()
        self._geometry: "OrderedDict[Tuple[int, ...], TableGeometry]" = OrderedDict()
        #: warm-start index: (family, token) -> {scaled budget: dp key}.
        #: Entries are validated against ``_dp`` lazily (evictions there
        #: leave stale pointers here, pruned on the next lookup).
        self._warm_index: Dict[tuple, Dict[int, tuple]] = {}
        #: cache outcomes of the most recent probe ("hit"/"miss" per
        #: kind) — consumed by the per-probe trace events.
        self.last_events: Dict[str, str] = {}

    # -- artifacts ----------------------------------------------------------

    def rounding(self, instance: Instance, target: int, eps: float) -> RoundedInstance:
        """Memoized :func:`~repro.core.rounding.round_instance`.

        Keyed on the exact ``(instance, target, k)`` — rounding
        depends on nothing else (:class:`~repro.core.instance.Instance`
        is frozen and hashable).
        """
        key = (instance, int(target), accuracy_k(eps))
        value = self._lookup(self._rounding, key)
        hit = value is not _MISS
        if not hit:
            value = round_instance(instance, target, eps)
            value = self._store("rounding", self._rounding, key, value)
        self._note("rounding", hit)
        return value

    def configurations(
        self, rounded: RoundedInstance, fill: Optional["FillSpec"] = None
    ) -> np.ndarray:
        """Memoized configuration set ``C`` for a rounded probe.

        Returned arrays are shared and marked read-only; copy before
        mutating (no library code mutates them).  A non-default
        ``fill`` (other budget or job cap — the new machine models) is
        keyed by its own normalized identity.
        """
        if _is_default_fill(rounded, fill):
            key = normalized_probe_key(rounded)
        else:
            key = _fill_key(rounded, fill)
        value = self._lookup(self._configs, key)
        hit = value is not _MISS
        if not hit:
            if _is_default_fill(rounded, fill):
                configs = enumerate_configurations(
                    rounded.class_sizes, rounded.counts, rounded.target
                )
            else:
                configs = fill.enumerate()
            configs.setflags(write=False)
            value = self._store("configs", self._configs, key, configs)
        self._note("configs", hit)
        return value

    def dp(
        self, rounded: RoundedInstance, solver, fill: Optional["FillSpec"] = None
    ) -> DPResult:
        """DP-table for a rounded probe, via ``solver`` on a miss.

        ``solver`` follows the :class:`~repro.core.ptas.DPSolver`
        protocol and receives the (cached) configuration set, so a
        miss still skips re-enumeration.  All *exact* solvers produce
        identical tables for identical inputs (tested), so their
        tables share one entry per normalized key.  Solvers whose
        results are valid only under extra context — the decision
        kernels, whose clamped tables depend on the machine budget —
        advertise a ``dp_cache_token`` that extends the key, so a
        clamped table is never served to a different budget (or to an
        exact solver).  ``fill`` (a model's
        :class:`~repro.models.base.FillSpec`) selects the budget, job
        cap, and plan token; the default fill keeps the pre-model keys
        and call shape exactly.
        """
        default = _is_default_fill(rounded, fill)
        if not self.share_dp:
            configs = self.configurations(rounded, fill=fill)
            if default:
                return solver(
                    rounded.counts,
                    rounded.class_sizes,
                    rounded.target,
                    configs=configs,
                    **_solver_kwargs(fill, solver),
                )
            return solver(
                fill.counts,
                fill.class_sizes,
                fill.budget,
                configs=configs,
                **_solver_kwargs(fill, solver),
            )
        base_key = (
            normalized_probe_key(rounded) if default else _fill_key(rounded, fill)
        )
        token = getattr(solver, "dp_cache_token", None)
        key = (base_key, token)
        warm_key = (base_key, ("warm", token))
        value = self._lookup(self._dp, key)
        if value is _MISS:
            # A warm-started table is the full fixpoint — it answers
            # anything a cold table would, so serve it when present.
            value = self._lookup(self._dp, warm_key)
        hit = value is not _MISS
        if not hit:
            configs = self.configurations(rounded, fill=fill)
            kwargs = _solver_kwargs(fill, solver)
            warm_table = None
            if (
                self.warm_start
                and getattr(solver, "supports_warm_start", False)
                and kwargs.get("sparsify") is not False
            ):
                warm_table = self._warm_source(base_key, token)
                self._note("warmstart", warm_table is not None)
            if warm_table is not None:
                kwargs["warm_table"] = warm_table
            if default:
                result = solver(
                    rounded.counts,
                    rounded.class_sizes,
                    rounded.target,
                    configs=configs,
                    **kwargs,
                )
            else:
                result = solver(
                    fill.counts,
                    fill.class_sizes,
                    fill.budget,
                    configs=configs,
                    **kwargs,
                )
            store_key = warm_key if warm_table is not None else key
            value = self._store("dp", self._dp, store_key, result)
            self._register_warm(base_key, token, store_key, value)
        self._note("dp", hit)
        return value

    def _warm_source(self, base_key, token) -> Optional[np.ndarray]:
        """The cached table of the nearest smaller same-family budget.

        Returns the table array (or ``None``).  Stale index entries —
        pointers into evicted ``_dp`` slots — are pruned as they are
        encountered.
        """
        family = (_warm_family(base_key), token)
        budget = _warm_budget(base_key)
        with self._lock:
            budgets = self._warm_index.get(family)
            if not budgets:
                return None
            best = None
            for b in sorted(budgets, reverse=True):
                dp_key = budgets[b]
                if dp_key not in self._dp:
                    del budgets[b]  # evicted since registration
                    continue
                if b < budget:
                    best = self._dp[dp_key]
                    break
            if best is None:
                return None
        if not isinstance(best, DPResult):
            return None  # decision-only results carry no table to seed from
        table = best.table
        if table is None or getattr(table, "ndim", 0) == 0:
            return None
        return table

    def _register_warm(self, base_key, token, store_key, result) -> None:
        """Index one stored DP result as a future warm-start source."""
        if not isinstance(result, DPResult):
            return  # decision-only results carry no table to seed from
        family = (_warm_family(base_key), token)
        with self._lock:
            self._warm_index.setdefault(family, {})[
                _warm_budget(base_key)
            ] = store_key

    def geometry(self, counts: Tuple[int, ...]) -> TableGeometry:
        """Memoized :meth:`TableGeometry.from_counts` (strides reuse)."""
        counts = tuple(int(c) for c in counts)
        value = self._lookup(self._geometry, counts)
        hit = value is not _MISS
        if not hit:
            value = self._store(
                "geometry", self._geometry, counts, TableGeometry.from_counts(counts)
            )
        self._note("geometry", hit)
        return value

    # -- bookkeeping --------------------------------------------------------

    def _lookup(self, store: "OrderedDict", key: object) -> object:
        """Locked LRU read: hit refreshes recency, miss returns ``_MISS``."""
        with self._lock:
            if key in store:
                store.move_to_end(key)
                return store[key]
        return _MISS

    def _store(self, kind: str, store: "OrderedDict", key: object, value: object):
        """Locked insert with LRU eviction past ``capacity``.

        Returns the entry actually cached — a concurrent double-miss
        keeps the first writer's artifact so every caller shares one
        object, matching the idempotent-insert contract.
        """
        evicted = 0
        with self._lock:
            if key in store:
                store.move_to_end(key)
                return store[key]
            store[key] = value
            if self.capacity is not None:
                while len(store) > self.capacity:
                    store.popitem(last=False)
                    self.stats.record_eviction(kind)
                    evicted += 1
        for _ in range(evicted):
            obs.count(f"cache.{kind}.evicted")
        return value

    def _note(self, kind: str, hit: bool) -> None:
        # The lock covers the read-modify-write tallies; the artifact
        # dicts themselves rely on the GIL (idempotent inserts — a
        # concurrent double-miss wastes one solve, never corrupts).
        with self._lock:
            self.stats.record(kind, hit)
            self.last_events[kind] = "hit" if hit else "miss"
        obs.count(f"cache.{kind}.{'hit' if hit else 'miss'}")

    def begin_probe(self) -> None:
        """Reset the per-probe event snapshot (called by the probe)."""
        self.last_events = {}

    def clear(self) -> None:
        """Drop every cached artifact (stats are retained)."""
        self._rounding.clear()
        self._configs.clear()
        self._dp.clear()
        self._geometry.clear()
        self._warm_index.clear()

    def __len__(self) -> int:
        """Total number of cached artifacts across all kinds."""
        return (
            len(self._rounding)
            + len(self._configs)
            + len(self._dp)
            + len(self._geometry)
        )


def _require_configs_for_token(model_token: Optional[tuple], configs) -> None:
    """Filtered-model plans cannot be enumerated by the plan layer itself."""
    if model_token is not None and configs is None:
        from repro.errors import DPError

        raise DPError(
            f"plan lookup with model_token={model_token!r} requires an explicit "
            "configuration set (the filtered enumeration lives with the model)"
        )


class NullPlanCache:
    """Pass-through stand-in for :class:`PlanCache`: builds every plan fresh.

    Mirrors :class:`NullProbeCache` — engines always talk to *a* plan
    cache so they hold one code path; this one never reuses anything.
    """

    def __init__(self) -> None:
        self.stats = CacheStats()

    def plan(
        self,
        counts: Tuple[int, ...],
        class_sizes: Tuple[int, ...],
        target: int,
        configs: Optional[np.ndarray] = None,
        eager: bool = True,
        model_token: Optional[tuple] = None,
        sparsify: bool = False,
    ) -> ProbePlan:
        """Uncached :func:`~repro.dptable.plan.build_probe_plan`."""
        _require_configs_for_token(model_token, configs)
        return build_probe_plan(
            counts, class_sizes, target, configs, eager=eager, sparsify=sparsify
        )

    def clear(self) -> None:
        """Nothing cached, nothing to drop."""

    def __len__(self) -> int:
        return 0


class PlanCache:
    """LRU cache of :class:`~repro.dptable.plan.ProbePlan` objects.

    The plan layer is pure structure — functions of the table shape and
    configuration set only — so it is *always* safe to share, even for
    the simulated engines whose DP results must not be shared
    (``ProbeCache(share_dp=False)``): a plan hit skips re-deriving
    levels, work profiles, and block schedules, while every engine
    still pays its own modelled hardware time for executing them.

    Keys (see :func:`~repro.dptable.plan.plan_signature`):

    * when the caller already holds the configuration set, the exact
      ``("cfg", shape, configs)`` identity;
    * otherwise the gcd-normalized ``("norm", counts, sizes/g, T//g)``
      signature, which makes probes at different absolute targets
      collide whenever their rounded structure agrees — the same
      scale-invariance the probe cache exploits (quarter-split rounds
      frequently probe four targets that normalize to one plan).

    Both keys for one plan alias the same object, so a probe that
    first arrives with configurations in hand still seeds later
    normalized lookups.  Lookups emit ``plan.cache.hit`` /
    ``plan.cache.miss`` observability counters; construction cost
    flows to ``plan.build_ms``.

    Plans for big tables hold several int64 arrays of table size, so
    the cache is bounded: least-recently-used plans are evicted past
    ``capacity``.
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError("PlanCache capacity must be >= 1")
        self.capacity = capacity
        self.stats = CacheStats()
        # The LRU reorder (move_to_end) plus eviction are not safe
        # under the GIL alone; the parallel host executor's probe
        # threads share this cache, so the bookkeeping takes a lock.
        # Plan *construction* happens outside it (a concurrent
        # double-miss builds one redundant plan, never corrupts).
        self._lock = threading.Lock()
        self._plans: "OrderedDict[tuple, ProbePlan]" = OrderedDict()
        #: normalized-signature aliases pointing into ``_plans`` keys.
        self._aliases: Dict[tuple, tuple] = {}
        #: table shape -> key of a resident plan; the level schedule is
        #: a pure function of the shape, so a brand-new plan over a
        #: known shape inherits its mate's schedule instead of
        #: rebuilding it (recorded as the ``warmstart`` stats kind).
        self._by_shape: Dict[tuple, tuple] = {}

    def plan(
        self,
        counts: Tuple[int, ...],
        class_sizes: Tuple[int, ...],
        target: int,
        configs: Optional[np.ndarray] = None,
        eager: bool = True,
        model_token: Optional[tuple] = None,
        sparsify: bool = False,
    ) -> ProbePlan:
        """The memoized plan for one probe (built on the first miss).

        With ``configs`` the lookup is exact; without, it falls back to
        the normalized signature and enumerates configurations only on
        a miss.  ``eager=False`` skips the up-front build of the
        expensive layers on a miss — the relaxation kernels only need
        :attr:`~repro.dptable.plan.ProbePlan.relaxation_order`, and an
        engine that later hits the same plan builds (and then shares)
        the heavy layers on first touch.

        ``model_token`` extends the *normalized* signature (see
        :func:`~repro.dptable.plan.plan_signature`) so a plan over a
        model-filtered configuration set never registers a normalized
        alias that a token-less lookup for the same shape would hit.
        Callers with a token must supply ``configs`` — the cache cannot
        enumerate a filtered set itself.

        ``sparsify=True`` additionally wants the dominance-pruned
        layers: with ``eager`` they are built (and shared) here, and
        either way the lookup is tallied under the ``sparsify`` stats
        kind (hit = the sparse layers were already materialised on the
        plan).  A brand-new plan over an already-cached table *shape*
        inherits that mate's level schedule — the schedule is a pure
        function of the shape — tallied as the ``warmstart`` kind.
        """
        _require_configs_for_token(model_token, configs)
        norm_key = plan_signature(counts, class_sizes, target, model_token=model_token)
        if configs is not None:
            lookup = configs_signature(
                TableGeometry.from_counts(tuple(int(c) for c in counts)), configs
            )
        else:
            lookup = norm_key
        with self._lock:
            key = self._aliases.get(lookup, lookup)
            hit = key in self._plans
            if hit:
                self._plans.move_to_end(key)
                plan = self._plans[key]
        if not hit:
            # Build lazily here even when ``eager``: the shape-mate
            # schedule seed below must land before the first touch.
            plan = build_probe_plan(counts, class_sizes, target, configs, eager=False)
            warm_seeded = False
            with self._lock:
                existing = self._aliases.get(lookup, lookup)
                if existing in self._plans:
                    # Another thread built it first; keep theirs.
                    plan = self._plans[existing]
                    key = existing
                else:
                    mate_key = self._by_shape.get(plan.geometry.shape)
                    mate = (
                        self._plans.get(mate_key)
                        if mate_key is not None
                        else None
                    )
                    if mate is not None and "level_schedule" in mate.__dict__:
                        plan.__dict__["level_schedule"] = mate.__dict__[
                            "level_schedule"
                        ]
                        warm_seeded = True
                    self._plans[key] = plan
                    self._by_shape[plan.geometry.shape] = key
                    self.stats.record("warmstart", warm_seeded)
                    self._evict()
            if warm_seeded:
                obs.count("plan.cache.warm_seeded")
            if eager:
                plan.level_schedule
                plan.candidates
                if sparsify:
                    plan.sparse_configs
                    plan.sparse_valid
                else:
                    plan.valid
        if sparsify:
            sparse_ready = "sparse_configs" in plan.__dict__
            with self._lock:
                self.stats.record("sparsify", sparse_ready)
            if eager and not sparse_ready:
                plan.sparse_configs
                plan.sparse_valid
        with self._lock:
            # Register both signatures so config-keyed and target-keyed
            # lookups for the same structure converge on one plan object.
            self._aliases.setdefault(norm_key, key)
            self._aliases.setdefault(
                configs_signature(plan.geometry, plan.configs), key
            )
        self._note(hit)
        return plan

    def _evict(self) -> None:
        while len(self._plans) > self.capacity:
            stale_key, _ = self._plans.popitem(last=False)
            self.stats.record_eviction("plan")
            obs.count("plan.cache.evicted")
            for alias, key in list(self._aliases.items()):
                if key == stale_key:
                    del self._aliases[alias]
            for shape, key in list(self._by_shape.items()):
                if key == stale_key:
                    del self._by_shape[shape]

    def _note(self, hit: bool) -> None:
        with self._lock:
            self.stats.record("plan", hit)
        obs.count(f"plan.cache.{'hit' if hit else 'miss'}")

    def clear(self) -> None:
        """Drop every cached plan (stats are retained)."""
        with self._lock:
            self._plans.clear()
            self._aliases.clear()
            self._by_shape.clear()

    def __len__(self) -> int:
        return len(self._plans)


#: Process-wide default plan cache: plans are pure structure, so a
#: shared ambient cache is always sound (see :class:`PlanCache`).
#: Engines resolve ``plan_cache=None`` to this instance at run time.
_DEFAULT_PLAN_CACHE: Optional[PlanCache] = None


def default_plan_cache() -> PlanCache:
    """The lazily-created process-wide :class:`PlanCache`."""
    global _DEFAULT_PLAN_CACHE
    if _DEFAULT_PLAN_CACHE is None:
        _DEFAULT_PLAN_CACHE = PlanCache()
    return _DEFAULT_PLAN_CACHE
