"""Local-search polish for schedules (move and swap neighbourhoods).

The PTAS's guarantee is about the worst case; its schedules often leave
easy local gains on the table (rounding groups jobs coarsely).  This
module implements the standard polish: repeatedly move a job off a
critical (maximum-load) machine, or swap a pair of jobs across
machines, whenever that strictly reduces the makespan — terminating at
a local optimum.  The result is never worse than the input (tested),
so ``ptas_schedule(...)`` followed by :func:`improve_schedule` keeps
the ``(1+eps)`` guarantee while usually tightening the realised
makespan toward what LPT/MULTIFIT achieve.

This is deliberately not part of the paper's algorithm — it is the
kind of practical addition a downstream user wants, kept separate so
the reproduction stays faithful.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.schedule import Schedule
from repro.errors import InvalidInstanceError


@dataclass(frozen=True)
class ImprovementResult:
    """A polished schedule plus what the search did."""

    schedule: Schedule
    initial_makespan: int
    moves: int
    swaps: int
    rounds: int

    @property
    def improvement(self) -> int:
        """Makespan reduction achieved (>= 0)."""
        return self.initial_makespan - self.schedule.makespan


def improve_schedule(schedule: Schedule, max_rounds: int = 100) -> ImprovementResult:
    """Polish ``schedule`` with first-improvement move/swap local search.

    Each round scans the critical machines: first tries to *move* one
    of their jobs to a machine where it lowers the makespan, then tries
    to *swap* one of their jobs with a smaller job elsewhere.  Stops at
    a local optimum or after ``max_rounds`` rounds (each round strictly
    reduces the makespan, so termination is guaranteed anyway).
    """
    if max_rounds < 1:
        raise InvalidInstanceError(f"max_rounds must be >= 1, got {max_rounds}")
    inst = schedule.instance
    times = inst.times_array()
    assignment = np.asarray(schedule.assignment, dtype=np.int64).copy()
    loads = schedule.loads().copy()

    moves = swaps = rounds = 0
    initial = int(loads.max())

    for _ in range(max_rounds):
        rounds += 1
        makespan = int(loads.max())
        critical = np.flatnonzero(loads == makespan)
        improved = False

        for machine in critical:
            jobs_here = np.flatnonzero(assignment == machine)
            # Try moving any job to the machine where it hurts least.
            for j in jobs_here:
                t = int(times[j])
                dest_loads = loads + t
                dest_loads[machine] = loads[machine]  # exclude self
                dest = int(np.argmin(dest_loads))
                if dest == machine:
                    continue
                new_peak = max(
                    int(loads[dest]) + t,
                    _max_excluding(loads, machine, dest, loads[machine] - t),
                )
                if new_peak < makespan:
                    assignment[j] = dest
                    loads[machine] -= t
                    loads[dest] += t
                    moves += 1
                    improved = True
                    break
            if improved:
                break
            # Try swapping a critical job with a smaller one elsewhere.
            for j in jobs_here:
                tj = int(times[j])
                others = np.flatnonzero(assignment != machine)
                for o in others:
                    to = int(times[o])
                    if to >= tj:
                        continue
                    other_machine = int(assignment[o])
                    new_here = int(loads[machine]) - tj + to
                    new_there = int(loads[other_machine]) - to + tj
                    new_peak = max(
                        new_here,
                        new_there,
                        _max_excluding(loads, machine, other_machine, 0),
                    )
                    if new_peak < makespan:
                        assignment[j] = other_machine
                        assignment[o] = machine
                        loads[machine] = new_here
                        loads[other_machine] = new_there
                        swaps += 1
                        improved = True
                        break
                if improved:
                    break
            if improved:
                break
        if not improved:
            break

    polished = Schedule(inst, tuple(int(a) for a in assignment))
    if polished.makespan > initial:
        raise InvalidInstanceError("internal error: local search made things worse")
    return ImprovementResult(
        schedule=polished,
        initial_makespan=initial,
        moves=moves,
        swaps=swaps,
        rounds=rounds,
    )


def _max_excluding(loads: np.ndarray, a: int, b: int, floor: int) -> int:
    """Max load over machines other than ``a`` and ``b`` (at least ``floor``)."""
    best = int(floor)
    for i, load in enumerate(loads):
        if i != a and i != b and int(load) > best:
            best = int(load)
    return best
