"""Probe executors: who runs a search round's probes, at what time cost.

Both target searches (:mod:`repro.core.bisection`,
:mod:`repro.core.quarter_split`) proceed in *rounds*: pick one or more
targets from the current interval, probe them all, update the interval.
How those probes execute — one after another on a host, or concurrently
on a device with four Hyper-Q process queues — is a property of the
*hardware*, not of the search logic.  Historically the GPU runner
re-implemented the whole quarter-split loop just to charge concurrent
device time, a divergence bug waiting to happen; this module is the
seam that makes that duplication unnecessary.

A :class:`ProbeExecutor` receives each round's targets, runs
:func:`~repro.core.ptas.probe_target` for every one, and accounts the
round's *simulated* time by inspecting the DP solver's run log (every
simulated engine appends an
:class:`~repro.engines.base.EngineRun`-shaped record to its ``runs``
list; pure solvers such as :func:`~repro.core.dp_vectorized.dp_vectorized`
have no log and charge nothing):

* :class:`SequentialExecutor` — probes run back to back; the round
  costs the **sum** of its probe times.  Models one host device
  (serial or OpenMP engine) and is the default.
* :class:`ConcurrentDeviceExecutor` — the round's probes share one
  device with ``warp_slots`` concurrent warp slots; the round costs
  the **work/span bound** ``max(span, work / warp_slots)`` where the
  span is the longest single probe and the work is the total busy
  warp-time.  Exact when the probes interleave ideally, pessimistic
  otherwise — the standard bound, previously hard-coded in the GPU
  runner's ``_concurrent_time``.

The accounting executors are deliberately *accounting-only*: probes
execute in submission order in this process (the simulators model the
hardware), so results are bit-identical whichever executor runs the
search — only the charged time differs (tested).  The exception is
:class:`ParallelHostExecutor`, which runs a round's probes on real
host threads for the pure (non-simulated) kernels — numpy releases
the GIL in the hot loops, so the quarter split's four probes genuinely
overlap; results remain bit-identical because a round's probes are
independent.
"""

from __future__ import annotations

import contextvars
import os
import time
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Optional, Protocol, Sequence, runtime_checkable

from repro.core.instance import Instance
from repro.core.ptas import DPSolver, ProbeResult, probe_target
from repro.errors import InvalidInstanceError
from repro.observability import context as obs

if TYPE_CHECKING:
    from repro.core.probe_cache import ProbeCache
    from repro.resilience.policy import ResiliencePolicy


@runtime_checkable
class SimulatedRun(Protocol):
    """The slice of :class:`~repro.engines.base.EngineRun` executors read."""

    simulated_s: float
    metrics: object


@runtime_checkable
class ProbeExecutor(Protocol):
    """Anything that can run a search round's probes and bill its time."""

    #: accumulated simulated seconds across every round executed.
    elapsed_s: float
    #: number of rounds executed.
    rounds: int

    def run_round(
        self,
        instance: Instance,
        targets: Sequence[int],
        eps: float,
        dp_solver: DPSolver,
        cache: Optional["ProbeCache"] = None,
    ) -> list[ProbeResult]:
        """Probe every target of one round; returns results in target order."""
        ...


class _AccountingExecutor:
    """Shared round loop: run the probes, bill the new engine runs.

    Subclasses implement :meth:`charge` — the round's simulated cost as
    a function of the engine runs the round triggered.  Solvers without
    a ``runs`` log (the pure DP functions) produce an empty run list
    and a zero charge.

    ``resilience`` is an optional
    :class:`~repro.resilience.ResiliencePolicy`: when set, every probe
    of every round runs through
    :meth:`~repro.resilience.ResiliencePolicy.run_probe` — admission
    control, fault-injection hooks, bounded retries, and the per-probe
    deadline (:class:`~repro.errors.ProbeTimeoutError`) — instead of a
    bare :func:`~repro.core.ptas.probe_target`.  Successful probes are
    bit-identical either way (tested).
    """

    def __init__(self, resilience: Optional["ResiliencePolicy"] = None) -> None:
        self.elapsed_s = 0.0
        self.rounds = 0
        self.resilience = resilience

    def _probe(
        self,
        instance: Instance,
        target: int,
        eps: float,
        dp_solver: DPSolver,
        cache: Optional["ProbeCache"],
    ) -> ProbeResult:
        """One probe, through the resilience policy when one is set."""
        if self.resilience is None:
            return probe_target(instance, target, eps, dp_solver, cache=cache)
        return self.resilience.run_probe(instance, target, eps, dp_solver, cache=cache)

    def run_round(
        self,
        instance: Instance,
        targets: Sequence[int],
        eps: float,
        dp_solver: DPSolver,
        cache: Optional["ProbeCache"] = None,
    ) -> list[ProbeResult]:
        """Probe every target in order and account the round's time."""
        run_log = getattr(dp_solver, "runs", None)
        mark = len(run_log) if run_log is not None else 0
        probes = [
            self._probe(instance, t, eps, dp_solver, cache) for t in targets
        ]
        new_runs: list[SimulatedRun] = (
            list(run_log[mark:]) if run_log is not None else []
        )
        charge = self.charge(new_runs)
        self.elapsed_s += charge
        self.rounds += 1
        obs.count("executor.rounds")
        if charge:
            obs.count("executor.simulated_s", charge)
        return probes

    def charge(self, runs: Sequence[SimulatedRun]) -> float:
        """Simulated seconds one round of ``runs`` costs (subclass hook)."""
        raise NotImplementedError


class SequentialExecutor(_AccountingExecutor):
    """Probes run back to back on one device: the round costs their sum."""

    def charge(self, runs: Sequence[SimulatedRun]) -> float:
        """Sum of the round's probe times."""
        return float(sum(r.simulated_s for r in runs))


class ConcurrentDeviceExecutor(_AccountingExecutor):
    """Probes share one device: the round costs the work/span bound.

    ``span`` is the longest single probe (no amount of concurrency
    beats the critical path); ``work / warp_slots`` is the time the
    device needs just to issue the total busy warp-time (reported by
    the GPU simulator as ``warp_seconds_paid``) through its
    ``warp_slots`` concurrent slots.  The charge is the larger of the
    two — exact under ideal interleaving, a lower bound otherwise, and
    never more than the sequential sum (tested).
    """

    def __init__(
        self, warp_slots: int, resilience: Optional["ResiliencePolicy"] = None
    ) -> None:
        super().__init__(resilience=resilience)
        if warp_slots < 1:
            raise InvalidInstanceError(
                f"warp_slots must be a positive integer, got {warp_slots}"
            )
        self.warp_slots = int(warp_slots)

    @classmethod
    def for_engine(cls, engine: object) -> "ConcurrentDeviceExecutor":
        """Executor sized to ``engine``'s device (``engine.spec.warp_slots``)."""
        spec = getattr(engine, "spec", None)
        warp_slots = getattr(spec, "warp_slots", None)
        if warp_slots is None:
            raise InvalidInstanceError(
                f"{type(engine).__name__} has no device spec with warp_slots; "
                "use SequentialExecutor for host backends"
            )
        return cls(int(warp_slots))

    def charge(self, runs: Sequence[SimulatedRun]) -> float:
        """``max(span, work / warp_slots)`` over the round's probes."""
        if not runs:
            return 0.0
        span = max(float(r.simulated_s) for r in runs)
        busy = sum(
            float(getattr(r, "metrics", {}).get("warp_seconds_paid", 0.0))
            for r in runs
        )
        return max(span, busy / self.warp_slots)


class ParallelHostExecutor(_AccountingExecutor):
    """Real host-thread concurrency for a round's probes.

    The quarter split probes four targets per round; historically the
    "concurrent" segments executed back to back and only the *charged*
    time modelled overlap.  This executor genuinely overlaps them: each
    probe runs on its own thread, and numpy releases the GIL inside
    the slice/gather kernels that dominate a probe, so wall time per
    round approaches the longest single probe instead of the sum
    (asserted in tests).  Results stay bit-identical — probes of one
    round are independent by construction (the searches only combine
    their outcomes *after* the round), and the shared caches are
    thread-safe with idempotent inserts.

    Simulated engines are excluded by design: they are stateful
    accumulators (``runs`` logs, simulated clocks) whose concurrency
    is *modelled* by :class:`ConcurrentDeviceExecutor`, not real —
    threading them would corrupt their accounting.  When the solver
    exposes a ``runs`` log the round falls back to the sequential
    in-order path with the sequential sum charge, preserving the
    5-way interval-update semantics and the simulated-time accounting
    unchanged.

    Each worker inherits the submitting thread's ambient context
    (:func:`contextvars.copy_context`), so an active tracer keeps
    receiving counters from inside the probes; the tracer itself is
    thread-safe.  Attributes ``last_round_wall_s`` and
    ``last_probe_wall_s`` expose the most recent round's measured
    wall times (the overlap evidence).

    ``fill_workers`` declares that each probe may itself fan out onto
    that many fill-fabric processes (``--fill-workers``); the probe
    thread count is then capped so ``threads * fill_workers`` does not
    oversubscribe the host's cores — two layers of parallelism
    multiply, they do not add.
    """

    def __init__(
        self,
        workers: int = 4,
        resilience: Optional["ResiliencePolicy"] = None,
        fill_workers: Optional[int] = None,
    ) -> None:
        super().__init__(resilience=resilience)
        if workers < 1:
            raise InvalidInstanceError(
                f"workers must be a positive integer, got {workers}"
            )
        self.workers = int(workers)
        self.fill_workers = None if fill_workers is None else int(fill_workers)
        if self.fill_workers is not None and self.fill_workers > 1:
            cores = os.cpu_count() or 1
            self.workers = max(1, min(self.workers, cores // self.fill_workers))
        #: wall seconds of the most recent threaded round.
        self.last_round_wall_s = 0.0
        #: per-probe wall seconds of the most recent threaded round.
        self.last_probe_wall_s: list[float] = []

    def run_round(
        self,
        instance: Instance,
        targets: Sequence[int],
        eps: float,
        dp_solver: DPSolver,
        cache: Optional["ProbeCache"] = None,
    ) -> list[ProbeResult]:
        """Probe the round's targets on a thread pool (results in order)."""
        if (
            getattr(dp_solver, "runs", None) is not None
            or len(targets) <= 1
            or self.workers == 1
        ):
            return super().run_round(instance, targets, eps, dp_solver, cache=cache)

        def timed(t: int) -> tuple[ProbeResult, float]:
            start = time.perf_counter()
            probe = self._probe(instance, t, eps, dp_solver, cache)
            return probe, time.perf_counter() - start

        round_start = time.perf_counter()
        with ThreadPoolExecutor(
            max_workers=min(self.workers, len(targets))
        ) as pool:
            futures = [
                pool.submit(contextvars.copy_context().run, timed, t)
                for t in targets
            ]
            try:
                outcomes = [f.result() for f in futures]
            except BaseException:
                # One worker failed: cancel everything still queued and
                # wait out the in-flight probes so no thread outlives the
                # round, then surface the *original* failure (not a
                # CancelledError from a sibling).
                pool.shutdown(wait=True, cancel_futures=True)
                raise
        self.last_round_wall_s = time.perf_counter() - round_start
        self.last_probe_wall_s = [wall for _, wall in outcomes]
        self.rounds += 1
        obs.count("executor.rounds")
        obs.count("executor.parallel_rounds")
        return [probe for probe, _ in outcomes]

    def charge(self, runs: Sequence[SimulatedRun]) -> float:
        """Sequential-fallback charge (threaded rounds bill wall time only)."""
        return float(sum(r.simulated_s for r in runs))


def default_executor(
    dp_solver: object, resilience: Optional["ResiliencePolicy"] = None
) -> _AccountingExecutor:
    """The executor a backend would pick for itself.

    Device engines (anything exposing ``spec.warp_slots``) get a
    :class:`ConcurrentDeviceExecutor` — their search rounds genuinely
    overlap on the device — and every other backend (host engines,
    pure DP functions, the hybrid dispatcher) gets a
    :class:`SequentialExecutor`.  Used by the runner and the CLI when
    the caller does not choose explicitly.  ``resilience`` is threaded
    through to whichever executor is built.
    """
    warp_slots = getattr(getattr(dp_solver, "spec", None), "warp_slots", None)
    if warp_slots is not None:
        return ConcurrentDeviceExecutor(int(warp_slots), resilience=resilience)
    return SequentialExecutor(resilience=resilience)
