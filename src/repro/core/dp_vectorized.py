"""Vectorized high-dimensional DP (the library's production solver).

Equation 1 defines a shortest-path problem on the lattice
``prod(n_i + 1)``: edges subtract one configuration, all edges have
weight 1, and ``OPT(u)`` is the distance from the origin.  Instead of
walking cells one by one (Algorithm 2), this solver runs *whole-table
relaxation rounds*: for each configuration ``c`` it takes the
elementwise minimum between a shifted view of the table and the table
plus one —

    ``OPT[c_1:, ..., c_d:] = min(OPT[c_1:, ..., c_d:], OPT[:-c_1, ..., :-c_d] + 1)``

— a single numpy slice operation touching every cell at once.  Rounds
repeat until a fixpoint.  Because ``OPT`` values are machine counts, at
most ``OPT(N) + 1`` rounds are needed (each round finalises all cells
one more edge away from the origin — in practice far fewer because
in-place updates propagate within a round); each round costs
``O(|C| * sigma)`` flat numpy work with no Python-level per-cell loop,
following the vectorization idiom of the HPC guides.

The result is bit-identical to :func:`repro.core.dp_reference.dp_reference`
(tested), at orders of magnitude higher throughput.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.configs import enumerate_configurations
from repro.core.dp_common import (
    DPResult,
    UNREACHABLE,
    empty_dp_result,
    pick_table_dtype,
    unreachable_for,
    widen_table,
)
from repro.core.rounding import RoundedInstance
from repro.errors import DPError
from repro.observability import context as obs


def shift_selectors(
    shape: tuple[int, ...], configs: np.ndarray, order: np.ndarray
) -> tuple[tuple[tuple, tuple], ...]:
    """Slice-selector pairs for every configuration's relaxation pass.

    For each config ``c`` (visited in ``order``) the pair selects the
    destination view ``dst[u] = table[u]`` for cells ``u >= c`` and the
    source view ``src[u] = table[u - c]``.  Selectors depend only on
    ``(shape, configs, order)`` — i.e. on the probe *plan*, not on any
    concrete table — so :attr:`repro.dptable.plan.ProbePlan.shift_slices`
    caches them across probes, and a single fill builds them once
    instead of once per relaxation round (the tuple-of-slices
    construction used to dominate small-table fills).
    """
    return tuple(
        (
            tuple(slice(int(c), None) for c in configs[idx]),
            tuple(
                slice(None, s - int(c)) for s, c in zip(shape, configs[idx])
            ),
        )
        for idx in order
    )


def closure_views(table: np.ndarray) -> tuple[np.ndarray, ...]:
    """Reversed-axis views of ``table`` for the downward-closure sweeps.

    Because the configuration set is downward closed, the exact table
    is coordinatewise monotone (a cover of ``v`` covers every ``u <=
    v``), so ``table[u] <= table[u + e_i]`` at the fixpoint.  View
    ``i`` reverses axis ``i``; a ``np.minimum.accumulate`` over it is
    the suffix-min sweep that propagates each cell's value to all
    dominated cells along that axis.
    """
    d = table.ndim
    return tuple(
        table[tuple(slice(None, None, -1) if a == i else slice(None) for a in range(d))]
        for i in range(d)
    )


def run_closure_sweeps(views: tuple[np.ndarray, ...]) -> None:
    """One downward-closure round: a suffix-min sweep along every axis."""
    for axis, view in enumerate(views):
        np.minimum.accumulate(view, axis=axis, out=view)


def bind_passes(
    table: np.ndarray,
    shifts: tuple[tuple[tuple, tuple], ...],
    scratch: np.ndarray,
    mask: np.ndarray,
) -> list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
    """Materialise per-pass working views against one concrete table.

    Each entry is ``(dst, src, cand, improved)``: the two table views
    of one configuration's shift plus that pass's scratch/mask windows.
    All four are views — binding them once lets the round loop run
    pure ufunc calls with zero per-pass Python construction.  Sharing
    one scratch and one mask across passes is safe because passes run
    sequentially and every pass overwrites its windows before reading.
    """
    bound = []
    for dst_sel, src_sel in shifts:
        dst = table[dst_sel]
        src = table[src_sel]
        cand = scratch[: src.size].reshape(src.shape)
        improved = mask[: src.size].reshape(src.shape)
        bound.append((dst, src, cand, improved))
    return bound


def seed_warm_table(
    table: np.ndarray, warm_table: np.ndarray, cap: int | None = None
) -> np.ndarray:
    """Min-fold a cached table into a freshly initialised fill table.

    ``warm_table`` is a canonical int64 table from a *smaller or equal*
    scaled budget of the same table family: its values are valid upper
    bounds on this fill's fixpoint (fewer configurations can only need
    more machines), so min-folding it preserves the
    upper-bound-and-monotone-decrease invariant of every relaxation
    kernel and Bellman–Ford still converges to the same unique
    fixpoint.  Sentinels at or above :data:`UNREACHABLE` map to the
    narrow dtype's own sentinel; ``cap`` (a decision clamp) bounds the
    seed for clamped fills.  Returns a copy of the seeded table so the
    caller can count ``warmstart.cells_reused`` at the end.
    """
    warm = np.asarray(warm_table)
    if warm.shape != table.shape:
        raise DPError(
            f"warm table shape {warm.shape} does not match fill shape "
            f"{table.shape}"
        )
    sentinel = unreachable_for(table.dtype)
    seed = np.where(warm >= UNREACHABLE, sentinel, warm)
    if cap is not None:
        seed = np.minimum(seed, int(cap))
    np.minimum(table, seed.astype(table.dtype), out=table)
    return table.copy()


def note_warm_convergence(table: np.ndarray, warm_init: np.ndarray) -> None:
    """Emit the warm-start reuse counters after a warm fill converged."""
    obs.count("warmstart.fills")
    obs.count(
        "warmstart.cells_reused", int(np.count_nonzero(table == warm_init))
    )


def dp_vectorized(
    counts: Sequence[int],
    class_sizes: Sequence[int],
    target: int,
    configs: np.ndarray | None = None,
    max_rounds: int | None = None,
    order: np.ndarray | None = None,
    shifts: tuple[tuple[tuple, tuple], ...] | None = None,
    model_token: tuple | None = None,
    sparsify: bool = False,
    sparse_configs: np.ndarray | None = None,
    sparse_shifts: tuple | None = None,
    warm_table: np.ndarray | None = None,
) -> DPResult:
    """Fill the DP-table by repeated vectorized relaxation.

    Parameters mirror :func:`repro.core.dp_reference.dp_reference`.

    ``max_rounds`` caps the relaxation loop (defaults to the number of
    long jobs plus one, the worst-case diameter); reaching the cap
    without convergence indicates a bug and raises :class:`DPError`.

    ``order`` is an optional precomputed config processing order (the
    :attr:`~repro.dptable.plan.ProbePlan.relaxation_order` of a cached
    plan); when omitted the largest-first order is derived locally.
    ``shifts`` are the matching precomputed slice selectors (a plan's
    :attr:`~repro.dptable.plan.ProbePlan.shift_slices`); they must be
    aligned with ``order`` and are rebuilt locally when omitted.

    ``sparsify=True`` relaxes with the dominance-pruned maximal subset
    only (:mod:`repro.core.sparsify`).  The cover recurrence
    ``OPT[u] = min_c OPT[clip(u - c)] + 1`` is realised as plain *box*
    passes over the maximal subset plus one downward-closure sweep per
    axis per round: for any maximal ``c``, ``clip(u - c) = v - c``
    where ``v = max(u, c)`` elementwise, so the clipped candidate at
    ``u`` is the exact box candidate at ``v`` propagated down by
    monotonicity (:func:`closure_views`).  Same unique fixpoint, so
    the returned table is bit-identical to the dense fill's and
    ``configs`` (the full set, which the backtrack walks) is returned
    unchanged.  ``sparse_configs`` / ``sparse_shifts`` are the
    plan-cached layers
    (:attr:`~repro.dptable.plan.ProbePlan.sparse_configs` /
    :attr:`~repro.dptable.plan.ProbePlan.sparse_shift_slices`);
    either being supplied implies ``sparsify``.

    ``warm_table`` seeds the fill from a cached table of the same
    family at a smaller scaled budget (see :func:`seed_warm_table`);
    the fixpoint — and therefore the result — is unchanged, only the
    round count drops.

    The fill runs in the narrowest dtype that holds ``sum(counts)``
    (usually int16 — a 4x cut in memory traffic per relaxation pass)
    and is widened to the canonical int64 table at the end, so the
    result is bit-identical to the historical int64 fill.
    """
    counts = tuple(int(c) for c in counts)
    if len(counts) != len(class_sizes):
        raise DPError("counts and class_sizes must have equal length")
    if len(counts) == 0:
        return empty_dp_result()
    if model_token is not None and configs is None:
        raise DPError(
            "model-filtered probes must supply their configuration set"
        )
    if configs is None:
        configs = enumerate_configurations(class_sizes, counts, target)
    if sparse_configs is not None or sparse_shifts is not None:
        sparsify = True

    dtype = pick_table_dtype(sum(counts))
    unreach = unreachable_for(dtype)
    shape = tuple(c + 1 for c in counts)
    table = np.full(shape, unreach, dtype=dtype)
    table[(0,) * len(counts)] = 0

    if configs.shape[0] == 0:
        # No machine can take even one job within T: only the origin is
        # reachable.
        return DPResult(table=widen_table(table), configs=configs)

    warm_init = None
    if warm_table is not None:
        warm_init = seed_warm_table(table, warm_table)

    if max_rounds is None:
        max_rounds = sum(counts) + 1

    if sparsify:
        if sparse_shifts is None:
            if sparse_configs is None:
                from repro.core.sparsify import sparsify_configurations

                sparse_configs, _ = sparsify_configurations(
                    configs, counts, class_sizes, target
                )
            sparse_order = np.argsort(
                -sparse_configs.sum(axis=1), kind="stable"
            )
            sparse_shifts = shift_selectors(
                shape, sparse_configs, sparse_order
            )
        scratch = np.empty(table.size, dtype=dtype)
        mask = np.empty(table.size, dtype=bool)
        bound = bind_passes(table, sparse_shifts, scratch, mask)
        views = closure_views(table)
        before = np.empty(shape, dtype=dtype)
        rounds = 0
        passes = 0
        for _ in range(max_rounds):
            rounds += 1
            changed = False
            for dst, src, cand, improved in bound:
                np.add(src, 1, out=cand)
                np.less(cand, dst, out=improved)
                if improved.any():
                    np.copyto(dst, cand, where=improved)
                    changed = True
            np.copyto(before, table)
            run_closure_sweeps(views)
            passes += len(bound)
            if not changed and np.array_equal(table, before):
                obs.count("dp.vectorized.calls")
                obs.count("dp.vectorized.rounds", rounds)
                obs.count("dp.vectorized.config_passes", passes)
                if warm_init is not None:
                    note_warm_convergence(table, warm_init)
                return DPResult(table=widen_table(table), configs=configs)
        raise DPError(
            f"sparse relaxation did not converge within {max_rounds} rounds "
            f"(shape={shape}, |C_max|={len(sparse_shifts)})"
        )

    if shifts is None:
        if order is None:
            # Larger configurations first: they reach far cells in fewer
            # rounds, accelerating convergence of in-place propagation.
            order = np.argsort(-configs.sum(axis=1), kind="stable")
        shifts = shift_selectors(shape, configs, order)

    # One scratch buffer (plus one bool mask) reused by every config
    # pass: each pass needs a copy of the shifted source — src may
    # alias dst — but a fresh `src + 1` allocation per pass makes the
    # allocator the bottleneck on large tables.  Every pass's views
    # are at most table-sized, so slices of these two flats suffice.
    # All per-pass views are bound once, before the loop: the rounds
    # then execute pure ufunc calls (the np.add below copies src into
    # the scratch window first because src may alias dst).
    scratch = np.empty(table.size, dtype=dtype)
    mask = np.empty(table.size, dtype=bool)
    bound = bind_passes(table, shifts, scratch, mask)

    rounds = 0
    passes = 0
    for _ in range(max_rounds):
        rounds += 1
        changed = False
        for dst, src, cand, improved in bound:
            np.add(src, 1, out=cand)
            np.less(cand, dst, out=improved)
            if improved.any():
                np.copyto(dst, cand, where=improved)
                changed = True
        passes += len(bound)
        if not changed:
            obs.count("dp.vectorized.calls")
            obs.count("dp.vectorized.rounds", rounds)
            obs.count("dp.vectorized.config_passes", passes)
            if warm_init is not None:
                note_warm_convergence(table, warm_init)
            return DPResult(table=widen_table(table), configs=configs)
    raise DPError(
        f"relaxation did not converge within {max_rounds} rounds "
        f"(shape={shape}, |C|={configs.shape[0]})"
    )


def dp_vectorized_for(rounded: RoundedInstance, configs: np.ndarray | None = None) -> DPResult:
    """Vectorized DP on a :class:`RoundedInstance`."""
    return dp_vectorized(rounded.counts, rounded.class_sizes, rounded.target, configs)
