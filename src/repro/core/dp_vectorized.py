"""Vectorized high-dimensional DP (the library's production solver).

Equation 1 defines a shortest-path problem on the lattice
``prod(n_i + 1)``: edges subtract one configuration, all edges have
weight 1, and ``OPT(u)`` is the distance from the origin.  Instead of
walking cells one by one (Algorithm 2), this solver runs *whole-table
relaxation rounds*: for each configuration ``c`` it takes the
elementwise minimum between a shifted view of the table and the table
plus one —

    ``OPT[c_1:, ..., c_d:] = min(OPT[c_1:, ..., c_d:], OPT[:-c_1, ..., :-c_d] + 1)``

— a single numpy slice operation touching every cell at once.  Rounds
repeat until a fixpoint.  Because ``OPT`` values are machine counts, at
most ``OPT(N) + 1`` rounds are needed (each round finalises all cells
one more edge away from the origin — in practice far fewer because
in-place updates propagate within a round); each round costs
``O(|C| * sigma)`` flat numpy work with no Python-level per-cell loop,
following the vectorization idiom of the HPC guides.

The result is bit-identical to :func:`repro.core.dp_reference.dp_reference`
(tested), at orders of magnitude higher throughput.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.configs import enumerate_configurations
from repro.core.dp_common import DPResult, UNREACHABLE, empty_dp_result
from repro.core.rounding import RoundedInstance
from repro.errors import DPError
from repro.observability import context as obs


def _shift_views(table: np.ndarray, cfg: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Destination and source views for one configuration's relaxation.

    ``dst[u] = table[u]`` for cells ``u >= cfg``; ``src[u] = table[u - cfg]``.
    Both are views — no copies (the addition below makes the one
    required temporary).
    """
    dst = table[tuple(slice(int(c), None) for c in cfg)]
    src = table[tuple(slice(None, s - int(c)) for s, c in zip(table.shape, cfg))]
    return dst, src


def dp_vectorized(
    counts: Sequence[int],
    class_sizes: Sequence[int],
    target: int,
    configs: np.ndarray | None = None,
    max_rounds: int | None = None,
) -> DPResult:
    """Fill the DP-table by repeated vectorized relaxation.

    Parameters mirror :func:`repro.core.dp_reference.dp_reference`.

    ``max_rounds`` caps the relaxation loop (defaults to the number of
    long jobs plus one, the worst-case diameter); reaching the cap
    without convergence indicates a bug and raises :class:`DPError`.
    """
    counts = tuple(int(c) for c in counts)
    if len(counts) != len(class_sizes):
        raise DPError("counts and class_sizes must have equal length")
    if len(counts) == 0:
        return empty_dp_result()
    if configs is None:
        configs = enumerate_configurations(class_sizes, counts, target)

    shape = tuple(c + 1 for c in counts)
    table = np.full(shape, UNREACHABLE, dtype=np.int64)
    table[(0,) * len(counts)] = 0

    if configs.shape[0] == 0:
        # No machine can take even one job within T: only the origin is
        # reachable.
        return DPResult(table=table, configs=configs)

    if max_rounds is None:
        max_rounds = sum(counts) + 1

    # Larger configurations first: they reach far cells in fewer rounds,
    # accelerating convergence of the in-place propagation.
    order = np.argsort(-configs.sum(axis=1), kind="stable")

    # One scratch buffer (plus one bool mask) reused by every config
    # pass: each pass needs a copy of the shifted source — src may
    # alias dst — but a fresh `src + 1` allocation per pass makes the
    # allocator the bottleneck on large tables.  Every pass's views
    # are at most table-sized, so slices of these two flats suffice.
    scratch = np.empty(table.size, dtype=np.int64)
    mask = np.empty(table.size, dtype=bool)

    rounds = 0
    passes = 0
    for _ in range(max_rounds):
        rounds += 1
        changed = False
        for idx in order:
            cfg = configs[idx]
            dst, src = _shift_views(table, cfg)
            cand = scratch[: src.size].reshape(src.shape)
            np.add(src, 1, out=cand)  # scratch copy; src may alias dst
            improved = mask[: src.size].reshape(src.shape)
            np.less(cand, dst, out=improved)
            passes += 1
            if improved.any():
                np.copyto(dst, cand, where=improved)
                changed = True
        if not changed:
            obs.count("dp.vectorized.calls")
            obs.count("dp.vectorized.rounds", rounds)
            obs.count("dp.vectorized.config_passes", passes)
            return DPResult(table=table, configs=configs)
    raise DPError(
        f"relaxation did not converge within {max_rounds} rounds "
        f"(shape={shape}, |C|={configs.shape[0]})"
    )


def dp_vectorized_for(rounded: RoundedInstance, configs: np.ndarray | None = None) -> DPResult:
    """Vectorized DP on a :class:`RoundedInstance`."""
    return dp_vectorized(rounded.counts, rounded.class_sizes, rounded.target, configs)
