"""Logic shared by the target searches (bisection and quarter split).

Both searches end the same way: if the last accepted probe is not the
probe at the converged target ``UB``, re-probe ``UB`` once (the Graham
upper bound is always feasible, so this must accept), then return the
best schedule among every accepted probe with the guarantee anchored at
the converged target.  Historically this epilogue existed in *three*
places (bisection, quarter split, and the GPU runner's private copy of
the quarter split) with subtle drift between them; it now exists once,
here, and every search — on any executor, any backend — goes through
it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.instance import Instance
from repro.core.ptas import DPSolver, ProbeResult, PtasResult
from repro.errors import ReproError

if TYPE_CHECKING:
    from repro.core.executor import ProbeExecutor
    from repro.core.probe_cache import ProbeCache


def finalize_search(
    search_name: str,
    instance: Instance,
    eps: float,
    dp_solver: DPSolver,
    executor: "ProbeExecutor",
    cache: Optional["ProbeCache"],
    probes: list[ProbeResult],
    best_accept: Optional[ProbeResult],
    converged_target: int,
    iterations: int,
) -> PtasResult:
    """Close out a converged search and assemble its :class:`PtasResult`.

    ``probes`` is mutated in place when the final re-check probe runs
    (so the caller's list matches ``result.probes``).  Raises
    :class:`~repro.errors.ReproError` if the re-check rejects, which
    would mean the search violated its interval invariant.
    """
    if best_accept is None or best_accept.target != converged_target:
        # Either the interval started degenerate, or the last accepted
        # probe was at a larger T than the final UB (possible when LB
        # catches up from below).  One final probe at UB settles it; the
        # initial UB (Graham bound) is always feasible, so this accepts.
        # With a cache this re-probe is (almost) free: its target was
        # usually probed inside the loop already.
        probe = executor.run_round(
            instance, [converged_target], eps, dp_solver, cache=cache
        )[0]
        probes.append(probe)
        if not probe.accepted:
            raise ReproError(
                f"{search_name} invariant violated: "
                f"final target {converged_target} rejected"
            )
        best_accept = probe

    # The (1+eps) guarantee flows from the lowest accepted target, but
    # an accepted probe at a higher T can happen to build a *better*
    # schedule (its greedy short-job packing had more slack).  Return
    # the best schedule seen; it is at most the guaranteed bound.
    best_schedule = min(
        (p.schedule for p in probes if p.schedule is not None),
        key=lambda s: s.makespan,
    )
    return PtasResult(
        schedule=best_schedule,
        eps=eps,
        iterations=iterations,
        probes=probes,
        final_target=best_accept.target,
    )
