"""Schedule extraction from a filled DP-table (Algorithm 1, line 10).

The DP stores only machine *counts*; to produce an actual schedule we
walk back from the full job vector ``N`` to the origin, peeling off one
machine configuration per step.  At cell ``u`` any configuration ``c``
with ``OPT(u - c) == OPT(u) - 1`` is a valid greedy choice (the DP
recurrence guarantees at least one exists for every reachable non-origin
cell), so the walk takes ``OPT(N)`` steps, each scanning the
configuration set once — negligible next to the table fill.
"""

from __future__ import annotations

import numpy as np

from repro.core.dp_common import DPResult, UNREACHABLE
from repro.errors import InfeasibleError, DPError


def extract_machine_configurations(result: DPResult) -> list[tuple[int, ...]]:
    """Peel the full job vector into one configuration per machine.

    Returns ``OPT(N)`` class-count vectors whose componentwise sum is
    exactly ``N`` (verified before returning).  Raises
    :class:`InfeasibleError` when ``OPT(N)`` is unreachable.
    """
    table = result.table
    if table.ndim == 0:
        return []
    full = tuple(s - 1 for s in table.shape)
    return extract_configurations_at(result, full)


def extract_configurations_at(result: DPResult, cell) -> list[tuple[int, ...]]:
    """Peel an arbitrary reachable cell into ``OPT(cell)`` configurations.

    The multi-type models split the full job vector across machine
    types; each type's share is a sub-corner cell of its own table,
    backtracked here exactly like the identical model's full corner.
    """
    table = result.table
    if table.ndim == 0:
        return []
    full = tuple(int(x) for x in cell)
    if int(table[full]) >= UNREACHABLE:
        raise InfeasibleError(
            f"no packing of job vector {full} exists for this target"
        )

    configs = result.configs
    u = np.asarray(full, dtype=np.int64)
    chosen: list[tuple[int, ...]] = []
    current = int(table[full])
    while current > 0:
        applicable = (configs <= u).all(axis=1)
        found = False
        for row in np.flatnonzero(applicable):
            prev = u - configs[row]
            if int(table[tuple(prev)]) == current - 1:
                chosen.append(tuple(int(x) for x in configs[row]))
                u = prev
                current -= 1
                found = True
                break
        if not found:
            raise DPError(
                f"DP table inconsistent: cell {tuple(u)} has OPT={current} "
                "but no predecessor with OPT-1"
            )
    if u.any():
        raise DPError("backtrack terminated before reaching the origin")

    total = np.zeros(table.ndim, dtype=np.int64)
    for cfg in chosen:
        total += np.asarray(cfg)
    if not np.array_equal(total, np.asarray(full)):
        raise DPError("extracted configurations do not sum to the job vector")
    return chosen
