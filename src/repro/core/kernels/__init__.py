"""repro.core.kernels — interchangeable DP kernels plus the ``auto`` selector.

The production DP fill used to be one function
(:func:`~repro.core.dp_vectorized.dp_vectorized`).  This package
breaks the fill into *kernels* with distinct cost profiles and a cost
model that routes each probe to the cheapest one:

* :func:`dp_decision` / :class:`DecisionKernel` — clamped decision
  fill; rejected probes stop at the budget, accepted probes stop the
  moment the corner cell is final, schedules stay bit-identical.
* :func:`dp_levelsweep` / :class:`SweepKernel` — plan-driven single
  sweep; each cell computed once per anti-diagonal level, no fixpoint
  rounds.
* :class:`AutoKernel` / :func:`choose_kernel` — the per-probe router
  (the ``"auto"`` backend).
* :class:`FrontierDecisionKernel` — decision-only frontier sweep
  (no table at all; registered with the ``decision_only`` capability).

See ``docs/PERFORMANCE.md`` ("Choosing a DP kernel") for when each
wins.
"""

from repro.core.kernels.auto import (
    AutoKernel,
    KernelChoice,
    choose_kernel,
    estimate_rounds,
)
from repro.core.kernels.decision import (
    DecisionKernel,
    FeasibilityResult,
    FrontierDecisionKernel,
    dp_decision,
)
from repro.core.kernels.sweep import SweepKernel, dp_levelsweep

__all__ = [
    "AutoKernel",
    "KernelChoice",
    "choose_kernel",
    "estimate_rounds",
    "DecisionKernel",
    "FeasibilityResult",
    "FrontierDecisionKernel",
    "dp_decision",
    "SweepKernel",
    "dp_levelsweep",
]
