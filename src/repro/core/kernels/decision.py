"""Decision-mode DP kernels: answer ``OPT(N) <= m`` without an exact fill.

The bisection/quarter-split predicate (Algorithm 1 line 11) never needs
``OPT(u)`` beyond the machine budget ``m`` — it needs a yes/no at the
corner cell, plus a backtrackable table when the answer is yes.  The
sparsification analyses of makespan PTASes (Jansen–Klein–Verschae)
make the same observation at the LP level; here it is applied to the
table fill:

* :func:`dp_decision` runs the vectorized relaxation of
  :func:`~repro.core.dp_vectorized.dp_vectorized` with every cell
  *clamped at* ``m + 1``: the table is initialised to the clamp
  instead of the unreachable sentinel, so cells whose true ``OPT``
  exceeds the budget can never receive an update (a candidate would
  have to be below the clamp) and the fixpoint arrives within
  ``min(OPT*, m+1) + 1`` rounds instead of ``OPT(N) + 1``.  Rejected
  probes — half of every bisection — stop as soon as nothing under
  the clamp changes; accepted probes additionally stop *early*, the
  moment the corner cell is provably final.
* :class:`DecisionKernel` packages the clamp as a
  :class:`~repro.core.ptas.DPSolver`: the probe driver binds the
  instance's machine count onto it (:meth:`DecisionKernel.bind_machines`)
  and the probe cache isolates its budget-dependent tables via
  :attr:`DecisionKernel.dp_cache_token`.
* :class:`FrontierDecisionKernel` is the *decision-only* extreme: the
  memory-light :func:`~repro.core.dp_frontier.dp_frontier` sweep with
  no dense table at all.  Its result answers feasibility but raises a
  clear :class:`~repro.errors.BackendError` if a schedule extraction
  touches it (the registry marks it ``decision_only`` so the runners
  refuse up front).

Correctness of the clamp (the invariants the property tests pin down):

1. Every stored value below the clamp is the length of a real
   configuration chain from the origin, hence ``>= OPT(u)``; values
   only decrease.  Cells with ``OPT(u) >= m + 1`` therefore hold
   exactly ``m + 1`` forever.
2. After ``r`` completed rounds every cell whose stored value is
   ``<= r`` is *exact* (round induction: a cell with ``OPT = j <= r``
   gains its final value in round ``j`` at the latest, and stored
   values never undercut ``OPT``).  So once the corner holds
   ``v <= min(m, r)`` the fill may stop: the backtrack walk only
   performs ``table[prev] == current - 1`` equality tests with
   ``current <= v``, and by (2) those tests pass **iff** they would
   pass on the exact table — the extracted schedule is bit-identical
   to the full fill's (tested).
3. The clamp value ``m + 1`` never satisfies an equality test
   (``current - 1 <= m - 1 < m + 1``), so saturated cells are inert
   during extraction.

One caveat narrows invariant (1): when the *load bound* already proves
the reject — ``ceil(sum(counts * sizes) / T) > m`` forces
``OPT(N) > m`` because no machine holds more than ``T`` of load — the
kernel returns the clamp-initialised table without filling at all.
Such a table still answers the corner (and any ``fits`` below the
clamp) correctly, but its interior cells all sit at the clamp even
where the true ``OPT(u)`` is small; that is sound because rejected
probes are never backtracked, and the probe cache keys decision
tables per budget so the table can never serve an accepting probe.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.configs import enumerate_configurations
from repro.core.dp_common import (
    DPResult,
    UNREACHABLE,
    empty_dp_result,
    pick_table_dtype,
    widen_table,
)
from repro.core.dp_frontier import dp_frontier
from repro.core.dp_vectorized import (
    bind_passes,
    closure_views,
    dp_vectorized,
    note_warm_convergence,
    run_closure_sweeps,
    seed_warm_table,
    shift_selectors,
)
from repro.errors import BackendError, DPError
from repro.observability import context as obs


def dp_decision(
    counts: Sequence[int],
    class_sizes: Sequence[int],
    target: int,
    machines: int,
    configs: Optional[np.ndarray] = None,
    order: Optional[np.ndarray] = None,
    max_rounds: Optional[int] = None,
    shifts: Optional[tuple] = None,
    sparsify: bool = False,
    sparse_configs: Optional[np.ndarray] = None,
    sparse_shifts: Optional[tuple] = None,
    warm_table: Optional[np.ndarray] = None,
) -> DPResult:
    """Clamped relaxation fill deciding ``OPT(N) <= machines``.

    Returns a :class:`~repro.core.dp_common.DPResult` with
    ``clamp = machines + 1``: values below the clamp are exact, cells
    at the clamp have ``OPT`` at least ``machines + 1`` (or no packing
    at all).  Check :attr:`~repro.core.dp_common.DPResult.decided_infeasible`
    before treating the corner as a machine count.  Accepted tables
    backtrack to the same schedule as an exact fill (see the module
    docstring for why).

    ``order`` is an optional precomputed config processing order (a
    plan's :attr:`~repro.dptable.plan.ProbePlan.relaxation_order`);
    ``shifts`` the matching precomputed slice selectors (a plan's
    :attr:`~repro.dptable.plan.ProbePlan.shift_slices`).

    ``sparsify=True`` relaxes with the dominance-pruned maximal subset
    (:mod:`repro.core.sparsify`), realised as box passes over the
    maximal subset plus per-round downward-closure sweeps (see
    :func:`~repro.core.dp_vectorized.dp_vectorized`): the cover
    fixpoint equals the partition fixpoint at every cell, invariants
    (1)–(3) survive (a stored value is still the length of a real
    cover, and round ``r`` still finalises every cell with
    ``OPT <= r`` because the sweeps run after the round's box passes),
    and the backtrack still walks the returned *full* ``configs``.
    ``sparse_configs`` / ``sparse_shifts`` are the plan-cached layers;
    either implies ``sparsify``.

    ``warm_table`` seeds the fill from a cached same-clamp table of a
    smaller scaled budget (upper bounds on this fill's fixpoint, see
    :func:`~repro.core.dp_vectorized.seed_warm_table`).  Warm fills run
    to the no-change fixpoint — the early accept is skipped, because
    invariant (2) ("stored value <= r after r rounds is exact") does
    not cover seeded values — so a warm table *is* the exact clamped
    fixpoint and backtracks like any accepted decision table.
    """
    counts = tuple(int(c) for c in counts)
    if len(counts) != len(class_sizes):
        raise DPError("counts and class_sizes must have equal length")
    machines = int(machines)
    if machines < 0:
        raise DPError(f"machines must be >= 0, got {machines}")
    if len(counts) == 0:
        return empty_dp_result()
    if configs is None:
        configs = enumerate_configurations(class_sizes, counts, target)
    if sparse_configs is not None or sparse_shifts is not None:
        sparsify = True

    clamp = machines + 1
    dtype = pick_table_dtype(clamp)
    shape = tuple(c + 1 for c in counts)
    # Initialise to the clamp, not the unreachable sentinel: cells
    # beyond the budget saturate there and never update, which is the
    # whole speedup.
    table = np.full(shape, clamp, dtype=dtype)
    origin = (0,) * len(counts)
    table[origin] = 0
    corner = tuple(s - 1 for s in shape)

    if configs.shape[0] == 0:
        obs.count("dp.decision.calls")
        return DPResult(table=widen_table(table), configs=configs, clamp=clamp)

    # "Provably > m" without touching the table: every machine carries
    # at most T of load, so ceil(long_load / T) lower-bounds OPT(N).
    # When that alone exceeds the budget the clamp-initialised table
    # (origin 0, everything else saturated) already *is* the answer —
    # deadline-style probes far below the search's lower bound reject
    # in O(1) instead of a full fill.  Accepting probes can never take
    # this exit (T >= LB implies long_load <= m * T).
    long_load = sum(int(c) * int(s) for c, s in zip(counts, class_sizes))
    if long_load > machines * int(target):
        obs.count("dp.decision.calls")
        obs.count("dp.decision.load_rejects")
        obs.count("dp.decision.rejects")
        return DPResult(table=widen_table(table), configs=configs, clamp=clamp)

    warm_init = None
    if warm_table is not None:
        warm_init = seed_warm_table(table, warm_table, cap=clamp)

    if max_rounds is None:
        # Fixpoint within clamp rounds (no finite value exceeds the
        # clamp, and round r finalises every cell with OPT <= r); +2
        # headroom for the no-change detection round.
        max_rounds = min(sum(counts), clamp) + 2

    if sparsify and sparse_shifts is None:
        if sparse_configs is None:
            from repro.core.sparsify import sparsify_configurations

            sparse_configs, _ = sparsify_configurations(
                configs, counts, class_sizes, target
            )
        sparse_order = np.argsort(-sparse_configs.sum(axis=1), kind="stable")
        sparse_shifts = shift_selectors(shape, sparse_configs, sparse_order)

    if sparsify:
        scratch = np.empty(table.size, dtype=dtype)
        mask = np.empty(table.size, dtype=bool)
        bound = bind_passes(table, sparse_shifts, scratch, mask)
        views = closure_views(table)
        before = np.empty(shape, dtype=dtype)
        passes_per_round = len(bound)
    else:
        if shifts is None:
            if order is None:
                order = np.argsort(-configs.sum(axis=1), kind="stable")
            shifts = shift_selectors(shape, configs, order)
        scratch = np.empty(table.size, dtype=dtype)
        mask = np.empty(table.size, dtype=bool)
        bound = bind_passes(table, shifts, scratch, mask)
        passes_per_round = len(bound)

    rounds = 0
    passes = 0
    for _ in range(max_rounds):
        rounds += 1
        changed = False
        for dst, src, cand_w, improved in bound:
            np.add(src, 1, out=cand_w)  # scratch copy; src may alias dst
            np.less(cand_w, dst, out=improved)
            if improved.any():
                np.copyto(dst, cand_w, where=improved)
                changed = True
        if sparsify:
            np.copyto(before, table)
            run_closure_sweeps(views)
            changed = changed or not np.array_equal(table, before)
        passes += passes_per_round
        corner_value = int(table[corner])
        if (
            warm_init is None
            and corner_value <= machines
            and corner_value <= rounds
        ):
            # Invariant (2): after `rounds` full rounds every stored
            # value <= rounds is exact, so the corner is final and the
            # whole backtrack chain below it is too — stop early.
            # (Warm fills skip this: seeded values are upper bounds,
            # not chain lengths, so they run to the no-change fixpoint.)
            obs.count("dp.decision.early_accept")
            break
        if not changed:
            break
    else:
        raise DPError(
            f"clamped relaxation did not converge within {max_rounds} rounds "
            f"(shape={shape}, |C|={configs.shape[0]}, clamp={clamp})"
        )

    if warm_init is not None:
        note_warm_convergence(table, warm_init)

    obs.count("dp.decision.calls")
    obs.count("dp.decision.rounds", rounds)
    obs.count("dp.decision.config_passes", passes)
    result = DPResult(table=widen_table(table), configs=configs, clamp=clamp)
    if result.decided_infeasible:
        obs.count("dp.decision.rejects")
    return result


class DecisionKernel:
    """:class:`~repro.core.ptas.DPSolver` wrapper around :func:`dp_decision`.

    The machine budget is not part of the ``DPSolver`` call signature,
    so the kernel carries it as state: the probe driver calls
    :meth:`bind_machines` with the instance's machine count before the
    DP runs.  Unbound (e.g. called directly in a backend agreement
    test), the kernel falls back to the exact
    :func:`~repro.core.dp_vectorized.dp_vectorized` fill — same
    tables, no clamp.

    ``plan_cache`` (a :class:`~repro.core.probe_cache.PlanCache`)
    supplies the cached config processing order; plans are fetched
    lazily (``eager=False``) because the kernel needs no other layer.

    ``sparsify`` (default on — the decision kernels are the intended
    consumers of dominance pruning) relaxes with the plan's maximal
    subset via box passes and closure sweeps; results stay
    bit-identical to the dense
    fill (see :mod:`repro.core.sparsify`).  ``--no-sparsify`` and the
    service knobs thread ``sparsify=False`` through here.
    """

    #: the probe cache may seed this kernel's fills from nearby-budget
    #: cached tables (same ``dp_cache_token`` family).
    supports_warm_start = True
    #: the probe driver may toggle dominance pruning per fill.
    supports_sparsify = True

    def __init__(
        self,
        machines: Optional[int] = None,
        plan_cache=None,
        sparsify: bool = True,
    ) -> None:
        self.machines = None if machines is None else int(machines)
        self.plan_cache = plan_cache
        self.sparsify = bool(sparsify)

    def bind_machines(self, machines: Optional[int]) -> "DecisionKernel":
        """A copy of this kernel clamped at ``machines + 1``.

        ``None`` *unbinds*: fills whose tables must stay exact (the
        multi-fill models compose tables across machine types) pass it
        to force the exact fallback even on a previously-bound kernel.
        """
        return DecisionKernel(
            machines=machines, plan_cache=self.plan_cache, sparsify=self.sparsify
        )

    @property
    def dp_cache_token(self) -> Optional[tuple]:
        """Probe-cache isolation key: clamped tables are per-budget.

        ``sparsify`` does not enter the token — sparse and dense fills
        share one fixpoint, so their cached tables are interchangeable.
        """
        if self.machines is None:
            return None
        return ("decision", self.machines)

    def _plan(self, counts, class_sizes, target, configs, model_token=None):
        if self.plan_cache is None:
            return None
        return self.plan_cache.plan(
            tuple(int(c) for c in counts),
            tuple(int(s) for s in class_sizes),
            int(target),
            configs,
            eager=False,
            model_token=model_token,
        )

    def __call__(
        self,
        counts: Sequence[int],
        class_sizes: Sequence[int],
        target: int,
        configs: Optional[np.ndarray] = None,
        model_token: Optional[tuple] = None,
        sparsify: Optional[bool] = None,
        warm_table: Optional[np.ndarray] = None,
    ) -> DPResult:
        counts = tuple(int(c) for c in counts)
        if len(counts) == 0:
            return empty_dp_result()
        if configs is None:
            configs = enumerate_configurations(class_sizes, counts, target)
        effective = self.sparsify if sparsify is None else bool(sparsify)
        plan = self._plan(
            counts, class_sizes, target, configs, model_token=model_token
        )
        order = shifts = sparse = sparse_sel = None
        if plan is not None:
            if effective:
                sparse = plan.sparse_configs
                sparse_sel = plan.sparse_shift_slices
            else:
                order = plan.relaxation_order
                shifts = plan.shift_slices
        if self.machines is None:
            return dp_vectorized(
                counts,
                class_sizes,
                target,
                configs=configs,
                order=order,
                shifts=shifts,
                sparsify=effective,
                sparse_configs=sparse,
                sparse_shifts=sparse_sel,
                warm_table=warm_table,
            )
        return dp_decision(
            counts,
            class_sizes,
            target,
            machines=self.machines,
            configs=configs,
            order=order,
            shifts=shifts,
            sparsify=effective,
            sparse_configs=sparse,
            sparse_shifts=sparse_sel,
            warm_table=warm_table,
        )

    def __repr__(self) -> str:
        bound = "unbound" if self.machines is None else f"m={self.machines}"
        return f"DecisionKernel({bound})"


class FeasibilityResult:
    """Decision-only probe answer: ``OPT(N)`` with no table behind it.

    Quacks like a :class:`~repro.core.dp_common.DPResult` for the
    probe driver's feasibility checks, but any touch of :attr:`table`
    — i.e. any attempt to extract a schedule — raises a
    :class:`~repro.errors.BackendError` naming the fix, instead of
    the bare ``AttributeError`` this used to be.
    """

    clamp = None

    def __init__(self, opt: int, configs: np.ndarray) -> None:
        self._opt = int(opt)
        self.configs = configs

    @property
    def opt(self) -> int:
        """``OPT(N)`` — exact, or :data:`UNREACHABLE` if no packing exists."""
        return self._opt

    @property
    def feasible(self) -> bool:
        """Whether any packing of the full job vector exists."""
        return self._opt < UNREACHABLE

    @property
    def decided_infeasible(self) -> bool:
        """Frontier answers are exact — nothing is clamped away."""
        return False

    def fits(self, machines: int) -> bool:
        """``OPT(N) <= machines`` — exact, no clamp caveats."""
        return self._opt <= int(machines)

    @property
    def table(self) -> np.ndarray:
        raise BackendError(
            "the frontier-decision backend is decision-only: it answers "
            "OPT(N) <= m without materialising the DP table, so no "
            "schedule can be extracted from it — use a table-producing "
            "backend (e.g. 'vectorized', 'decision', or 'auto') when a "
            "schedule is needed"
        )

    def __repr__(self) -> str:
        shown = "UNREACHABLE" if self._opt >= UNREACHABLE else self._opt
        return f"FeasibilityResult(opt={shown})"


class FrontierDecisionKernel:
    """Decision-only solver: the windowed frontier sweep, no dense table.

    Registered as ``"frontier-decision"`` with the ``decision_only``
    capability — the runners refuse to build schedules with it, and a
    direct extraction attempt hits :attr:`FeasibilityResult.table`'s
    loud error.  Use it to answer feasibility on tables too large to
    materialise.
    """

    def __call__(
        self,
        counts: Sequence[int],
        class_sizes: Sequence[int],
        target: int,
        configs: Optional[np.ndarray] = None,
        model_token: Optional[tuple] = None,
    ) -> FeasibilityResult:
        counts = tuple(int(c) for c in counts)
        if configs is None:
            configs = enumerate_configurations(class_sizes, counts, target)
        opt = dp_frontier(counts, class_sizes, target, configs)
        return FeasibilityResult(opt=opt, configs=configs)

    def __repr__(self) -> str:
        return "FrontierDecisionKernel()"
