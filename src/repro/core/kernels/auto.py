"""The ``auto`` backend: pick a DP kernel per probe from a cost model.

Three production kernels cover three regimes:

* **decision** (:func:`~repro.core.kernels.decision.dp_decision`) —
  when the machine budget is known, clamping at ``m + 1`` bounds the
  relaxation rounds by ``min(OPT*, m + 1)`` and stops rejected probes
  the moment nothing under the clamp moves.  The win grows with the
  gap between ``OPT(N)`` and ``m``.
* **sweep** (:func:`~repro.core.kernels.sweep.dp_levelsweep`) — one
  gather pass per cell regardless of ``OPT``, allocating per-level
  temporaries only.  Measured head-to-head its indexed gathers lose
  to the relaxation's contiguous slices at every practical scale
  (the in-place relaxation converges in a handful of rounds no
  matter how deep the table — updates propagate *within* a round),
  so the cost model reserves it for the one regime the relaxation
  cannot enter: fills whose table-plus-scratch footprint exceeds the
  memory budget.
* **vectorized** (:func:`~repro.core.dp_vectorized.dp_vectorized`) —
  contiguous slice arithmetic; the default whenever no budget is
  bound, and unbeatable on small tables where fixed overheads rule.

A fourth route opens when the solver holds a fill fabric
(:class:`~repro.parallel.fabric.BlockExecutor`):

* **hostpar** — the anti-diagonal wavefront executed process-parallel
  over a shared narrow-dtype table.  Its ``sigma * |C|`` gathers split
  near-linearly across workers, so it wins exactly where the
  single-core kernels are at their worst: *large exact fills*.  With a
  machine budget bound the decision kernel keeps the route closed —
  its O(1) load-bound rejects and clamp-bounded rounds do less total
  work than any parallel full fill.

:func:`choose_kernel` predicts the regime from quantities that are
free before any fill: the table size ``sigma``, ``|C|``, the machine
budget, and the load-based lower bound
``est_opt = ceil(sum(counts * sizes) / T)`` on the relaxation's round
count.  :class:`AutoKernel` packages the choice as a
:class:`~repro.core.ptas.DPSolver` — it is what ``resolve("auto")``
returns, the :class:`~repro.service.batch.BatchScheduler` default,
and ``--backend auto`` on the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.configs import enumerate_configurations
from repro.core.dp_common import (
    DPResult,
    empty_dp_result,
    pick_table_dtype,
    relaxation_scratch_bytes,
)
from repro.core.dp_vectorized import dp_vectorized
from repro.core.kernels.decision import dp_decision
from repro.core.kernels.sweep import dp_levelsweep
from repro.errors import DPError
from repro.observability import context as obs

#: Below this many cells the relaxation's slice kernels dominate any
#: scheduling cleverness — fixed overheads rule, vectorized wins.
SMALL_TABLE_CELLS = 4096

#: Minimum gather-work (``sigma * (|C| + 1)`` elements) before the fill
#: fabric's per-wave dispatch overhead amortises: below it, the
#: single-core relaxation finishes before a pool round-trip completes.
HOSTPAR_MIN_WORK = 2_000_000


@dataclass(frozen=True)
class KernelChoice:
    """One probe's kernel decision, with the evidence that made it."""

    #: ``"decision"`` / ``"sweep"`` / ``"vectorized"`` / ``"hostpar"``.
    kernel: str
    #: narrow table dtype the chosen fill will use.
    dtype: np.dtype
    #: load-based lower bound on the relaxation round count.
    est_rounds: int
    #: one-phrase rationale (surfaced in traces and benchmarks).
    reason: str


def estimate_rounds(
    counts: Sequence[int],
    class_sizes: Sequence[int],
    target: int,
    machines: Optional[int] = None,
) -> int:
    """Expected relaxation rounds: ``~OPT(N)``, bounded by the clamp.

    ``ceil(total_long_load / T)`` lower-bounds ``OPT(N)`` (each machine
    holds at most ``T`` of load), which in turn lower-bounds the
    rounds the relaxation needs; a known machine budget caps it at
    ``m + 2`` because the decision clamp would stop there anyway.
    """
    load = sum(int(c) * int(s) for c, s in zip(counts, class_sizes))
    est = max(1, -(-load // max(1, int(target))))  # ceil div
    est = min(est, sum(int(c) for c in counts) + 1)
    if machines is not None:
        est = min(est, int(machines) + 2)
    return int(est)


def choose_kernel(
    counts: Sequence[int],
    class_sizes: Sequence[int],
    target: int,
    num_configs: int,
    machines: Optional[int] = None,
    memory_budget_bytes: Optional[int] = None,
    fill_workers: Optional[int] = None,
) -> KernelChoice:
    """Pick the kernel for one probe — pure arithmetic, no table work.

    ``memory_budget_bytes`` bounds the *transient* fill footprint
    (table + scratch); when the relaxation's two full-size buffers
    would blow it, the sweep — which allocates per-level temporaries
    only — is preferred.

    ``fill_workers`` (> 1) advertises an available fill fabric: exact
    fills whose gather-work ``sigma * (|C| + 1)`` reaches
    :data:`HOSTPAR_MIN_WORK` route to the process-parallel wavefront.
    Budget-bound probes never do — the decision clamp's early rejects
    beat any parallel full fill.
    """
    counts = tuple(int(c) for c in counts)
    sigma = 1
    for c in counts:
        sigma *= c + 1
    n_long = sum(counts)
    est = estimate_rounds(counts, class_sizes, target, machines=machines)
    dtype = pick_table_dtype(
        (int(machines) + 1) if machines is not None else n_long
    )

    if sigma <= SMALL_TABLE_CELLS:
        return KernelChoice(
            kernel="vectorized",
            dtype=pick_table_dtype(n_long),
            est_rounds=est,
            reason=f"small table (sigma={sigma})",
        )
    if memory_budget_bytes is not None and relaxation_scratch_bytes(
        sigma, dtype
    ) > int(memory_budget_bytes):
        obs.count("kernel.auto.over_budget")
        return KernelChoice(
            kernel="sweep",
            dtype=pick_table_dtype(n_long),
            est_rounds=est,
            reason="relaxation scratch exceeds the memory budget",
        )
    if machines is not None:
        return KernelChoice(
            kernel="decision",
            dtype=dtype,
            est_rounds=est,
            reason=f"budget known (clamp at {int(machines) + 1})",
        )
    gather_work = sigma * (int(num_configs) + 1)
    if fill_workers is not None and fill_workers > 1 and gather_work >= HOSTPAR_MIN_WORK:
        return KernelChoice(
            kernel="hostpar",
            dtype=pick_table_dtype(n_long),
            est_rounds=est,
            reason=(
                f"large exact fill (work={gather_work}) across "
                f"{int(fill_workers)} fill workers"
            ),
        )
    return KernelChoice(
        kernel="vectorized",
        dtype=pick_table_dtype(n_long),
        est_rounds=est,
        reason="exact fill, no budget bound",
    )


class AutoKernel:
    """Cost-model-driven :class:`~repro.core.ptas.DPSolver`.

    Per probe, :func:`choose_kernel` routes to the decision kernel,
    the level sweep, or the plain vectorized relaxation.  Like
    :class:`~repro.core.kernels.decision.DecisionKernel` it accepts
    the probe driver's machine-budget binding — without it every
    choice is an exact fill, so direct calls still produce tables
    bit-identical to the reference (tested).

    Parameters
    ----------
    plan_cache:
        Shared :class:`~repro.core.probe_cache.PlanCache`; supplies
        the sweep's level schedule and the relaxation kernels' cached
        config order.  ``None`` uses the process-wide default cache.
    memory_budget_bytes:
        Optional cap on the transient fill footprint (see
        :func:`choose_kernel`).
    fill_fabric:
        Optional :class:`~repro.parallel.fabric.BlockExecutor`; opens
        the ``hostpar`` route for large exact fills.  The service
        pipeline injects it when ``--fill-workers`` is set.
    sparsify:
        Dominance-prune the configuration set before filling (default
        on — ``auto`` is a decision-mode front-end).  Every route
        honours it: decision/vectorized via sparse box passes with
        closure sweeps, the sweep and the fabric via clipped gathers.
        Results stay
        bit-identical either way (see :mod:`repro.core.sparsify`).
    """

    #: the probe cache may seed this kernel's fills from nearby-budget
    #: cached tables (decision/vectorized routes; other routes ignore
    #: the seed and fill cold, which is always sound).
    supports_warm_start = True
    #: the probe driver may toggle dominance pruning per fill.
    supports_sparsify = True

    def __init__(
        self,
        plan_cache=None,
        machines: Optional[int] = None,
        memory_budget_bytes: Optional[int] = None,
        fill_fabric=None,
        sparsify: bool = True,
    ) -> None:
        self.plan_cache = plan_cache
        self.machines = None if machines is None else int(machines)
        self.memory_budget_bytes = memory_budget_bytes
        self.fill_fabric = fill_fabric
        self.sparsify = bool(sparsify)

    def bind_machines(self, machines: Optional[int]) -> "AutoKernel":
        """A copy of this kernel that knows the machine budget.

        ``None`` *unbinds*: fills whose tables must stay exact (the
        multi-fill models compose tables across machine types) pass it
        to force the exact routes even on a previously-bound kernel.
        """
        return AutoKernel(
            plan_cache=self.plan_cache,
            machines=machines,
            memory_budget_bytes=self.memory_budget_bytes,
            fill_fabric=self.fill_fabric,
            sparsify=self.sparsify,
        )

    @property
    def dp_cache_token(self) -> Optional[tuple]:
        """Per-budget probe-cache key.

        A bound auto kernel *may* produce clamped tables, so its
        results are isolated per budget like the decision kernel's;
        exact tables cached under the token remain valid for that
        budget (they answer strictly more).
        """
        if self.machines is None:
            return None
        return ("decision", self.machines)

    def _plan(self, counts, class_sizes, target, configs, model_token=None):
        cache = self.plan_cache
        if cache is None:
            from repro.core.probe_cache import default_plan_cache

            cache = default_plan_cache()
        return cache.plan(
            counts,
            tuple(int(s) for s in class_sizes),
            int(target),
            configs,
            eager=False,
            model_token=model_token,
        )

    def __call__(
        self,
        counts: Sequence[int],
        class_sizes: Sequence[int],
        target: int,
        configs: Optional[np.ndarray] = None,
        model_token: Optional[tuple] = None,
        sparsify: Optional[bool] = None,
        warm_table: Optional[np.ndarray] = None,
    ) -> DPResult:
        counts = tuple(int(c) for c in counts)
        if len(counts) != len(class_sizes):
            raise DPError("counts and class_sizes must have equal length")
        if len(counts) == 0:
            return empty_dp_result()
        if model_token is not None and configs is None:
            raise DPError(
                "model-filtered probes must supply their configuration set"
            )
        if configs is None:
            configs = enumerate_configurations(class_sizes, counts, target)
        effective = self.sparsify if sparsify is None else bool(sparsify)
        choice = choose_kernel(
            counts,
            class_sizes,
            target,
            num_configs=int(configs.shape[0]),
            machines=self.machines,
            memory_budget_bytes=self.memory_budget_bytes,
            fill_workers=(
                self.fill_fabric.workers if self.fill_fabric is not None else None
            ),
        )
        obs.count(f"kernel.auto.{choice.kernel}")
        plan = self._plan(
            counts, class_sizes, target, configs, model_token=model_token
        )
        if choice.kernel == "hostpar":
            # The fabric fills cold: a warm seed would have to ship
            # through shared memory for no measured win, so it is
            # simply ignored here — filling cold is always sound.
            flat = self.fill_fabric.fill(plan, sparsify=effective)
            return DPResult(
                table=flat.reshape(plan.geometry.shape), configs=configs
            )
        if choice.kernel == "sweep":
            return dp_levelsweep(
                counts,
                class_sizes,
                target,
                configs=configs,
                plan=plan,
                sparsify=effective,
            )
        sparse = sparse_sel = None
        order = shifts = None
        if effective:
            sparse = plan.sparse_configs
            sparse_sel = plan.sparse_shift_slices
        else:
            order = plan.relaxation_order
            shifts = plan.shift_slices
        if choice.kernel == "decision":
            return dp_decision(
                counts,
                class_sizes,
                target,
                machines=self.machines,
                configs=configs,
                order=order,
                shifts=shifts,
                sparsify=effective,
                sparse_configs=sparse,
                sparse_shifts=sparse_sel,
                warm_table=warm_table,
            )
        return dp_vectorized(
            counts,
            class_sizes,
            target,
            configs=configs,
            order=order,
            shifts=shifts,
            sparsify=effective,
            sparse_configs=sparse,
            sparse_shifts=sparse_sel,
            warm_table=warm_table,
        )

    def __repr__(self) -> str:
        bound = "unbound" if self.machines is None else f"m={self.machines}"
        return f"AutoKernel({bound}, sparsify={self.sparsify})"
