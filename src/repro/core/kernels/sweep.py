"""Plan-driven single-sweep DP kernel: each cell computed once.

:func:`~repro.core.dp_vectorized.dp_vectorized` relaxes the *whole
table* per round and needs up to ``OPT(N) + 1`` rounds; when ``OPT``
is large (many machines, tight targets) most of those passes touch
cells that are already final.  The level-sweep kernel instead walks
the :class:`~repro.dptable.plan.ProbePlan`'s anti-diagonal level
schedule exactly once: a cell at level ``l`` depends only on cells at
strictly lower levels (every configuration removes at least one job),
so one vectorized gather pass per ``(level, config)`` pair computes
every cell's final value directly — ``O(|C| * sigma)`` total work
regardless of ``OPT(N)``, against the relaxation's
``O(rounds * |C| * sigma)``.

The trade-off: the relaxation's slice arithmetic is contiguous while
the sweep's per-level gathers are indexed loads — and because the
relaxation updates *in place*, values propagate within a round and it
converges in a handful of rounds regardless of ``OPT(N)``, so in
practice the gather penalty is never repaid by avoided rounds
(measured ~10x slower head-to-head across Table-I..VI scales).  What
the sweep uniquely offers is footprint: it allocates per-level
temporaries only, never a second table-sized scratch, which is why the
cost model in :mod:`repro.core.kernels.auto` reserves it for fills
whose relaxation footprint would blow the memory budget.

This is :func:`repro.engines.base.fill_by_groups` — the engines'
plan-interpreting fill — stripped of its per-cell dependency
verification: the plan's level schedule *is* the topological order
(certified by the engine tests), so the production sweep skips the
bookkeeping.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.dp_common import (
    DPResult,
    empty_dp_result,
    pick_table_dtype,
    unreachable_for,
    widen_table,
)
from repro.dptable.plan import ProbePlan
from repro.errors import DPError
from repro.observability import context as obs


def dp_levelsweep(
    counts: Sequence[int],
    class_sizes: Sequence[int],
    target: int,
    configs: Optional[np.ndarray] = None,
    plan: Optional[ProbePlan] = None,
    plan_cache=None,
    model_token: Optional[tuple] = None,
    sparsify: bool = False,
) -> DPResult:
    """Fill the DP-table in one pass over the plan's level schedule.

    ``plan`` (or a plan fetched from ``plan_cache`` /
    :func:`~repro.core.probe_cache.default_plan_cache`) supplies the
    level schedule; its configuration set is authoritative when both
    ``plan`` and ``configs`` are given.  Bit-identical to
    :func:`~repro.core.dp_reference.dp_reference` (tested).

    ``sparsify=True`` sweeps the plan's dominance-pruned
    :attr:`~repro.dptable.plan.ProbePlan.sparse_configs` under the
    clipped cover recurrence (see :mod:`repro.core.sparsify`): the
    predecessor of ``u`` under ``c`` is ``clip(u - c)``, which sits at
    a strictly lower level whenever the supports intersect, so the
    single topological pass stays exact and the resulting table is
    bit-identical to the full-set sweep.  The returned
    :class:`~repro.core.dp_common.DPResult` always carries the *full*
    configuration set — backtracking subtracts exactly.
    """
    counts = tuple(int(c) for c in counts)
    if len(counts) != len(class_sizes):
        raise DPError("counts and class_sizes must have equal length")
    if len(counts) == 0:
        return empty_dp_result()

    if plan is None:
        if plan_cache is None:
            from repro.core.probe_cache import default_plan_cache

            plan_cache = default_plan_cache()
        plan = plan_cache.plan(
            counts,
            tuple(int(s) for s in class_sizes),
            int(target),
            configs,
            eager=False,
            model_token=model_token,
        )
    configs = plan.configs
    geometry = plan.geometry
    if geometry.shape != tuple(c + 1 for c in counts):
        raise DPError(
            f"plan shape {geometry.shape} does not match counts {counts}"
        )

    dtype = pick_table_dtype(sum(counts))
    unreach = unreachable_for(dtype)
    table = np.full(geometry.size, unreach, dtype=dtype)
    table[0] = 0

    if configs.shape[0] == 0:
        obs.count("dp.sweep.calls")
        return DPResult(
            table=widen_table(table).reshape(geometry.shape), configs=configs
        )

    schedule = plan.level_schedule
    cells = geometry.all_cells()
    strides = np.asarray(geometry.strides, dtype=np.int64)
    fill_configs = plan.sparse_configs if sparsify else configs
    config_flat = fill_configs @ strides

    passes = 0
    for level in range(1, schedule.num_levels):
        group = schedule.group(level)
        if group.size == 0:
            continue
        coords = cells[group]
        best = np.full(group.size, unreach, dtype=dtype)
        for idx in range(fill_configs.shape[0]):
            passes += 1
            if sparsify:
                prev_coords = np.maximum(coords - fill_configs[idx], 0)
                # Disjoint-support configurations clip back to the cell
                # itself — they cover nothing and must not self-depend.
                ok = (prev_coords != coords).any(axis=1)
                if not ok.any():
                    continue
                sel = np.flatnonzero(ok)
                prev = prev_coords[sel] @ strides
            else:
                ok = (coords >= fill_configs[idx]).all(axis=1)
                if not ok.any():
                    continue
                sel = np.flatnonzero(ok)
                prev = group[sel] - int(config_flat[idx])
            best[sel] = np.minimum(best[sel], table[prev])
        reachable = best < unreach
        if reachable.any():
            table[group[reachable]] = best[reachable] + 1

    obs.count("dp.sweep.calls")
    obs.count("dp.sweep.levels", schedule.num_levels - 1)
    obs.count("dp.sweep.config_passes", passes)
    return DPResult(
        table=widen_table(table).reshape(geometry.shape), configs=configs
    )


class SweepKernel:
    """:class:`~repro.core.ptas.DPSolver` wrapper around :func:`dp_levelsweep`.

    Carries the plan cache so every probe that rounds to a known shape
    reuses the cached level schedule instead of re-deriving it.
    ``sparsify`` defaults off: the sweep exists for footprint, and the
    clipped gather neither shrinks per-level temporaries nor is it the
    sweep's bottleneck.
    """

    supports_sparsify = True

    def __init__(self, plan_cache=None, sparsify: bool = False) -> None:
        self.plan_cache = plan_cache
        self.sparsify = bool(sparsify)

    def __call__(
        self,
        counts: Sequence[int],
        class_sizes: Sequence[int],
        target: int,
        configs: Optional[np.ndarray] = None,
        model_token: Optional[tuple] = None,
        sparsify: Optional[bool] = None,
    ) -> DPResult:
        effective = self.sparsify if sparsify is None else bool(sparsify)
        return dp_levelsweep(
            counts,
            class_sizes,
            target,
            configs=configs,
            plan_cache=self.plan_cache,
            model_token=model_token,
            sparsify=effective,
        )

    def __repr__(self) -> str:
        return f"SweepKernel(sparsify={self.sparsify})"
