"""Plain bisection over the target makespan (Algorithm 1, lines 5–14).

This is the search loop of the original PTAS and of the OpenMP baseline
[1]: probe the midpoint ``T`` of ``[LB, UB]``; if the dual approximation
accepts (``machines_needed <= m``) move ``UB`` down to ``T``, otherwise
move ``LB`` up to ``T + 1``.  The loop maintains the invariant that the
optimum lies in ``[LB, UB]`` and that every accepted probe has a
schedule of makespan at most ``(1 + eps) T``.

Each iteration's single probe is submitted to a
:class:`~repro.core.executor.ProbeExecutor`, which both runs it and
accounts its simulated time — so the same loop serves the pure solvers
(zero charge), the host engines (sequential sum), and a device engine
(work/span bound), with no per-backend copies of the search.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import TYPE_CHECKING, Optional, Union

from repro.core.bounds import makespan_bounds
from repro.core.dp_vectorized import dp_vectorized
from repro.core.instance import Instance
from repro.core.ptas import DPSolver, ProbeResult, PtasResult
from repro.core.search_common import finalize_search
from repro.observability import Tracer, TraceSink, as_tracer
from repro.observability import context as obs

if TYPE_CHECKING:
    from repro.core.executor import ProbeExecutor
    from repro.core.probe_cache import ProbeCache


def bisection_search(
    instance: Instance,
    eps: float = 0.3,
    dp_solver: DPSolver = dp_vectorized,
    cache: Optional["ProbeCache"] = None,
    trace: Optional[Union[Tracer, TraceSink]] = None,
    executor: Optional["ProbeExecutor"] = None,
) -> PtasResult:
    """Run the PTAS with plain bisection; see module docstring.

    ``cache`` and ``trace`` are the cross-probe cache and observability
    hooks of :func:`repro.core.ptas.ptas_schedule`; ``executor`` is the
    probe executor (default
    :class:`~repro.core.executor.SequentialExecutor`).  None of the
    three changes the result.
    """
    tracer = as_tracer(trace)
    with tracer.activate() if tracer is not None else nullcontext():
        return _bisection_search(instance, eps, dp_solver, cache, executor)


def _bisection_search(
    instance: Instance,
    eps: float,
    dp_solver: DPSolver,
    cache: Optional["ProbeCache"],
    executor: Optional["ProbeExecutor"],
) -> PtasResult:
    from repro.core.executor import SequentialExecutor

    executor = executor if executor is not None else SequentialExecutor()
    bounds = makespan_bounds(instance)
    lb, ub = bounds.lower, bounds.upper

    probes: list[ProbeResult] = []
    best_accept: Optional[ProbeResult] = None
    iterations = 0

    while lb < ub:
        iterations += 1
        obs.count("search.iterations")
        target = (lb + ub) // 2
        probe = executor.run_round(instance, [target], eps, dp_solver, cache=cache)[0]
        probes.append(probe)
        if probe.accepted:
            ub = target
            best_accept = probe
        else:
            lb = target + 1

    return finalize_search(
        "bisection",
        instance,
        eps,
        dp_solver,
        executor,
        cache,
        probes,
        best_accept,
        ub,
        iterations,
    )
