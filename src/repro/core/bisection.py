"""Plain bisection over the target makespan (Algorithm 1, lines 5–14).

This is the search loop of the original PTAS and of the OpenMP baseline
[1]: probe the midpoint ``T`` of ``[LB, UB]``; if the dual approximation
accepts (``machines_needed <= m``) move ``UB`` down to ``T``, otherwise
move ``LB`` up to ``T + 1``.  The loop maintains the invariant that the
optimum lies in ``[LB, UB]`` and that every accepted probe has a
schedule of makespan at most ``(1 + eps) T``.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import TYPE_CHECKING, Optional, Union

from repro.core.bounds import makespan_bounds
from repro.core.dp_vectorized import dp_vectorized
from repro.core.instance import Instance
from repro.core.ptas import DPSolver, ProbeResult, PtasResult, probe_target
from repro.errors import ReproError
from repro.observability import Tracer, TraceSink, as_tracer
from repro.observability import context as obs

if TYPE_CHECKING:
    from repro.core.probe_cache import ProbeCache


def bisection_search(
    instance: Instance,
    eps: float = 0.3,
    dp_solver: DPSolver = dp_vectorized,
    cache: Optional["ProbeCache"] = None,
    trace: Optional[Union[Tracer, TraceSink]] = None,
) -> PtasResult:
    """Run the PTAS with plain bisection; see module docstring.

    ``cache`` and ``trace`` are the cross-probe cache and observability
    hooks of :func:`repro.core.ptas.ptas_schedule` (both optional,
    neither changes the result).
    """
    tracer = as_tracer(trace)
    with tracer.activate() if tracer is not None else nullcontext():
        return _bisection_search(instance, eps, dp_solver, cache)


def _bisection_search(
    instance: Instance,
    eps: float,
    dp_solver: DPSolver,
    cache: Optional["ProbeCache"],
) -> PtasResult:
    bounds = makespan_bounds(instance)
    lb, ub = bounds.lower, bounds.upper

    probes: list[ProbeResult] = []
    best_accept: Optional[ProbeResult] = None
    iterations = 0

    while lb < ub:
        iterations += 1
        obs.count("search.iterations")
        target = (lb + ub) // 2
        probe = probe_target(instance, target, eps, dp_solver, cache=cache)
        probes.append(probe)
        if probe.accepted:
            ub = target
            best_accept = probe
        else:
            lb = target + 1

    if best_accept is None or best_accept.target != ub:
        # Either the interval started degenerate, or the last accepted
        # probe was at a larger T than the final UB (possible when LB
        # catches up from below).  One final probe at UB settles it; the
        # initial UB (Graham bound) is always feasible, so this accepts.
        # With a cache this re-probe is (almost) free: its target was
        # usually probed inside the loop already.
        probe = probe_target(instance, ub, eps, dp_solver, cache=cache)
        probes.append(probe)
        if not probe.accepted:
            raise ReproError(
                f"bisection invariant violated: final target {ub} rejected"
            )
        best_accept = probe

    # The (1+eps) guarantee flows from the lowest accepted target, but
    # an accepted probe at a higher T can happen to build a *better*
    # schedule (its greedy short-job packing had more slack).  Return
    # the best schedule seen; it is at most the guaranteed bound.
    best_schedule = min(
        (p.schedule for p in probes if p.schedule is not None),
        key=lambda s: s.makespan,
    )
    return PtasResult(
        schedule=best_schedule,
        eps=eps,
        iterations=iterations,
        probes=probes,
        final_target=best_accept.target,
    )
