"""Shared types for the high-dimensional DP solvers.

Every DP implementation in the library (reference, vectorized, and the
simulator-instrumented engines) produces a :class:`DPResult` over the
same dense table so they can be compared cell-for-cell in tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DPError

#: Sentinel for "no packing reaches this cell".  Large enough that
#: ``UNREACHABLE + 1`` never overflows int64 and never collides with a
#: real machine count.
UNREACHABLE: int = np.iinfo(np.int64).max // 4


@dataclass(frozen=True)
class DPResult:
    """Outcome of filling the DP-table for one ``(N, T)`` probe.

    Attributes
    ----------
    table:
        Dense int64 array of shape ``(n_1+1, ..., n_d+1)``.
        ``table[u] = OPT(u)`` — the minimum number of machines that
        schedule the job vector ``u`` within the target — or
        :data:`UNREACHABLE`.  ``table[0,...,0] == 0``.
    configs:
        The ``(num_configs, d)`` configuration set used (Equation 1's
        ``C``), in the library's canonical lexicographic order.
    """

    table: np.ndarray
    configs: np.ndarray

    def __post_init__(self) -> None:
        if self.table.dtype != np.int64:
            raise DPError(f"DP table must be int64, got {self.table.dtype}")
        if self.configs.ndim != 2:
            raise DPError("configs must be a 2-D array")
        if self.table.ndim != self.configs.shape[1] and self.configs.shape[0] > 0:
            raise DPError(
                f"table has {self.table.ndim} dims but configs have "
                f"{self.configs.shape[1]} components"
            )

    @property
    def shape(self) -> tuple[int, ...]:
        """DP-table shape ``(n_1+1, ..., n_d+1)``."""
        return tuple(self.table.shape)

    @property
    def opt(self) -> int:
        """``OPT(N)`` — machines needed for the full job vector.

        :data:`UNREACHABLE` means no packing exists for this target
        (possible when some single job exceeds ``T``).
        """
        return int(self.table[tuple(s - 1 for s in self.table.shape)])

    @property
    def feasible(self) -> bool:
        """Whether *any* packing of the full job vector exists."""
        return self.opt < UNREACHABLE

    def fits(self, machines: int) -> bool:
        """``OPT(N) <= machines`` — the bisection predicate (Alg. 1 line 11)."""
        return self.opt <= machines


def empty_dp_result() -> DPResult:
    """Result for the degenerate no-long-jobs case: a 0-d table with OPT=0.

    When the rounding step classifies every job as short, the DP is
    trivial — zero machines are needed for zero long jobs — and the
    bisection predicate reduces to whether the short jobs pack greedily.
    """
    table = np.zeros((), dtype=np.int64)
    return DPResult(table=table, configs=np.zeros((0, 0), dtype=np.int64))
